//! FAFR fairness under sustained competition: with several specific
//! applications fighting over a machine that cannot hold all their
//! working sets, the global frame manager must honour every container's
//! `minFrame` admission guarantee, reclaim in FAFR order without
//! starving anyone, and keep every application making progress — which
//! the per-container profiler counters can now prove directly.

use std::cell::RefCell;
use std::rc::Rc;

use hipec_core::{ContainerKey, HipecKernel, MemorySink, TraceEvent};
use hipec_policies::PolicyKind;
use hipec_vm::{KernelParams, TaskId, VAddr, PAGE_SIZE};

const MIN_FRAMES: u64 = 8;
const REGION_PAGES: u64 = 40;

fn pressured_params() -> KernelParams {
    let mut p = KernelParams::paper_64mb();
    // 88 pageable frames against four 40-page working sets: nobody can
    // win outright, so the partition is contested for the whole run.
    p.total_frames = 96;
    p.wired_frames = 8;
    p.free_target = 8;
    p.free_min = 4;
    p.inactive_target = 12;
    p
}

struct App {
    task: TaskId,
    base: VAddr,
    key: ContainerKey,
    name: &'static str,
}

/// An expansionist MRU policy: grows its pool with `Request` on every
/// fault, recycling its own pages only when the manager refuses. A
/// container like this is exactly why `minFrame` exists — without the
/// guarantee it would squeeze the modest policies out of the machine.
const GREEDY: &str = r#"
    recency queue pool_q;

    event PageFault() {
        if (free_count == 0) {
            request(8);
            if (free_count == 0) {
                mru(pool_q);
            }
        }
        page p = dequeue_head(free_queue);
        enqueue_tail(pool_q, p);
        return p;
    }

    event ReclaimFrame() {
        int released = 0;
        while (released < reclaim_target && allocated_count > 0) {
            if (free_count == 0) {
                mru(pool_q);
            }
            page p = dequeue_head(free_queue);
            release(p);
            released = released + 1;
        }
    }
"#;

fn install_apps(k: &mut HipecKernel) -> Vec<App> {
    // Three modest stock policies (they never grow past their grant) plus
    // one expansionist: the guarantee must hold for the modest apps even
    // while the greedy one absorbs every frame the manager will part with.
    let programs = [
        ("fifo2c", PolicyKind::FifoSecondChance.program()),
        ("lru", PolicyKind::Lru.program()),
        ("clock", PolicyKind::Clock.program()),
        (
            "greedy",
            hipec_lang::compile(GREEDY).expect("greedy compiles"),
        ),
    ];
    programs
        .into_iter()
        .map(|(name, program)| {
            let task = k.vm.create_task();
            let (base, _obj, key) = k
                .vm_allocate_hipec(task, REGION_PAGES * PAGE_SIZE, program, MIN_FRAMES)
                .expect("admission grants minFrame");
            App {
                task,
                base,
                key,
                name,
            }
        })
        .collect()
}

fn assert_min_frames(k: &HipecKernel, apps: &[App], when: &str) {
    let stats = k.kernel_stats();
    for app in apps {
        let row = stats
            .container(app.key.0)
            .unwrap_or_else(|| panic!("{} row missing {when}", app.name));
        assert!(!row.terminated, "{} was killed {when}", app.name);
        assert!(
            row.allocated >= MIN_FRAMES,
            "{} holds {} < minFrame {} {when}",
            app.name,
            row.allocated,
            MIN_FRAMES
        );
    }
}

#[test]
fn competing_specific_apps_never_starve_below_min_frames() {
    let mut k = HipecKernel::new(pressured_params());
    let apps = install_apps(&mut k);
    assert_min_frames(&k, &apps, "at admission");

    // A non-specific scanner keeps the default pool hungry too, so
    // balance reclamation has a reason to lean on the specific partition.
    let scan_task = k.vm.create_task();
    let (scan_base, _obj) =
        k.vm.vm_allocate(scan_task, 48 * PAGE_SIZE)
            .expect("default-pool region");

    let mut fault_marks: Vec<Vec<u64>> = vec![Vec::new(); apps.len()];
    for s in 0..1_200u64 {
        for (i, app) in apps.iter().enumerate() {
            // Distinct strides, each coprime to the region size, so every
            // app sweeps its full region and none of them phase-lock.
            let stride = [3u64, 7, 11, 13][i];
            let p = (s * stride + i as u64) % REGION_PAGES;
            k.access_sync(
                app.task,
                VAddr(app.base.0 + p * PAGE_SIZE),
                s % 4 == i as u64,
            )
            .unwrap_or_else(|e| panic!("{} access failed: {e}", app.name));
        }
        let q = s % 48;
        if let Ok(r) = k.access(scan_task, VAddr(scan_base.0 + q * PAGE_SIZE), false) {
            if let Some(done) = r.io_until {
                k.vm.clock.advance_to(done);
            }
        }
        k.pump();
        // Checkpoints: the guarantee holds *throughout* the contest, not
        // just at the end — and per-container fault counters are sampled
        // so stalls between checkpoints are visible.
        if s % 100 == 99 {
            assert_min_frames(&k, &apps, &format!("at step {s}"));
            let stats = k.kernel_stats();
            for (i, app) in apps.iter().enumerate() {
                fault_marks[i].push(stats.container(app.key.0).expect("row").faults);
            }
        }
    }

    // Mid-contest the GFM is asked for frames directly (the admission
    // path for a hypothetical fourth application): FAFR reclamation must
    // shave surpluses, never the guaranteed minimum.
    let reclaimed = k.reclaim_frames(12);
    assert!(
        reclaimed > 0,
        "contested machine must have surplus to shave"
    );
    assert_min_frames(&k, &apps, "after FAFR reclamation");

    // No stalled applications: every container's fault counter advanced
    // in every checkpoint window — each app kept faulting (and being
    // served) for the entire run instead of wedging behind the others.
    for (i, marks) in fault_marks.iter().enumerate() {
        for w in marks.windows(2) {
            assert!(
                w[1] > w[0],
                "{} stalled: faults stuck at {} across a checkpoint window",
                apps[i].name,
                w[0]
            );
        }
    }

    // The per-opcode profiler proves each policy actually executed
    // commands on its own behalf — progress was in-container, not a
    // side effect of the default pool serving it.
    let stats = k.kernel_stats();
    for app in &apps {
        let row = stats.container(app.key.0).expect("row");
        assert!(row.commands > 0, "{} executed no commands", app.name);
        assert!(row.faults > 0, "{} saw no faults", app.name);
        let profiled: u64 = row.ops.nonzero().map(|(_, count, _)| count).sum();
        assert_eq!(
            profiled, row.commands,
            "{}'s opcode profile must account for every command",
            app.name
        );
        assert!(
            row.ops.nonzero().any(|(_, _, time)| time.as_ns() > 0),
            "{}'s profile must attribute interpreter time",
            app.name
        );
    }

    k.check_invariants()
        .expect("books and partition balance after the contest");
}

/// Pin: concurrent restore ramps are served round-robin — the tranche
/// scan starts one container later each health tick, so the per-tick
/// `RestoreRamp` emission order is a rotation that advances by one, not
/// lowest-id-first every interval.
#[test]
fn restore_ramp_tranche_order_rotates_round_robin() {
    let mut p = KernelParams::paper_64mb();
    p.total_frames = 128;
    p.wired_frames = 8;
    p.free_target = 8;
    p.free_min = 4;
    p.inactive_target = 12;
    let mut k = HipecKernel::new(p);

    // Three modest containers, admitted small so the free pool can cover
    // every tranche (this pins *order*, not contention).
    let keys: Vec<ContainerKey> = (0..3)
        .map(|_| {
            let t = k.vm.create_task();
            let (_, _, key) = k
                .vm_allocate_hipec(t, 16 * PAGE_SIZE, PolicyKind::Lru.program(), 2)
                .expect("install");
            key
        })
        .collect();

    // Owe each container a ramp (the state a restore leaves behind):
    // three tranches of the default size 2.
    let tranche = k.health_policy.restore_tranche;
    assert_eq!(tranche, 2, "test assumes the default tranche size");
    for key in &keys {
        k.containers[key.0 as usize].restore_pending = 3 * tranche;
    }

    let sink = Rc::new(RefCell::new(MemorySink::new()));
    k.set_sink(Box::new(Rc::clone(&sink)));

    // Drive exactly four checker wakeups; the first three drain the ramps.
    for _ in 0..4 {
        let next = k.checker.next_wakeup;
        k.vm.clock.advance_to(next);
        k.poll_checker();
    }
    k.take_sink();

    for key in &keys {
        assert_eq!(
            k.containers[key.0 as usize].restore_pending, 0,
            "ramp must drain in three ticks"
        );
        assert_eq!(k.containers[key.0 as usize].allocated, 2 + 3 * tranche);
    }

    // Group the RestoreRamp events into per-tick triplets and pin the
    // rotation: tick t starts where tick t-1's second container was.
    let ramp_order: Vec<u32> = sink
        .borrow()
        .records()
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::RestoreRamp { container, .. } => Some(container),
            _ => None,
        })
        .collect();
    assert_eq!(ramp_order.len(), 9, "three ticks of three tranches");
    let first = ramp_order[0] as usize;
    for (tick, chunk) in ramp_order.chunks(3).enumerate() {
        let start = (first + tick) % 3;
        let want: Vec<u32> = (0..3).map(|o| ((start + o) % 3) as u32).collect();
        assert_eq!(
            chunk,
            &want[..],
            "tick {tick} must start at container {start} and wrap in order"
        );
    }
    k.check_invariants().expect("books balance after the ramps");
}

//! Differential tests for the native (JIT) executor backend.
//!
//! The compiled backend's contract is *bit-identical observable behavior*:
//! same virtual-time charges, same `KernelStats`, same traces, same faults
//! and the same fuel behavior as the reference interpreter, per installed
//! source command. These sweeps drive both backends over shipped policies,
//! random structured command streams and injected device faults, and
//! compare the full fingerprint. A second sweep checks the peephole
//! optimizer end-to-end: an optimized program must reach the same outcome
//! and final container state as its unoptimized source in no more virtual
//! time.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;

use hipec_core::command::{build, ArithOp, CompOp, JumpMode, LogicOp, PageBit, QueueEnd};
use hipec_core::{
    render_jsonl, ExecBackend, HipecError, HipecKernel, KernelStats, MemorySink, OperandDecl,
    PolicyProgram, EVENT_PAGE_FAULT, NO_OPERAND,
};
use hipec_disk::FaultConfig;
use hipec_policies::PolicyKind;
use hipec_vm::{FrameId, KernelParams, VAddr, PAGE_SIZE};

// --- Harness ------------------------------------------------------------------

fn small_params() -> KernelParams {
    let mut params = KernelParams::paper_64mb();
    params.total_frames = 128;
    params.wired_frames = 8;
    params
}

fn fault_config(seed: u64, read_err: u16, write_err: u16, delay: u16, torn: u16) -> FaultConfig {
    FaultConfig {
        seed,
        read_error_permille: read_err,
        write_error_permille: write_err,
        delay_permille: delay,
        max_delay: hipec_sim::SimDuration::from_us(500),
        torn_permille: torn,
    }
}

/// Everything observable about a run: per-step outcomes, the final counter
/// snapshot (virtual clock included) and the full rendered trace.
#[derive(Debug, Clone, PartialEq)]
struct Fingerprint {
    outcomes: Vec<String>,
    stats: KernelStats,
    now_ns: u64,
    trace: Vec<String>,
}

fn kernel_with_sink(
    params: KernelParams,
    backend: ExecBackend,
    cfg: Option<FaultConfig>,
) -> (HipecKernel, Rc<RefCell<MemorySink>>) {
    let mut k = HipecKernel::new(params);
    k.set_backend(backend);
    if let Some(cfg) = cfg {
        k.vm.set_fault_plan(cfg);
    }
    let sink = Rc::new(RefCell::new(MemorySink::new()));
    k.set_sink(Box::new(Rc::clone(&sink)));
    (k, sink)
}

fn fingerprint(
    k: &HipecKernel,
    sink: &Rc<RefCell<MemorySink>>,
    outcomes: Vec<String>,
) -> Fingerprint {
    let trace = sink.borrow().records().iter().map(render_jsonl).collect();
    Fingerprint {
        outcomes,
        stats: k.kernel_stats(),
        now_ns: k.vm.now().as_ns(),
        trace,
    }
}

/// Runs `trace` through a shipped policy under `backend` with fault
/// injection, collecting the full fingerprint.
fn drive_shipped(
    kind: PolicyKind,
    backend: ExecBackend,
    trace: &[u64],
    cap: u64,
    cfg: FaultConfig,
) -> Fingerprint {
    let (mut k, sink) = kernel_with_sink(small_params(), backend, Some(cfg));
    let task = k.vm.create_task();
    let (base, _o, _key) = k
        .vm_allocate_hipec(task, 24 * PAGE_SIZE, kind.program(), cap)
        .expect("install");
    let mut outcomes = Vec::with_capacity(trace.len());
    for &p in trace {
        let addr = VAddr(base.0 + p * PAGE_SIZE);
        let r = k.access_sync(task, addr, p % 2 == 0);
        outcomes.push(format!("{r:?}"));
        k.pump();
        k.check_invariants().expect("invariants hold");
    }
    fingerprint(&k, &sink, outcomes)
}

// --- Structured random programs -----------------------------------------------
//
// Straight-line kernel ops plus tests, forward jumps and condition-flag
// stores: enough control flow to exercise every optimizer pass and every
// step shape the JIT lowers. Forward-only jumps guarantee termination, so
// optimized and unoptimized forms can be compared state-for-state without
// fuel-exhaustion skew.

#[derive(Debug, Clone, Copy)]
enum GenCmd {
    Request,
    DequeueFree,
    DequeueQ,
    EnqueueFree,
    EnqueueQ,
    Release,
    Flush,
    Fifo,
    Mru,
    RefBit,
    ModBit,
    SetRef(bool),
    SetMod(bool),
    Test(bool),
    StoreCond,
    LoadCond,
    /// `Jump mode -> min(self + 1 + skip, last)`: always forward, always in
    /// range, `skip == 0` makes it a jump-to-next.
    Jump(u8, u8),
}

fn gen_cmd() -> impl Strategy<Value = GenCmd> {
    prop_oneof![
        Just(GenCmd::Request),
        Just(GenCmd::DequeueFree),
        Just(GenCmd::DequeueQ),
        Just(GenCmd::EnqueueFree),
        Just(GenCmd::EnqueueQ),
        Just(GenCmd::Release),
        Just(GenCmd::Flush),
        Just(GenCmd::Fifo),
        Just(GenCmd::Mru),
        Just(GenCmd::RefBit),
        Just(GenCmd::ModBit),
        any::<bool>().prop_map(GenCmd::SetRef),
        any::<bool>().prop_map(GenCmd::SetMod),
        any::<bool>().prop_map(GenCmd::Test),
        Just(GenCmd::StoreCond),
        Just(GenCmd::LoadCond),
        (0u8..3, 0u8..5).prop_map(|(m, s)| GenCmd::Jump(m, s)),
    ]
}

/// Assembles a validator-friendly program from the generated commands.
/// Slots: 0 free queue, 1 recency queue, 2 page, 3 int(1), 4 int(0), 5 bool.
fn assemble(gen: &[GenCmd]) -> PolicyProgram {
    let mut p = PolicyProgram::new();
    let free = p.declare(OperandDecl::FreeQueue);
    let q = p.declare(OperandDecl::Queue { recency: true });
    let page = p.declare(OperandDecl::Page);
    let one = p.declare(OperandDecl::Int(1));
    let zero = p.declare(OperandDecl::Int(0));
    let flag = p.declare(OperandDecl::Bool(false));
    let last = gen.len() as u16; // index of the final Return
    let mut cmds = Vec::with_capacity(gen.len() + 1);
    for (i, g) in gen.iter().enumerate() {
        cmds.push(match *g {
            GenCmd::Request => build::request(one, NO_OPERAND),
            GenCmd::DequeueFree => build::dequeue(page, free, QueueEnd::Head),
            GenCmd::DequeueQ => build::dequeue(page, q, QueueEnd::Head),
            GenCmd::EnqueueFree => build::enqueue(page, free, QueueEnd::Tail),
            GenCmd::EnqueueQ => build::enqueue(page, q, QueueEnd::Tail),
            GenCmd::Release => build::release(page),
            GenCmd::Flush => build::flush(page),
            GenCmd::Fifo => build::fifo(q, NO_OPERAND),
            GenCmd::Mru => build::mru(q, NO_OPERAND),
            GenCmd::RefBit => build::is_ref(page),
            GenCmd::ModBit => build::is_mod(page),
            GenCmd::SetRef(v) => build::set(page, PageBit::Reference, v),
            GenCmd::SetMod(v) => build::set(page, PageBit::Modify, v),
            GenCmd::Test(true) => build::comp(one, one, CompOp::Eq),
            GenCmd::Test(false) => build::comp(one, zero, CompOp::Eq),
            GenCmd::StoreCond => build::logic(flag, NO_OPERAND, LogicOp::StoreCond),
            GenCmd::LoadCond => build::logic(flag, NO_OPERAND, LogicOp::LoadCond),
            GenCmd::Jump(mode, skip) => {
                let mode = JumpMode::from_u8(mode).expect("mode in range");
                let target = (i as u16 + 1 + skip as u16).min(last);
                build::jump(mode, target)
            }
        });
    }
    cmds.push(build::ret(NO_OPERAND));
    p.add_event("PageFault", cmds);
    p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
    p
}

/// Installs `program` and runs `rounds` PageFault events under `backend`,
/// returning the fingerprint plus the final operand and queue state.
/// `Ok(None)` when static validation rejects the stream (a skip, not a
/// failure).
#[allow(clippy::type_complexity)]
fn drive_program(
    program: PolicyProgram,
    backend: ExecBackend,
    rounds: usize,
    cfg: FaultConfig,
) -> Option<(Fingerprint, Vec<String>, Vec<Vec<FrameId>>)> {
    let mut params = small_params();
    params.total_frames = 64;
    params.wired_frames = 4;
    let (mut k, sink) = kernel_with_sink(params, backend, Some(cfg));
    let task = k.vm.create_task();
    let (_, _, key) = match k.vm_allocate_hipec(task, 16 * PAGE_SIZE, program, 4) {
        Ok(r) => r,
        Err(HipecError::InvalidProgram(_)) => return None,
        Err(e) => panic!("install failed: {e}"),
    };
    let mut outcomes = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let r = k.run_event_raw(key, EVENT_PAGE_FAULT);
        outcomes.push(format!("{r:?}"));
        k.check_invariants().expect("invariants hold");
    }
    while let Some(done) = k.vm.next_flush_completion() {
        k.vm.clock.advance_to(done);
        k.pump();
    }
    let container = k.container(key).expect("container");
    let operands: Vec<String> = container
        .operands
        .iter()
        .map(|s| format!("{s:?}"))
        .collect();
    let queues: Vec<Vec<FrameId>> = container
        .queues
        .iter()
        .map(|&q| k.vm.frames.iter_queue(q).collect())
        .collect();
    Some((fingerprint(&k, &sink, outcomes), operands, queues))
}

// --- JIT vs interpreter: bit-identical fingerprints ---------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Shipped policies, random traces, random fault plans: both backends
    /// produce the same access outcomes, the same `KernelStats` (virtual
    /// clock included) and a bit-identical trace.
    #[test]
    fn shipped_policies_are_bit_identical_across_backends(
        kind_idx in 0usize..PolicyKind::ALL.len(),
        trace in prop::collection::vec(0u64..24, 1..60),
        cap in 2u64..12,
        seed in any::<u64>(),
        write_err in 0u16..120,
        torn in 0u16..150,
    ) {
        let kind = PolicyKind::ALL[kind_idx];
        let cfg = fault_config(seed, 0, write_err, 100, torn);
        let interp = drive_shipped(kind, ExecBackend::Interpreter, &trace, cap, cfg);
        let native = drive_shipped(kind, ExecBackend::Native, &trace, cap, cfg);
        prop_assert_eq!(&interp.outcomes, &native.outcomes);
        prop_assert_eq!(interp.now_ns, native.now_ns, "virtual clocks diverged");
        prop_assert_eq!(&interp.stats, &native.stats, "counter snapshots diverged");
        prop_assert_eq!(&interp.trace, &native.trace, "traces diverged");
    }

    /// Random structured command streams (tests, forward jumps, flag
    /// stores, queue/frame ops) under fault injection: same fingerprint
    /// under both backends, including the rendered trace.
    #[test]
    fn structured_streams_are_bit_identical_across_backends(
        gen in prop::collection::vec(gen_cmd(), 0..32),
        rounds in 1usize..6,
        seed in any::<u64>(),
        write_err in 0u16..200,
        torn in 0u16..200,
    ) {
        let cfg = fault_config(seed, 0, write_err, 100, torn);
        let program = assemble(&gen);
        let interp = drive_program(program.clone(), ExecBackend::Interpreter, rounds, cfg);
        let native = drive_program(program, ExecBackend::Native, rounds, cfg);
        prop_assert_eq!(&interp, &native, "backend fingerprints diverged");
    }

    /// Satellite sweep: the peephole optimizer must preserve outcomes —
    /// same per-event results and faults (modulo the `cc` a fault names,
    /// which legitimately shifts when commands are deleted), same final
    /// operand and queue state — and can only ever *save* virtual time
    /// (fewer commands means fewer decode charges, never more).
    #[test]
    fn optimized_streams_match_unoptimized_outcomes(
        gen in prop::collection::vec(gen_cmd(), 0..32),
        rounds in 1usize..6,
        seed in any::<u64>(),
        write_err in 0u16..200,
    ) {
        let cfg = fault_config(seed, 0, write_err, 100, 0);
        let program = assemble(&gen);
        let optimized = hipec_lang::optimize(&program);
        let plain = drive_program(program, ExecBackend::Native, rounds, cfg);
        let opt = drive_program(optimized, ExecBackend::Native, rounds, cfg);
        let (Some((plain_fp, plain_ops, plain_qs)), Some((opt_fp, opt_ops, opt_qs))) =
            (plain, opt)
        else {
            // Validation verdicts must at least agree.
            return Ok(());
        };
        let plain_out: Vec<String> = plain_fp.outcomes.iter().map(|s| strip_cc(s)).collect();
        let opt_out: Vec<String> = opt_fp.outcomes.iter().map(|s| strip_cc(s)).collect();
        prop_assert_eq!(&plain_out, &opt_out, "results or faults diverged");
        prop_assert_eq!(&plain_ops, &opt_ops, "operand state diverged");
        prop_assert_eq!(&plain_qs, &opt_qs, "queue state diverged");
        prop_assert!(
            opt_fp.now_ns <= plain_fp.now_ns,
            "the optimizer may only remove charges: {} > {}",
            opt_fp.now_ns,
            plain_fp.now_ns
        );
    }
}

/// Replaces every `cc: <digits>` in a fault's debug rendering with
/// `cc: _`: the source position a fault names is the one field the
/// optimizer is allowed to move.
fn strip_cc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find("cc: ") {
        out.push_str(&rest[..i + 4]);
        rest = &rest[i + 4..];
        let end = rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len());
        out.push('_');
        rest = &rest[end..];
    }
    out.push_str(rest);
    out
}

// --- Fault-path charge parity (pinned unit tests) -----------------------------

/// Installs `program` under `backend` on a small kernel, no fault plan.
fn bare_kernel(
    program: PolicyProgram,
    backend: ExecBackend,
) -> (HipecKernel, hipec_core::ContainerKey) {
    let mut k = HipecKernel::new(small_params());
    k.set_backend(backend);
    let task = k.vm.create_task();
    let (_, _, key) = k
        .vm_allocate_hipec(task, 16 * PAGE_SIZE, program, 4)
        .expect("install");
    (k, key)
}

fn fuel_program() -> PolicyProgram {
    let mut p = PolicyProgram::new();
    p.declare(OperandDecl::FreeQueue);
    let n = p.declare(OperandDecl::Int(0));
    let one = p.declare(OperandDecl::Int(1));
    let cmds = vec![
        build::arith(n, one, ArithOp::Add),
        build::jump(JumpMode::Always, 0),
    ];
    p.add_event("PageFault", cmds);
    p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
    p
}

/// Fuel exhaustion mid-stream must leave identical charges, commands and
/// the runaway mark under both backends (ISSUE 6 satellite: the stop at
/// `executor.rs`'s fuel check).
#[test]
fn fuel_exhaustion_charges_identically() {
    let run = |backend| {
        let (mut k, key) = bare_kernel(fuel_program(), backend);
        k.limits.fuel = 7;
        let r = k.run_event_raw(key, EVENT_PAGE_FAULT);
        let c = k.container(key).expect("container");
        (
            format!("{r:?}"),
            k.vm.now().as_ns(),
            c.stats.commands,
            c.runaway,
            c.op_profile,
        )
    };
    let interp = run(ExecBackend::Interpreter);
    let native = run(ExecBackend::Native);
    assert_eq!(interp, native);
    assert!(interp.0.contains("OutOfFuel"));
    assert_eq!(interp.2, 7, "exactly the fuel budget in commands");
    assert!(interp.3, "fuel exhaustion marks the policy runaway");
}

/// An `Activate` chain that exceeds the depth limit must fault at the same
/// virtual instant with the same partial charges under both backends.
#[test]
fn activate_depth_fault_charges_identically() {
    let mut p = PolicyProgram::new();
    p.declare(OperandDecl::FreeQueue);
    // PageFault activates Deep; Deep activates itself until the limit.
    p.add_event(
        "PageFault",
        vec![build::activate(2), build::ret(NO_OPERAND)],
    );
    p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
    p.add_event("Deep", vec![build::activate(2), build::ret(NO_OPERAND)]);

    let run = |backend| {
        let (mut k, key) = bare_kernel(p.clone(), backend);
        let r = k.run_event_raw(key, EVENT_PAGE_FAULT);
        let c = k.container(key).expect("container");
        (
            format!("{r:?}"),
            k.vm.now().as_ns(),
            c.stats.commands,
            c.stats.events,
            c.op_profile,
        )
    };
    let interp = run(ExecBackend::Interpreter);
    let native = run(ExecBackend::Native);
    assert_eq!(interp, native);
    assert!(interp.0.contains("DepthExceeded"));
}

/// A device fault raised mid-policy (a `Flush` of a dirty victim refused
/// once the device's breaker trips under persistent write failures) must
/// abort the event with the same fault and charges under both backends.
#[test]
fn device_fault_charges_identically() {
    // Dirty every page (even page numbers are writes in `drive_shipped`)
    // and evict constantly with a tiny cap, so FIFO-2ndChance keeps
    // flushing modified victims into a device where every write fails.
    let trace: Vec<u64> = (0..12u64).map(|i| (i * 2) % 24).cycle().take(96).collect();
    let cfg = fault_config(0xD15C, 0, 1000, 0, 0);
    let interp = drive_shipped(
        PolicyKind::FifoSecondChance,
        ExecBackend::Interpreter,
        &trace,
        4,
        cfg,
    );
    let native = drive_shipped(
        PolicyKind::FifoSecondChance,
        ExecBackend::Native,
        &trace,
        4,
        cfg,
    );
    assert_eq!(interp.outcomes, native.outcomes);
    assert_eq!(interp.now_ns, native.now_ns, "virtual clocks diverged");
    assert_eq!(interp.stats, native.stats, "counter snapshots diverged");
    assert_eq!(interp.trace, native.trace, "traces diverged");
    assert!(
        interp.outcomes.iter().any(|s| s.contains("Device")),
        "a flush under a persistently failing device must eventually raise \
         the Device fault mid-policy: {:?}",
        interp.outcomes
    );
}

/// Pins the interpreter-side `Return` attribution fix (ISSUE 6 satellite):
/// a faulting `Return` is counted but NOT attributed — like every other
/// faulting command — under both backends.
#[test]
fn faulting_return_is_counted_but_not_attributed() {
    let mut p = PolicyProgram::new();
    p.declare(OperandDecl::FreeQueue);
    let page = p.declare(OperandDecl::Page);
    // The page slot is empty, so `Return page` faults.
    p.add_event("PageFault", vec![build::ret(page)]);
    p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);

    for backend in [ExecBackend::Interpreter, ExecBackend::Native] {
        let (mut k, key) = bare_kernel(p.clone(), backend);
        let r = k.run_event_raw(key, EVENT_PAGE_FAULT);
        assert!(format!("{r:?}").contains("EmptyPageSlot"), "{backend:?}");
        let profile = k.container(key).expect("container").op_profile;
        assert_eq!(profile.count(hipec_core::OpCode::Return), 1, "{backend:?}");
        assert!(
            profile.time(hipec_core::OpCode::Return).as_ns() == 0,
            "{backend:?}: a faulting Return must not be attributed"
        );
    }
}

/// A runaway *compiled* policy must sit stuck until the security checker's
/// timeout detection terminates it — at exactly the same virtual instant,
/// with the same detection latency in the reason, as an interpreted one
/// (ISSUE 6 satellite).
#[test]
fn runaway_compiled_policy_trips_checker_timeout_identically() {
    let mut p = PolicyProgram::new();
    p.declare(OperandDecl::FreeQueue);
    p.add_event("PageFault", vec![build::jump(JumpMode::Always, 0)]);
    p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);

    let run = |backend| {
        let mut k = HipecKernel::new(small_params());
        k.set_backend(backend);
        let task = k.vm.create_task();
        let (base, _, key) = k
            .vm_allocate_hipec(task, 16 * PAGE_SIZE, p.clone(), 4)
            .expect("install");
        let err = k
            .access(task, base, false)
            .expect_err("runaway must be killed");
        let c = k.container(key).expect("container");
        (
            format!("{err}"),
            k.vm.now().as_ns(),
            c.terminated,
            c.runaway,
            k.kernel_stats(),
        )
    };
    let interp = run(ExecBackend::Interpreter);
    let native = run(ExecBackend::Native);
    assert_eq!(interp, native);
    assert!(
        interp.0.contains("timeout detected after"),
        "the checker, not a direct kill, must terminate the runaway: {}",
        interp.0
    );
    assert!(interp.2, "the application is terminated");
}

/// Latency histograms are part of the cross-backend contract: a seeded
/// fault-injected workload must produce bit-identical `KernelStats::latency`
/// rows — per-container fault/event service, per-device completion, sampled
/// per-opcode charges, buckets and all — under Interpreter and Native
/// (ISSUE 8 tentpole). The fingerprint sweeps already compare snapshots
/// wholesale; this pins the histogram surface explicitly so a sampling or
/// attribution divergence fails with a readable message.
#[test]
fn latency_histograms_are_bit_identical_across_backends() {
    let trace: Vec<u64> = (0..160u64).map(|s| (s * 7 + 3) % 24).collect();
    let cfg = fault_config(0x0B5E55ED, 10, 10, 120, 25);
    let interp = drive_shipped(
        PolicyKind::FifoSecondChance,
        ExecBackend::Interpreter,
        &trace,
        6,
        cfg,
    );
    let native = drive_shipped(
        PolicyKind::FifoSecondChance,
        ExecBackend::Native,
        &trace,
        6,
        cfg,
    );
    assert_eq!(
        interp.stats.latency, native.stats.latency,
        "latency rows diverged between backends"
    );
    // The integration crate builds hipec-core with default features, so
    // the `metrics` recording sites are compiled in.
    {
        let fault_row = interp
            .stats
            .latency
            .iter()
            .find(|r| r.metric == hipec_core::LatencyMetric::ContainerFault && !r.hist.is_empty())
            .expect("a pressured run records container fault latency");
        assert!(fault_row.count() > 0);
        assert!(
            interp
                .stats
                .latency
                .iter()
                .any(|r| r.metric == hipec_core::LatencyMetric::OpCharge && !r.hist.is_empty()),
            "sampled op-charge histograms must be populated"
        );
    }
}

//! Device-isolation pinning tests: two HiPEC containers bound to two
//! backing devices, one device goes all-torn — and the blast radius must
//! stop at the device boundary. The container routed to the clean device
//! never degrades, its fault-latency profile stays on the healthy-disk
//! scale (same fault count, per-fault deltas bounded by rotational phase
//! jitter), and the whole storm replays bit-for-bit from its seed.

use std::cell::RefCell;
use std::rc::Rc;

use hipec_core::{HealthState, HipecKernel, JsonlSink, KernelStats};
use hipec_disk::{DeviceParams, DiskParams, FaultConfig, FaultPhase, PhasedFaultConfig};
use hipec_policies::PolicyKind;
use hipec_sim::SimDuration;
use hipec_vm::{DeviceId, DeviceState, KernelParams, VAddr, PAGE_SIZE};

fn tight_params() -> KernelParams {
    let mut p = KernelParams::paper_64mb();
    // 40 usable frames against 80 mapped pages: both containers recycle
    // continuously, so dirty evictions keep both devices streaming.
    p.total_frames = 48;
    p.wired_frames = 8;
    p.free_target = 8;
    p.free_min = 4;
    p.inactive_target = 12;
    p
}

struct Run {
    trace: Vec<u8>,
    stats: KernelStats,
    /// `policy_fault_resolved` latencies of the clean-device container,
    /// in trace order.
    clean_latencies: Vec<u64>,
    clean_state: HealthState,
    sick_state: HealthState,
}

/// Two policy containers, one per device; when `storm` is set, the second
/// device serves a quiet warm-up and then an all-torn-and-delayed window
/// while the first stays fault-free throughout, and the run rides out the
/// whole degradation cycle (quarantine, probation, ramped restore,
/// breaker close) before the trace ends.
fn run_two_device(storm: bool) -> Run {
    let mut k = HipecKernel::new(tight_params());
    let dev_bad = k.add_device(DeviceParams::Disk(DiskParams::default()));

    let sink = Rc::new(RefCell::new(JsonlSink::new(Vec::<u8>::new())));
    k.set_sink(Box::new(Rc::clone(&sink)));

    if storm {
        k.vm.set_phased_fault_plan_on(
            dev_bad,
            PhasedFaultConfig {
                seed: 0xD15C,
                phases: vec![
                    FaultPhase::quiet(100),
                    FaultPhase::torn_delayed(120, SimDuration::from_ms(2)),
                ],
            },
        );
    }

    let t_clean = k.vm.create_task();
    let (b_clean, _, key_clean) = k
        .vm_allocate_hipec(
            t_clean,
            40 * PAGE_SIZE,
            PolicyKind::FifoSecondChance.program(),
            6,
        )
        .expect("install clean-device policy");
    let t_sick = k.vm.create_task();
    let (b_sick, _, key_sick) = k
        .vm_allocate_hipec_on(
            dev_bad,
            t_sick,
            40 * PAGE_SIZE,
            PolicyKind::Mru.program(),
            6,
        )
        .expect("install faulty-device policy");

    for s in 0..1200usize {
        let p = (s as u64 * 7 + 3) % 40;
        let _ = k.access_sync(t_clean, VAddr(b_clean.0 + p * PAGE_SIZE), s % 3 != 0);
        let q = (s as u64) % 40;
        let _ = k.access_sync(t_sick, VAddr(b_sick.0 + q * PAGE_SIZE), s % 2 == 0);
        k.pump();
        if s % 64 == 0 {
            k.check_invariants().expect("invariants hold mid-storm");
        }
    }
    // Captured before recovery: the faulty device's container must be the
    // one wearing the strikes while the storm is live.
    let sick_state = k.container(key_sick).expect("sick row").health.state;

    // Ride out the faulty device's breaker window so the trace closes
    // recovered: faulty-device reads probe the half-open breaker (reads
    // feed the breaker in every state), and checker wakeups walk the
    // quarantined container through probation and its restore ramp. Only
    // the sick task is touched here, so the clean container's fault
    // record is already complete.
    let mut guard = 0;
    while k.vm.any_breaker_open()
        || k.containers
            .iter()
            .any(|c| !c.terminated && (c.health.quarantined() || c.restore_pending > 0))
    {
        for i in 0..4u64 {
            let q = (guard as u64 * 13 + i * 7) % 40;
            let _ = k.access_sync(t_sick, VAddr(b_sick.0 + q * PAGE_SIZE), true);
        }
        let next = k.checker.next_wakeup;
        k.vm.clock.advance_to(next);
        k.poll_checker();
        k.pump();
        guard += 1;
        assert!(guard <= 200, "faulty-device breaker never closed");
    }
    while let Some(done) = k.vm.next_flush_completion() {
        k.vm.clock.advance_to(done);
        k.pump();
    }
    k.check_invariants().expect("invariants hold after drain");

    let stats = k.kernel_stats();
    let clean_state = k.container(key_clean).expect("clean row").health.state;
    k.take_sink();
    let trace = sink.borrow().get_ref().clone();

    let text = String::from_utf8(trace.clone()).expect("JSONL traces are UTF-8");
    let mut clean_latencies = Vec::new();
    for line in text.lines() {
        let doc: serde_json::Value = serde_json::from_str(line).expect("well-formed record");
        let obj = doc.as_object().expect("every line is an object");
        let is_clean_fault = obj.get("type").and_then(|t| t.as_str())
            == Some("policy_fault_resolved")
            && obj.get("container").and_then(|c| c.as_u64()) == Some(u64::from(key_clean.0));
        if is_clean_fault {
            clean_latencies.push(
                obj.get("latency_ns")
                    .and_then(|l| l.as_u64())
                    .expect("latency_ns"),
            );
        }
    }

    Run {
        trace,
        stats,
        clean_latencies,
        clean_state,
        sick_state,
    }
}

#[test]
fn storm_on_one_device_does_not_reach_the_other_container() {
    let baseline = run_two_device(false);
    let storm = run_two_device(true);

    // The storm actually happened, and it happened to dev#1 only: its
    // breaker tripped and its container took the health strikes, while
    // dev#0's breaker never moved and its container ends Healthy.
    let bad = storm.stats.device(1).expect("faulty device row");
    assert!(
        bad.breaker_trips >= 1,
        "faulty-device breaker never tripped"
    );
    assert!(
        bad.torn_writes >= 1,
        "the torn window produced no torn writes"
    );
    let clean = storm.stats.device(0).expect("clean device row");
    assert_eq!(clean.breaker_trips, 0, "clean-device breaker tripped");
    assert!(!clean.breaker_open, "clean-device breaker left open");
    assert_eq!(
        clean.torn_writes, 0,
        "fault injection leaked onto the clean device"
    );
    assert_eq!(storm.clean_state, HealthState::Healthy);
    assert_ne!(
        storm.sick_state,
        HealthState::Healthy,
        "the faulty device's container must be the one wearing the strikes"
    );
    assert_eq!(baseline.sick_state, HealthState::Healthy);

    // The clean container's fault-latency histogram is unaffected by the
    // neighbour's storm. Residency decisions are functions of the access
    // sequence, not the clock, so the exact same accesses fault; and
    // since none of the faulty device's retry traffic shares a queue with
    // dev#0, each fault still resolves on the healthy-disk scale — only
    // the rotational phase may shift, because the storm's delays move
    // absolute virtual time and the platter angle is phase-locked to it.
    let summarize = |l: &[u64]| {
        let max = l.iter().copied().max().unwrap_or(0);
        let mean = if l.is_empty() {
            0
        } else {
            l.iter().sum::<u64>() / l.len() as u64
        };
        (l.len() as u64, mean, max)
    };
    let (b_count, b_mean, b_max) = summarize(&baseline.clean_latencies);
    let (s_count, s_mean, s_max) = summarize(&storm.clean_latencies);
    assert!(b_count > 0, "workload never faulted on the clean device");
    assert_eq!(
        s_count, b_count,
        "the storm changed which accesses fault on the clean device"
    );
    let jitter = DiskParams::default().revolution.as_ns();
    assert!(
        s_mean.abs_diff(b_mean) <= jitter,
        "clean-device mean fault latency moved beyond rotational jitter: \
         {s_mean} ns vs {b_mean} ns baseline"
    );
    assert!(
        s_max.abs_diff(b_max) <= jitter,
        "clean-device max fault latency moved beyond rotational jitter: \
         {s_max} ns vs {b_max} ns baseline"
    );
}

/// Like [`run_two_device`], but the storm is *saturating*: a flat fault
/// plan tears every accepted write on dev#1 for the entire run, so its
/// breaker, retry queue and pump backlog never drain. There is no
/// recovery phase — the device never heals by design — so the run ends
/// mid-storm with the clean container's fault record already complete
/// (its faults resolve synchronously inside `access_sync`).
fn run_saturated(storm: bool) -> Run {
    let mut k = HipecKernel::new(tight_params());
    let dev_bad = k.add_device(DeviceParams::Disk(DiskParams::default()));

    let sink = Rc::new(RefCell::new(JsonlSink::new(Vec::<u8>::new())));
    k.set_sink(Box::new(Rc::clone(&sink)));

    if storm {
        k.vm.set_fault_plan_on(
            dev_bad,
            FaultConfig {
                seed: 0x5A7,
                read_error_permille: 0,
                write_error_permille: 0,
                delay_permille: 0,
                max_delay: SimDuration::ZERO,
                torn_permille: 1000,
            },
        );
    }

    let t_clean = k.vm.create_task();
    let (b_clean, _, key_clean) = k
        .vm_allocate_hipec(
            t_clean,
            40 * PAGE_SIZE,
            PolicyKind::FifoSecondChance.program(),
            6,
        )
        .expect("install clean-device policy");
    let t_sick = k.vm.create_task();
    let (b_sick, _, key_sick) = k
        .vm_allocate_hipec_on(
            dev_bad,
            t_sick,
            40 * PAGE_SIZE,
            PolicyKind::Mru.program(),
            6,
        )
        .expect("install faulty-device policy");

    for s in 0..1200usize {
        let p = (s as u64 * 7 + 3) % 40;
        let _ = k.access_sync(t_clean, VAddr(b_clean.0 + p * PAGE_SIZE), s % 3 != 0);
        let q = (s as u64) % 40;
        let _ = k.access_sync(t_sick, VAddr(b_sick.0 + q * PAGE_SIZE), s % 2 == 0);
        k.pump();
        if s % 64 == 0 {
            k.check_invariants().expect("invariants hold mid-storm");
        }
    }
    let sick_state = k.container(key_sick).expect("sick row").health.state;
    let clean_state = k.container(key_clean).expect("clean row").health.state;
    k.check_invariants()
        .expect("invariants hold with the storm still live");

    let stats = k.kernel_stats();
    k.take_sink();
    let trace = sink.borrow().get_ref().clone();

    let text = String::from_utf8(trace.clone()).expect("JSONL traces are UTF-8");
    let mut clean_latencies = Vec::new();
    for line in text.lines() {
        let doc: serde_json::Value = serde_json::from_str(line).expect("well-formed record");
        let obj = doc.as_object().expect("every line is an object");
        let is_clean_fault = obj.get("type").and_then(|t| t.as_str())
            == Some("policy_fault_resolved")
            && obj.get("container").and_then(|c| c.as_u64()) == Some(u64::from(key_clean.0));
        if is_clean_fault {
            clean_latencies.push(
                obj.get("latency_ns")
                    .and_then(|l| l.as_u64())
                    .expect("latency_ns"),
            );
        }
    }

    Run {
        trace,
        stats,
        clean_latencies,
        clean_state,
        sick_state,
    }
}

fn p99(latencies: &[u64]) -> u64 {
    let mut sorted = latencies.to_vec();
    sorted.sort_unstable();
    sorted
        .get((sorted.len().saturating_sub(1)) * 99 / 100)
        .copied()
        .unwrap_or(0)
}

/// The head-of-line pin: a device that stays saturated all-torn for the
/// whole run — breaker worn, retry queue populated, its pageout backlog
/// perpetually the most "due" work the pump sees — must not inflate the
/// healthy sibling's tail. The weighted pump may *order* the storming
/// device first, but the per-call submission budget caps what it can
/// submit, so the clean container's p99 fault latency stays within
/// rotational jitter of an undisturbed baseline.
#[test]
fn saturated_all_torn_device_does_not_inflate_the_siblings_p99() {
    let baseline = run_saturated(false);
    let storm = run_saturated(true);

    // The storm really saturated: every accepted write on dev#1 tore,
    // the breaker tripped at least once, and the sick container took the
    // health strikes. Nothing leaked onto dev#0.
    let bad = storm.stats.device(1).expect("faulty device row");
    assert!(bad.torn_writes >= 20, "the flat plan barely fired");
    assert!(
        bad.breaker_trips >= 1,
        "saturation never tripped the breaker"
    );
    let clean = storm.stats.device(0).expect("clean device row");
    assert_eq!(clean.torn_writes, 0, "fault injection leaked to dev#0");
    assert_eq!(clean.breaker_trips, 0, "clean-device breaker tripped");
    assert_eq!(storm.clean_state, HealthState::Healthy);
    assert_ne!(storm.sick_state, HealthState::Healthy);
    assert_eq!(baseline.sick_state, HealthState::Healthy);

    // The sibling's tail is pinned: same faults, and the p99 moves by at
    // most one platter revolution (the storm shifts absolute virtual
    // time, so the rotational phase may differ; nothing else may).
    assert!(
        !baseline.clean_latencies.is_empty(),
        "clean container never faulted"
    );
    assert_eq!(
        storm.clean_latencies.len(),
        baseline.clean_latencies.len(),
        "the storm changed which accesses fault on the clean device"
    );
    let b99 = p99(&baseline.clean_latencies);
    let s99 = p99(&storm.clean_latencies);
    let jitter = DiskParams::default().revolution.as_ns();
    assert!(
        s99.abs_diff(b99) <= jitter,
        "clean-device p99 fault latency moved beyond rotational jitter: \
         {s99} ns vs {b99} ns baseline"
    );

    // And bit-identical replay holds even for the never-ending storm.
    let again = run_saturated(true);
    assert_eq!(
        storm.trace, again.trace,
        "saturated storm must replay exactly"
    );
}

#[test]
fn two_device_storm_replays_bit_for_bit_and_audits_clean() {
    let a = run_two_device(true);
    let b = run_two_device(true);
    assert_eq!(
        a.trace, b.trace,
        "the two-device storm must replay bit-for-bit from its seed"
    );
    assert_eq!(a.stats.dropped_records, 0, "sink must see every record");

    // The offline analyzer agrees, per device: dev#1's collateral is
    // expected degradation inside its breaker window, dev#0 contributes
    // nothing, and the exact residency audit closes the books.
    let text = String::from_utf8(a.trace).expect("JSONL traces are UTF-8");
    let analysis = hipec_bench::analyze::analyze_str(&text).expect("parseable trace");
    assert!(
        analysis.is_clean(),
        "analyzer found anomalies in an isolated storm: {:?}",
        analysis.anomalies
    );
    assert!(analysis.breaker_trips >= 1);
}

#[test]
fn objects_route_to_their_bound_device() {
    let mut k = HipecKernel::new(tight_params());
    let dev_b = k.add_device(DeviceParams::default());

    let t0 = k.vm.create_task();
    let (_, obj0, _) = k
        .vm_allocate_hipec(t0, 8 * PAGE_SIZE, PolicyKind::Fifo.program(), 4)
        .expect("install on boot device");
    let t1 = k.vm.create_task();
    let (_, obj1, _) = k
        .vm_allocate_hipec_on(dev_b, t1, 8 * PAGE_SIZE, PolicyKind::Fifo.program(), 4)
        .expect("install on second device");

    assert_eq!(k.vm.device_of(obj0).expect("bound"), DeviceId(0));
    assert_eq!(k.vm.device_of(obj1).expect("bound"), dev_b);
    assert_eq!(k.vm.device_count(), 2);
}

// --- Device lifecycle: hot-unplug under a torn storm -------------------------

/// Drives the pump until every flush and migration lifecycle closes.
fn drive_to_quiescence(k: &mut HipecKernel) {
    let mut guard = 0u32;
    while let Some(done) = k.vm.next_flush_completion() {
        k.vm.clock.advance_to(done);
        k.pump();
        guard += 1;
        assert!(guard <= 200_000, "pump never quiesced (drain wedged)");
    }
}

fn device_state(k: &HipecKernel, dev: DeviceId) -> DeviceState {
    k.vm.backing_device(dev).expect("device row").state()
}

/// Two devices, the second wearing a long torn-and-delayed window; the run
/// hot-unplugs it while the storm is still live, so the drain has to cope
/// with a worn breaker, torn in-flight writes and a populated retry queue
/// all at once. Returns the trace bytes and the final stats.
fn run_unplug_storm() -> (Vec<u8>, KernelStats) {
    let mut k = HipecKernel::new(tight_params());
    let dev_bad = k.add_device(DeviceParams::Disk(DiskParams::default()));

    let sink = Rc::new(RefCell::new(JsonlSink::new(Vec::<u8>::new())));
    k.set_sink(Box::new(Rc::clone(&sink)));

    // A quiet warm-up, then every accepted write on dev#1 completes torn
    // and delayed. The torn window is still live when the unplug strikes,
    // and the drain itself writes only to the survivor, so the backlog
    // settles there no matter how hostile dev#1 stays.
    k.vm.set_phased_fault_plan_on(
        dev_bad,
        PhasedFaultConfig {
            seed: 0xD15C,
            phases: vec![
                FaultPhase::quiet(60),
                FaultPhase::torn_delayed(400, SimDuration::from_ms(2)),
            ],
        },
    );

    let t = k.vm.create_task();
    let (b_keep, _) =
        k.vm.vm_allocate(t, 40 * PAGE_SIZE)
            .expect("survivor region");
    let (b_doom, o_doom) =
        k.vm.vm_allocate_on(dev_bad, t, 40 * PAGE_SIZE)
            .expect("doomed region");

    for s in 0..300usize {
        let p = (s as u64 * 7 + 3) % 40;
        let _ = k.access_sync(t, VAddr(b_keep.0 + p * PAGE_SIZE), s % 3 != 0);
        let q = (s as u64) % 40;
        let _ = k.access_sync(t, VAddr(b_doom.0 + q * PAGE_SIZE), s % 2 == 0);
        k.pump();
        if s % 64 == 0 {
            k.check_invariants().expect("invariants hold mid-storm");
        }
    }

    // Mid-storm unplug: dev#1's writes are tearing and its retry queue is
    // populated; the drain re-homes all of it onto the survivor. Torn
    // retries may already have burnt through the ordinary retry budget
    // during the storm — that is the budget doing its job — but from the
    // unplug onward the drain must not abandon a single further page.
    let abandoned_before = k.kernel_stats().get("flush_abandoned").unwrap_or(0);
    let survivor = k.remove_device(dev_bad).expect("unplug mid-storm");
    assert_eq!(survivor, DeviceId(0));
    k.check_invariants()
        .expect("invariants hold right after unplug");

    drive_to_quiescence(&mut k);
    k.check_invariants()
        .expect("invariants hold after the drain");
    assert_eq!(device_state(&k, dev_bad), DeviceState::Removed);
    assert_eq!(k.vm.device_of(o_doom).expect("still bound"), DeviceId(0));

    // Zero lost pages: every page of the drained region reads back
    // through the survivor.
    for p in 0..40u64 {
        k.access_sync(t, VAddr(b_doom.0 + p * PAGE_SIZE), false)
            .expect("drained page reads back");
    }
    drive_to_quiescence(&mut k);
    k.check_invariants().expect("invariants hold at the end");

    let stats = k.kernel_stats();
    assert_eq!(
        stats.get("flush_abandoned").unwrap_or(0),
        abandoned_before,
        "the drain abandoned pages instead of re-homing them"
    );
    k.take_sink();
    let trace = sink.borrow().get_ref().clone();
    (trace, stats)
}

#[test]
fn unplug_mid_storm_replays_bit_for_bit_and_loses_no_pages() {
    let (trace_a, stats) = run_unplug_storm();
    let (trace_b, _) = run_unplug_storm();
    assert_eq!(
        trace_a, trace_b,
        "the mid-storm unplug must replay bit-for-bit from its seed"
    );
    assert_eq!(stats.dropped_records, 0, "sink must see every record");
    assert_eq!(stats.get("devices_unplugged"), Some(1));
    assert_eq!(stats.get("device_drains"), Some(1));
    assert!(
        stats.get("migrated_pages").unwrap_or(0) >= 1,
        "the drain copied nothing despite paged-out data"
    );
    assert!(
        stats.get("retries_rehomed").unwrap_or(0) >= 1,
        "a mid-storm unplug must re-home the torn backlog"
    );
}

/// The other direction: a clean device is unplugged while the *survivor*
/// is all-torn. The drain's copies keep tearing, the survivor's breaker
/// trips, and the drain parks — it never abandons a copy — then rides the
/// half-open probes to completion once the torn window runs out.
#[test]
fn drain_parks_while_the_survivor_is_all_torn_and_heals_without_loss() {
    let mut k = HipecKernel::new(tight_params());
    let dev_b = k.add_device(DeviceParams::Disk(DiskParams::default()));

    let t = k.vm.create_task();
    // 64 pages against 40 usable frames: the working set cannot stay
    // resident, so dirty evictions page a good chunk of it out to dev#1.
    let (b, o) =
        k.vm.vm_allocate_on(dev_b, t, 64 * PAGE_SIZE)
            .expect("region on the doomed device");
    for s in 0..400usize {
        let p = (s as u64 * 11 + 5) % 64;
        let _ = k.access_sync(t, VAddr(b.0 + p * PAGE_SIZE), true);
        k.pump();
    }
    drive_to_quiescence(&mut k);
    k.check_invariants().expect("clean before the unplug");

    // Now the survivor turns hostile: dev#0's next 40 accepted writes all
    // complete torn. The drain's copies land exactly in that window.
    k.vm.set_phased_fault_plan_on(
        DeviceId(0),
        PhasedFaultConfig {
            seed: 0xA11,
            phases: vec![FaultPhase::torn_delayed(40, SimDuration::from_ms(1))],
        },
    );
    let survivor = k.remove_device(dev_b).expect("unplug onto a torn sibling");
    assert_eq!(survivor, DeviceId(0));

    // Walk a handful of completion windows: the copies tear, the
    // survivor's breaker wears, and the entry stays Draining — parked,
    // not abandoned.
    let mut parked = false;
    for _ in 0..12 {
        let Some(done) = k.vm.next_flush_completion() else {
            break;
        };
        k.vm.clock.advance_to(done);
        k.pump();
        if device_state(&k, dev_b) == DeviceState::Draining {
            parked = true;
        }
        k.check_invariants().expect("invariants hold while parked");
    }
    assert!(parked, "the drain never waited on the torn survivor");
    let mid = k.kernel_stats();
    assert!(
        mid.get("migration_retries").unwrap_or(0) >= 1,
        "no drain copy was ever torn and re-queued"
    );
    assert_eq!(
        mid.get("flush_abandoned").unwrap_or(0),
        0,
        "a parked drain must never abandon a copy"
    );

    // The survivor's torn window runs out of ops; the parked copies drain
    // through and the entry completes Removed.
    drive_to_quiescence(&mut k);
    assert_eq!(device_state(&k, dev_b), DeviceState::Removed);
    let stats = k.kernel_stats();
    assert_eq!(stats.get("flush_abandoned").unwrap_or(0), 0);
    assert!(stats.get("migrated_pages").unwrap_or(0) >= 1);
    assert_eq!(k.vm.device_of(o).expect("bound"), DeviceId(0));
    for p in 0..64u64 {
        k.access_sync(t, VAddr(b.0 + p * PAGE_SIZE), false)
            .expect("page survived the torn-survivor drain");
    }
    drive_to_quiescence(&mut k);
    k.check_invariants().expect("clean at the end");
}

//! Whole-system integration: several specific applications with different
//! policies, a non-specific background load, reclamation pressure and the
//! security checker — all running against one kernel, with frame
//! conservation audited throughout.

use hipec_core::{ContainerKey, HipecKernel};
use hipec_integration::{audit_frames, replay};
use hipec_policies::PolicyKind;
use hipec_sim::DetRng;
use hipec_vm::{KernelParams, VAddr, PAGE_SIZE};

fn params() -> KernelParams {
    let mut p = KernelParams::paper_64mb();
    p.total_frames = 1_024;
    p.wired_frames = 32;
    p.free_target = 32;
    p.free_min = 16;
    p.inactive_target = 64;
    p
}

#[test]
fn three_specific_apps_and_background_load_coexist() {
    let mut k = HipecKernel::new(params());
    let mut rng = DetRng::new(0xC0FFEE);

    // App 1: MRU over a cyclic scan (the join pattern).
    let t1 = k.vm.create_task();
    let (a1, _o, k1) = k
        .vm_map_hipec(t1, 200 * PAGE_SIZE, PolicyKind::Mru.program(), 120)
        .expect("app1");
    // App 2: LRU over a skewed working set.
    let t2 = k.vm.create_task();
    let (a2, _o, k2) = k
        .vm_allocate_hipec(t2, 150 * PAGE_SIZE, PolicyKind::Lru.program(), 80)
        .expect("app2");
    // App 3: Clock, written in simple commands only.
    let t3 = k.vm.create_task();
    let (a3, _o, k3) = k
        .vm_allocate_hipec(t3, 100 * PAGE_SIZE, PolicyKind::Clock.program(), 60)
        .expect("app3");
    // Non-specific background: random touches over 300 pages.
    let tb = k.vm.create_task();
    let (ab, _ob) = k.vm.vm_allocate(tb, 300 * PAGE_SIZE).expect("background");

    audit_frames(&k);

    for round in 0..3 {
        // Interleave the four workloads.
        let cyc: Vec<u64> = (0..200).collect();
        replay(&mut k, t1, a1, &cyc);
        let skew: Vec<u64> = (0..300).map(|_| rng.zipf_once(150, 1.0) as u64).collect();
        replay(&mut k, t2, a2, &skew);
        let rand: Vec<u64> = (0..200).map(|_| rng.below(100)).collect();
        replay(&mut k, t3, a3, &rand);
        for _ in 0..200 {
            let p = rng.below(300);
            k.access_sync(tb, VAddr(ab.0 + p * PAGE_SIZE), rng.chance(0.3))
                .expect("background access");
            k.vm.pump();
        }
        audit_frames(&k);
        // Nobody was terminated.
        for key in [k1, k2, k3] {
            assert!(
                !k.container(key).expect("container").terminated,
                "round {round}: container {key:?} died"
            );
        }
    }

    // Every app made progress and containers honour their minimums.
    for (key, min) in [(k1, 120), (k2, 80), (k3, 60)] {
        let c = k.container(key).expect("container");
        assert!(c.stats.faults > 0);
        assert!(
            c.allocated >= min,
            "{key:?} fell below its minFrame ({} < {min})",
            c.allocated
        );
    }
    // Specific totals are consistent with the frame manager's accounting.
    let sum: u64 = [k1, k2, k3]
        .iter()
        .map(|key| k.container(*key).expect("container").allocated)
        .sum();
    assert_eq!(sum, k.specific_total());
    assert!(k.vm.stats.get("faults") > 0);
}

#[test]
fn killing_one_app_frees_its_frames_for_others() {
    let mut k = HipecKernel::new(params());

    // A well-behaved app and a buggy one.
    let t1 = k.vm.create_task();
    let (a1, _o, k1) = k
        .vm_allocate_hipec(t1, 100 * PAGE_SIZE, PolicyKind::Fifo.program(), 300)
        .expect("app1");
    let t2 = k.vm.create_task();
    let buggy = {
        // Statically valid, dies at run time: enqueues an empty page slot.
        use hipec_core::command::{build, QueueEnd};
        use hipec_core::{OperandDecl, PolicyProgram, NO_OPERAND};
        let mut p = PolicyProgram::new();
        let fq = p.declare(OperandDecl::FreeQueue);
        let q2 = p.declare(OperandDecl::Queue { recency: false });
        let page = p.declare(OperandDecl::Page);
        p.add_event(
            "PageFault",
            vec![
                build::dequeue(page, q2, QueueEnd::Head),
                build::enqueue(page, fq, QueueEnd::Tail),
                build::ret(page),
            ],
        );
        p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
        p
    };
    let (a2, _o, k2) = k
        .vm_allocate_hipec(t2, 100 * PAGE_SIZE, buggy, 400)
        .expect("buggy app admits");

    let before_free = k.vm.free_count();
    let err = k.access(t2, a2, false).expect_err("buggy policy dies");
    let _ = err;
    assert!(k.container(k2).expect("container").terminated);
    assert_eq!(k.container(k2).expect("container").allocated, 0);
    assert!(
        k.vm.free_count() >= before_free + 400,
        "the dead app's 400 frames must return to the pool"
    );
    audit_frames(&k);

    // The survivor keeps working; the freed frames are grantable again.
    let trace: Vec<u64> = (0..100).collect();
    replay(&mut k, t1, a1, &trace);
    assert!(!k.container(k1).expect("container").terminated);

    // And the dead app's region still works through the default pool.
    k.access_sync(t2, a2, false)
        .expect("region reverts to default");
}

#[test]
fn reclaim_pressure_shrinks_surplus_holders_first() {
    let mut k = HipecKernel::new(params()); // 992 free at boot, burst 496
    let t1 = k.vm.create_task();
    let (a1, _o, k1) = k
        .vm_allocate_hipec(t1, 300 * PAGE_SIZE, PolicyKind::Lru.program(), 300)
        .expect("big app");
    let trace: Vec<u64> = (0..300).collect();
    replay(&mut k, t1, a1, &trace);

    // Admitting a second big app requires frames the pool no longer has
    // spare; FAFR reclamation must shave app 1 down toward its minimum.
    let t2 = k.vm.create_task();
    let before = k.container(k1).expect("container").allocated;
    let (_a2, _o2, k2) = k
        .vm_allocate_hipec(t2, 600 * PAGE_SIZE, PolicyKind::Fifo.program(), 600)
        .expect("second app squeezes in");
    let after = k.container(k1).expect("container").allocated;
    assert_eq!(before, 300, "app1 started with its minFrame");
    assert_eq!(after, 300, "min_frames is a floor: app1 had no surplus");
    assert_eq!(k.container(k2).expect("container").allocated, 600);
    audit_frames(&k);
    let _ = ContainerKey(0);
}

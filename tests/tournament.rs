//! Golden-matrix regression tests for the policy tournament.
//!
//! The short tournament (`TournamentConfig::short`) is fully seeded, so its
//! matrix is a pure function of the config. These tests pin the clean-plan
//! hit/fault counts for every (policy, workload) cell as goldens, and
//! assert the two properties the matrix's credibility rests on:
//!
//! * bit-identical reruns — same config, same matrix, down to every
//!   latency quantile and counter, and
//! * Interpreter/Native parity — the JIT backend must reproduce the
//!   interpreter's accounting exactly, cell by cell, clean and chaos
//!   alike (the jit differential tests check single programs; this checks
//!   whole workload runs end to end).
//!
//! If a deliberate policy/workload change shifts the numbers, regenerate
//! the golden with:
//!
//! ```text
//! cargo run --release -p hipec-bench --bin tournament -- --short --json \
//!   | jq -r '.data.cells[] | select(.plan=="clean" and .backend=="interpreter")
//!            | "\(.workload) \(.policy) \(.faults) \(.hits)"'
//! ```

use std::sync::OnceLock;

use hipec_policies::PolicyKind;
use hipec_workloads::tournament::{run, Tournament, TournamentConfig};

/// Clean-plan interpreter cells of the short tournament, one line per
/// `(workload, policy)`: `workload policy faults hits`.
const GOLDEN_CLEAN_MATRIX: &str = "\
db FIFO 302 398
db FIFO-2ndChance 281 419
db LRU 265 435
db MRU 484 216
db Clock 268 432
db 2Q 223 477
db Learned 228 472
db AWRP 266 434
scientific FIFO 558 143
scientific FIFO-2ndChance 545 156
scientific LRU 544 157
scientific MRU 206 495
scientific Clock 547 154
scientific 2Q 542 159
scientific Learned 476 225
scientific AWRP 545 156
scan FIFO 712 24
scan FIFO-2ndChance 712 24
scan LRU 704 32
scan MRU 650 86
scan Clock 712 24
scan 2Q 608 128
scan Learned 608 128
scan AWRP 699 37
join FIFO 208 496
join FIFO-2ndChance 176 528
join LRU 172 532
join MRU 531 173
join Clock 176 528
join 2Q 176 528
join Learned 176 528
join AWRP 176 528
zipf-kv FIFO 295 405
zipf-kv FIFO-2ndChance 280 420
zipf-kv LRU 254 446
zipf-kv MRU 420 280
zipf-kv Clock 264 436
zipf-kv 2Q 234 466
zipf-kv Learned 234 466
zipf-kv AWRP 254 446
web-cache FIFO 390 290
web-cache FIFO-2ndChance 385 295
web-cache LRU 373 307
web-cache MRU 475 205
web-cache Clock 375 305
web-cache 2Q 333 347
web-cache Learned 329 351
web-cache AWRP 378 302";

/// One shared short-tournament run (the matrix is pure data; every test
/// reads it, only the rerun test pays for a second run).
fn matrix() -> &'static Tournament {
    static MATRIX: OnceLock<Tournament> = OnceLock::new();
    MATRIX.get_or_init(|| run(&TournamentConfig::short()).expect("short tournament runs clean"))
}

fn render_clean_cells(t: &Tournament) -> String {
    t.cells
        .iter()
        .filter(|c| c.plan == "clean" && c.backend == "interpreter")
        .map(|c| format!("{} {} {} {}", c.workload, c.policy, c.faults, c.hits))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn clean_matrix_matches_the_pinned_golden() {
    let got = render_clean_cells(matrix());
    assert_eq!(
        got, GOLDEN_CLEAN_MATRIX,
        "tournament clean matrix drifted from the golden; if the change is \
         deliberate, regenerate it (see the module docs)"
    );
}

#[test]
fn matrix_is_bit_identical_across_reruns() {
    let again = run(&TournamentConfig::short()).expect("rerun");
    assert_eq!(
        matrix(),
        &again,
        "same config must reproduce the same matrix bit for bit"
    );
}

#[test]
fn native_backend_reproduces_every_interpreter_cell() {
    let t = matrix();
    let mut compared = 0usize;
    for interp in t.cells.iter().filter(|c| c.backend == "interpreter") {
        let native = t
            .cells
            .iter()
            .find(|c| {
                c.backend == "native"
                    && c.policy == interp.policy
                    && c.workload == interp.workload
                    && c.plan == interp.plan
            })
            .expect("every interpreter cell has a native twin");
        let mut normalized = *native;
        normalized.backend = interp.backend;
        assert_eq!(
            &normalized, interp,
            "native cell must match interpreter bit for bit: {}/{}/{}",
            interp.policy, interp.workload, interp.plan
        );
        compared += 1;
    }
    // 8 policies × 6 workloads × 2 plans.
    assert_eq!(compared, PolicyKind::ALL.len() * 6 * 2);
}

#[test]
fn matrix_covers_the_full_cross_product() {
    let t = matrix();
    assert_eq!(t.workloads.len(), 6);
    assert_eq!(t.cells.len(), PolicyKind::ALL.len() * 6 * 2 * 2);
    assert_eq!(t.ranking.len(), PolicyKind::ALL.len());
    // The ranking is sorted best-first and covers each policy exactly once.
    let mut names: Vec<_> = t.ranking.iter().map(|r| r.policy).collect();
    assert!(t.ranking.windows(2).all(|w| w[0].points <= w[1].points));
    names.sort_unstable();
    let mut all: Vec<_> = PolicyKind::ALL.iter().map(|k| k.name()).collect();
    all.sort_unstable();
    assert_eq!(names, all);
}

#[test]
fn chaos_cells_show_injected_trouble_and_clean_cells_none() {
    let t = matrix();
    let mut chaos_failures = 0u64;
    let mut chaos_quarantines = 0u64;
    for c in &t.cells {
        match c.plan {
            "clean" => assert_eq!(
                c.ok, c.accesses,
                "clean cell lost accesses: {}/{}",
                c.policy, c.workload
            ),
            _ => {
                chaos_failures += c.accesses - c.ok;
                chaos_quarantines += c.quarantines;
            }
        }
    }
    assert!(
        chaos_failures > 0,
        "the chaos plan must surface at least some device errors"
    );
    assert!(
        chaos_quarantines > 0,
        "sustained chaos must trip at least one quarantine somewhere"
    );
}

//! Shared memory objects: one object mapped into several tasks.

use hipec_core::HipecKernel;
use hipec_integration::audit_frames;
use hipec_policies::PolicyKind;
use hipec_vm::{AccessKind, Backing, Kernel, KernelParams, VAddr, PAGE_SIZE};

fn params() -> KernelParams {
    let mut p = KernelParams::paper_64mb();
    p.total_frames = 256;
    p.wired_frames = 8;
    p
}

#[test]
fn second_mapper_takes_minor_faults_only() {
    let mut k = Kernel::new(params());
    let obj = k.create_object(16, Backing::File).expect("object");
    let t1 = k.create_task();
    let t2 = k.create_task();
    let a1 = k.map_object(t1, obj, 0, 16).expect("map into t1");
    let a2 = k.map_object(t2, obj, 0, 16).expect("map into t2");

    // Task 1 pages everything in (major faults with device reads).
    for p in 0..16u64 {
        if let hipec_vm::AccessOutcome::Done(r) = k
            .access(t1, VAddr(a1.0 + p * PAGE_SIZE), false)
            .expect("t1 access")
        {
            if let Some(done) = r.io_until {
                k.clock.advance_to(done);
                k.pump();
            }
        }
    }
    let pageins_after_t1 = k.stats.get("pageins");
    assert_eq!(pageins_after_t1, 16);

    // Task 2 touches the same pages: resident already — minor faults, no
    // further device traffic.
    for p in 0..16u64 {
        match k
            .access(t2, VAddr(a2.0 + p * PAGE_SIZE), false)
            .expect("t2 access")
        {
            hipec_vm::AccessOutcome::Done(r) => {
                assert_eq!(r.kind, AccessKind::MinorFault, "page {p}");
                assert!(r.io_until.is_none());
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    assert_eq!(
        k.stats.get("pageins"),
        pageins_after_t1,
        "no new device reads"
    );
    assert_eq!(k.stats.get("minor_faults"), 16);
}

#[test]
fn eviction_unmaps_every_sharer() {
    let mut k = Kernel::new(params());
    let obj = k.create_object(4, Backing::Anonymous).expect("object");
    let t1 = k.create_task();
    let t2 = k.create_task();
    let a1 = k.map_object(t1, obj, 0, 4).expect("map t1");
    let a2 = k.map_object(t2, obj, 0, 4).expect("map t2");
    k.access(t1, a1, false).expect("t1 touch");
    k.access(t2, a2, false).expect("t2 touch (minor)");
    let frame = k
        .task(t1)
        .expect("task")
        .translate(a1.vpage())
        .expect("mapped");
    assert_eq!(
        k.frames.frame(frame).expect("frame").mappings.len(),
        2,
        "both tasks map the shared frame"
    );
    // Evict it: both translations must vanish.
    k.frames.remove(frame).expect("off its queue");
    k.evict_frame(frame).expect("clean eviction");
    assert!(k.task(t1).expect("t").translate(a1.vpage()).is_none());
    assert!(k.task(t2).expect("t").translate(a2.vpage()).is_none());
}

#[test]
fn hipec_region_shared_with_a_plain_mapper() {
    // The HiPEC container controls the object; a second task mapping the
    // same object takes minor faults against the container's resident
    // pages — and the policy never even runs for those.
    let mut k = HipecKernel::new(params());
    let t1 = k.vm.create_task();
    let (a1, obj, key) = k
        .vm_map_hipec(t1, 32 * PAGE_SIZE, PolicyKind::Fifo.program(), 32)
        .expect("install");
    for p in 0..32u64 {
        k.access_sync(t1, VAddr(a1.0 + p * PAGE_SIZE), false)
            .expect("owner touch");
    }
    let owner_faults = k.container(key).expect("container").stats.faults;
    let t2 = k.vm.create_task();
    let a2 = k.vm.map_object(t2, obj, 0, 32).expect("second mapping");
    for p in 0..32u64 {
        k.access_sync(t2, VAddr(a2.0 + p * PAGE_SIZE), false)
            .expect("sharer touch");
    }
    assert_eq!(
        k.container(key).expect("container").stats.faults,
        owner_faults,
        "minor faults do not invoke the policy"
    );
    audit_frames(&k);
}

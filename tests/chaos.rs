//! Chaos-cycle pinning tests for graceful degradation under persistent
//! faults: the full breaker trip → close and quarantine → restore cycle
//! replays bit-for-bit and leaves the books clean, the offline analyzer
//! finds nothing anomalous in the trace, and device faults surfaced to a
//! container killed mid-flush stay drainable without bleeding into other
//! containers.

use std::cell::RefCell;
use std::rc::Rc;

use hipec_core::command::build;
use hipec_core::{
    HipecKernel, JsonlSink, KernelStats, OperandDecl, PolicyFault, PolicyProgram, NO_OPERAND,
};
use hipec_disk::{FaultConfig, FaultPhase, PhasedFaultConfig};
use hipec_policies::PolicyKind;
use hipec_sim::SimDuration;
use hipec_vm::{BreakerParams, CircuitBreaker, DeviceId, KernelParams, VAddr, PAGE_SIZE};

fn chaos_params() -> KernelParams {
    let mut p = KernelParams::paper_64mb();
    p.total_frames = 128;
    p.wired_frames = 8;
    p.free_target = 8;
    p.free_min = 4;
    p.inactive_target = 12;
    p
}

/// One full chaos cycle (the `chaos_soak` bench in miniature): two HiPEC
/// containers plus an oversubscribing default scanner driven through a
/// quiet → all-torn-and-delayed → quiet phased fault plan, then a
/// probation walk until every quarantined container is restored. Returns
/// the complete JSONL trace bytes and the final counter snapshot; panics
/// if the graceful-degradation contract is violated along the way.
fn chaos_cycle(seed: u64, steps: usize) -> (Vec<u8>, KernelStats) {
    let mut k = HipecKernel::new(chaos_params());
    let sink = Rc::new(RefCell::new(JsonlSink::new(Vec::<u8>::new())));
    k.set_sink(Box::new(Rc::clone(&sink)));
    k.vm.set_phased_fault_plan(PhasedFaultConfig {
        seed,
        phases: vec![
            FaultPhase::quiet(150),
            FaultPhase::torn_delayed(120, SimDuration::from_ms(2)),
        ],
    });

    let t_fifo = k.vm.create_task();
    let (b_fifo, _, key_fifo) = k
        .vm_allocate_hipec(
            t_fifo,
            24 * PAGE_SIZE,
            PolicyKind::FifoSecondChance.program(),
            6,
        )
        .expect("install fifo2");
    let t_mru = k.vm.create_task();
    let (b_mru, _, key_mru) = k
        .vm_allocate_hipec(t_mru, 24 * PAGE_SIZE, PolicyKind::Mru.program(), 6)
        .expect("install mru");
    let t_scan = k.vm.create_task();
    let (b_scan, _) =
        k.vm.vm_allocate(t_scan, 96 * PAGE_SIZE)
            .expect("allocate scanner");
    let min_fifo = k.container(key_fifo).expect("fifo row").min_frames;
    let min_mru = k.container(key_mru).expect("mru row").min_frames;

    for s in 0..steps {
        let p = (s as u64 * 7 + 3) % 24;
        let _ = k.access_sync(t_fifo, VAddr(b_fifo.0 + p * PAGE_SIZE), s % 3 != 0);
        let q = (s as u64) % 24;
        let _ = k.access_sync(t_mru, VAddr(b_mru.0 + q * PAGE_SIZE), s % 2 == 0);
        let r = (s as u64 * 5 + 1) % 96;
        let _ = k.access_sync(t_scan, VAddr(b_scan.0 + r * PAGE_SIZE), s % 2 == 1);
        k.pump();
        if s % 64 == 0 {
            k.check_invariants().expect("invariants hold mid-chaos");
        }
        for (key, min) in [(key_fifo, min_fifo), (key_mru, min_mru)] {
            let c = k.container(key).expect("row");
            assert!(
                !c.health.quarantined() || c.min_frames == min,
                "quarantine must preserve minFrame"
            );
        }
    }

    // Probation: clean checker intervals with a closed breaker restore the
    // quarantined policies; the scanner trickle keeps flushes (and thus
    // breaker probes) flowing. Restores ramp, so keep ticking until every
    // restored container's outstanding reservation is fully admitted too.
    let mut guard = 0;
    while k
        .containers
        .iter()
        .any(|c| !c.terminated && (c.health.quarantined() || c.restore_pending > 0))
    {
        for i in 0..4u64 {
            let r = (guard as u64 * 11 + i * 5) % 96;
            let _ = k.access_sync(t_scan, VAddr(b_scan.0 + r * PAGE_SIZE), true);
        }
        let next = k.checker.next_wakeup;
        k.vm.clock.advance_to(next);
        k.poll_checker();
        k.pump();
        k.check_invariants()
            .expect("invariants hold during probation");
        guard += 1;
        assert!(guard <= 200, "probation wedged: container never restored");
    }
    while let Some(done) = k.vm.next_flush_completion() {
        k.vm.clock.advance_to(done);
        k.pump();
    }
    k.check_invariants().expect("invariants hold after drain");

    for (key, min) in [(key_fifo, min_fifo), (key_mru, min_mru)] {
        let c = k.container(key).expect("row");
        if !c.terminated {
            assert!(!c.health.quarantined(), "still quarantined after recovery");
            assert!(
                c.allocated >= min,
                "restored container below its minFrame reservation"
            );
        }
    }

    let stats = k.kernel_stats();
    k.take_sink();
    let bytes = sink.borrow().get_ref().clone();
    (bytes, stats)
}

#[test]
fn chaos_cycle_completes_and_replays_bit_for_bit() {
    let (bytes_a, stats) = chaos_cycle(0xC4A05, 600);
    let (bytes_b, _) = chaos_cycle(0xC4A05, 600);
    assert_eq!(
        bytes_a, bytes_b,
        "the chaos cycle must replay bit-for-bit from its seed"
    );

    // The full degradation cycle must actually have been exercised.
    assert!(
        stats.get("breaker_trips").unwrap_or(0) >= 1,
        "breaker never tripped"
    );
    assert!(
        stats.get("breaker_closes").unwrap_or(0) >= 1,
        "breaker never closed"
    );
    assert!(
        stats.get("hipec_quarantines").unwrap_or(0) >= 1,
        "no container was quarantined"
    );
    assert!(
        stats.get("hipec_restores").unwrap_or(0) >= 1,
        "no container was restored from quarantine"
    );
    assert_eq!(stats.dropped_records, 0, "sink must see every record");

    // The offline analyzer reconstructs the same story and finds nothing
    // anomalous: device collateral inside the breaker window is expected
    // degradation, every quarantine has a matching restore, and no frame
    // ends double-resident.
    let text = String::from_utf8(bytes_a).expect("JSONL traces are UTF-8");
    let analysis = hipec_bench::analyze::analyze_str(&text).expect("parseable trace");
    assert!(
        analysis.is_clean(),
        "analyzer found anomalies in a clean chaos cycle: {:?}",
        analysis.anomalies
    );
    assert!(analysis.breaker_trips >= 1 && analysis.breaker_closes >= 1);
    assert!(analysis.quarantines >= 1 && analysis.restores >= 1);
    assert!(
        analysis.expected_degradations > 0,
        "the torn window must produce gated device collateral"
    );

    // Restores must be ramped: the restore itself re-admits at most one
    // tranche (no post-restore re-fault burst), and the remainder of the
    // reservation trickles in through restore_ramp events.
    let tranche = hipec_core::HealthPolicy::default().restore_tranche;
    let mut ramp_events = 0u64;
    for line in text.lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect("valid JSONL");
        let obj = v.as_object().expect("record object");
        let ty = obj.get("type").and_then(|x| x.as_str()).unwrap_or_default();
        let field = |name: &str| obj.get(name).and_then(|x| x.as_u64());
        if ty == "fallback_restored" {
            let readmitted = field("readmitted").expect("readmitted");
            assert!(
                readmitted <= tranche,
                "restore re-admitted {readmitted} frames at once (tranche is {tranche})"
            );
        }
        if ty == "restore_ramp" {
            ramp_events += 1;
            assert!(field("admitted").expect("admitted") <= tranche);
        }
    }
    assert!(
        ramp_events >= 1,
        "a 6-frame reservation behind a 2-frame tranche must ramp"
    );
}

// --- Regression: surfaced faults across a mid-flush kill ----------------------

/// A policy that grows on every fault (one `Request` per page fault, so
/// its allocation always carries a surplus past `minFrame`) and flushes
/// the previous fault's page when dirty — a steady stream of write-backs
/// for the device to tear. Its ReclaimFrame event touches a never-filled
/// page slot, so the first normal reclamation faults (a non-device policy
/// fault) and terminates the container mid-flush.
fn greedy_flusher_with_kamikaze_reclaim() -> PolicyProgram {
    use hipec_core::command::{JumpMode, QueueEnd};
    let mut p = PolicyProgram::new();
    let free = p.declare(OperandDecl::FreeQueue);
    let hold = p.declare(OperandDecl::Queue { recency: false });
    let page = p.declare(OperandDecl::Page);
    let old = p.declare(OperandDecl::Page);
    let one = p.declare(OperandDecl::Int(1));
    let never = p.declare(OperandDecl::Page);
    p.add_event(
        "PageFault",
        vec![
            build::request(one, NO_OPERAND),            // 0: grow by one
            build::emptyq(hold),                        // 1
            build::jump(JumpMode::IfTrue, 8),           // 2: nothing held yet
            build::dequeue(old, hold, QueueEnd::Head),  // 3
            build::is_mod(old),                         // 4
            build::jump(JumpMode::IfFalse, 7),          // 5: clean: skip flush
            build::flush(old),                          // 6: exchange dirty page
            build::release(old),                        // 7: give the frame back
            build::dequeue(page, free, QueueEnd::Head), // 8
            build::enqueue(page, hold, QueueEnd::Tail), // 9
            build::ret(page),                           // 10
        ],
    );
    p.add_event(
        "ReclaimFrame",
        vec![build::is_ref(never), build::ret(NO_OPERAND)],
    );
    p
}

#[test]
fn surfaced_faults_survive_a_mid_flush_kill_without_misattribution() {
    let mut k = HipecKernel::new(chaos_params());
    // Every submitted write-back tears and is eventually abandoned, so
    // data-loss faults keep surfacing to the owner. Neutralize the
    // degradation machinery (the breaker's score can never reach its trip
    // threshold, the health machine never quarantines on strikes): this
    // test is about fault attribution across a *kill*.
    *k.vm.breaker_mut(DeviceId(0)) = CircuitBreaker::new(BreakerParams {
        trip_milli: 1001,
        ..BreakerParams::default()
    });
    k.health_policy.quarantine_after = u64::MAX;
    k.vm.set_fault_plan(FaultConfig {
        seed: 0x50FA,
        read_error_permille: 0,
        write_error_permille: 0,
        delay_permille: 0,
        max_delay: SimDuration::from_us(500),
        torn_permille: 1000,
    });

    let task = k.vm.create_task();
    let (base, _o, key_a) = k
        .vm_allocate_hipec(
            task,
            16 * PAGE_SIZE,
            greedy_flusher_with_kamikaze_reclaim(),
            4,
        )
        .expect("install A");

    // Dirty pages until at least one abandoned write-back has surfaced to
    // A as a device fault (strikes may degrade A's health; that is fine —
    // the reclaim-path kill below is unconditional).
    let mut s = 0u64;
    while k
        .kernel_stats()
        .container(key_a.0)
        .expect("row A")
        .device_faults
        == 0
    {
        let p = (s * 5 + 1) % 16;
        let _ = k.access_sync(task, VAddr(base.0 + p * PAGE_SIZE), true);
        k.pump();
        if s % 8 == 7 {
            if let Some(done) = k.vm.next_flush_completion() {
                k.vm.clock.advance_to(done);
                k.pump();
            }
        }
        s += 1;
        assert!(s < 20_000, "no write-back was ever abandoned");
    }

    // Kill A mid-flush: the kamikaze ReclaimFrame faults on the first
    // normal reclamation while write-backs are still in flight/retrying.
    assert!(
        k.container(key_a).expect("row").allocated > 4,
        "A must hold a surplus for normal reclamation to visit it"
    );
    let _ = k.reclaim_frames(2);
    let row_a = k.kernel_stats();
    let row_a = row_a.container(key_a.0).expect("row A");
    assert!(row_a.terminated, "the reclaim fault must kill A");
    let pre_kill_faults = row_a.device_faults;
    assert!(pre_kill_faults > 0, "A must have surfaced faults pre-kill");

    // A fresh container takes over; drain every outstanding write-back.
    let (base_b, _o, key_b) = k
        .vm_allocate_hipec(
            task,
            16 * PAGE_SIZE,
            PolicyKind::FifoSecondChance.program(),
            4,
        )
        .expect("install B");
    let _ = k.access_sync(task, VAddr(base_b.0), false);
    while let Some(done) = k.vm.next_flush_completion() {
        k.vm.clock.advance_to(done);
        k.pump();
    }

    // A's pre-kill faults are still drainable, exactly once.
    let surfaced = k.take_surfaced_faults(key_a);
    assert!(
        !surfaced.is_empty(),
        "faults surfaced before the kill must remain drainable"
    );
    assert!(surfaced.iter().all(|f| matches!(f, PolicyFault::Device(_))));
    assert!(
        k.take_surfaced_faults(key_a).is_empty(),
        "draining is a take: the second call must be empty"
    );

    // Write-backs abandoned *after* the kill belong to nobody: they must
    // not leak onto the dead row's counters beyond the pre-kill value, and
    // they must never bleed into the fresh container.
    let stats = k.kernel_stats();
    assert_eq!(
        stats.container(key_a.0).expect("row A").device_faults,
        pre_kill_faults,
        "post-kill abandonments must not be attributed to the dead container"
    );
    let row_b = stats.container(key_b.0).expect("row B");
    assert_eq!(
        row_b.device_faults, 0,
        "another container's data loss must never reach B"
    );
    assert!(k.take_surfaced_faults(key_b).is_empty());
    k.check_invariants()
        .expect("books stay clean across the kill");
}

/// The quarantine counterpart: a container quarantined with write-backs
/// still retrying is unlinked from its object, but data lost to those
/// write-backs is still *its* loss — abandonments after the quarantine
/// must keep surfacing to it (it is alive and will be restored), never
/// vanish or hit another container.
#[test]
fn abandoned_flushes_surface_to_a_quarantined_owner() {
    let (bytes, _) = chaos_cycle(0xFEED5, 600);
    let text = String::from_utf8(bytes).expect("JSONL traces are UTF-8");
    // Every device fault surfaced inside the cycle names a container that
    // was installed — attribution never falls off the books even while
    // the owner is quarantined.
    let mut installed = std::collections::BTreeSet::new();
    for line in text.lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect("valid JSONL");
        let obj = v.as_object().expect("every record is an object");
        let field = |name: &str| obj.get(name).and_then(|x| x.as_u64());
        let ty = obj.get("type").and_then(|x| x.as_str()).unwrap_or_default();
        if ty == "install" {
            installed.insert(field("container").expect("container"));
        }
        if ty == "device_fault_surfaced" {
            let c = field("container").expect("container");
            assert!(
                installed.contains(&c),
                "device fault surfaced to unknown container {c}"
            );
        }
    }
}

//! Bit-reproducibility: every experiment produces identical results on
//! every run — the property that makes the virtual-time numbers citable.

use hipec_core::HipecKernel;
use hipec_policies::PolicyKind;
use hipec_sim::SimDuration;
use hipec_vm::{Kernel, KernelParams};
use hipec_workloads::aim::{run as aim_run, AimConfig};
use hipec_workloads::fault_sweep;
use hipec_workloads::join::{run as join_run, JoinConfig};

const MB: u64 = 1024 * 1024;

#[test]
fn table3_sweeps_are_bit_reproducible() {
    let a = fault_sweep::run_mach(KernelParams::paper_64mb(), 4 * MB, true);
    let b = fault_sweep::run_mach(KernelParams::paper_64mb(), 4 * MB, true);
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.faults, b.faults);
    let a = fault_sweep::run_hipec(
        KernelParams::paper_64mb(),
        4 * MB,
        false,
        PolicyKind::FifoSecondChance.program(),
    );
    let b = fault_sweep::run_hipec(
        KernelParams::paper_64mb(),
        4 * MB,
        false,
        PolicyKind::FifoSecondChance.program(),
    );
    assert_eq!(a.elapsed, b.elapsed);
}

#[test]
fn fig5_runs_are_bit_reproducible() {
    let cfg = AimConfig {
        users: 6,
        duration: SimDuration::from_secs(20),
        ..AimConfig::default()
    };
    let mut k1 = Kernel::new(KernelParams::paper_64mb());
    let a = aim_run(&mut k1, &cfg).expect("run");
    let mut k2 = Kernel::new(KernelParams::paper_64mb());
    let b = aim_run(&mut k2, &cfg).expect("run");
    assert_eq!(a.jobs, b.jobs);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.pageins, b.pageins);
    // And HiPEC runs too.
    let mut h1 = HipecKernel::new(KernelParams::paper_64mb());
    let c = aim_run(&mut h1, &cfg).expect("run");
    let mut h2 = HipecKernel::new(KernelParams::paper_64mb());
    let d = aim_run(&mut h2, &cfg).expect("run");
    assert_eq!(c.jobs, d.jobs);
    assert_eq!(c.faults, d.faults);
}

#[test]
fn fig6_runs_are_bit_reproducible() {
    let mut cfg = JoinConfig::paper(6 * MB);
    cfg.memory_bytes = 4 * MB;
    cfg.inner_bytes = 512;
    let a = join_run(&cfg, PolicyKind::Mru.program()).expect("a");
    let b = join_run(&cfg, PolicyKind::Mru.program()).expect("b");
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.pageins, b.pageins);
}

#[test]
fn fault_latency_histogram_tracks_the_device() {
    // The with-I/O sweep's latency distribution must sit in the
    // milliseconds; the no-I/O sweep's in the microseconds.
    let io = fault_sweep::run_mach(KernelParams::paper_64mb(), 2 * MB, true);
    let no_io = fault_sweep::run_mach(KernelParams::paper_64mb(), 2 * MB, false);
    assert_eq!(io.latency.count(), io.faults);
    assert!(io.latency.mean().as_ms_f64() > 2.0, "{}", io.latency.mean());
    assert!(
        no_io.latency.mean().as_us_f64() < 1_000.0,
        "{}",
        no_io.latency.mean()
    );
    assert!(io.latency.quantile(0.99) >= io.latency.quantile(0.5));
}

//! The kernel observability layer: trace determinism, counter
//! conservation against the independent frame partition, zero behavioral
//! drift with tracing disabled — plus regression tests for the
//! frame-accounting holes the partition audit closed (stale operand
//! aliases across `Migrate`, kill-path reclamation credit, and the torn
//! write-back retry budget).

use hipec_core::command::{build, QueueEnd};
use hipec_core::{
    ContainerKey, HipecKernel, OperandDecl, PolicyFault, PolicyProgram, TraceEvent,
    EVENT_PAGE_FAULT, NO_OPERAND,
};
use hipec_disk::FaultConfig;
use hipec_policies::PolicyKind;
use hipec_vm::{KernelParams, TaskId, VAddr, PAGE_SIZE};

fn small_params(total: u32, wired: u32) -> KernelParams {
    let mut p = KernelParams::paper_64mb();
    p.total_frames = total;
    p.wired_frames = wired;
    // Scale the daemon's watermarks down with the machine, or the free
    // pool never clears `free_target` and every `Request` is rejected.
    p.free_target = 8;
    p.free_min = 4;
    p.inactive_target = 12;
    p
}

fn fault_config(seed: u64, read_err: u16, write_err: u16, delay: u16, torn: u16) -> FaultConfig {
    FaultConfig {
        seed,
        read_error_permille: read_err,
        write_error_permille: write_err,
        delay_permille: delay,
        max_delay: hipec_sim::SimDuration::from_us(500),
        torn_permille: torn,
    }
}

/// A deterministic mixed read/write workload over a 24-page region.
fn drive(k: &mut HipecKernel, task: TaskId, base: VAddr, steps: usize) {
    for s in 0..steps {
        let p = (s as u64 * 7 + 3) % 24;
        let _ = k.access_sync(task, VAddr(base.0 + p * PAGE_SIZE), s % 2 == 0);
        k.pump();
    }
}

/// One seeded faulty run: kernel + its installed container key.
fn seeded_kernel() -> (HipecKernel, TaskId, VAddr, ContainerKey) {
    let mut k = HipecKernel::new(small_params(128, 8));
    k.vm.set_fault_plan(fault_config(0x5EED, 60, 60, 120, 100));
    let task = k.vm.create_task();
    let (base, _o, key) = k
        .vm_allocate_hipec(
            task,
            24 * PAGE_SIZE,
            PolicyKind::FifoSecondChance.program(),
            6,
        )
        .expect("install");
    (k, task, base, key)
}

// --- Tentpole property (a): bit-for-bit trace determinism ---------------------

#[test]
fn traces_replay_bit_for_bit() {
    let run = || {
        let (mut k, task, base, _key) = seeded_kernel();
        drive(&mut k, task, base, 200);
        k.sync_trace();
        let events: Vec<(u64, u64, TraceEvent)> = k
            .trace
            .iter()
            .map(|r| (r.seq, r.at.as_ns(), r.event))
            .collect();
        (events, k.trace.recorded(), k.kernel_stats())
    };
    let (ea, ra, sa) = run();
    let (eb, rb, sb) = run();
    assert!(ra > 0, "the workload must record events");
    assert_eq!(ra, rb, "recorded-event totals must replay");
    assert_eq!(ea, eb, "the merged trace must be bit-for-bit identical");
    assert_eq!(sa, sb, "counter snapshots must replay");
}

// --- Tentpole property (b): counters conserve against the partition -----------

#[test]
fn counters_conserve_against_the_frame_partition() {
    let (mut k, task, base, _key) = seeded_kernel();
    let total = 128u64;
    for s in 0..200usize {
        let p = (s as u64 * 7 + 3) % 24;
        let _ = k.access_sync(task, VAddr(base.0 + p * PAGE_SIZE), s % 2 == 0);
        k.pump();
        // The partition is computed from the frame table alone; every
        // gauge the metrics layer reports must agree with it, at every
        // audited step.
        let part = k.frame_partition();
        let stats = k.kernel_stats();
        assert_eq!(part.total(), total, "partition must cover every frame");
        assert_eq!(part.unaccounted, 0, "no frame may leak");
        assert_eq!(part.global_free, stats.free_frames);
        assert_eq!(part.total_specific(), stats.total_specific);
        assert_eq!(part.total_specific(), k.specific_total());
        assert_eq!(
            part.in_flight,
            stats.inflight_flushes + stats.retry_depth,
            "busy frames are exactly the in-flight and retrying write-backs"
        );
        for row in &stats.containers {
            assert_eq!(
                Some(row.allocated),
                part.container(row.key),
                "container {} books disagree with the partition",
                row.key
            );
        }
        k.check_invariants().expect("audit passes at every step");
    }
}

// --- Tentpole property (c): tracing off means zero behavioral drift -----------

#[test]
fn disabling_tracing_changes_no_outcome() {
    let (mut traced, task_a, base_a, _ka) = seeded_kernel();
    drive(&mut traced, task_a, base_a, 200);

    let (mut silent, task_b, base_b, _kb) = {
        let mut k = HipecKernel::new(small_params(128, 8));
        k.set_tracing(false);
        k.vm.set_fault_plan(fault_config(0x5EED, 60, 60, 120, 100));
        let task = k.vm.create_task();
        let (base, _o, key) = k
            .vm_allocate_hipec(
                task,
                24 * PAGE_SIZE,
                PolicyKind::FifoSecondChance.program(),
                6,
            )
            .expect("install");
        (k, task, base, key)
    };
    drive(&mut silent, task_b, base_b, 200);

    assert!(silent.trace.is_empty(), "disabled master ring stays empty");
    assert!(silent.vm.trace.is_empty(), "disabled vm ring stays empty");
    assert_eq!(
        traced.vm.now(),
        silent.vm.now(),
        "virtual clocks must agree"
    );

    // Identical counter snapshots, except the trace ring's own counters
    // (dropped_records included: the silent run records nothing, so it
    // cannot overwrite anything either).
    let strip = |mut s: hipec_core::KernelStats| {
        s.global.remove("trace_recorded");
        s.global.remove("trace_dropped");
        s.dropped_records = 0;
        s
    };
    assert_eq!(strip(traced.kernel_stats()), strip(silent.kernel_stats()));
}

// --- Regression: Migrate scrubs the source's stale operand aliases ------------

/// PageFault: request a frame, dequeue it into a slot, put it back, then
/// migrate it away. The slot alias must be scrubbed — the trailing
/// EnQueue has to fault instead of pushing a frame the source no longer
/// owns onto its queue.
fn aliasing_migrate_program() -> PolicyProgram {
    let mut p = PolicyProgram::new();
    let free = p.declare(OperandDecl::FreeQueue);
    let page = p.declare(OperandDecl::Page);
    let one = p.declare(OperandDecl::Int(1));
    p.add_event(
        "PageFault",
        vec![
            build::request(one, NO_OPERAND),
            build::dequeue(page, free, QueueEnd::Head),
            build::enqueue(page, free, QueueEnd::Head),
            build::migrate(one),
            build::enqueue(page, free, QueueEnd::Tail),
            build::ret(NO_OPERAND),
        ],
    );
    p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
    p
}

fn idle_program() -> PolicyProgram {
    let mut p = PolicyProgram::new();
    p.add_event("PageFault", vec![build::ret(NO_OPERAND)]);
    p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
    p
}

#[test]
fn migrate_scrubs_stale_source_aliases() {
    let mut k = HipecKernel::new(small_params(64, 4));
    let task = k.vm.create_task();
    let (_, _, src) = k
        .vm_allocate_hipec(task, 8 * PAGE_SIZE, aliasing_migrate_program(), 2)
        .expect("install source");
    let (_, _, dst) = k
        .vm_allocate_hipec(task, 8 * PAGE_SIZE, idle_program(), 2)
        .expect("install target");
    let before = k.frame_partition();

    let err = k
        .run_event_raw(src, EVENT_PAGE_FAULT)
        .expect_err("the post-migrate EnQueue must fault on the scrubbed slot");
    assert!(
        matches!(err, PolicyFault::EmptyPageSlot { .. }),
        "expected an empty-slot fault, got: {err}"
    );

    // The migrated frame belongs to the target now, in books and partition.
    let after = k.frame_partition();
    assert_eq!(
        after.container(dst.0),
        before.container(dst.0).map(|n| n + 1),
        "target must gain exactly the migrated frame"
    );
    assert_eq!(
        after.container(src.0),
        before.container(src.0),
        "source requested one frame and migrated it away: net zero"
    );
    k.sync_trace();
    assert!(
        k.trace
            .iter()
            .any(|r| matches!(r.event, TraceEvent::Migrate { from, to, .. }
                if from == src.0 && to == dst.0)),
        "the migration must be traced"
    );
    k.check_invariants().expect("no cross-container corruption");
}

// --- Regression: kill-path reclamation credits only real recoveries -----------

/// PageFault resolves faults; ReclaimFrame touches a never-filled slot,
/// so the first normal reclamation faults and terminates the container.
fn kamikaze_reclaim_program() -> PolicyProgram {
    let mut p = PolicyProgram::new();
    let free = p.declare(OperandDecl::FreeQueue);
    let page = p.declare(OperandDecl::Page);
    let one = p.declare(OperandDecl::Int(1));
    let never = p.declare(OperandDecl::Page);
    p.add_event(
        "PageFault",
        vec![
            build::request(one, NO_OPERAND),
            build::dequeue(page, free, QueueEnd::Head),
            build::ret(page),
        ],
    );
    p.add_event(
        "ReclaimFrame",
        vec![
            build::enqueue(never, free, QueueEnd::Tail),
            build::ret(NO_OPERAND),
        ],
    );
    p
}

#[test]
fn killing_a_container_mid_flush_keeps_the_books() {
    let mut k = HipecKernel::new(small_params(128, 8));
    // Every write-back submission is refused: the kill's flush sweep
    // cannot push dirty frames out, so they stay on the dead container's
    // books — and reclamation must not credit them as recovered.
    k.vm.set_fault_plan(fault_config(0xDEAD, 0, 1000, 0, 0));
    let task = k.vm.create_task();
    let (base, _o, key) = k
        .vm_allocate_hipec(task, 16 * PAGE_SIZE, kamikaze_reclaim_program(), 4)
        .expect("install");
    for p in 0..12u64 {
        k.access_sync(task, VAddr(base.0 + p * PAGE_SIZE), true)
            .expect("dirtying access");
        k.pump();
    }
    let before = k.container(key).expect("live").allocated;
    assert!(before > 4, "the container must hold a surplus to reclaim");

    let got = k.reclaim_frames(4);
    let stats = k.kernel_stats();
    let row = stats.container(key.0).expect("terminated row kept");
    assert!(row.terminated, "a faulting ReclaimFrame policy is killed");
    assert_eq!(
        got,
        before - row.allocated,
        "reclamation credit must equal the real book decrease"
    );
    assert_eq!(stats.get("gfm_normal_reclaims"), Some(got));
    // Device-refused dirty frames stay attributed to the dead container.
    let part = k.frame_partition();
    assert_eq!(part.container(key.0), Some(row.allocated));
    k.sync_trace();
    assert!(
        k.trace.iter().any(|r| matches!(
            r.event,
            TraceEvent::Terminated { container, graceful: false } if container == key.0
        )),
        "the kill must be traced"
    );
    k.check_invariants()
        .expect("books and partition agree after the kill");
}

// --- Regression: torn-write retries are bounded and surface device faults -----

#[test]
fn torn_retries_drain_and_surface_device_faults() {
    let mut k = HipecKernel::new(small_params(64, 4));
    // Every write-back is torn: each flush burns its whole retry budget
    // and is abandoned, so the retry queue must still drain to empty and
    // the data loss must reach the owning container as a typed fault.
    k.vm.set_fault_plan(fault_config(0x7024, 0, 0, 0, 1000));
    let task = k.vm.create_task();
    let (base, _o, key) = k
        .vm_allocate_hipec(
            task,
            16 * PAGE_SIZE,
            PolicyKind::FifoSecondChance.program(),
            4,
        )
        .expect("install");
    for s in 0..120usize {
        let p = (s as u64 * 5 + 1) % 16;
        let _ = k.access_sync(task, VAddr(base.0 + p * PAGE_SIZE), true);
        k.pump();
    }
    while let Some(done) = k.vm.next_flush_completion() {
        k.vm.clock.advance_to(done);
        k.pump();
    }
    assert_eq!(
        k.vm.retry_frames().count(),
        0,
        "a bounded retry budget must let the retry queue drain"
    );
    assert_eq!(k.vm.inflight_frames().count(), 0);

    let stats = k.kernel_stats();
    assert!(
        stats.get("retryq_pushes").expect("retryq_pushes counter") > 0,
        "torn writes must hit the retry queue"
    );
    let surfaced = k.take_surfaced_faults(key);
    assert!(
        !surfaced.is_empty(),
        "abandoned write-backs must surface to the owner"
    );
    assert!(surfaced.iter().all(|f| matches!(f, PolicyFault::Device(_))));
    assert!(stats.container(key.0).expect("row").device_faults > 0);
    k.sync_trace();
    assert!(
        k.trace.iter().any(|r| matches!(
            r.event,
            TraceEvent::DeviceFaultSurfaced { container, .. } if container == key.0
        )),
        "abandoned flushes must be traced"
    );
    k.check_invariants()
        .expect("no frame lost to abandoned flushes");
}

// --- Streaming sinks: complete delivery, zero drops, byte-stable JSONL --------

use hipec_core::{JsonlSink, MemorySink};
use std::cell::RefCell;
use std::rc::Rc;

/// A seeded faulty kernel under memory pressure (the 24-page region does
/// not fit the machine, so faulting never settles), with an optional sink
/// attached *before* any event is emitted — installation itself is
/// traced, so [`seeded_kernel`] is too late for complete-from-seq-0
/// capture.
fn pressured_kernel(
    sink: Option<Box<dyn hipec_core::TraceSink>>,
) -> (HipecKernel, TaskId, VAddr, ContainerKey) {
    let mut k = HipecKernel::new(small_params(32, 6));
    if let Some(sink) = sink {
        k.set_sink(sink);
    }
    k.vm.set_fault_plan(fault_config(0x5EED, 60, 60, 120, 100));
    let task = k.vm.create_task();
    let (base, _o, key) = k
        .vm_allocate_hipec(
            task,
            24 * PAGE_SIZE,
            PolicyKind::FifoSecondChance.program(),
            6,
        )
        .expect("install");
    (k, task, base, key)
}

/// Satellite: a long soak must overwrite the bounded master ring many
/// times over, yet with a sink attached every record is delivered before
/// the overwrite — `dropped_records` stays exactly zero. The same soak
/// without a sink *must* report drops, proving the counter is live.
#[test]
fn sink_soak_delivers_every_record_without_drops() {
    let sink = Rc::new(RefCell::new(MemorySink::new()));
    let (mut k, task, base, _key) = pressured_kernel(Some(Box::new(Rc::clone(&sink))));
    drive(&mut k, task, base, 1_500);
    while let Some(done) = k.vm.next_flush_completion() {
        k.vm.clock.advance_to(done);
        k.pump();
    }
    k.sync_trace();

    let recorded = k.trace.recorded();
    assert!(
        recorded > hipec_vm::trace::DEFAULT_TRACE_CAPACITY as u64,
        "the soak must wrap the bounded ring to prove streaming delivery"
    );
    assert_eq!(
        k.dropped_records(),
        0,
        "with a sink attached, ring overwrites must never lose a record"
    );
    assert_eq!(k.kernel_stats().dropped_records, 0);

    let seen = sink.borrow();
    assert_eq!(
        seen.records().len() as u64,
        recorded,
        "the sink must receive exactly the records the master ring counted"
    );
    for (i, rec) in seen.records().iter().enumerate() {
        assert_eq!(rec.seq, i as u64, "sequence numbers must be gap-free");
    }
    drop(seen);

    // Control: the identical soak with no sink overwrites unobserved
    // records, and the metrics layer must own up to every one of them.
    let (mut quiet, task_q, base_q, _kq) = pressured_kernel(None);
    drive(&mut quiet, task_q, base_q, 1_500);
    quiet.sync_trace();
    assert!(
        quiet.dropped_records() > 0,
        "an unsunk soak past ring capacity must report dropped records"
    );
    assert_eq!(
        quiet.kernel_stats().dropped_records,
        quiet.dropped_records()
    );
}

/// Satellite: the JSONL stream is part of the determinism contract — two
/// identically seeded runs must produce byte-identical output, and every
/// line must parse as a JSON object carrying the schema's envelope.
#[test]
fn jsonl_stream_is_deterministic_and_well_formed() {
    let run = || {
        let sink = Rc::new(RefCell::new(JsonlSink::new(Vec::<u8>::new())));
        let (mut k, task, base, _key) = pressured_kernel(Some(Box::new(Rc::clone(&sink))));
        drive(&mut k, task, base, 400);
        while let Some(done) = k.vm.next_flush_completion() {
            k.vm.clock.advance_to(done);
            k.pump();
        }
        k.take_sink();
        let s = sink.borrow();
        assert_eq!(s.io_errors(), 0, "writing to a Vec cannot fail");
        (s.get_ref().clone(), s.written())
    };
    let (bytes_a, written_a) = run();
    let (bytes_b, _) = run();
    assert!(written_a > 0, "the workload must stream lines");
    assert_eq!(bytes_a, bytes_b, "JSONL streams must replay bit-for-bit");

    let text = String::from_utf8(bytes_a).expect("JSONL is UTF-8");
    let mut expected_seq = 0u64;
    for line in text.lines() {
        let doc: serde_json::Value = serde_json::from_str(line).expect("every line parses");
        let obj = doc.as_object().expect("every line is an object");
        assert_eq!(
            obj.get("seq").and_then(|v| v.as_u64()),
            Some(expected_seq),
            "seq must count up from zero with no gaps"
        );
        assert!(obj.get("at_ns").and_then(|v| v.as_u64()).is_some());
        assert!(obj.get("type").and_then(|v| v.as_str()).is_some());
        expected_seq += 1;
    }
    assert_eq!(
        expected_seq, written_a,
        "line count matches the sink's tally"
    );
}

// --- Failure reports carry the event tail --------------------------------------

#[test]
fn trace_tail_renders_recent_events() {
    let (mut k, task, base, _key) = seeded_kernel();
    drive(&mut k, task, base, 40);
    k.sync_trace();
    let tail = k.trace_tail(8);
    assert!(!tail.is_empty(), "an active kernel has a tail to render");
    assert!(
        tail.lines().count() <= 8,
        "the tail is bounded to the requested length"
    );
}

//! Fast, scaled-down versions of every experiment in the paper's §5,
//! asserting the *shapes* the full benchmark harnesses print.

use hipec_core::HipecKernel;
use hipec_policies::{analytic, PolicyKind};
use hipec_sim::SimDuration;
use hipec_vm::{Kernel, KernelParams, PAGE_SIZE};
use hipec_workloads::aim::{run as aim_run, AimConfig};
use hipec_workloads::fault_sweep;
use hipec_workloads::join::{run as join_run, JoinConfig};

const MB: u64 = 1024 * 1024;

#[test]
fn table3_shape_overhead_small_positive_no_io_negligible_with_io() {
    let bytes = 4 * MB;
    let program = || PolicyKind::FifoSecondChance.program();

    let mach = fault_sweep::run_mach(KernelParams::paper_64mb(), bytes, false);
    let hipec = fault_sweep::run_hipec(KernelParams::paper_64mb(), bytes, false, program());
    let no_io = hipec.elapsed.as_ns() as f64 / mach.elapsed.as_ns() as f64 - 1.0;
    // Paper: 1.8 %.
    assert!(
        (0.005..0.035).contains(&no_io),
        "no-I/O overhead {no_io:.4}"
    );

    let mach = fault_sweep::run_mach(KernelParams::paper_64mb(), bytes, true);
    let hipec = fault_sweep::run_hipec(KernelParams::paper_64mb(), bytes, true, program());
    let with_io = (hipec.elapsed.as_ns() as f64 / mach.elapsed.as_ns() as f64 - 1.0).abs();
    // Paper: 0.024 % — compensated by "as few as one or two disk page I/Os".
    assert!(with_io < 0.005, "with-I/O overhead {with_io:.5}");
    assert!(
        with_io < no_io,
        "I/O must dwarf the mechanism cost ({with_io:.5} vs {no_io:.5})"
    );
}

#[test]
fn table4_shape_ipc_beats_syscall_beats_hipec_by_orders_of_magnitude() {
    let cost = hipec_sim::CostModel::acer_altos_486();
    let hipec_decode = cost.cmd_fetch_decode * 3;
    // IPC ≫ syscall ≫ HiPEC interpretation.
    assert!(cost.null_ipc.as_ns() > 10 * cost.null_syscall.as_ns());
    assert!(cost.null_syscall.as_ns() > 100 * hipec_decode.as_ns());
    assert_eq!(hipec_decode.as_ns(), 150, "the paper's ≅150 ns");
}

#[test]
fn fig5_shape_kernels_match_and_curve_is_unimodal_ish() {
    // 1, 4 and 10 users: throughput must rise to the knee and fall past it,
    // and the two kernels must track each other at every point.
    let mut peak_seen = 0.0f64;
    let mut last = 0.0f64;
    for users in [1u32, 5, 10] {
        // The default AIM sizing: ten users overcommit the 60 MB of
        // pageable memory, which is what bends the curve down.
        let cfg = AimConfig {
            users,
            duration: SimDuration::from_secs(60),
            ..AimConfig::default()
        };
        let mut mach = Kernel::new(KernelParams::paper_64mb());
        let rm = aim_run(&mut mach, &cfg).expect("mach");
        let mut hipec = HipecKernel::new(KernelParams::paper_64mb());
        let rh = aim_run(&mut hipec, &cfg).expect("hipec");
        let ratio = rh.jobs_per_minute / rm.jobs_per_minute;
        // Past the knee the system thrashes and job counts become
        // chaotically sensitive to microsecond-level timing shifts, so the
        // band is wider there (the full fig5 harness averages this out
        // with longer windows).
        let band = if users <= 5 { 0.95..1.05 } else { 0.80..1.25 };
        assert!(
            band.contains(&ratio),
            "users={users}: kernels diverge (ratio {ratio:.3})"
        );
        peak_seen = peak_seen.max(rm.jobs_per_minute);
        last = rm.jobs_per_minute;
    }
    assert!(
        last < peak_seen,
        "throughput must decline past the knee ({last} !< {peak_seen})"
    );
}

#[test]
fn fig6_shape_crossover_at_msize_and_mru_wins_above() {
    let mut cfg = JoinConfig::paper(3 * MB);
    cfg.memory_bytes = 4 * MB;
    cfg.inner_bytes = 1024; // 16 scans

    // Below MSize: identical.
    let lru = join_run(&cfg, PolicyKind::Lru.program()).expect("lru");
    let mru = join_run(&cfg, PolicyKind::Mru.program()).expect("mru");
    assert_eq!(lru.faults, mru.faults, "below MSize both only cold-fault");

    // Above MSize: LRU thrashes per PF_l, MRU per PF_m; big elapsed gap.
    let mut cfg = JoinConfig::paper(6 * MB);
    cfg.memory_bytes = 4 * MB;
    cfg.inner_bytes = 1024;
    let lru = join_run(&cfg, PolicyKind::Lru.program()).expect("lru");
    let mru = join_run(&cfg, PolicyKind::Mru.program()).expect("mru");
    assert_eq!(
        lru.faults,
        analytic::pf_lru(cfg.outer_bytes, cfg.loops(), PAGE_SIZE)
    );
    assert_eq!(
        mru.faults,
        analytic::pf_mru(cfg.outer_bytes, cfg.memory_bytes, cfg.loops(), PAGE_SIZE)
    );
    let speedup = lru.elapsed.as_ns() as f64 / mru.elapsed.as_ns() as f64;
    assert!(
        speedup > 2.0,
        "the paper's 'great response time gap': speedup {speedup:.2}"
    );
}

#[test]
fn fig6_gain_tracks_the_papers_closed_form() {
    // Gain = (Loop−1)·MSize/PageSize·PFHandleTime. Measure PFHandleTime
    // from the LRU run itself, then check the gap.
    let mut cfg = JoinConfig::paper(8 * MB);
    cfg.memory_bytes = 4 * MB;
    cfg.inner_bytes = 512; // 8 scans
    let lru = join_run(&cfg, PolicyKind::Lru.program()).expect("lru");
    let mru = join_run(&cfg, PolicyKind::Mru.program()).expect("mru");
    let fault_time = SimDuration::from_ns((lru.elapsed.as_ns() as f64 / lru.faults as f64) as u64);
    let gain = analytic::gain(
        cfg.outer_bytes,
        cfg.memory_bytes,
        cfg.loops(),
        PAGE_SIZE,
        fault_time,
    );
    let measured = lru.elapsed - mru.elapsed;
    let ratio = measured.as_ns() as f64 / gain.as_ns() as f64;
    assert!(
        (0.75..1.25).contains(&ratio),
        "measured gain {measured} vs analytic {gain} (ratio {ratio:.2})"
    );
}

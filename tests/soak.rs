//! A long mixed soak: many applications, every shipped policy, constant
//! reclamation pressure, random terminations and deallocations — with the
//! frame-conservation audit run throughout. This is the "leave it running
//! overnight" test at virtual scale.

use hipec_core::{ContainerKey, HipecError, HipecKernel};
use hipec_integration::audit_frames;
use hipec_policies::PolicyKind;
use hipec_sim::DetRng;
use hipec_vm::{KernelParams, TaskId, VAddr, PAGE_SIZE};

#[test]
fn mixed_soak_conserves_frames_and_stays_up() {
    let mut params = KernelParams::paper_64mb();
    params.total_frames = 2_048;
    params.wired_frames = 64;
    let mut k = HipecKernel::new(params);
    let mut rng = DetRng::new(0x50_4B_17);

    struct App {
        task: TaskId,
        base: VAddr,
        pages: u64,
        key: ContainerKey,
        alive: bool,
    }
    let mut apps: Vec<App> = Vec::new();

    // Boot six applications, one per shipped policy.
    for (i, kind) in PolicyKind::ALL.iter().enumerate() {
        let task = k.vm.create_task();
        let pages = 120 + 40 * i as u64;
        let min = 64 + 16 * i as u64;
        let (base, _o, key) = k
            .vm_allocate_hipec(task, pages * PAGE_SIZE, kind.program(), min)
            .expect("install");
        apps.push(App {
            task,
            base,
            pages,
            key,
            alive: true,
        });
    }
    // Plus a non-specific task in the default pool.
    let bg = k.vm.create_task();
    let (bg_base, _) = k.vm.vm_allocate(bg, 300 * PAGE_SIZE).expect("background");

    for round in 0..40u64 {
        for app in apps.iter().filter(|a| a.alive) {
            for _ in 0..60 {
                let page = rng.below(app.pages);
                let write = rng.chance(0.3);
                match k.access_sync(app.task, VAddr(app.base.0 + page * PAGE_SIZE), write) {
                    Ok(_) => {}
                    Err(HipecError::Terminated { reason, .. }) => {
                        panic!("round {round}: shipped policy died: {reason}")
                    }
                    Err(other) => panic!("round {round}: {other}"),
                }
            }
            k.vm.pump();
        }
        for _ in 0..40 {
            let page = rng.below(300);
            k.access_sync(bg, VAddr(bg_base.0 + page * PAGE_SIZE), rng.chance(0.2))
                .expect("background");
        }
        k.vm.pump();
        // Occasionally deallocate one app and start a replacement.
        if round % 13 == 12 {
            if let Some(i) = apps.iter().position(|a| a.alive) {
                let (task, base, key) = (apps[i].task, apps[i].base, apps[i].key);
                k.vm_deallocate_hipec(task, base, key).expect("deallocate");
                apps[i].alive = false;
                let kind = PolicyKind::ALL[(round as usize) % PolicyKind::ALL.len()];
                let task = k.vm.create_task();
                let (base, _o, key) = k
                    .vm_allocate_hipec(task, 160 * PAGE_SIZE, kind.program(), 96)
                    .expect("replacement installs");
                apps.push(App {
                    task,
                    base,
                    pages: 160,
                    key,
                    alive: true,
                });
            }
        }
        audit_frames(&k);
        // Accounting stays consistent every round.
        let sum: u64 = apps
            .iter()
            .filter(|a| a.alive)
            .map(|a| k.container(a.key).expect("container").allocated)
            .sum();
        assert_eq!(sum, k.specific_total(), "round {round}");
    }
    // Everything alive made progress.
    for app in apps.iter().filter(|a| a.alive) {
        assert!(k.container(app.key).expect("container").stats.faults > 0);
    }
    assert!(k.vm.stats.get("faults") > 1_000);
}

//! The §6 flash extension end to end: the same kernel, policies and
//! workloads page against flash instead of the disk.

use hipec_core::HipecKernel;
use hipec_integration::audit_frames;
use hipec_policies::PolicyKind;
use hipec_vm::{Kernel, KernelParams, VAddr, PAGE_SIZE};

fn flash_params() -> KernelParams {
    let mut p = KernelParams::paper_64mb_flash();
    p.total_frames = 512;
    p.wired_frames = 16;
    p
}

#[test]
fn plain_kernel_pages_against_flash() {
    let mut k = Kernel::new(flash_params());
    let t = k.create_task();
    let (base, _) = k.vm_map(t, 64 * PAGE_SIZE).expect("map");
    for p in 0..64u64 {
        let out = k
            .access(t, VAddr(base.0 + p * PAGE_SIZE), false)
            .expect("access");
        if let hipec_vm::AccessOutcome::Done(r) = out {
            if let Some(done) = r.io_until {
                k.clock.advance_to(done);
                k.pump();
            }
        }
    }
    let flash = k.device().as_flash().expect("flash device");
    assert_eq!(flash.stats().reads, 64, "every page-in hit the flash");
    assert_eq!(k.stats.get("pageins"), 64);
}

#[test]
fn flash_reads_are_much_faster_than_disk_reads() {
    let run = |params: KernelParams| {
        let mut k = Kernel::new(params);
        let t = k.create_task();
        let (base, _) = k.vm_map(t, 256 * PAGE_SIZE).expect("map");
        let start = k.now();
        for p in 0..256u64 {
            if let hipec_vm::AccessOutcome::Done(r) = k
                .access(t, VAddr(base.0 + p * PAGE_SIZE), false)
                .expect("access")
            {
                if let Some(done) = r.io_until {
                    k.clock.advance_to(done);
                }
            }
        }
        k.now().since(start)
    };
    let disk = run(KernelParams::paper_64mb());
    let flash = run(flash_params());
    assert!(
        disk.as_ns() > 5 * flash.as_ns(),
        "1994 disk {disk} should dwarf flash {flash}"
    );
}

#[test]
fn hipec_policies_run_unchanged_on_flash() {
    let mut k = HipecKernel::new(flash_params());
    let task = k.vm.create_task();
    let (base, _o, key) = k
        .vm_allocate_hipec(task, 96 * PAGE_SIZE, PolicyKind::Mru.program(), 64)
        .expect("install");
    // Dirty cyclic sweeps: evictions flush to flash.
    for _ in 0..3 {
        for p in 0..96u64 {
            k.access_sync(task, VAddr(base.0 + p * PAGE_SIZE), true)
                .expect("access");
            k.vm.pump();
        }
    }
    let c = k.container(key).expect("container");
    assert!(!c.terminated);
    // PF_m over three sweeps.
    assert_eq!(c.stats.faults, 96 + 2 * (96 - 64));
    let flash = k.vm.device().as_flash().expect("flash device");
    assert!(
        flash.stats().host_writes > 0,
        "dirty evictions programmed flash"
    );
    audit_frames(&k);
}

//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use hipec_core::{HipecKernel, PolicyProgram};
use hipec_policies::native::{CacheSim, Fifo, Lru, Mru};
use hipec_policies::PolicyKind;
use hipec_vm::{FrameId, FrameTable, KernelParams, VAddr, PAGE_SIZE};

// --- Intrusive frame queues vs a VecDeque model ------------------------------

#[derive(Debug, Clone)]
enum QueueOp {
    EnqueueTail(u8),
    EnqueueHead(u8),
    DequeueHead,
    DequeueTail,
    Remove(u8),
    Touch(u8),
}

fn queue_op() -> impl Strategy<Value = QueueOp> {
    prop_oneof![
        (0u8..32).prop_map(QueueOp::EnqueueTail),
        (0u8..32).prop_map(QueueOp::EnqueueHead),
        Just(QueueOp::DequeueHead),
        Just(QueueOp::DequeueTail),
        (0u8..32).prop_map(QueueOp::Remove),
        (0u8..32).prop_map(QueueOp::Touch),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The intrusive queue behaves exactly like a VecDeque, including the
    /// auto-recency move-to-tail on touch.
    #[test]
    fn frame_queue_matches_vecdeque_model(ops in prop::collection::vec(queue_op(), 1..200)) {
        let mut table = FrameTable::new(32);
        let q = table.new_queue(true);
        let mut model: std::collections::VecDeque<u8> = Default::default();

        for op in ops {
            match op {
                QueueOp::EnqueueTail(i) => {
                    let res = table.enqueue_tail(q, FrameId(i as u32));
                    if model.contains(&i) {
                        prop_assert!(res.is_err(), "double enqueue must fail");
                    } else {
                        prop_assert!(res.is_ok());
                        model.push_back(i);
                    }
                }
                QueueOp::EnqueueHead(i) => {
                    let res = table.enqueue_head(q, FrameId(i as u32));
                    if model.contains(&i) {
                        prop_assert!(res.is_err());
                    } else {
                        prop_assert!(res.is_ok());
                        model.push_front(i);
                    }
                }
                QueueOp::DequeueHead => {
                    let got = table.dequeue_head(q).expect("valid queue");
                    prop_assert_eq!(got.map(|f| f.0 as u8), model.pop_front());
                }
                QueueOp::DequeueTail => {
                    let got = table.dequeue_tail(q).expect("valid queue");
                    prop_assert_eq!(got.map(|f| f.0 as u8), model.pop_back());
                }
                QueueOp::Remove(i) => {
                    let res = table.remove(FrameId(i as u32));
                    match model.iter().position(|&x| x == i) {
                        Some(pos) => {
                            prop_assert!(res.is_ok());
                            model.remove(pos);
                        }
                        None => prop_assert!(res.is_err()),
                    }
                }
                QueueOp::Touch(i) => {
                    table.touch(FrameId(i as u32), false).expect("valid frame");
                    if let Some(pos) = model.iter().position(|&x| x == i) {
                        // Auto-recency: member frames move to the tail.
                        model.remove(pos);
                        model.push_back(i);
                    }
                }
            }
            // Full structural comparison after every operation.
            let ours: Vec<u8> = table.iter_queue(q).map(|f| f.0 as u8).collect();
            let theirs: Vec<u8> = model.iter().copied().collect();
            prop_assert_eq!(ours, theirs);
            prop_assert_eq!(table.queue_len(q).expect("len"), model.len() as u64);
        }
    }

    /// The wire decoder never panics on arbitrary word streams.
    #[test]
    fn wire_decoder_is_total(words in prop::collection::vec(any::<u32>(), 0..64)) {
        let _ = PolicyProgram::from_words(&words);
    }

    /// Wire encoding round-trips every program the translator can produce
    /// from the shipped sources (parameterized by which policy).
    #[test]
    fn wire_round_trip_shipped_policies(idx in 0usize..PolicyKind::ALL.len()) {
        let program = PolicyKind::ALL[idx].program();
        let decoded = PolicyProgram::from_words(&program.to_words()).expect("round trip");
        prop_assert_eq!(&decoded.decls, &program.decls);
        for (a, b) in decoded.events.iter().zip(program.events.iter()) {
            prop_assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    /// The lexer and parser never panic on arbitrary input.
    #[test]
    fn translator_frontend_is_total(src in "\\PC{0,200}") {
        let _ = hipec_lang::compile(&src);
    }

    /// Static validation never panics on arbitrary command streams.
    #[test]
    fn validator_is_total(
        words in prop::collection::vec(any::<u32>(), 1..32),
        decl_count in 0usize..6,
    ) {
        use hipec_core::OperandDecl;
        let mut p = PolicyProgram::new();
        for i in 0..decl_count {
            p.declare(match i % 4 {
                0 => OperandDecl::FreeQueue,
                1 => OperandDecl::Page,
                2 => OperandDecl::Int(7),
                _ => OperandDecl::Bool(false),
            });
        }
        p.add_event("PageFault", words.iter().map(|&w| hipec_core::RawCmd(w)).collect());
        p.add_event("ReclaimFrame", vec![hipec_core::command::build::ret(hipec_core::NO_OPERAND)]);
        let _ = hipec_core::validate_program(&p);
    }
}

// --- Interpreted vs native policy equivalence ---------------------------------

fn run_interpreted(kind: PolicyKind, trace: &[u64], region: u64, cap: u64) -> u64 {
    let mut params = KernelParams::paper_64mb();
    params.total_frames = 512;
    params.wired_frames = 16;
    let mut k = HipecKernel::new(params);
    let task = k.vm.create_task();
    let (base, _o, key) = k
        .vm_allocate_hipec(task, region * PAGE_SIZE, kind.program(), cap)
        .expect("install");
    for &p in trace {
        k.access_sync(task, VAddr(base.0 + p * PAGE_SIZE), false)
            .expect("access");
        k.vm.pump();
    }
    k.container(key).expect("container").stats.faults
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On any trace, the interpreted FIFO/LRU/MRU policies fault exactly
    /// like their native oracles.
    #[test]
    fn interpreted_policies_match_oracles(
        trace in prop::collection::vec(0u64..24, 1..150),
        cap in 2u64..16,
    ) {
        let region = 24u64;
        let fifo = run_interpreted(PolicyKind::Fifo, &trace, region, cap);
        prop_assert_eq!(
            fifo,
            CacheSim::new(Fifo::default(), cap as usize).run(trace.iter().copied())
        );
        let lru = run_interpreted(PolicyKind::Lru, &trace, region, cap);
        prop_assert_eq!(
            lru,
            CacheSim::new(Lru::default(), cap as usize).run(trace.iter().copied())
        );
        let mru = run_interpreted(PolicyKind::Mru, &trace, region, cap);
        prop_assert_eq!(
            mru,
            CacheSim::new(Mru::default(), cap as usize).run(trace.iter().copied())
        );
    }

    /// Belady's OPT lower-bounds every shipped policy on every trace.
    #[test]
    fn opt_is_a_universal_lower_bound(
        trace in prop::collection::vec(0u64..32, 1..200),
        cap in 2usize..12,
    ) {
        let opt = hipec_policies::native::opt_faults(&trace, cap);
        for faults in [
            CacheSim::new(Fifo::default(), cap).run(trace.iter().copied()),
            CacheSim::new(Lru::default(), cap).run(trace.iter().copied()),
            CacheSim::new(Mru::default(), cap).run(trace.iter().copied()),
            CacheSim::new(hipec_policies::native::Clock::default(), cap)
                .run(trace.iter().copied()),
        ] {
            prop_assert!(opt <= faults);
        }
    }
}

// --- Random policies under deterministic fault injection ----------------------

use hipec_disk::FaultConfig;
use hipec_vm::TaskId;

fn fault_config(seed: u64, read_err: u16, write_err: u16, delay: u16, torn: u16) -> FaultConfig {
    FaultConfig {
        seed,
        read_error_permille: read_err,
        write_error_permille: write_err,
        delay_permille: delay,
        max_delay: hipec_sim::SimDuration::from_us(500),
        torn_permille: torn,
    }
}

/// Runs `trace` through a policy-managed region with faults injected, and
/// audits every kernel step. Returns the injected-fault trace and a few
/// counters (the determinism fingerprint).
fn drive_faulty(
    kind: PolicyKind,
    trace: &[u64],
    cap: u64,
    cfg: FaultConfig,
) -> (Vec<hipec_disk::InjectedFault>, u64, u64) {
    let mut params = KernelParams::paper_64mb();
    params.total_frames = 128;
    params.wired_frames = 8;
    let mut k = HipecKernel::new(params);
    k.vm.set_fault_plan(cfg);
    let task = k.vm.create_task();
    let (base, _o, _key) = k
        .vm_allocate_hipec(task, 24 * PAGE_SIZE, kind.program(), cap)
        .expect("install");
    for &p in trace {
        // Accesses either succeed or raise a typed error (a device fault,
        // or the security checker terminating the policy); the kernel
        // state must stay consistent either way.
        let addr = VAddr(base.0 + p * PAGE_SIZE);
        // Writes make pages dirty so flushes (and torn flushes) happen.
        let _ = k.access_sync(task, addr, p % 2 == 0);
        k.pump();
        k.check_invariants()
            .expect("invariants must survive injected faults");
    }
    let faults =
        k.vm.device()
            .fault_plan()
            .expect("plan installed")
            .trace()
            .to_vec();
    (
        faults,
        k.vm.stats.get("torn_flushes"),
        k.vm.stats.get("read_errors"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random replacement policy, random trace, random fault plan: every
    /// kernel step either succeeds or raises a typed fault, and the
    /// invariant audit passes after every step.
    #[test]
    fn policies_under_faults_preserve_invariants(
        kind_idx in 0usize..PolicyKind::ALL.len(),
        trace in prop::collection::vec(0u64..24, 1..60),
        cap in 2u64..12,
        seed in any::<u64>(),
        read_err in 0u16..120,
        write_err in 0u16..120,
        delay in 0u16..200,
        torn in 0u16..150,
    ) {
        let cfg = fault_config(seed, read_err, write_err, delay, torn);
        drive_faulty(PolicyKind::ALL[kind_idx], &trace, cap, cfg);
    }

    /// Fault injection is deterministic: the same seed yields the same
    /// injected-fault trace and the same failure counters, twice over.
    #[test]
    fn fault_injection_replays_exactly(
        kind_idx in 0usize..PolicyKind::ALL.len(),
        trace in prop::collection::vec(0u64..24, 1..40),
        cap in 2u64..12,
        seed in any::<u64>(),
    ) {
        let cfg = fault_config(seed, 80, 80, 150, 120);
        let a = drive_faulty(PolicyKind::ALL[kind_idx], &trace, cap, cfg);
        let b = drive_faulty(PolicyKind::ALL[kind_idx], &trace, cap, cfg);
        prop_assert_eq!(a, b, "same seed must replay the same failure trace");
    }
}

// --- Weighted pump under random multi-device fault plans -----------------------

/// Two containers on two devices, an arbitrary flat fault plan on the
/// second; interleaves `trace` over both regions, pumping and auditing
/// the frame-conservation invariants after every step, then returns the
/// full JSONL trace bytes plus the stats fingerprint the weighted pump
/// touches. The weighted submission order is a pure function of kernel
/// state, so the whole record must be a pure function of the inputs.
fn drive_two_device_faulty(trace: &[u64], cfg: FaultConfig) -> (Vec<u8>, u64, u64, u64) {
    use std::cell::RefCell;
    use std::rc::Rc;

    let mut params = KernelParams::paper_64mb();
    params.total_frames = 48;
    params.wired_frames = 8;
    params.free_target = 8;
    params.free_min = 4;
    params.inactive_target = 12;
    let mut k = HipecKernel::new(params);
    let dev_bad = k.add_device(hipec_disk::DeviceParams::default());
    k.vm.set_fault_plan_on(dev_bad, cfg);

    let sink = Rc::new(RefCell::new(hipec_core::JsonlSink::new(Vec::<u8>::new())));
    k.set_sink(Box::new(Rc::clone(&sink)));

    let t_a = k.vm.create_task();
    let (base_a, _, _) = k
        .vm_allocate_hipec(t_a, 24 * PAGE_SIZE, PolicyKind::Lru.program(), 4)
        .expect("install on the clean device");
    let t_b = k.vm.create_task();
    let (base_b, _, _) = k
        .vm_allocate_hipec_on(dev_bad, t_b, 24 * PAGE_SIZE, PolicyKind::Fifo.program(), 4)
        .expect("install on the faulty device");

    for (s, &p) in trace.iter().enumerate() {
        let _ = k.access_sync(t_a, VAddr(base_a.0 + p * PAGE_SIZE), s % 2 == 0);
        let _ = k.access_sync(t_b, VAddr(base_b.0 + (p * 7 % 24) * PAGE_SIZE), s % 3 != 0);
        k.pump();
        k.check_invariants()
            .expect("conservation invariants must survive the fault plan");
    }
    // Bounded drain: flat plans may keep tearing forever, but the retry
    // budget abandons each flush eventually, so the backlog always dries.
    let mut guard = 0u32;
    while let Some(done) = k.vm.next_flush_completion() {
        k.vm.clock.advance_to(done);
        k.pump();
        k.check_invariants()
            .expect("invariants hold during the drain");
        guard += 1;
        assert!(guard <= 200_000, "drain never quiesced");
    }

    let stats = k.kernel_stats();
    k.take_sink();
    let bytes = sink.borrow().get_ref().clone();
    (
        bytes,
        stats.get("torn_flushes").unwrap_or(0),
        stats.get("pump_budget_deferrals").unwrap_or(0),
        stats.get("flush_abandoned").unwrap_or(0),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Across random multi-device fault plans, the deadline/pressure-
    /// weighted pump keeps the frame books balanced after every step and
    /// replays its full JSONL trace bit-for-bit — the weighted order and
    /// the submission budget are pure functions of kernel state, never of
    /// host randomness or wall-clock time.
    #[test]
    fn weighted_pump_conserves_and_replays_under_random_plans(
        trace in prop::collection::vec(0u64..24, 1..50),
        seed in any::<u64>(),
        write_err in 0u16..120,
        delay in 0u16..400,
        torn in 0u16..=1000,
    ) {
        let cfg = fault_config(seed, 0, write_err, delay, torn);
        let a = drive_two_device_faulty(&trace, cfg);
        let b = drive_two_device_faulty(&trace, cfg);
        prop_assert_eq!(a, b, "same inputs must replay the same trace and counters");
    }
}

// --- Random command streams under faults ---------------------------------------

#[derive(Debug, Clone, Copy)]
enum PolicyOp {
    Request,
    DequeueFree,
    DequeueQ,
    EnqueueFree,
    EnqueueQ,
    Release,
    Flush,
    Fifo,
    Mru,
    RefBit,
    ModBit,
}

fn policy_op() -> impl Strategy<Value = PolicyOp> {
    prop_oneof![
        Just(PolicyOp::Request),
        Just(PolicyOp::DequeueFree),
        Just(PolicyOp::DequeueQ),
        Just(PolicyOp::EnqueueFree),
        Just(PolicyOp::EnqueueQ),
        Just(PolicyOp::Release),
        Just(PolicyOp::Flush),
        Just(PolicyOp::Fifo),
        Just(PolicyOp::Mru),
        Just(PolicyOp::RefBit),
        Just(PolicyOp::ModBit),
    ]
}

/// Assembles a straight-line policy event from the op list. Slot layout:
/// 0 free queue, 1 extra queue, 2 page, 3 int(1).
fn assemble(ops: &[PolicyOp]) -> hipec_core::PolicyProgram {
    use hipec_core::command::{build, QueueEnd};
    use hipec_core::{OperandDecl, PolicyProgram, NO_OPERAND};
    let mut p = PolicyProgram::new();
    let free = p.declare(OperandDecl::FreeQueue);
    let q = p.declare(OperandDecl::Queue { recency: false });
    let page = p.declare(OperandDecl::Page);
    let one = p.declare(OperandDecl::Int(1));
    let mut cmds = Vec::with_capacity(ops.len() + 1);
    for op in ops {
        cmds.push(match op {
            PolicyOp::Request => build::request(one, NO_OPERAND),
            PolicyOp::DequeueFree => build::dequeue(page, free, QueueEnd::Head),
            PolicyOp::DequeueQ => build::dequeue(page, q, QueueEnd::Head),
            PolicyOp::EnqueueFree => build::enqueue(page, free, QueueEnd::Tail),
            PolicyOp::EnqueueQ => build::enqueue(page, q, QueueEnd::Tail),
            PolicyOp::Release => build::release(page),
            PolicyOp::Flush => build::flush(page),
            PolicyOp::Fifo => build::fifo(q, NO_OPERAND),
            PolicyOp::Mru => build::mru(q, NO_OPERAND),
            PolicyOp::RefBit => build::is_ref(page),
            PolicyOp::ModBit => build::is_mod(page),
        });
    }
    cmds.push(build::ret(NO_OPERAND));
    p.add_event("PageFault", cmds.clone());
    p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary well-typed command streams, run repeatedly under a random
    /// fault plan, either complete or abort with a typed policy fault — and
    /// the kernel invariants hold after every event, no matter what the
    /// policy did to its queues and slots.
    #[test]
    fn random_command_streams_cannot_corrupt_the_kernel(
        ops in prop::collection::vec(policy_op(), 0..24),
        seed in any::<u64>(),
        write_err in 0u16..200,
        torn in 0u16..200,
        rounds in 1usize..6,
    ) {
        let mut params = KernelParams::paper_64mb();
        params.total_frames = 64;
        params.wired_frames = 4;
        let mut k = HipecKernel::new(params);
        k.vm.set_fault_plan(fault_config(seed, 0, write_err, 100, torn));
        let task = k.vm.create_task();
        let program = assemble(&ops);
        let (_, _, key) = match k.vm_allocate_hipec(task, 16 * PAGE_SIZE, program, 4) {
            Ok(r) => r,
            // Static validation may reject some streams; that is a typed
            // failure, not a property violation.
            Err(hipec_core::HipecError::InvalidProgram(_)) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("install failed: {e}"))),
        };
        for _ in 0..rounds {
            // Each event run either returns a value or a typed fault.
            let _ = k.run_event_raw(key, hipec_core::EVENT_PAGE_FAULT);
            k.check_invariants()
                .expect("invariants must survive arbitrary policies");
        }
        // Drain any in-flight flushes the policy started.
        while let Some(done) = k.vm.next_flush_completion() {
            k.vm.clock.advance_to(done);
            k.pump();
        }
        k.check_invariants().expect("invariants hold after drain");
        let _ = TaskId(0);
    }
}

// --- Event queue vs a sorted-model oracle -------------------------------------

#[derive(Debug, Clone)]
enum EvOp {
    Schedule(u32),
    CancelRecent,
    Pop,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The deterministic event queue pops in (time, insertion) order and
    /// honours cancellation, exactly like a stable-sorted model.
    #[test]
    fn event_queue_matches_sorted_model(
        ops in prop::collection::vec(
            prop_oneof![
                (0u32..100).prop_map(EvOp::Schedule),
                Just(EvOp::CancelRecent),
                Just(EvOp::Pop),
            ],
            1..120,
        )
    ) {
        use hipec_sim::{EventQueue, SimTime};
        let mut q: EventQueue<u64> = EventQueue::new();
        // Model: (time, seq, payload, cancelled).
        let mut model: Vec<(u64, u64, u64, bool)> = Vec::new();
        let mut seq = 0u64;
        let mut ids = Vec::new();
        for op in ops {
            match op {
                EvOp::Schedule(t) => {
                    let id = q.schedule(SimTime::from_ns(t as u64), seq);
                    model.push((t as u64, seq, seq, false));
                    ids.push((id, seq));
                    seq += 1;
                }
                EvOp::CancelRecent => {
                    if let Some((id, s)) = ids.pop() {
                        let was_live = model
                            .iter()
                            .any(|(_, ms, _, c)| *ms == s && !c);
                        prop_assert_eq!(q.cancel(id), was_live);
                        for m in model.iter_mut() {
                            if m.1 == s {
                                m.3 = true;
                            }
                        }
                    }
                }
                EvOp::Pop => {
                    let expected = model
                        .iter()
                        .filter(|(_, _, _, c)| !c)
                        .min_by_key(|(t, s, _, _)| (*t, *s))
                        .map(|(t, s, p, _)| (*t, *s, *p));
                    match (q.pop(), expected) {
                        (Some((at, payload)), Some((t, s, p))) => {
                            prop_assert_eq!(at.as_ns(), t);
                            prop_assert_eq!(payload, p);
                            model.retain(|(_, ms, _, _)| *ms != s);
                        }
                        (None, None) => {}
                        (got, want) => {
                            return Err(TestCaseError::fail(format!(
                                "pop mismatch: {got:?} vs {want:?}"
                            )))
                        }
                    }
                }
            }
            let live = model.iter().filter(|(_, _, _, c)| !c).count();
            prop_assert_eq!(q.len(), live);
        }
    }

    /// VmMap region allocation never overlaps and lookups hit the right
    /// entry, against a brute-force interval model.
    #[test]
    fn vm_map_matches_interval_model(
        regions in prop::collection::vec((1u64..32, 0u64..200), 1..24),
        probes in prop::collection::vec(0u64..8_192, 1..64),
    ) {
        use hipec_vm::{ObjectId, TaskId, VmMap, PAGE_SIZE};
        let mut map = VmMap::new();
        let mut model: Vec<(u64, u64, u32)> = Vec::new(); // (start_vpage, pages, obj)
        for (i, (pages, offset)) in regions.into_iter().enumerate() {
            let base = map
                .insert_anywhere(pages, ObjectId(i as u32), offset)
                .expect("insert");
            let start = base.vpage();
            for (ms, mp, _) in &model {
                prop_assert!(
                    start + pages <= *ms || *ms + *mp <= start,
                    "regions overlap"
                );
            }
            model.push((start, pages, i as u32));
        }
        let origin = model.first().map(|(s, _, _)| *s).unwrap_or(0);
        for probe in probes {
            let vpage = origin + probe;
            let addr = hipec_vm::VAddr(vpage * PAGE_SIZE + 1);
            let expect = model
                .iter()
                .find(|(s, p, _)| vpage >= *s && vpage < s + p)
                .map(|(_, _, o)| *o);
            let got = map.lookup(TaskId(0), addr).ok().map(|e| e.object.0);
            prop_assert_eq!(got, expect);
        }
    }
}

// --- SecurityChecker adaptation: the WakeUp equation's clamp ------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// From *any* starting interval — including ones far outside the
    /// paper's band, as after a privileged reconfiguration — `adapt`
    /// halves on a detected timeout and doubles otherwise, and the result
    /// is always clamped into `[min_interval, max_interval]` from both
    /// sides.
    #[test]
    fn checker_adaptation_is_always_clamped(
        start_ns in 1u64..20_000_000_000,
        outcomes in prop::collection::vec(any::<bool>(), 1..40),
    ) {
        use hipec_core::SecurityChecker;
        use hipec_sim::SimDuration;

        let mut checker = SecurityChecker::new();
        checker.interval = SimDuration::from_ns(start_ns);
        let min = checker.min_interval;
        let max = checker.max_interval;
        for &timed_out in &outcomes {
            let before = checker.interval;
            checker.adapt(timed_out);
            let after = checker.interval;
            prop_assert!(after >= min, "interval fell below the 250 ms floor");
            prop_assert!(after <= max, "interval rose above the 8 s ceiling");
            // Inside the band the adaptation is exactly the WakeUp
            // equation: halve on timeout, double otherwise, each clamped
            // only in the direction it moves.
            if before >= min && before <= max {
                let expect = if timed_out {
                    before.halved_with_floor(min)
                } else {
                    before.doubled_with_ceil(max)
                };
                prop_assert_eq!(after, expect);
            }
        }

        // A non-adaptive checker (the ablation) never moves at all.
        let mut frozen = SecurityChecker::new();
        frozen.interval = SimDuration::from_ns(start_ns);
        frozen.adaptive = false;
        frozen.adapt(true);
        frozen.adapt(false);
        prop_assert_eq!(frozen.interval, SimDuration::from_ns(start_ns));
    }
}

// --- Learned/adaptive policy properties ---------------------------------------

use hipec_core::OperandSlot;
use hipec_policies::native::{Awrp, LearnedCache, AWRP_W_MAX, LEARNED_W_MAX};

/// Replays `trace` in-kernel under `kind` and returns every integer
/// operand slot of the region's container afterwards.
fn int_slots_after(kind: PolicyKind, trace: &[u64], cap: u64) -> Vec<i64> {
    let mut params = KernelParams::paper_64mb();
    params.total_frames = 256;
    params.wired_frames = 8;
    let mut k = HipecKernel::new(params);
    let task = k.vm.create_task();
    let (base, _o, key) = k
        .vm_allocate_hipec(task, 32 * PAGE_SIZE, kind.program(), cap)
        .expect("install");
    for &p in trace {
        k.access_sync(task, VAddr(base.0 + p * PAGE_SIZE), p % 3 == 0)
            .expect("access");
        k.vm.pump();
    }
    k.container(key)
        .expect("container")
        .operands
        .iter()
        .filter_map(|s| match s {
            OperandSlot::Int(v) => Some(*v),
            _ => None,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The perceptron's saturating updates hold under arbitrary traces:
    /// the native reference's weights never leave `[-W_MAX, W_MAX]`.
    #[test]
    fn learned_weights_saturate_on_any_trace(
        trace in prop::collection::vec(0u64..48, 1..600),
        cap in 2usize..16,
    ) {
        let mut sim = CacheSim::new(LearnedCache::default(), cap);
        sim.run(trace.iter().copied());
        let (w_surv, w_bias) = sim.policy().weights();
        prop_assert!(w_surv.abs() <= LEARNED_W_MAX);
        prop_assert!(w_bias.abs() <= LEARNED_W_MAX);
    }

    /// The same guarantee through the whole stack: after an arbitrary
    /// in-kernel trace, every integer operand slot of the compiled Learned
    /// policy is still inside the envelope its saturating updates imply
    /// (weights at most ±w_max, the score at most the weight sum, loop
    /// counters at most the scan budget).
    #[test]
    fn learned_kernel_slots_stay_inside_the_saturation_envelope(
        trace in prop::collection::vec(0u64..32, 1..250),
        cap in 2u64..12,
    ) {
        for v in int_slots_after(PolicyKind::Learned, &trace, cap) {
            prop_assert!(v.abs() <= 3 * LEARNED_W_MAX, "slot escaped the envelope: {}", v);
        }
    }

    /// AWRP's eviction rank is a strict total order over any page set
    /// (its page-id tie-break makes every key distinct) and its component
    /// weights never leave `[1, AWRP_W_MAX]`.
    #[test]
    fn awrp_rank_is_a_strict_total_order_on_any_trace(
        trace in prop::collection::vec(0u64..48, 1..600),
        cap in 2usize..16,
    ) {
        let mut sim = CacheSim::new(Awrp::default(), cap);
        sim.run(trace.iter().copied());
        let (w_r, w_f) = sim.policy().weights();
        prop_assert!((1..=AWRP_W_MAX).contains(&w_r));
        prop_assert!((1..=AWRP_W_MAX).contains(&w_f));
        let mut keys: Vec<_> = (0..48u64).map(|p| sim.policy().rank_key(p)).collect();
        keys.sort();
        prop_assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "rank keys must be pairwise distinct and strictly ordered"
        );
    }
}

// --- Latency histograms: shard/merge equivalence, saturation, empties ---------

mod hist_props {
    use proptest::prelude::*;

    use hipec_core::hist::{LatencyHistogram, SATURATION_NS};
    use hipec_sim::SimDuration;

    fn record_all(ns: &[u64]) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for &v in ns {
            h.record(SimDuration::from_ns(v));
        }
        h
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Recording a sample set in two shards and merging is bit-identical
        /// to recording it all into one histogram, so every quantile agrees
        /// too — the property that makes `LatencyRow::merge` across
        /// containers or intervals honest.
        #[test]
        fn merge_then_quantile_equals_record_all_then_quantile(
            ns in prop::collection::vec(0u64..SATURATION_NS * 2, 0..400),
            split in 0usize..400,
            q_permille in 0u64..=1000,
        ) {
            let q = q_permille as f64 / 1000.0;
            let cut = split.min(ns.len());
            let mut merged = record_all(&ns[..cut]);
            merged.merge(&record_all(&ns[cut..]));
            let all = record_all(&ns);
            prop_assert_eq!(merged, all);
            prop_assert_eq!(merged.quantile(q), all.quantile(q));
        }

        /// Saturated samples stay in the books twice over: they clamp into
        /// the top bucket (so `count` covers every sample) and bump the
        /// dedicated saturation counter; the exact maximum survives intact.
        #[test]
        fn saturation_counting_matches_the_input(
            ns in prop::collection::vec(0u64..SATURATION_NS * 2, 1..200),
        ) {
            let h = record_all(&ns);
            let expect_sat = ns.iter().filter(|&&v| v >= SATURATION_NS).count() as u64;
            prop_assert_eq!(h.count(), ns.len() as u64);
            prop_assert_eq!(h.saturated(), expect_sat);
            prop_assert_eq!(h.max().as_ns(), ns.iter().copied().max().unwrap_or(0));
        }

        /// The empty histogram is zero everywhere, an identity under merge,
        /// and what diffing a snapshot against itself leaves behind (the
        /// interval's buckets, counts and totals all drain to zero; only the
        /// conservative max upper bound is retained).
        #[test]
        fn empty_histogram_edge_cases(
            ns in prop::collection::vec(0u64..SATURATION_NS * 2, 0..100),
            q_permille in 0u64..=1000,
        ) {
            let q = q_permille as f64 / 1000.0;
            let empty = LatencyHistogram::EMPTY;
            prop_assert_eq!(empty.count(), 0);
            prop_assert_eq!(empty.saturated(), 0);
            prop_assert_eq!(empty.quantile(q).as_ns(), 0);
            prop_assert_eq!(empty.nonzero_buckets().count(), 0);

            let h = record_all(&ns);
            let mut merged = h;
            merged.merge(&empty);
            prop_assert_eq!(merged, h);

            let drained = h.diff(&h);
            prop_assert_eq!(drained.count(), 0);
            prop_assert_eq!(drained.saturated(), 0);
            prop_assert_eq!(drained.total_ns(), 0);
            prop_assert_eq!(drained.nonzero_buckets().count(), 0);
        }
    }
}

// --- Device unplug conserves objects and pages under random fault plans -------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Hot-unplugging a device under an arbitrary flat fault plan never
    /// violates a kernel invariant, never loses the object, and abandons
    /// no further page from the unplug onward: drain traffic is
    /// budget-exempt, so conservation holds no matter how hostile the
    /// removed device's plan stays. The drain also always quiesces,
    /// because everything re-homes onto the clean boot device.
    #[test]
    fn remove_device_conserves_objects_and_pages_under_random_faults(
        seed in any::<u64>(),
        read_err in 0u16..=150,
        write_err in 0u16..=150,
        torn in 0u16..=1000,
        delay in 0u16..=1000,
        steps in 40usize..120,
    ) {
        let mut params = KernelParams::paper_64mb();
        params.total_frames = 48;
        params.wired_frames = 8;
        params.free_target = 8;
        params.free_min = 4;
        params.inactive_target = 12;
        let mut k = HipecKernel::new(params);
        let dev = k.add_device(hipec_disk::DeviceParams::default());
        k.vm.set_fault_plan_on(dev, fault_config(seed, read_err, write_err, delay, torn));

        let task = k.vm.create_task();
        let (base, obj) = k.vm.vm_allocate_on(dev, task, 40 * PAGE_SIZE).expect("region");
        for s in 0..steps {
            let p = (s as u64 * 13 + 7) % 40;
            let _ = k.access_sync(task, VAddr(base.0 + p * PAGE_SIZE), true);
            k.pump();
            k.check_invariants().expect("invariants survive the fault plan");
        }

        let abandoned_before = k.kernel_stats().get("flush_abandoned").unwrap_or(0);
        let survivor = k.remove_device(dev).expect("unplug under faults");
        prop_assert_eq!(survivor, hipec_vm::DeviceId(0));
        k.check_invariants().expect("invariants hold right after the unplug");

        let mut guard = 0u32;
        while let Some(done) = k.vm.next_flush_completion() {
            k.vm.clock.advance_to(done);
            k.pump();
            k.check_invariants().expect("invariants hold during the drain");
            guard += 1;
            prop_assert!(guard <= 200_000, "drain never quiesced");
        }

        // Conservation: the object survives on the boot device, the drain
        // abandoned nothing, and every page reads back through the
        // survivor (dev#0 never had a fault plan installed).
        prop_assert_eq!(k.vm.device_of(obj).expect("still bound"), hipec_vm::DeviceId(0));
        let stats = k.kernel_stats();
        prop_assert_eq!(stats.get("flush_abandoned").unwrap_or(0), abandoned_before);
        prop_assert_eq!(stats.get("devices_unplugged"), Some(1));
        for p in 0..40u64 {
            prop_assert!(
                k.access_sync(task, VAddr(base.0 + p * PAGE_SIZE), false).is_ok(),
                "page {} lost in the drain", p
            );
        }
    }
}

//! Shared helpers for the HiPEC cross-crate integration tests.

use hipec_core::HipecKernel;
use hipec_vm::{FrameId, TaskId, VAddr, PAGE_SIZE};

/// Replays a page trace through a task's region, waiting out device time.
pub fn replay(k: &mut HipecKernel, task: TaskId, base: VAddr, trace: &[u64]) {
    for &p in trace {
        k.access_sync(task, VAddr(base.0 + p * PAGE_SIZE), false)
            .expect("access");
        k.vm.pump();
    }
}

/// Frame-conservation audit: every frame is exactly one of wired, busy
/// (in-flight flush), on a queue, or owned-and-unqueued (mapped page taken
/// off its queue mid-operation). Panics on inconsistency and returns the
/// number of frames on queues.
pub fn audit_frames(k: &HipecKernel) -> u64 {
    let total = k.vm.frames.len() as u32;
    let mut queued = 0u64;
    let mut wired = 0u64;
    let mut busy = 0u64;
    let mut loose = 0u64;
    for i in 0..total {
        let f = FrameId(i);
        let frame = k.vm.frames.frame(f).expect("frame exists");
        let on_queue = k.vm.frames.queue_of(f).expect("valid frame").is_some();
        if frame.wired {
            assert!(!on_queue, "wired frame {i} must not be queued");
            wired += 1;
        } else if frame.busy {
            assert!(!on_queue, "busy frame {i} must not be queued");
            busy += 1;
        } else if on_queue {
            queued += 1;
        } else {
            // A frame off every queue must be owned (resident) or it leaked.
            assert!(
                frame.owner.is_some(),
                "frame {i} is unqueued, unowned, not wired, not busy: leaked"
            );
            loose += 1;
        }
    }
    assert_eq!(
        wired + busy + queued + loose,
        total as u64,
        "audit must cover every frame"
    );
    queued
}

//! Security-checker robustness: hostile or broken policies must never
//! panic the kernel, leak frames, or harm other applications — the paper's
//! §4.3.3 guarantee, exercised adversarially.

use proptest::prelude::*;

use hipec_core::command::{build, QueueEnd};
use hipec_core::{
    HipecError, HipecKernel, KernelVar, OperandDecl, PolicyProgram, RawCmd, NO_OPERAND,
};
use hipec_integration::audit_frames;
use hipec_policies::PolicyKind;
use hipec_vm::{KernelParams, VAddr, PAGE_SIZE};

fn params() -> KernelParams {
    let mut p = KernelParams::paper_64mb();
    p.total_frames = 256;
    p.wired_frames = 8;
    p
}

/// Installs a program (if the validator lets it through) and drives faults
/// at it. Whatever happens must be a clean error path, never a panic, and
/// frame accounting must stay intact.
fn exercise_hostile(program: PolicyProgram) {
    let mut k = HipecKernel::new(params());
    // A well-behaved bystander that must survive whatever happens.
    let tb = k.vm.create_task();
    let (ab, _o, kb) = k
        .vm_allocate_hipec(tb, 32 * PAGE_SIZE, PolicyKind::Fifo.program(), 16)
        .expect("bystander installs");

    let th = k.vm.create_task();
    match k.vm_allocate_hipec(th, 32 * PAGE_SIZE, program, 16) {
        Err(HipecError::InvalidProgram(_)) => {
            // Static validation caught it: fine.
        }
        Err(other) => panic!("unexpected install error: {other}"),
        Ok((ah, _obj, kh)) => {
            // Drive a few faults; every outcome except success must be a
            // clean termination.
            for p in 0..8u64 {
                match k.access_sync(th, VAddr(ah.0 + p * PAGE_SIZE), false) {
                    Ok(_) => {}
                    Err(HipecError::Terminated { .. }) => break,
                    Err(other) => panic!("unexpected runtime error: {other}"),
                }
            }
            if k.container(kh).expect("container").terminated {
                assert_eq!(k.container(kh).expect("container").allocated, 0);
            }
        }
    }
    // The bystander still works and the frame table is consistent.
    for p in 0..32u64 {
        k.access_sync(tb, VAddr(ab.0 + p * PAGE_SIZE), false)
            .expect("bystander survives");
        k.vm.pump();
    }
    assert!(!k.container(kb).expect("bystander").terminated);
    audit_frames(&k);
}

#[test]
fn infinite_loop_policy_is_detected_and_contained() {
    let mut p = PolicyProgram::new();
    let _fq = p.declare(OperandDecl::FreeQueue);
    let page = p.declare(OperandDecl::Page);
    p.add_event(
        "PageFault",
        vec![
            build::jump(hipec_core::command::JumpMode::Always, 0),
            build::ret(page),
        ],
    );
    p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
    exercise_hostile(p);
}

#[test]
fn dirty_free_policy_is_contained() {
    // Tries to push dirty pages straight onto the free queue.
    let mut p = PolicyProgram::new();
    let fq = p.declare(OperandDecl::FreeQueue);
    let q = p.declare(OperandDecl::Queue { recency: false });
    let page = p.declare(OperandDecl::Page);
    let fc = p.declare(OperandDecl::Kernel(KernelVar::FreeCount));
    let zero = p.declare(OperandDecl::Int(0));
    p.add_event(
        "PageFault",
        vec![
            build::comp(fc, zero, hipec_core::command::CompOp::Gt),
            build::jump(hipec_core::command::JumpMode::IfTrue, 4),
            // Free queue empty: move a (possibly dirty) page from our FIFO
            // back to the free queue without flushing. DirtyFree fault.
            build::dequeue(page, q, QueueEnd::Head),
            build::enqueue(page, fq, QueueEnd::Tail),
            build::dequeue(page, fq, QueueEnd::Head),
            build::enqueue(page, q, QueueEnd::Tail),
            build::ret(page),
        ],
    );
    p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);

    // Drive it with writes so pages are dirty when eviction starts.
    let mut k = HipecKernel::new(params());
    let t = k.vm.create_task();
    let (a, _o, key) = k
        .vm_allocate_hipec(t, 32 * PAGE_SIZE, p, 8)
        .expect("installs (statically valid)");
    let mut died = false;
    for round in 0..3 {
        for page in 0..32u64 {
            match k.access_sync(t, VAddr(a.0 + page * PAGE_SIZE), true) {
                Ok(_) => {}
                Err(HipecError::Terminated { reason, .. }) => {
                    assert!(
                        reason.contains("dirty") || reason.contains("flush"),
                        "round {round}: {reason}"
                    );
                    died = true;
                    break;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        if died {
            break;
        }
    }
    assert!(died, "freeing dirty pages must terminate the app");
    assert!(k.container(key).expect("container").terminated);
    audit_frames(&k);
}

#[test]
fn wild_jump_and_bad_opcode_programs_are_rejected_statically() {
    for bad_cmd in [
        RawCmd::new(0xEE, 0, 0, 0), // undefined opcode
        build::jump(hipec_core::command::JumpMode::Always, 9_999), // wild jump
        RawCmd::new(0x02, 200, 0, 0), // operand index out of range
        RawCmd::new(0x0C, 1, 0xEE, 9), // bad Set flags
    ] {
        let mut p = PolicyProgram::new();
        let _fq = p.declare(OperandDecl::FreeQueue);
        let page = p.declare(OperandDecl::Page);
        p.add_event("PageFault", vec![bad_cmd, build::ret(page)]);
        p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
        let mut k = HipecKernel::new(params());
        let t = k.vm.create_task();
        let err = k
            .vm_allocate_hipec(t, 8 * PAGE_SIZE, p, 4)
            .expect_err("checker must reject");
        assert!(matches!(err, HipecError::InvalidProgram(_)), "{bad_cmd:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary command soup: either rejected statically or contained at
    /// run time. Never a panic, never a frame leak, never collateral
    /// damage to the bystander.
    #[test]
    fn random_programs_cannot_harm_the_system(
        cmds in prop::collection::vec(any::<u32>(), 1..24),
    ) {
        let mut p = PolicyProgram::new();
        let _fq = p.declare(OperandDecl::FreeQueue);
        let _pg = p.declare(OperandDecl::Page);
        let _q = p.declare(OperandDecl::Queue { recency: true });
        let _i = p.declare(OperandDecl::Int(3));
        let _b = p.declare(OperandDecl::Bool(true));
        let _k = p.declare(OperandDecl::Kernel(KernelVar::FreeCount));
        p.add_event("PageFault", cmds.into_iter().map(RawCmd).collect());
        p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
        exercise_hostile(p);
    }

    /// Arbitrary *valid-opcode* command streams (harder to reject
    /// statically) are still contained.
    #[test]
    fn random_wellformed_programs_cannot_harm_the_system(
        raw in prop::collection::vec((0u8..21, any::<u8>(), any::<u8>(), any::<u8>()), 1..16),
    ) {
        let mut p = PolicyProgram::new();
        let _fq = p.declare(OperandDecl::FreeQueue);
        let _pg = p.declare(OperandDecl::Page);
        let _q = p.declare(OperandDecl::Queue { recency: true });
        let _i = p.declare(OperandDecl::Int(3));
        let cmds: Vec<RawCmd> = raw
            .into_iter()
            .map(|(op, a, b, c)| RawCmd::new(op, a % 8, b % 8, c % 4))
            .collect();
        p.add_event("PageFault", cmds);
        p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
        exercise_hostile(p);
    }
}

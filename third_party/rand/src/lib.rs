//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this crate provides the
//! small slice of `rand`'s API the workspace actually uses: a seedable
//! [`rngs::SmallRng`] plus [`Rng::gen_range`] / [`Rng::gen`]. The generator is
//! xoshiro256++ seeded through splitmix64 — the same construction the real
//! `SmallRng` uses on 64-bit targets — so quality and speed are comparable.
//! The exact output stream is not guaranteed to match the real crate; all
//! in-workspace consumers only rely on determinism for a fixed seed.

use core::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Expands a 64-bit seed into the full generator state.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard (uniform) distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;

    /// Draws one value uniformly from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Multiply-shift bounded sampling: uniform in `[0, bound)` without modulo
/// bias worth caring about for simulation workloads.
#[inline]
fn bounded(rng: &mut (impl RngCore + ?Sized), bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                let off = bounded(rng, width);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                if width > u64::MAX as u128 {
                    // Only reachable for the full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                let off = bounded(rng, width as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a half-open or inclusive range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Uniform draw from a type's standard distribution (`f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(r.gen_range(0u64..17) < 17);
            let v = r.gen_range(3u64..=5);
            assert!((3..=5).contains(&v));
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(99);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.gen_range(0usize..10)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }
}

//! Derive macros for the vendored `serde` stand-in.
//!
//! Generates `Serialize`/`Deserialize` impls against the stand-in's
//! `Value`-tree model using only the built-in `proc_macro` API (no `syn` /
//! `quote`, which are unavailable offline). Supported shapes cover everything
//! this workspace derives:
//!
//! * structs with named fields (externally visible as a JSON object),
//! * newtype / tuple structs (serialized as the inner value, or an array),
//! * enums with unit, newtype, and struct variants (serde's externally
//!   tagged layout: `"Variant"` or `{"Variant": ...}`).
//!
//! Generics, lifetimes, and `#[serde(...)]` attributes are not supported —
//! the attribute is accepted (so existing code parses) but must not be
//! present on derived items; types needing custom behaviour hand-write the
//! impls instead.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Consumes leading `#[...]` attribute pairs, erroring on `#[serde(...)]`.
fn skip_attrs(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                match toks.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        let body = g.stream().to_string();
                        assert!(
                            !body.starts_with("serde"),
                            "the vendored serde_derive does not support #[serde(...)] \
                             attributes; hand-write the impls instead (found #[{body}])"
                        );
                    }
                    other => panic!("malformed attribute: expected [...], got {other:?}"),
                }
            }
            _ => return,
        }
    }
}

/// Consumes an optional `pub` / `pub(...)` visibility.
fn skip_vis(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(toks.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        toks.next();
        if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            toks.next();
        }
    }
}

/// Parses `name: Type, ...` named fields, returning the field names.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut toks = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs(&mut toks);
        skip_vis(&mut toks);
        match toks.next() {
            Some(TokenTree::Ident(name)) => fields.push(name.to_string()),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        }
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected ':' after field name, got {other:?}"),
        }
        // Skip the type: everything up to a top-level comma. Generic angle
        // brackets need depth tracking since `<`/`>` are bare puncts.
        let mut depth = 0i32;
        loop {
            match toks.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    depth += 1;
                    toks.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    depth -= 1;
                    toks.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    toks.next();
                    break;
                }
                Some(_) => {
                    toks.next();
                }
            }
        }
    }
    fields
}

/// Counts tuple fields in `(Type, Type, ...)`.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut toks = body.into_iter().peekable();
    let mut count = 0usize;
    let mut saw_any = false;
    let mut depth = 0i32;
    loop {
        // Each iteration consumes one field (attrs + vis + type tokens).
        skip_attrs(&mut toks);
        skip_vis(&mut toks);
        if toks.peek().is_none() {
            break;
        }
        saw_any = true;
        loop {
            match toks.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    depth += 1;
                    toks.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    depth -= 1;
                    toks.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    toks.next();
                    break;
                }
                Some(_) => {
                    toks.next();
                }
            }
        }
        count += 1;
    }
    if saw_any {
        count
    } else {
        0
    }
}

/// Parses enum variants from the enum body.
fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut toks = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        };
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                toks.next();
                Fields::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                toks.next();
                Fields::Named(parse_named_fields(g))
            }
            _ => Fields::Unit,
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("explicit enum discriminants are not supported by the vendored derive")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => {
                variants.push(Variant { name, fields });
                break;
            }
            other => panic!("expected ',' after variant, got {other:?}"),
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    skip_attrs(&mut toks);
    skip_vis(&mut toks);
    let kind = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected struct/enum, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("generic types are not supported by the vendored serde derive ({name})");
    }
    match kind.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                fields: Fields::Named(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item::Struct {
                name,
                fields: Fields::Tuple(count_tuple_fields(g.stream())),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::Struct {
                name,
                fields: Fields::Unit,
            },
            other => panic!("unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("malformed enum body for {name}: {other:?}"),
        },
        other => panic!("derive target must be a struct or enum, got {other}"),
    }
}

fn serialize_fields_expr(path_prefix: &str, fields: &Fields) -> String {
    match fields {
        Fields::Named(names) => {
            let mut s = String::from("{ let mut __m = ::serde::Map::new(); ");
            for n in names {
                s.push_str(&format!(
                    "__m.insert(\"{n}\".to_string(), ::serde::Serialize::to_value({path_prefix}{n})); "
                ));
            }
            s.push_str("::serde::Value::Object(__m) }");
            s
        }
        Fields::Tuple(1) => format!("::serde::Serialize::to_value({path_prefix}0)"),
        Fields::Tuple(n) => {
            let mut s = String::from("::serde::Value::Array(vec![");
            for i in 0..*n {
                s.push_str(&format!("::serde::Serialize::to_value({path_prefix}{i}), "));
            }
            s.push_str("])");
            s
        }
        Fields::Unit => "::serde::Value::Null".to_string(),
    }
}

fn gen_struct_impls(name: &str, fields: &Fields) -> String {
    let ser_body = match fields {
        Fields::Named(_) | Fields::Tuple(_) => serialize_fields_expr("&self.", fields),
        Fields::Unit => "::serde::Value::Null".to_string(),
    };
    let de_body = match fields {
        Fields::Named(names) => {
            let mut s = format!(
                "let __m = __v.as_object().ok_or_else(|| ::serde::DeError::custom(\
                 \"expected object for struct {name}\"))?; Ok({name} {{ "
            );
            for n in names {
                s.push_str(&format!(
                    "{n}: ::serde::Deserialize::from_value(__m.get(\"{n}\").ok_or_else(|| \
                     ::serde::DeError::custom(\"missing field `{n}` in {name}\"))?)?, "
                ));
            }
            s.push_str("})");
            s
        }
        Fields::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(__v)?))"),
        Fields::Tuple(n) => {
            let mut s = format!(
                "let __a = __v.as_array().ok_or_else(|| ::serde::DeError::custom(\
                 \"expected array for tuple struct {name}\"))?; \
                 if __a.len() != {n} {{ return Err(::serde::DeError::custom(\
                 \"wrong tuple length for {name}\")); }} Ok({name}("
            );
            for i in 0..*n {
                s.push_str(&format!("::serde::Deserialize::from_value(&__a[{i}])?, "));
            }
            s.push_str("))");
            s
        }
        Fields::Unit => format!("let _ = __v; Ok({name})"),
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ {ser_body} }} }} \
         #[automatically_derived] impl ::serde::Deserialize for {name} {{ \
           fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {de_body} }} }}"
    )
}

fn gen_enum_impls(name: &str, variants: &[Variant]) -> String {
    // Serialize: match on self, emitting serde's externally tagged layout.
    let mut ser_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => ser_arms.push_str(&format!(
                "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()), "
            )),
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let inner = if *n == 1 {
                    "::serde::Serialize::to_value(__f0)".to_string()
                } else {
                    let mut s = String::from("::serde::Value::Array(vec![");
                    for b in &binds {
                        s.push_str(&format!("::serde::Serialize::to_value({b}), "));
                    }
                    s.push_str("])");
                    s
                };
                ser_arms.push_str(&format!(
                    "{name}::{vn}({}) => {{ let mut __m = ::serde::Map::new(); \
                     __m.insert(\"{vn}\".to_string(), {inner}); ::serde::Value::Object(__m) }} ",
                    binds.join(", ")
                ));
            }
            Fields::Named(fields) => {
                let mut inner = String::from("{ let mut __i = ::serde::Map::new(); ");
                for f in fields {
                    inner.push_str(&format!(
                        "__i.insert(\"{f}\".to_string(), ::serde::Serialize::to_value({f})); "
                    ));
                }
                inner.push_str("::serde::Value::Object(__i) }");
                ser_arms.push_str(&format!(
                    "{name}::{vn} {{ {} }} => {{ let mut __m = ::serde::Map::new(); \
                     __m.insert(\"{vn}\".to_string(), {inner}); ::serde::Value::Object(__m) }} ",
                    fields.join(", ")
                ));
            }
        }
    }

    // Deserialize: strings name unit variants, single-key objects the rest.
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}), ")),
            Fields::Tuple(1) => tagged_arms.push_str(&format!(
                "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)), "
            )),
            Fields::Tuple(n) => {
                let mut s = format!(
                    "\"{vn}\" => {{ let __a = __inner.as_array().ok_or_else(|| \
                     ::serde::DeError::custom(\"expected array for {name}::{vn}\"))?; \
                     if __a.len() != {n} {{ return Err(::serde::DeError::custom(\
                     \"wrong tuple length for {name}::{vn}\")); }} Ok({name}::{vn}("
                );
                for i in 0..*n {
                    s.push_str(&format!("::serde::Deserialize::from_value(&__a[{i}])?, "));
                }
                s.push_str(")) } ");
                tagged_arms.push_str(&s);
            }
            Fields::Named(fields) => {
                let mut s = format!(
                    "\"{vn}\" => {{ let __i = __inner.as_object().ok_or_else(|| \
                     ::serde::DeError::custom(\"expected object for {name}::{vn}\"))?; \
                     Ok({name}::{vn} {{ "
                );
                for f in fields {
                    s.push_str(&format!(
                        "{f}: ::serde::Deserialize::from_value(__i.get(\"{f}\").ok_or_else(|| \
                         ::serde::DeError::custom(\"missing field `{f}` in {name}::{vn}\"))?)?, "
                    ));
                }
                s.push_str("}) } ");
                tagged_arms.push_str(&s);
            }
        }
    }

    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ match self {{ {ser_arms} }} }} }} \
         #[automatically_derived] impl ::serde::Deserialize for {name} {{ \
           fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ \
             match __v {{ \
               ::serde::Value::Str(__s) => match __s.as_str() {{ {unit_arms} \
                 __other => Err(::serde::DeError::custom(format!(\
                   \"unknown variant `{{__other}}` for {name}\"))), }}, \
               ::serde::Value::Object(__m) if __m.len() == 1 => {{ \
                 let (__tag, __inner) = __m.iter().next().expect(\"len checked\"); \
                 match __tag.as_str() {{ {tagged_arms} \
                   __other => Err(::serde::DeError::custom(format!(\
                     \"unknown variant `{{__other}}` for {name}\"))), }} }} \
               __other => Err(::serde::DeError::custom(format!(\
                 \"expected string or single-key object for enum {name}, found {{}}\", \
                 __other.kind()))), }} }} }}"
    )
}

fn derive_impls(input: TokenStream) -> TokenStream {
    let generated = match parse_item(input) {
        Item::Struct { name, fields } => gen_struct_impls(&name, &fields),
        Item::Enum { name, variants } => gen_enum_impls(&name, &variants),
    };
    generated
        .parse()
        .expect("vendored serde_derive generated invalid Rust")
}

/// Derives both directions at once; emitted only by whichever derive runs
/// first on an item would double-define, so each derive emits only its own
/// trait. To keep the generator simple both derives share `derive_impls` and
/// filter the half they need.
fn filter_impl(full: TokenStream, trait_name: &str) -> TokenStream {
    // The generated stream is exactly two `#[automatically_derived] impl ...`
    // items; keep the one whose header mentions `trait_name`.
    let toks: Vec<TokenTree> = full.into_iter().collect();
    let mut out = TokenStream::new();
    let mut item = Vec::new();
    let mut items = Vec::new();
    for t in toks {
        let is_item_end = matches!(&t, TokenTree::Group(g) if g.delimiter() == Delimiter::Brace);
        item.push(t);
        if is_item_end
            && item
                .iter()
                .any(|t| matches!(t, TokenTree::Ident(i) if i.to_string() == "impl"))
        {
            items.push(std::mem::take(&mut item));
        }
    }
    for item in items {
        // Inspect only the header (everything before the body brace group):
        // the trait path appears there as an exact ident, which avoids the
        // "Deserialize" contains "Serialize" substring trap.
        let header_matches = item[..item.len() - 1]
            .iter()
            .any(|t| matches!(t, TokenTree::Ident(i) if i.to_string() == trait_name));
        if header_matches {
            out.extend(item);
        }
    }
    out
}

/// Derive macro for `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    filter_impl(derive_impls(input), "Serialize")
}

/// Derive macro for `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    filter_impl(derive_impls(input), "Deserialize")
}

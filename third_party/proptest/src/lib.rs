//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest's API this workspace uses — the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`/`boxed`,
//! [`prop_oneof!`], ranges/tuples/[`strategy::Just`]/[`collection::vec`]
//! strategies, [`arbitrary::any`], [`bool::ANY`], simple string patterns, and
//! [`prop_assert!`]/[`prop_assert_eq!`] — on top of a deterministic
//! per-test-name seeded generator.
//!
//! Differences from the real crate, by design:
//!
//! * **Greedy shrinking, not value trees.** When a case fails via
//!   `prop_assert!`-style failures (panics are reported unshrunk), each
//!   argument is minimized in turn while the others are held fixed: the
//!   runner greedily accepts any [`strategy::Strategy::shrink`] candidate
//!   that keeps the test failing — delta-debugged chunk removal for
//!   [`collection::vec`], descent toward the range floor (or zero) for
//!   integers and booleans. Combinators that cannot invert their mapping
//!   (`prop_map`, `prop_flat_map`, `boxed`, `prop_oneof!`) do not shrink
//!   through; their values are reported as generated. The failure report
//!   carries the minimized inputs. Arguments must be `Clone`.
//! * **Seed-based corpus persistence.** Minimized failures are appended to
//!   the conventional `proptest-regressions/<stem>.txt` file next to the
//!   test's source tree as `xs <test> <seed> <case>` entries and replayed
//!   before any fresh cases on the next run. Upstream's hashed `cc` lines
//!   are preserved but skipped (they carry no replayable seed); disable
//!   per-test with [`test_runner::ProptestConfig::persistence`]` = false`.
//! * Seeding is derived from the fully qualified test name; set
//!   `PROPTEST_SEED=<u64>` (decimal or `0x`-hex) to override for replay.

pub mod strategy;

pub mod test_runner;

pub mod arbitrary {
    //! The [`Arbitrary`] trait and [`any`] entry point.

    use crate::strategy::{ArbInt, Strategy};

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// The strategy [`any`] returns.
        type Strategy: Strategy<Value = Self>;

        /// The canonical full-domain strategy for this type.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = ArbInt<$t>;
                fn arbitrary() -> Self::Strategy {
                    ArbInt::new()
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        type Strategy = crate::bool::Any;
        fn arbitrary() -> Self::Strategy {
            crate::bool::Any
        }
    }
}

pub mod bool {
    //! Strategies for `bool`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing either boolean with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
        fn shrink(&self, value: &bool) -> Vec<bool> {
            if *value {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use core::ops::{Range, RangeInclusive};

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }

        /// Delta debugging over the vector's elements: every candidate has
        /// one contiguous chunk removed, large chunks (half the vector)
        /// first, halving down to single elements, never dropping below the
        /// length floor. Cloning the whole vector and `drain`ing the chunk
        /// keeps the element type free of any `Clone` bound of its own.
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>>
        where
            Vec<S::Value>: Clone,
        {
            let len = value.len();
            let mut out = Vec::new();
            if len <= self.size.lo {
                return out;
            }
            let mut chunk = (len / 2).max(1);
            loop {
                let mut start = 0;
                while start < len {
                    let end = (start + chunk).min(len);
                    if len - (end - start) >= self.size.lo {
                        let mut candidate = value.clone();
                        candidate.drain(start..end);
                        out.push(candidate);
                    }
                    start += chunk;
                }
                if chunk == 1 {
                    break;
                }
                chunk /= 2;
            }
            out
        }
    }
}

pub mod string {
    //! Minimal string-pattern strategies (`&str` as a strategy).
    //!
    //! Supports the `\PC{m,n}` shape ("m to n printable characters") the
    //! workspace uses; any other pattern generates itself literally.

    use crate::test_runner::TestRng;

    pub(crate) fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        if let Some(rest) = pattern.strip_prefix("\\PC{") {
            if let Some(bounds) = rest.strip_suffix('}') {
                if let Some((lo, hi)) = bounds.split_once(',') {
                    if let (Ok(lo), Ok(hi)) = (lo.parse::<u64>(), hi.parse::<u64>()) {
                        let len = lo + rng.below(hi - lo + 1);
                        return (0..len).map(|_| printable_char(rng)).collect();
                    }
                }
            }
        }
        pattern.to_string()
    }

    fn printable_char(rng: &mut TestRng) -> char {
        // Mostly ASCII printable, with a sprinkling of non-ASCII scalars to
        // exercise multi-byte handling; never a control character.
        match rng.below(10) {
            0 => {
                let mut c = ' ';
                for _ in 0..16 {
                    if let Some(x) = char::from_u32(0xA0 + rng.next_u64() as u32 % 0xFF00) {
                        if !x.is_control() {
                            c = x;
                            break;
                        }
                    }
                }
                c
            }
            _ => (0x20 + rng.below(0x5F) as u32) as u8 as char,
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Chooses uniformly among several strategies for the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fails the current test case (without panicking) if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current test case if the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let __a = $a;
        let __b = $b;
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", __a, __b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let __a = $a;
        let __b = $b;
        if !(__a == __b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    __a,
                    __b,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Fails the current test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let __a = $a;
        let __b = $b;
        if __a == __b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __a, __b
            )));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a test running `cases` random instantiations of the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run(
                &__cfg,
                concat!(module_path!(), "::", stringify!($name)),
                ::core::file!(),
                |__rng, __input| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    {
                        use ::std::fmt::Write as _;
                        $(let _ = ::core::write!(
                            __input,
                            concat!(stringify!($arg), " = {:?}; "),
                            &$arg
                        );)+
                    }
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome =
                        (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $(let $arg = ::std::clone::Clone::clone(&$arg);)+
                            $body
                            Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => {
                            // Minimize each argument in turn, holding the
                            // others (already-minimized or original) fixed.
                            $crate::__proptest_shrink! {
                                [$(($arg, $strat))+]
                                [$($arg)+]
                                $body
                            }
                            __input.clear();
                            {
                                use ::std::fmt::Write as _;
                                let _ = ::core::write!(__input, "(minimized) ");
                                $(let _ = ::core::write!(
                                    __input,
                                    concat!(stringify!($arg), " = {:?}; "),
                                    &$arg
                                );)+
                            }
                            ::std::result::Result::Err(
                                $crate::test_runner::TestCaseError::Fail(__msg),
                            )
                        }
                        __other => __other,
                    }
                },
            );
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Recurses over the argument list; each step rebinds one argument to its
/// minimized value. The second bracket carries the *full* argument list so
/// the probe closure can rebind every argument (macro repetitions of the
/// same metavariable cannot nest, hence the duplicated list).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_shrink {
    ([] [$($all:ident)+] $body:block) => {};
    ([($cur:ident, $curstrat:expr) $(($rest:ident, $reststrat:expr))*]
     [$($all:ident)+]
     $body:block
    ) => {
        let $cur = {
            let __fails = |__v: &_| -> bool {
                $(let $all = ::std::clone::Clone::clone(&$all);)+
                let $cur = $crate::test_runner::clone_like(&$cur, __v);
                // A candidate is accepted only if it reproduces the same
                // class of failure; a candidate that panics instead is
                // rejected so the report stays faithful to the original.
                let __r = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    },
                ));
                ::std::matches!(
                    __r,
                    ::std::result::Result::Ok(::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(_)
                    ))
                )
            };
            $crate::test_runner::minimize(
                ::std::clone::Clone::clone(&$cur),
                |__v| $crate::strategy::Strategy::shrink(&($curstrat), __v),
                __fails,
                512,
            )
        };
        $crate::__proptest_shrink! { [$(($rest, $reststrat))*] [$($all)+] $body }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Shape {
        Dot,
        Line(u8),
        Box(u16, u16),
    }

    fn shape() -> impl Strategy<Value = Shape> {
        prop_oneof![
            Just(Shape::Dot),
            (0u8..9).prop_map(Shape::Line),
            (1u16..4, any::<u16>()).prop_map(|(w, h)| Shape::Box(w, h)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn vec_lengths_respect_bounds(xs in prop::collection::vec(any::<u32>(), 2..7)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 7, "len {}", xs.len());
        }

        #[test]
        fn ranges_stay_in_bounds(a in 3u64..10, b in -4i32..=4, c in 0usize..1) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-4..=4).contains(&b));
            prop_assert_eq!(c, 0);
        }

        #[test]
        fn oneof_hits_every_arm(shapes in prop::collection::vec(shape(), 64..65)) {
            let dots = shapes.iter().filter(|s| **s == Shape::Dot).count();
            prop_assert!(dots < 64, "union never picked the other arms");
        }

        #[test]
        fn string_pattern_is_printable(s in "\\PC{0,40}") {
            prop_assert!(s.chars().count() <= 40);
            prop_assert!(s.chars().all(|c| !c.is_control()), "control char in {s:?}");
        }

        #[test]
        fn bools_vary(flags in prop::collection::vec(prop::bool::ANY, 64..65)) {
            prop_assert!(flags.iter().any(|&f| f));
            prop_assert!(flags.iter().any(|&f| !f));
        }
    }

    #[test]
    fn same_name_same_stream() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(any::<u64>(), 1..50);
        let mut r1 = crate::test_runner::TestRng::for_case(1234, 5);
        let mut r2 = crate::test_runner::TestRng::for_case(1234, 5);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    #[test]
    #[should_panic(expected = "proptest failure")]
    fn failures_carry_input_context() {
        // persistence off: this failure is intentional, not a regression.
        proptest! {
            #![proptest_config(ProptestConfig { persistence: false, ..ProptestConfig::with_cases(8) })]
            fn inner(x in 10u32..20) {
                prop_assert!(x < 10, "x was {x}");
            }
        }
        inner();
    }

    #[test]
    fn vec_shrink_removes_chunks_above_the_floor() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u32..100, 2..40);
        let value: Vec<u32> = (0..8).collect();
        let candidates = s.shrink(&value);
        assert!(!candidates.is_empty());
        // Most aggressive first: the first candidate drops half the vector.
        assert_eq!(candidates[0].len(), 4);
        for c in &candidates {
            assert!(c.len() >= 2, "candidate {c:?} is below the size floor");
            assert!(c.len() < value.len(), "candidate {c:?} did not shrink");
        }
        // At the floor, nothing is proposed.
        assert!(s.shrink(&vec![7, 9]).is_empty());
    }

    #[test]
    fn minimize_reduces_a_failing_vec_to_the_culprit() {
        use crate::strategy::Strategy;
        // A props.rs-style setup: a vec strategy generated a failing input;
        // the failure is caused by one element. Delta debugging must strip
        // everything else and keep the test failing.
        let s = crate::collection::vec(0u32..100, 1..40);
        let initial: Vec<u32> = (0..20).collect();
        assert!(initial.contains(&13));
        let minimized = crate::test_runner::minimize(
            initial.clone(),
            |v| s.shrink(v),
            |v| v.contains(&13),
            512,
        );
        assert!(
            minimized.len() < initial.len(),
            "minimized input {minimized:?} is not strictly smaller than {initial:?}"
        );
        assert_eq!(minimized, vec![13], "local minimum is the culprit alone");
    }

    #[test]
    fn minimize_descends_ranges_to_the_failure_boundary() {
        use crate::strategy::Strategy;
        let s = 0u32..1000;
        let minimized = crate::test_runner::minimize(937u32, |v| s.shrink(v), |v| *v >= 17, 512);
        assert_eq!(minimized, 17, "binary descent plus final linear steps");
    }

    #[test]
    #[should_panic(expected = "xs = [5, 5, 5]")]
    fn failing_cases_report_minimized_inputs() {
        // Every generated element is 5, so any failing case (length >= 3)
        // must shrink to exactly [5, 5, 5] — the panic message proves the
        // reported input is the minimized one, not the generated one.
        proptest! {
            #![proptest_config(ProptestConfig { persistence: false, ..ProptestConfig::with_cases(16) })]
            fn inner(xs in prop::collection::vec(5u32..6, 0..12)) {
                prop_assert!(xs.len() < 3, "too long: {}", xs.len());
            }
        }
        inner();
    }
}

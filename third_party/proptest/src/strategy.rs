//! The [`Strategy`] trait and combinators.

use core::fmt::Debug;
use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree: a strategy is just a
/// deterministic function of the [`TestRng`] stream, with optional
/// [`Strategy::shrink`]-based minimization after a failure.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes strictly smaller candidates derived from a failing
    /// `value`, most aggressive first. The runner greedily replaces the
    /// failing value with the first candidate that still fails and asks
    /// again ([`crate::test_runner::minimize`]), so candidate order is the
    /// search order. The default proposes nothing (no shrinking);
    /// combinators that cannot invert their mapping (`prop_map`,
    /// `prop_flat_map`, `boxed`, `prop_oneof!`) inherit it.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value>
    where
        Self::Value: Clone,
    {
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value and builds a second strategy from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Object-safe core used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn DynStrategy<T>>,
}

impl<T> Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_dyn(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Debug for Union<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

impl<T: Debug> Union<T> {
    /// Builds the union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

/// Full-domain integer strategy returned by `any::<int>()`.
pub struct ArbInt<T> {
    _marker: PhantomData<T>,
}

impl<T> ArbInt<T> {
    pub(crate) fn new() -> Self {
        ArbInt {
            _marker: PhantomData,
        }
    }
}

impl<T> Debug for ArbInt<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("ArbInt")
    }
}

/// Candidates between `lo` (the smallest legal value) and failing `value`:
/// the floor itself, the midpoint (binary descent), and the predecessor
/// (final linear steps) — computed in `i128` so no signed span overflows.
fn shrink_int_toward(lo: i128, value: i128) -> Vec<i128> {
    let mut out = Vec::new();
    if value == lo {
        return out;
    }
    out.push(lo);
    let mid = lo + (value - lo) / 2;
    if mid != lo && mid != value {
        out.push(mid);
    }
    let prev = value - 1;
    if prev != lo && prev != mid {
        out.push(prev);
    }
    out
}

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for ArbInt<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                // Full-domain integers shrink toward zero (from either side
                // for signed types: `/ 2` truncates toward zero).
                if *value == 0 {
                    return Vec::new();
                }
                let mut out = vec![0 as $t];
                let half = *value / 2;
                if half != 0 {
                    out.push(half);
                }
                out
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int_toward(self.start as i128, *value as i128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                if width > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(width as u64) as i128) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int_toward(*self.start() as i128, *value as i128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
    )*};
}

impl_int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.f64() * (self.end - self.start)
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

//! Deterministic case execution: config, RNG, and the runner behind the
//! `proptest!` macro.

use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case asked to be discarded (counted, not failed).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A discard with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// The deterministic generator strategies draw from (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// The generator for one case of a run seeded with `seed`.
    pub fn for_case(seed: u64, case: u64) -> Self {
        let mut sm = seed ^ case.wrapping_mul(0xA076_1D64_78BD_642F);
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Greedy delta debugging: repeatedly replaces `current` with the first
/// shrink candidate that still fails, restarting the candidate scan from
/// the new value, until no candidate fails or `budget` probes have run.
/// Returns the smallest failing value reached.
pub fn minimize<T>(
    initial: T,
    shrink: impl Fn(&T) -> Vec<T>,
    mut fails: impl FnMut(&T) -> bool,
    budget: usize,
) -> T {
    let mut current = initial;
    let mut probes = 0usize;
    'descend: loop {
        for candidate in shrink(&current) {
            if probes >= budget {
                break 'descend;
            }
            probes += 1;
            if fails(&candidate) {
                current = candidate;
                continue 'descend;
            }
        }
        break;
    }
    current
}

/// Type-bridging clone used by the shrink macro: `witness` (an existing
/// binding of the argument) pins the concrete type, so the candidate
/// reference needs no annotation inside macro-generated closures.
#[doc(hidden)]
pub fn clone_like<T: Clone>(witness: &T, value: &T) -> T {
    let _ = witness;
    value.clone()
}

/// FNV-1a, the base seed for a test name.
fn name_seed(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn configured_seed(name: &str) -> u64 {
    match std::env::var("PROPTEST_SEED") {
        Ok(v) => {
            let v = v.trim();
            let parsed = if let Some(hex) = v.strip_prefix("0x") {
                u64::from_str_radix(hex, 16).ok()
            } else {
                v.parse::<u64>().ok()
            };
            parsed.unwrap_or_else(|| panic!("PROPTEST_SEED must be a u64, got '{v}'"))
        }
        Err(_) => name_seed(name),
    }
}

/// Executes `cfg.cases` random instantiations of a property.
///
/// The closure receives the per-case RNG and a buffer it must fill with a
/// `Debug` rendering of the generated inputs *before* running the body, so
/// both failures and panics can report what was being tested.
pub fn run<F>(cfg: &ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng, &mut String) -> Result<(), TestCaseError>,
{
    let seed = configured_seed(name);
    let mut rejected = 0u32;
    for case in 0..cfg.cases {
        let mut rng = TestRng::for_case(seed, u64::from(case));
        let mut input = String::new();
        let outcome = catch_unwind(AssertUnwindSafe(|| f(&mut rng, &mut input)));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(TestCaseError::Reject(_))) => rejected += 1,
            Ok(Err(TestCaseError::Fail(msg))) => panic!(
                "proptest failure in {name}, case {case}/{} \
                 (replay with PROPTEST_SEED={seed:#x}): {msg}\n  input: {input}",
                cfg.cases
            ),
            Err(payload) => {
                eprintln!(
                    "proptest panic in {name}, case {case}/{} \
                     (replay with PROPTEST_SEED={seed:#x})\n  input: {input}",
                    cfg.cases
                );
                resume_unwind(payload);
            }
        }
    }
    if rejected > 0 && u64::from(rejected) * 2 > u64::from(cfg.cases) {
        panic!(
            "proptest {name}: too many rejected cases ({rejected}/{})",
            cfg.cases
        );
    }
}

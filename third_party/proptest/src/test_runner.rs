//! Deterministic case execution: config, RNG, corpus persistence, and the
//! runner behind the `proptest!` macro.

use std::fmt;
use std::fs;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
    /// Whether failing cases are persisted to (and replayed from) a
    /// `proptest-regressions/` file next to the test's source tree.
    pub persistence: bool,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            persistence: true,
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case asked to be discarded (counted, not failed).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A discard with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// The deterministic generator strategies draw from (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// The generator for one case of a run seeded with `seed`.
    pub fn for_case(seed: u64, case: u64) -> Self {
        let mut sm = seed ^ case.wrapping_mul(0xA076_1D64_78BD_642F);
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Greedy delta debugging: repeatedly replaces `current` with the first
/// shrink candidate that still fails, restarting the candidate scan from
/// the new value, until no candidate fails or `budget` probes have run.
/// Returns the smallest failing value reached.
pub fn minimize<T>(
    initial: T,
    shrink: impl Fn(&T) -> Vec<T>,
    mut fails: impl FnMut(&T) -> bool,
    budget: usize,
) -> T {
    let mut current = initial;
    let mut probes = 0usize;
    'descend: loop {
        for candidate in shrink(&current) {
            if probes >= budget {
                break 'descend;
            }
            probes += 1;
            if fails(&candidate) {
                current = candidate;
                continue 'descend;
            }
        }
        break;
    }
    current
}

/// Type-bridging clone used by the shrink macro: `witness` (an existing
/// binding of the argument) pins the concrete type, so the candidate
/// reference needs no annotation inside macro-generated closures.
#[doc(hidden)]
pub fn clone_like<T: Clone>(witness: &T, value: &T) -> T {
    let _ = witness;
    value.clone()
}

/// FNV-1a, the base seed for a test name.
fn name_seed(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn configured_seed(name: &str) -> u64 {
    match std::env::var("PROPTEST_SEED") {
        Ok(v) => {
            let v = v.trim();
            let parsed = if let Some(hex) = v.strip_prefix("0x") {
                u64::from_str_radix(hex, 16).ok()
            } else {
                v.parse::<u64>().ok()
            };
            parsed.unwrap_or_else(|| panic!("PROPTEST_SEED must be a u64, got '{v}'"))
        }
        Err(_) => name_seed(name),
    }
}

/// One replayable entry of a `proptest-regressions/` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regression {
    /// The base seed the failing run used.
    pub seed: u64,
    /// The failing case index within that run.
    pub case: u64,
}

/// Derives the regression-file path for a test source file (as produced by
/// `file!()`): `<grandparent>/proptest-regressions/<stem>.txt`, matching
/// upstream proptest's layout — `tests/props.rs` maps to
/// `proptest-regressions/props.txt` at the workspace root,
/// `crates/disk/src/flash.rs` to `crates/disk/proptest-regressions/flash.txt`.
///
/// `file!()` paths are relative to the compilation workspace root while the
/// test binary runs from the package directory, so the root is recovered by
/// walking up from the current directory to the first ancestor that
/// actually contains the source file. Returns `None` when no ancestor does
/// (e.g. the binary moved to another machine).
pub fn regression_path(source_file: &str) -> Option<PathBuf> {
    let src = Path::new(source_file);
    let stem = src.file_stem()?.to_str()?;
    let base = src
        .parent()
        .and_then(Path::parent)
        .unwrap_or_else(|| Path::new(""));
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join(src).is_file() {
            return Some(
                dir.join(base)
                    .join("proptest-regressions")
                    .join(format!("{stem}.txt")),
            );
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Parses the entries of a regression file that belong to `name`.
///
/// Lines are `xs <test_name> <seed_hex> <case> # shrinks to <input>`.
/// Comments, blanks, and upstream's hashed `cc <sha> # ...` entries are
/// skipped — `cc` lines carry no seed, so they cannot be replayed here;
/// they stay in the file for runs under the real crate.
pub fn load_regressions(path: &Path, name: &str) -> Vec<Regression> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        let mut parts = line.split_whitespace();
        if parts.next() != Some("xs") {
            continue;
        }
        let (Some(n), Some(seed), Some(case)) = (parts.next(), parts.next(), parts.next()) else {
            continue;
        };
        if n != name {
            continue;
        }
        let Some(seed) = seed
            .strip_prefix("0x")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
        else {
            continue;
        };
        let Ok(case) = case.parse::<u64>() else {
            continue;
        };
        out.push(Regression { seed, case });
    }
    out
}

const REGRESSION_HEADER: &str = "\
# Seeds for failure cases proptest has generated in the past. It is
# automatically read and these particular cases re-run before any
# novel cases are generated.
#
# It is recommended to check this file in to source control so that
# everyone who runs the test benefits from these saved cases.
";

/// Appends one failing case to the regression file (creating it, with the
/// conventional header, as needed). Duplicate (name, seed, case) entries
/// are not written twice. Best-effort: I/O problems are reported to stderr
/// but never mask the test failure being recorded.
pub fn persist_failure(path: &Path, name: &str, seed: u64, case: u64, input: &str) {
    let prefix = format!("xs {name} {seed:#x} {case}");
    let existing = fs::read_to_string(path).unwrap_or_default();
    if existing
        .lines()
        .any(|l| l.trim().starts_with(prefix.as_str()))
    {
        return;
    }
    let mut text = if existing.is_empty() {
        REGRESSION_HEADER.to_string()
    } else {
        existing
    };
    if !text.ends_with('\n') {
        text.push('\n');
    }
    let input = input.replace('\n', " ");
    text.push_str(&format!("{prefix} # shrinks to {input}\n"));
    if let Some(dir) = path.parent() {
        let _ = fs::create_dir_all(dir);
    }
    if let Err(e) = fs::write(path, text) {
        eprintln!(
            "proptest: could not persist regression to {}: {e}",
            path.display()
        );
    }
}

/// Executes `cfg.cases` random instantiations of a property.
///
/// `source_file` is the `file!()` of the test's source, used to locate the
/// `proptest-regressions/` corpus: persisted failures replay *before* any
/// fresh cases, and new failures are appended (minimized input included)
/// when `cfg.persistence` is set.
///
/// The closure receives the per-case RNG and a buffer it must fill with a
/// `Debug` rendering of the generated inputs *before* running the body, so
/// both failures and panics can report what was being tested.
pub fn run<F>(cfg: &ProptestConfig, name: &str, source_file: &str, mut f: F)
where
    F: FnMut(&mut TestRng, &mut String) -> Result<(), TestCaseError>,
{
    let corpus = if cfg.persistence {
        regression_path(source_file)
    } else {
        None
    };

    // Replay persisted regressions first: a reintroduced bug fails in
    // milliseconds instead of whenever the random walk finds it again.
    if let Some(path) = &corpus {
        for r in load_regressions(path, name) {
            let mut rng = TestRng::for_case(r.seed, r.case);
            let mut input = String::new();
            let outcome = catch_unwind(AssertUnwindSafe(|| f(&mut rng, &mut input)));
            match outcome {
                Ok(Ok(())) | Ok(Err(TestCaseError::Reject(_))) => {}
                Ok(Err(TestCaseError::Fail(msg))) => panic!(
                    "proptest failure in {name}: persisted regression \
                     (seed {:#x}, case {}) still fails: {msg}\n  input: {input}",
                    r.seed, r.case
                ),
                Err(payload) => {
                    eprintln!(
                        "proptest panic in {name}: persisted regression \
                         (seed {:#x}, case {})\n  input: {input}",
                        r.seed, r.case
                    );
                    resume_unwind(payload);
                }
            }
        }
    }

    let seed = configured_seed(name);
    let mut rejected = 0u32;
    for case in 0..cfg.cases {
        let mut rng = TestRng::for_case(seed, u64::from(case));
        let mut input = String::new();
        let outcome = catch_unwind(AssertUnwindSafe(|| f(&mut rng, &mut input)));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(TestCaseError::Reject(_))) => rejected += 1,
            Ok(Err(TestCaseError::Fail(msg))) => {
                if let Some(path) = &corpus {
                    persist_failure(path, name, seed, u64::from(case), &input);
                }
                panic!(
                    "proptest failure in {name}, case {case}/{} \
                     (replay with PROPTEST_SEED={seed:#x}): {msg}\n  input: {input}",
                    cfg.cases
                )
            }
            Err(payload) => {
                if let Some(path) = &corpus {
                    persist_failure(path, name, seed, u64::from(case), &input);
                }
                eprintln!(
                    "proptest panic in {name}, case {case}/{} \
                     (replay with PROPTEST_SEED={seed:#x})\n  input: {input}",
                    cfg.cases
                );
                resume_unwind(payload);
            }
        }
    }
    if rejected > 0 && u64::from(rejected) * 2 > u64::from(cfg.cases) {
        panic!(
            "proptest {name}: too many rejected cases ({rejected}/{})",
            cfg.cases
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hipec-proptest-{}", std::process::id()));
        let _ = fs::create_dir_all(&dir);
        dir.join(name)
    }

    #[test]
    fn entries_parse_and_legacy_lines_are_skipped() {
        let path = scratch("parse.txt");
        fs::write(
            &path,
            "# comment\n\
             cc 9eca8f8e7df22dbed78dfdd0 # shrinks to ops = [Pop]\n\
             xs props::conserve 0xdead 7 # shrinks to xs = [1]\n\
             xs props::other 0xbeef 3 # shrinks to ys = []\n\
             garbage line\n",
        )
        .unwrap();
        let got = load_regressions(&path, "props::conserve");
        assert_eq!(
            got,
            vec![Regression {
                seed: 0xdead,
                case: 7
            }]
        );
        assert!(load_regressions(&path, "props::absent").is_empty());
    }

    #[test]
    fn persist_writes_header_once_and_dedups() {
        let path = scratch("persist.txt");
        let _ = fs::remove_file(&path);
        persist_failure(&path, "t::a", 0x5EED, 12, "xs = [3, 4]");
        persist_failure(&path, "t::a", 0x5EED, 12, "xs = [3, 4]");
        persist_failure(&path, "t::b", 0x5EED, 3, "n = 9");
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(text.matches("# Seeds for failure cases").count(), 1);
        assert_eq!(text.matches("xs t::a 0x5eed 12").count(), 1);
        assert!(text.contains("xs t::b 0x5eed 3 # shrinks to n = 9"));
        let got = load_regressions(&path, "t::a");
        assert_eq!(
            got,
            vec![Regression {
                seed: 0x5EED,
                case: 12
            }]
        );
    }

    #[test]
    fn regression_path_maps_grandparent_layout() {
        // This crate's own lib.rs resolves from the manifest dir: the
        // grandparent of `src/lib.rs`-style paths is the crate root.
        let cwd = std::env::current_dir().unwrap();
        let p = regression_path("src/lib.rs").expect("resolvable from the crate dir");
        assert_eq!(p, cwd.join("proptest-regressions/lib.txt"));
        assert!(regression_path("no/such/file.rs").is_none());
    }
}

//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach a registry, so this crate supplies the
//! serialization model the workspace needs. Instead of serde's visitor
//! machinery it uses a simple self-describing [`Value`] tree:
//! [`Serialize::to_value`] converts data into a `Value`, and
//! [`Deserialize::from_value`] converts back. `serde_json` (also vendored)
//! renders `Value` to and from JSON text, and the `serde_derive` proc-macro
//! derives both traits for plain structs and enums with serde's
//! externally-tagged layout, so derived types produce the same JSON shapes
//! the real crates would.

use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (mirrors the JSON data model, with
/// integers kept exact).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer too large for `i64`.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// A key/value map with insertion order preserved.
    Object(Map),
}

impl Value {
    /// The object payload, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::I64(i) => u64::try_from(i).ok(),
            Value::U64(u) => Some(u),
            _ => None,
        }
    }

    /// The integer payload as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(i) => Some(i),
            Value::U64(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// The numeric payload as `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(i) => Some(i as f64),
            Value::U64(u) => Some(u as f64),
            Value::F64(f) => Some(f),
            _ => None,
        }
    }

    /// A short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// An insertion-ordered string-keyed map.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts or replaces a key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// An error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

pub mod de {
    //! Deserialization-side names, for `serde::de::...` paths.
    pub use crate::DeError as Error;
}

pub mod ser {
    //! Serialization-side names, for `serde::ser::...` paths.
}

/// Conversion into the self-describing [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Reconstruction from the self-describing [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes a value of this type from `v`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

fn wrong_kind(expected: &str, got: &Value) -> DeError {
    DeError::custom(format!("expected {expected}, found {}", got.kind()))
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as u64;
                match i64::try_from(v) {
                    Ok(i) => Value::I64(i),
                    Err(_) => Value::U64(v),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = v.as_u64().ok_or_else(|| wrong_kind("unsigned integer", v))?;
                <$t>::try_from(u).map_err(|_| {
                    DeError::custom(format!(
                        "integer {u} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i64().ok_or_else(|| wrong_kind("integer", v))?;
                <$t>::try_from(i).map_err(|_| {
                    DeError::custom(format!(
                        "integer {i} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(wrong_kind("bool", v)),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| wrong_kind("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(wrong_kind("string", v)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| wrong_kind("array", v))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        for v in [0u64, 1, u64::MAX] {
            assert_eq!(u64::from_value(&v.to_value()).unwrap(), v);
        }
        for v in [i64::MIN, -1, 0, i64::MAX] {
            assert_eq!(i64::from_value(&v.to_value()).unwrap(), v);
        }
        assert!(bool::from_value(&true.to_value()).unwrap());
        let s = "héllo".to_string();
        assert_eq!(String::from_value(&s.to_value()).unwrap(), s);
        let xs = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&xs.to_value()).unwrap(), xs);
    }

    #[test]
    fn out_of_range_integers_fail() {
        assert!(u8::from_value(&Value::I64(300)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
    }

    #[test]
    fn map_preserves_insertion_order() {
        let mut m = Map::new();
        m.insert("z".into(), Value::I64(1));
        m.insert("a".into(), Value::I64(2));
        let keys: Vec<_> = m.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a"]);
        m.insert("z".into(), Value::I64(9));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get("z"), Some(&Value::I64(9)));
    }
}

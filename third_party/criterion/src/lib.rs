//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace benches use (`benchmark_group`,
//! `bench_function`, `Bencher::iter`, throughput annotation, the
//! `criterion_group!`/`criterion_main!` macros and `black_box`) with a
//! simple mean-of-N wall-clock measurement instead of criterion's full
//! statistical machinery. Good enough to keep `cargo bench` runnable and the
//! bench targets compiling under `--all-targets`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.into(), 10, None, f);
        self
    }
}

/// Units processed per iteration, used to report a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates the amount of work done per iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, name.into());
        run_benchmark(&id, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times the closure handed to [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Measures one batch of calls to `f`.
    ///
    /// The batch grows until it runs long enough to swamp the `Instant`
    /// timer overhead (tens of nanoseconds — the same order as a single
    /// iteration of a dispatch-level microbench), so per-iteration means
    /// stay meaningful down to nanosecond scale.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_micros(200) || batch >= (1 << 20) {
                self.elapsed += elapsed;
                self.iters += batch;
                return;
            }
            batch *= 8;
        }
    }
}

fn run_benchmark<F>(id: &str, samples: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher::default();
    for _ in 0..samples {
        f(&mut b);
    }
    if b.iters == 0 {
        println!("  {id}: no iterations");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(", {:.0} elem/s", n as f64 / per_iter),
        Throughput::Bytes(n) => format!(", {:.0} B/s", n as f64 / per_iter),
    });
    println!(
        "  {id}: {:.3} ms/iter over {} iters{}",
        per_iter * 1e3,
        b.iters,
        rate.unwrap_or_default()
    );
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.throughput(Throughput::Elements(4));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runner_runs() {
        benches();
    }
}

//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde` [`Value`] tree to JSON text and parses JSON
//! text back, covering the workspace's usage: `to_string`, `to_string_pretty`,
//! `from_str`, [`json!`], [`Map`] and [`Value`]. Integers round-trip exactly
//! (`i64`/`u64` are kept out of floating point); floats use Rust's shortest
//! round-trip formatting.

use std::fmt;
use std::fmt::Write as _;

pub use serde::{Map, Value};

/// Serialization or deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => {
            let _ = write!(out, "{i}");
        }
        Value::U64(u) => {
            let _ = write!(out, "{u}");
        }
        Value::F64(f) => {
            if f.is_finite() {
                let _ = write!(out, "{f:?}");
            } else {
                // serde_json renders non-finite floats as null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            b't' => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            b'f' => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            b'"' => self.string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut map = Map::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    let key = self.string()?;
                    self.expect(b':')?;
                    map.insert(key, self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Object(map));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character '{}' at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(Error::new("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(Error::new("invalid escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so this is safe).
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| Error::new("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::new("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("bad number '{text}'")))
    }
}

/// Builds a [`Value`] from a JSON-ish literal. Object values and array
/// elements may be arbitrary expressions of serializable types.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::to_value(&$elem)),* ])
    };
    ({ $($key:tt : $val:expr),* $(,)? }) => {{
        let mut __m = $crate::Map::new();
        $( __m.insert(($key).to_string(), $crate::to_value(&$val)); )*
        $crate::Value::Object(__m)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-7", "9007199254740993"] {
            let v: Value = from_str(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
        let v: Value = from_str("18446744073709551615").unwrap();
        assert_eq!(v, Value::U64(u64::MAX));
    }

    #[test]
    fn exact_integers_survive() {
        let big = i64::MAX - 3;
        let text = to_string(&big).unwrap();
        let back: i64 = from_str(&text).unwrap();
        assert_eq!(back, big);
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "a\"b\\c\nd\té ☃".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
        let surrogate: String = from_str(r#""😀""#).unwrap();
        assert_eq!(surrogate, "😀");
    }

    #[test]
    fn json_macro_builds_objects() {
        let rows = vec![1u64, 2, 3];
        let v = json!({ "name": "x", "rows": rows, "ok": true, "f": 1.5 });
        let text = to_string(&v).unwrap();
        assert_eq!(text, r#"{"name":"x","rows":[1,2,3],"ok":true,"f":1.5}"#);
    }

    #[test]
    fn pretty_printing_indents() {
        let v = json!({ "a": [1, 2] });
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a":{"b":[1,2,{"c":null}]},"d":[[],{}]}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }
}

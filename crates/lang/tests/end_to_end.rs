//! End-to-end translator tests: pseudo-code → commands → real faults.

use hipec_core::{validate_program, HipecKernel};
use hipec_vm::{KernelParams, TaskId, VAddr, PAGE_SIZE};

fn params() -> KernelParams {
    let mut p = KernelParams::paper_64mb();
    p.total_frames = 256;
    p.wired_frames = 16;
    p
}

fn sweep(k: &mut HipecKernel, task: TaskId, base: VAddr, pages: u64, write: bool) {
    for i in 0..pages {
        k.access_sync(task, VAddr(base.0 + i * PAGE_SIZE), write)
            .expect("access");
        k.vm.pump();
    }
}

/// The paper's Figure 4: FIFO with second chance, written in pseudo-code.
const FIFO_SECOND_CHANCE: &str = r#"
    queue active_q;
    queue inactive_q;
    int inactive_target = 8;
    int free_target = 2;

    event PageFault() {
        if (free_count == 0) {
            activate Lack_free_frame;
        }
        page p = dequeue_head(free_queue);
        enqueue_tail(active_q, p);
        return p;
    }

    event Lack_free_frame() {
        // FIFO with second chance.
        while (inactive_count < inactive_target && active_count > 0) {
            page p = dequeue_head(active_q);
            reset_ref(p);
            enqueue_tail(inactive_q, p);
        }
        while (free_count < free_target && inactive_count > 0) {
            page q = dequeue_head(inactive_q);
            if (referenced(q)) {
                enqueue_tail(active_q, q);
                reset_ref(q);
            } else {
                if (modified(q)) {
                    flush(q);
                }
                enqueue_head(free_queue, q);
            }
        }
    }

    event ReclaimFrame() {
        int released = 0;
        while (released < reclaim_target) {
            if (free_count == 0) {
                activate Lack_free_frame;
            }
            page p = dequeue_head(free_queue);
            release(p);
            released = released + 1;
        }
    }
"#;

#[test]
fn figure4_policy_compiles_validates_and_runs() {
    let program = hipec_lang::compile(FIFO_SECOND_CHANCE).expect("compiles");
    validate_program(&program).expect("passes the security checker");
    assert_eq!(program.event_names[0], "PageFault");
    assert_eq!(program.event_names[1], "ReclaimFrame");

    let mut k = HipecKernel::new(params());
    let task = k.vm.create_task();
    let pages = 96u64;
    let (addr, _obj, key) = k
        .vm_allocate_hipec(task, pages * PAGE_SIZE, program, 48)
        .expect("install");
    // Two read sweeps: the 96-page region cycles through 48 frames.
    sweep(&mut k, task, addr, pages, false);
    sweep(&mut k, task, addr, pages, false);
    let c = k.container(key).expect("container");
    assert!(!c.terminated, "the compiled policy must run cleanly");
    assert_eq!(c.stats.faults, 2 * pages, "cyclic FIFO faults every page");
    // Dirtying sweep: flushes must happen.
    sweep(&mut k, task, addr, pages, true);
    sweep(&mut k, task, addr, pages, false);
    let c = k.container(key).expect("container");
    assert!(c.stats.flushes > 0, "dirty pages go through flush()");
}

#[test]
fn compiled_mru_matches_the_papers_fault_formula() {
    let source = r#"
        recency queue rq;

        event PageFault() {
            if (free_count == 0) {
                mru(rq);
            }
            page p = dequeue_head(free_queue);
            enqueue_tail(rq, p);
            return p;
        }
        event ReclaimFrame() { return; }
    "#;
    let program = hipec_lang::compile(source).expect("compiles");
    validate_program(&program).expect("valid");

    let mut k = HipecKernel::new(params());
    let task = k.vm.create_task();
    let (pages, min, loops) = (60u64, 40u64, 5u64);
    let (addr, _obj, key) = k
        .vm_allocate_hipec(task, pages * PAGE_SIZE, program, min)
        .expect("install");
    for _ in 0..loops {
        sweep(&mut k, task, addr, pages, false);
    }
    let faults = k.container(key).expect("container").stats.faults;
    let expected = (pages - min) * (loops - 1) + pages; // the paper's PF_m
    assert_eq!(faults, expected);
}

#[test]
fn arithmetic_and_bool_plumbing_work_at_runtime() {
    // Exercises temporaries, &&/||, bool variables and else-if chains in a
    // policy that still serves pages correctly.
    let source = r#"
        queue q;
        int counter = 0;
        bool warm = false;

        event PageFault() {
            counter = counter * 2 + 1;
            if (counter > 100 && !warm) {
                warm = true;
            }
            if (warm || counter % 2 == 1) {
                page p = dequeue_head(free_queue);
                enqueue_tail(q, p);
                return p;
            } else if (counter == 0) {
                return;
            }
            page fallback = dequeue_head(free_queue);
            return fallback;
        }
        event ReclaimFrame() { return; }
    "#;
    let program = hipec_lang::compile(source).expect("compiles");
    validate_program(&program).expect("valid");
    let mut k = HipecKernel::new(params());
    let task = k.vm.create_task();
    let (addr, _obj, key) = k
        .vm_allocate_hipec(task, 8 * PAGE_SIZE, program, 8)
        .expect("install");
    sweep(&mut k, task, addr, 8, false);
    let c = k.container(key).expect("container");
    assert!(!c.terminated);
    assert_eq!(c.stats.faults, 8);
}

#[test]
fn undeclared_identifier_is_a_compile_error() {
    let errs = hipec_lang::compile(
        "event PageFault() { page p = dequeue_head(mystery_queue); return p; }\n\
         event ReclaimFrame() { return; }",
    )
    .expect_err("must fail");
    assert!(errs.iter().any(|d| d.message.contains("mystery_queue")));
}

#[test]
fn missing_mandatory_event_is_a_compile_error() {
    let errs = hipec_lang::compile("event PageFault() { return; }").expect_err("must fail");
    assert!(errs.iter().any(|d| d.message.contains("ReclaimFrame")));
}

#[test]
fn type_errors_are_caught_by_the_translator() {
    // Enqueueing an int, comparing a queue, assigning to a kernel counter.
    let errs = hipec_lang::compile(
        r#"
        queue q;
        int x = 1;
        event PageFault() {
            enqueue_tail(q, x);
            return;
        }
        event ReclaimFrame() {
            free_count = 3;
        }
        "#,
    )
    .expect_err("must fail");
    assert!(errs.len() >= 2, "got: {errs:?}");
}

#[test]
fn compiled_programs_round_trip_through_the_wire_format() {
    let program = hipec_lang::compile(FIFO_SECOND_CHANCE).expect("compiles");
    let words = program.to_words();
    let back = hipec_core::PolicyProgram::from_words(&words).expect("decodes");
    assert_eq!(back.decls, program.decls);
    for (a, b) in back.events.iter().zip(program.events.iter()) {
        assert_eq!(a.as_slice(), b.as_slice());
    }
    // And the disassembly of a compiled program reassembles identically.
    let text = hipec_lang::disassemble(&program);
    let re = hipec_lang::assemble(&text).expect("reassembles");
    for (a, b) in re.events.iter().zip(program.events.iter()) {
        assert_eq!(a.as_slice(), b.as_slice());
    }
}

#[test]
fn break_and_continue_compile_and_run() {
    // A policy whose reclaim loop skips every other candidate (continue)
    // and bails out entirely after releasing three frames (break).
    let source = r#"
        queue q;

        event PageFault() {
            if (free_count == 0) {
                fifo(q);
            }
            page p = dequeue_head(free_queue);
            enqueue_tail(q, p);
            return p;
        }

        event ReclaimFrame() {
            int released = 0;
            int seen = 0;
            while (allocated_count > 0) {
                seen = seen + 1;
                if (seen % 2 == 0) {
                    continue;
                }
                if (free_count == 0) {
                    fifo(q);
                }
                page p = dequeue_head(free_queue);
                release(p);
                released = released + 1;
                if (released == 3) {
                    break;
                }
            }
            return released;
        }
    "#;
    let program = hipec_lang::compile(source).expect("compiles");
    validate_program(&program).expect("valid");
    let mut k = HipecKernel::new(params());
    let task = k.vm.create_task();
    let (addr, _obj, key) = k
        .vm_allocate_hipec(task, 16 * PAGE_SIZE, program, 12)
        .expect("install");
    sweep(&mut k, task, addr, 16, false);
    // Drive ReclaimFrame directly: it must release exactly 3 frames.
    let before = k.container(key).expect("container").allocated;
    let v = k
        .run_event_raw(key, hipec_core::EVENT_RECLAIM_FRAME)
        .expect("reclaim runs");
    assert_eq!(v, hipec_core::ExecValue::Int(3));
    assert_eq!(k.container(key).expect("container").allocated, before - 3);
}

#[test]
fn break_outside_loop_is_a_compile_error() {
    let errs =
        hipec_lang::compile("event PageFault() { break; }\nevent ReclaimFrame() { return; }")
            .expect_err("must fail");
    assert!(errs.iter().any(|d| d.message.contains("outside")));
}

#[test]
fn compile_optimized_preserves_behaviour_and_shrinks() {
    let program = hipec_lang::compile(FIFO_SECOND_CHANCE).expect("compiles");
    let optimized = hipec_lang::compile_optimized(FIFO_SECOND_CHANCE).expect("compiles");
    assert!(optimized.total_commands() <= program.total_commands());
    validate_program(&optimized).expect("valid");
    let run = |prog: hipec_core::PolicyProgram| -> u64 {
        let mut k = HipecKernel::new(params());
        let task = k.vm.create_task();
        let (addr, _obj, key) = k
            .vm_allocate_hipec(task, 96 * PAGE_SIZE, prog, 48)
            .expect("install");
        sweep(&mut k, task, addr, 96, false);
        sweep(&mut k, task, addr, 96, false);
        k.container(key).expect("container").stats.faults
    };
    assert_eq!(run(program), run(optimized));
}

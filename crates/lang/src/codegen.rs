//! Code generation: AST → HiPEC command streams.
//!
//! The generator targets the condition-flag architecture of the command
//! set: conditions compile to *test* commands followed by moded `Jump`s,
//! `&&`/`||` short-circuit through labels, and integer expressions compile
//! to the two-address `Arith` command through a small pool of temporary
//! operand slots. Jumps are backpatched once an event's layout is final.

use std::collections::HashMap;

use hipec_core::command::{build, ArithOp, JumpMode, OpCode, PageBit, QueueEnd, RawCmd};
use hipec_core::{KernelVar, OperandDecl, PolicyProgram, NO_OPERAND};

use crate::ast::{
    Builtin, Cond, Decl, EventDef, IntBinOp, IntExpr, PageExpr, Policy, ReplaceKind, RetVal, Stmt,
};
use crate::diag::{Diagnostic, Span};

/// Compiles a parsed policy into a [`PolicyProgram`].
pub fn compile_ast(ast: &Policy) -> Result<PolicyProgram, Vec<Diagnostic>> {
    Codegen::default().run(ast)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SymKind {
    Int,
    Bool,
    Page,
    Queue,
    KernelInt,
}

#[derive(Debug, Clone, Copy)]
struct Sym {
    slot: u8,
    kind: SymKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Label(usize);

#[derive(Default)]
struct Codegen {
    decls: Vec<OperandDecl>,
    scopes: Vec<HashMap<String, Sym>>,
    const_slots: HashMap<i64, u8>,
    temp_free: Vec<u8>,
    temp_slots: Vec<u8>,
    event_ids: HashMap<String, u8>,
    code: Vec<RawCmd>,
    labels: Vec<Option<u16>>,
    fixups: Vec<(usize, Label)>,
    /// (head, exit) labels of enclosing `while` loops.
    loop_stack: Vec<(Label, Label)>,
    errors: Vec<Diagnostic>,
}

const KERNEL_COUNTERS: [(&str, KernelVar); 7] = [
    ("free_count", KernelVar::FreeCount),
    ("active_count", KernelVar::ActiveCount),
    ("inactive_count", KernelVar::InactiveCount),
    ("allocated_count", KernelVar::AllocatedCount),
    ("min_frames", KernelVar::MinFrames),
    ("global_free_count", KernelVar::GlobalFreeCount),
    ("reclaim_target", KernelVar::ReclaimTarget),
];

type CgResult<T> = Result<T, Diagnostic>;

impl Codegen {
    fn run(mut self, ast: &Policy) -> Result<PolicyProgram, Vec<Diagnostic>> {
        self.scopes.push(HashMap::new());

        // Event numbering: PageFault = 0, ReclaimFrame = 1, rest in order.
        let mut ordered: Vec<Option<&EventDef>> = vec![None, None];
        for ev in &ast.events {
            let id = match ev.name.as_str() {
                "PageFault" => 0,
                "ReclaimFrame" => 1,
                _ => {
                    ordered.push(Some(ev));
                    ordered.len() - 1
                }
            };
            if id < 2 {
                if ordered[id].is_some() {
                    self.errors.push(Diagnostic::new(
                        ev.span,
                        format!("duplicate event `{}`", ev.name),
                    ));
                }
                ordered[id] = Some(ev);
            }
            if self.event_ids.insert(ev.name.clone(), id as u8).is_some() && id >= 2 {
                self.errors.push(Diagnostic::new(
                    ev.span,
                    format!("duplicate event `{}`", ev.name),
                ));
            }
        }
        if ordered[0].is_none() {
            self.errors.push(Diagnostic::new(
                Span::default(),
                "missing mandatory event `PageFault`",
            ));
        }
        if ordered[1].is_none() {
            self.errors.push(Diagnostic::new(
                Span::default(),
                "missing mandatory event `ReclaimFrame`",
            ));
        }

        // Globals.
        for d in &ast.globals {
            if let Err(e) = self.global_decl(d) {
                self.errors.push(e);
            }
        }

        // Events.
        let mut program = PolicyProgram::new();
        let mut compiled: Vec<(String, Vec<RawCmd>)> = Vec::new();
        for ev in ordered.iter().flatten() {
            match self.event(ev) {
                Ok(code) => compiled.push((ev.name.clone(), code)),
                Err(e) => self.errors.push(e),
            }
        }
        if !self.errors.is_empty() {
            return Err(self.errors);
        }
        program.decls = self.decls;
        for (name, code) in compiled {
            program.add_event(name, code);
        }
        Ok(program)
    }

    // --- Declarations and symbols -------------------------------------------

    fn declare_slot(&mut self, decl: OperandDecl, span: Span) -> CgResult<u8> {
        if self.decls.len() >= 255 {
            return Err(Diagnostic::new(
                span,
                "too many variables: the operand array holds 255 slots",
            ));
        }
        self.decls.push(decl);
        Ok((self.decls.len() - 1) as u8)
    }

    fn define(&mut self, name: &str, sym: Sym, span: Span) -> CgResult<()> {
        let scope = self.scopes.last_mut().expect("scope stack is non-empty");
        if scope.insert(name.to_string(), sym).is_some() {
            return Err(Diagnostic::new(
                span,
                format!("`{name}` is already declared in this scope"),
            ));
        }
        Ok(())
    }

    fn lookup(&mut self, name: &str, span: Span) -> CgResult<Sym> {
        for scope in self.scopes.iter().rev() {
            if let Some(s) = scope.get(name) {
                return Ok(*s);
            }
        }
        // Kernel symbols materialize on first use.
        if name == "free_queue" {
            let slot = self.declare_slot(OperandDecl::FreeQueue, span)?;
            let sym = Sym {
                slot,
                kind: SymKind::Queue,
            };
            self.scopes[0].insert(name.to_string(), sym);
            return Ok(sym);
        }
        if let Some((_, var)) = KERNEL_COUNTERS.iter().find(|(n, _)| *n == name) {
            let slot = self.declare_slot(OperandDecl::Kernel(*var), span)?;
            let sym = Sym {
                slot,
                kind: SymKind::KernelInt,
            };
            self.scopes[0].insert(name.to_string(), sym);
            return Ok(sym);
        }
        Err(Diagnostic::new(
            span,
            format!("undeclared identifier `{name}`"),
        ))
    }

    fn lookup_kind(&mut self, name: &str, kind: SymKind, span: Span) -> CgResult<Sym> {
        let s = self.lookup(name, span)?;
        if s.kind != kind && !(kind == SymKind::Int && s.kind == SymKind::KernelInt) {
            return Err(Diagnostic::new(
                span,
                format!("`{name}` has the wrong type here"),
            ));
        }
        Ok(s)
    }

    fn const_slot(&mut self, v: i64, span: Span) -> CgResult<u8> {
        if let Some(&s) = self.const_slots.get(&v) {
            return Ok(s);
        }
        let s = self.declare_slot(OperandDecl::Int(v), span)?;
        self.const_slots.insert(v, s);
        Ok(s)
    }

    fn alloc_temp(&mut self, span: Span) -> CgResult<u8> {
        if let Some(t) = self.temp_free.pop() {
            return Ok(t);
        }
        let t = self.declare_slot(OperandDecl::Int(0), span)?;
        self.temp_slots.push(t);
        Ok(t)
    }

    fn free_temp(&mut self, slot: u8) {
        if self.temp_slots.contains(&slot) {
            self.temp_free.push(slot);
        }
    }

    fn global_decl(&mut self, d: &Decl) -> CgResult<()> {
        match d {
            Decl::Int { name, init, span } => {
                let IntExpr::Lit(v) = init else {
                    return Err(Diagnostic::new(
                        *span,
                        "top-level int initializers must be literals",
                    ));
                };
                let slot = self.declare_slot(OperandDecl::Int(*v), *span)?;
                self.define(
                    name,
                    Sym {
                        slot,
                        kind: SymKind::Int,
                    },
                    *span,
                )
            }
            Decl::Bool { name, init, span } => {
                let slot = self.declare_slot(OperandDecl::Bool(*init), *span)?;
                self.define(
                    name,
                    Sym {
                        slot,
                        kind: SymKind::Bool,
                    },
                    *span,
                )
            }
            Decl::Page { name, init, span } => {
                if init.is_some() {
                    return Err(Diagnostic::new(
                        *span,
                        "top-level page declarations cannot have initializers",
                    ));
                }
                let slot = self.declare_slot(OperandDecl::Page, *span)?;
                self.define(
                    name,
                    Sym {
                        slot,
                        kind: SymKind::Page,
                    },
                    *span,
                )
            }
            Decl::Queue {
                name,
                recency,
                span,
            } => {
                let slot = self.declare_slot(OperandDecl::Queue { recency: *recency }, *span)?;
                self.define(
                    name,
                    Sym {
                        slot,
                        kind: SymKind::Queue,
                    },
                    *span,
                )
            }
        }
    }

    // --- Labels ---------------------------------------------------------------

    fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    fn bind(&mut self, l: Label) {
        debug_assert!(self.labels[l.0].is_none(), "label bound twice");
        self.labels[l.0] = Some(self.code.len() as u16);
    }

    fn jump(&mut self, mode: JumpMode, l: Label) {
        self.fixups.push((self.code.len(), l));
        self.code.push(build::jump(mode, 0xFFFF));
    }

    // --- Events ----------------------------------------------------------------

    fn event(&mut self, ev: &EventDef) -> CgResult<Vec<RawCmd>> {
        self.code.clear();
        self.labels.clear();
        self.fixups.clear();
        self.loop_stack.clear();
        self.scopes.push(HashMap::new());
        let result = self.block(&ev.body);
        self.scopes.pop();
        result?;
        // Implicit `return;` when control can reach the end of the segment:
        // either by falling through the last instruction, or via a label
        // bound one past it.
        let end = self.code.len() as u16;
        let label_at_end = self.labels.contains(&Some(end));
        let falls_through = match self.code.last() {
            None => true,
            Some(c) if c.op_byte() == OpCode::Return as u8 => false,
            Some(c) if c.op_byte() == OpCode::Jump as u8 => c.a() != JumpMode::Always as u8,
            Some(_) => true,
        };
        if label_at_end || falls_through {
            self.code.push(build::ret(NO_OPERAND));
        }
        // Backpatch.
        for (at, l) in std::mem::take(&mut self.fixups) {
            let target = self.labels[l.0].ok_or_else(|| {
                Diagnostic::new(ev.span, "internal error: unbound label".to_string())
            })?;
            let mode = self.code[at].a();
            self.code[at] = build::jump(
                JumpMode::from_u8(mode).expect("mode was emitted by us"),
                target,
            );
        }
        Ok(std::mem::take(&mut self.code))
    }

    fn block(&mut self, stmts: &[Stmt]) -> CgResult<()> {
        self.scopes.push(HashMap::new());
        let r = stmts.iter().try_for_each(|s| self.stmt(s));
        self.scopes.pop();
        r
    }

    fn stmt(&mut self, s: &Stmt) -> CgResult<()> {
        match s {
            Stmt::Decl(d) => self.local_decl(d),
            Stmt::AssignInt(target, e, span) => {
                let sym = self.lookup(target, *span)?;
                match sym.kind {
                    SymKind::Int => self.int_into(sym.slot, e, *span),
                    SymKind::Page => match e {
                        IntExpr::Var(v) => {
                            let src = self.lookup_kind(v, SymKind::Page, *span)?;
                            if src.slot == sym.slot {
                                Ok(())
                            } else {
                                Err(Diagnostic::new(
                                    *span,
                                    "page-to-page copies are not expressible in the command set",
                                ))
                            }
                        }
                        _ => Err(Diagnostic::new(
                            *span,
                            format!("`{target}` is a page; assign a page expression"),
                        )),
                    },
                    SymKind::Bool => match e {
                        IntExpr::Var(v) => {
                            let src = self.lookup_kind(v, SymKind::Bool, *span)?;
                            self.code.push(build::logic(
                                src.slot,
                                NO_OPERAND,
                                hipec_core::command::LogicOp::LoadCond,
                            ));
                            self.code.push(build::logic(
                                sym.slot,
                                NO_OPERAND,
                                hipec_core::command::LogicOp::StoreCond,
                            ));
                            Ok(())
                        }
                        _ => Err(Diagnostic::new(
                            *span,
                            format!("`{target}` is a bool; assign a condition"),
                        )),
                    },
                    SymKind::KernelInt => Err(Diagnostic::new(
                        *span,
                        format!("`{target}` is a read-only kernel counter"),
                    )),
                    SymKind::Queue => Err(Diagnostic::new(
                        *span,
                        format!("`{target}` is a queue and cannot be assigned"),
                    )),
                }
            }
            Stmt::AssignPage(target, pe, span) => {
                let sym = self.lookup_kind(target, SymKind::Page, *span)?;
                self.page_into(sym.slot, pe, *span)
            }
            Stmt::AssignBool(target, c, span) => {
                let sym = self.lookup_kind(target, SymKind::Bool, *span)?;
                self.bool_assign(sym.slot, c, *span)
            }
            Stmt::If(c, then_b, else_b, span) => {
                let lt = self.label();
                let lf = self.label();
                let lend = self.label();
                self.cond(c, lt, lf, *span)?;
                self.bind(lt);
                self.block(then_b)?;
                self.jump(JumpMode::Always, lend);
                self.bind(lf);
                self.block(else_b)?;
                self.bind(lend);
                Ok(())
            }
            Stmt::While(c, body, span) => {
                let lhead = self.label();
                let lt = self.label();
                let lf = self.label();
                self.bind(lhead);
                self.cond(c, lt, lf, *span)?;
                self.bind(lt);
                self.loop_stack.push((lhead, lf));
                let body_result = self.block(body);
                self.loop_stack.pop();
                body_result?;
                self.jump(JumpMode::Always, lhead);
                self.bind(lf);
                Ok(())
            }
            Stmt::Return(value, span) => {
                let slot = match value {
                    None => NO_OPERAND,
                    Some(RetVal::Page(pe)) => self.page_to_slot(pe, *span)?,
                    Some(RetVal::Int(IntExpr::Var(v))) => self.lookup(v, *span)?.slot,
                    Some(RetVal::Int(e)) => self.int_to_slot(e, *span)?,
                };
                self.code.push(build::ret(slot));
                Ok(())
            }
            Stmt::Activate(name, span) => {
                let id = *self
                    .event_ids
                    .get(name)
                    .ok_or_else(|| Diagnostic::new(*span, format!("unknown event `{name}`")))?;
                self.code.push(build::activate(id));
                Ok(())
            }
            Stmt::Break(span) => {
                let (_, exit) = *self
                    .loop_stack
                    .last()
                    .ok_or_else(|| Diagnostic::new(*span, "`break` outside of a loop"))?;
                self.jump(JumpMode::Always, exit);
                Ok(())
            }
            Stmt::Continue(span) => {
                let (head, _) = *self
                    .loop_stack
                    .last()
                    .ok_or_else(|| Diagnostic::new(*span, "`continue` outside of a loop"))?;
                self.jump(JumpMode::Always, head);
                Ok(())
            }
            Stmt::Call(b, span) => self.builtin(b, *span),
        }
    }

    fn local_decl(&mut self, d: &Decl) -> CgResult<()> {
        match d {
            Decl::Int { name, init, span } => {
                let slot = self.declare_slot(OperandDecl::Int(0), *span)?;
                self.define(
                    name,
                    Sym {
                        slot,
                        kind: SymKind::Int,
                    },
                    *span,
                )?;
                self.int_into(slot, init, *span)
            }
            Decl::Bool { name, init, span } => {
                let slot = self.declare_slot(OperandDecl::Bool(*init), *span)?;
                self.define(
                    name,
                    Sym {
                        slot,
                        kind: SymKind::Bool,
                    },
                    *span,
                )?;
                self.bool_assign(slot, &Cond::Lit(*init), *span)
            }
            Decl::Page { name, init, span } => {
                let slot = self.declare_slot(OperandDecl::Page, *span)?;
                self.define(
                    name,
                    Sym {
                        slot,
                        kind: SymKind::Page,
                    },
                    *span,
                )?;
                if let Some(pe) = init {
                    self.page_into(slot, pe, *span)?;
                }
                Ok(())
            }
            Decl::Queue {
                name,
                recency,
                span,
            } => {
                let slot = self.declare_slot(OperandDecl::Queue { recency: *recency }, *span)?;
                self.define(
                    name,
                    Sym {
                        slot,
                        kind: SymKind::Queue,
                    },
                    *span,
                )
            }
        }
    }

    fn builtin(&mut self, b: &Builtin, span: Span) -> CgResult<()> {
        match b {
            Builtin::EnqueueHead(q, p) | Builtin::EnqueueTail(q, p) => {
                let qs = self.lookup_kind(q, SymKind::Queue, span)?;
                let ps = self.lookup_kind(p, SymKind::Page, span)?;
                let end = if matches!(b, Builtin::EnqueueHead(..)) {
                    QueueEnd::Head
                } else {
                    QueueEnd::Tail
                };
                self.code.push(build::enqueue(ps.slot, qs.slot, end));
                Ok(())
            }
            Builtin::Flush(p) => {
                let ps = self.lookup_kind(p, SymKind::Page, span)?;
                self.code.push(build::flush(ps.slot));
                Ok(())
            }
            Builtin::Release(p) => {
                let ps = self.lookup_kind(p, SymKind::Page, span)?;
                self.code.push(build::release(ps.slot));
                Ok(())
            }
            Builtin::SetBit {
                page,
                reference,
                value,
            } => {
                let ps = self.lookup_kind(page, SymKind::Page, span)?;
                let bit = if *reference {
                    PageBit::Reference
                } else {
                    PageBit::Modify
                };
                self.code.push(build::set(ps.slot, bit, *value));
                Ok(())
            }
            Builtin::Migrate(e) => {
                let slot = self.int_to_slot(e, span)?;
                self.code.push(build::migrate(slot));
                self.free_temp(slot);
                Ok(())
            }
            Builtin::Request(e) => {
                let slot = self.int_to_slot(e, span)?;
                self.code.push(build::request(slot, NO_OPERAND));
                self.free_temp(slot);
                Ok(())
            }
            Builtin::Replace(kind, q) => {
                let qs = self.lookup_kind(q, SymKind::Queue, span)?;
                self.code.push(replace_cmd(*kind, qs.slot, NO_OPERAND));
                Ok(())
            }
        }
    }

    // --- Page expressions -------------------------------------------------------

    fn page_into(&mut self, dst: u8, pe: &PageExpr, span: Span) -> CgResult<()> {
        match pe {
            PageExpr::Var(v) => {
                let src = self.lookup_kind(v, SymKind::Page, span)?;
                if src.slot == dst {
                    Ok(())
                } else {
                    Err(Diagnostic::new(
                        span,
                        "page-to-page copies are not expressible in the command set",
                    ))
                }
            }
            PageExpr::DequeueHead(q) => {
                let qs = self.lookup_kind(q, SymKind::Queue, span)?;
                self.code.push(build::dequeue(dst, qs.slot, QueueEnd::Head));
                Ok(())
            }
            PageExpr::DequeueTail(q) => {
                let qs = self.lookup_kind(q, SymKind::Queue, span)?;
                self.code.push(build::dequeue(dst, qs.slot, QueueEnd::Tail));
                Ok(())
            }
            PageExpr::Replace(kind, q) => {
                let qs = self.lookup_kind(q, SymKind::Queue, span)?;
                self.code.push(replace_cmd(*kind, qs.slot, dst));
                Ok(())
            }
            PageExpr::Find(e) => {
                let slot = self.int_to_slot(e, span)?;
                self.code.push(build::find(dst, slot));
                self.free_temp(slot);
                Ok(())
            }
        }
    }

    fn page_to_slot(&mut self, pe: &PageExpr, span: Span) -> CgResult<u8> {
        if let PageExpr::Var(v) = pe {
            return Ok(self.lookup_kind(v, SymKind::Page, span)?.slot);
        }
        let dst = self.declare_slot(OperandDecl::Page, span)?;
        self.page_into(dst, pe, span)?;
        Ok(dst)
    }

    // --- Integer expressions ------------------------------------------------------

    fn int_to_slot(&mut self, e: &IntExpr, span: Span) -> CgResult<u8> {
        match e {
            IntExpr::Lit(v) => self.const_slot(*v, span),
            IntExpr::Var(v) => Ok(self.lookup_kind(v, SymKind::Int, span)?.slot),
            IntExpr::Bin(l, op, r) => {
                let dst = self.alloc_temp(span)?;
                let ls = self.int_to_slot(l, span)?;
                self.code.push(build::arith(dst, ls, ArithOp::Mov));
                self.free_temp(ls);
                let rs = self.int_to_slot(r, span)?;
                self.code.push(build::arith(dst, rs, arith_op(*op)));
                self.free_temp(rs);
                Ok(dst)
            }
        }
    }

    fn int_into(&mut self, dst: u8, e: &IntExpr, span: Span) -> CgResult<()> {
        // Evaluate into a fresh slot first so `x = y - x` reads the old `x`.
        let src = self.int_to_slot(e, span)?;
        if src != dst {
            self.code.push(build::arith(dst, src, ArithOp::Mov));
        }
        self.free_temp(src);
        Ok(())
    }

    // --- Conditions ------------------------------------------------------------------

    fn cond(&mut self, c: &Cond, lt: Label, lf: Label, span: Span) -> CgResult<()> {
        match c {
            Cond::Lit(true) => {
                self.jump(JumpMode::Always, lt);
                Ok(())
            }
            Cond::Lit(false) => {
                self.jump(JumpMode::Always, lf);
                Ok(())
            }
            Cond::Cmp(l, op, r) => {
                let ls = self.int_to_slot(l, span)?;
                let rs = self.int_to_slot(r, span)?;
                self.code.push(build::comp(ls, rs, *op));
                self.free_temp(ls);
                self.free_temp(rs);
                self.branch(lt, lf);
                Ok(())
            }
            Cond::Referenced(p) => {
                let ps = self.lookup_kind(p, SymKind::Page, span)?;
                self.code.push(build::is_ref(ps.slot));
                self.branch(lt, lf);
                Ok(())
            }
            Cond::Modified(p) => {
                let ps = self.lookup_kind(p, SymKind::Page, span)?;
                self.code.push(build::is_mod(ps.slot));
                self.branch(lt, lf);
                Ok(())
            }
            Cond::Empty(q) => {
                let qs = self.lookup_kind(q, SymKind::Queue, span)?;
                self.code.push(build::emptyq(qs.slot));
                self.branch(lt, lf);
                Ok(())
            }
            Cond::InQueue(q, p) => {
                let qs = self.lookup_kind(q, SymKind::Queue, span)?;
                let ps = self.lookup_kind(p, SymKind::Page, span)?;
                self.code.push(build::inq(qs.slot, ps.slot));
                self.branch(lt, lf);
                Ok(())
            }
            Cond::Request(e) => {
                let slot = self.int_to_slot(e, span)?;
                self.code.push(build::request(slot, NO_OPERAND));
                self.free_temp(slot);
                self.branch(lt, lf);
                Ok(())
            }
            Cond::Var(v) => {
                let vs = self.lookup_kind(v, SymKind::Bool, span)?;
                self.code.push(build::logic(
                    vs.slot,
                    NO_OPERAND,
                    hipec_core::command::LogicOp::LoadCond,
                ));
                self.branch(lt, lf);
                Ok(())
            }
            Cond::Not(inner) => self.cond(inner, lf, lt, span),
            Cond::And(a, b) => {
                let mid = self.label();
                self.cond(a, mid, lf, span)?;
                self.bind(mid);
                self.cond(b, lt, lf, span)
            }
            Cond::Or(a, b) => {
                let mid = self.label();
                self.cond(a, lt, mid, span)?;
                self.bind(mid);
                self.cond(b, lt, lf, span)
            }
        }
    }

    /// After a test command: branch to `lt` on true, `lf` on false.
    fn branch(&mut self, lt: Label, lf: Label) {
        self.jump(JumpMode::IfTrue, lt);
        self.jump(JumpMode::Always, lf);
    }

    fn bool_assign(&mut self, dst: u8, c: &Cond, span: Span) -> CgResult<()> {
        let lt = self.label();
        let lf = self.label();
        let lend = self.label();
        let zero = self.const_slot(0, span)?;
        self.cond(c, lt, lf, span)?;
        self.bind(lt);
        // Force the flag true, store it.
        self.code
            .push(build::comp(zero, zero, hipec_core::command::CompOp::Eq));
        self.code.push(build::logic(
            dst,
            NO_OPERAND,
            hipec_core::command::LogicOp::StoreCond,
        ));
        self.jump(JumpMode::Always, lend);
        self.bind(lf);
        self.code
            .push(build::comp(zero, zero, hipec_core::command::CompOp::Ne));
        self.code.push(build::logic(
            dst,
            NO_OPERAND,
            hipec_core::command::LogicOp::StoreCond,
        ));
        self.bind(lend);
        Ok(())
    }
}

fn arith_op(op: IntBinOp) -> ArithOp {
    match op {
        IntBinOp::Add => ArithOp::Add,
        IntBinOp::Sub => ArithOp::Sub,
        IntBinOp::Mul => ArithOp::Mul,
        IntBinOp::Div => ArithOp::Div,
        IntBinOp::Mod => ArithOp::Mod,
    }
}

fn replace_cmd(kind: ReplaceKind, queue: u8, dst: u8) -> RawCmd {
    match kind {
        ReplaceKind::Fifo => build::fifo(queue, dst),
        ReplaceKind::Lru => build::lru(queue, dst),
        ReplaceKind::Mru => build::mru(queue, dst),
    }
}

//! A textual assembler and disassembler for HiPEC command programs.
//!
//! The paper's Table 2 presents policies as hand-coded command listings;
//! this module supports the same workflow with symbolic flags and labels:
//!
//! ```text
//! .freeq                  ; slot 0: the container free queue
//! .page                   ; slot 1: scratch page
//! .kernel free_count      ; slot 2: read-only counter
//! .int 0                  ; slot 3: the constant 0
//!
//! .event PageFault
//!     comp 2, 3, gt       ; free_count > 0 ?
//!     jf refill
//!     dequeue 1, 0, head
//!     return 1
//! refill:
//!     activate 2
//!     ja 0
//! .event ReclaimFrame
//!     return
//! ```
//!
//! [`disassemble`] renders a program back into this syntax (losing only
//! label names).

use std::collections::HashMap;

use hipec_core::command::{
    build, ArithOp, CompOp, JumpMode, LogicOp, OpCode, PageBit, QueueEnd, RawCmd,
};
use hipec_core::{KernelVar, OperandDecl, PolicyProgram, NO_OPERAND};

use crate::diag::{Diagnostic, Span};

/// Assembles the textual form into a [`PolicyProgram`].
pub fn assemble(text: &str) -> Result<PolicyProgram, Diagnostic> {
    let mut program = PolicyProgram::new();
    let mut current: Option<(String, Vec<Line>)> = None;
    let mut events: Vec<(String, Vec<Line>)> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let span = Span {
            line: lineno as u32 + 1,
            col: 1,
        };
        let line = raw.split([';', '#']).next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('.') {
            let mut parts = rest.split_whitespace();
            let directive = parts.next().unwrap_or("");
            let arg = parts.next();
            match directive {
                "event" => {
                    let name = arg.ok_or_else(|| Diagnostic::new(span, ".event needs a name"))?;
                    if let Some(done) = current.take() {
                        events.push(done);
                    }
                    current = Some((name.to_string(), Vec::new()));
                }
                "int" => {
                    let v: i64 = arg
                        .ok_or_else(|| Diagnostic::new(span, ".int needs a value"))?
                        .parse()
                        .map_err(|_| Diagnostic::new(span, "bad .int value"))?;
                    program.declare(OperandDecl::Int(v));
                }
                "bool" => {
                    let v = match arg {
                        Some("true") => true,
                        Some("false") => false,
                        _ => return Err(Diagnostic::new(span, ".bool needs true or false")),
                    };
                    program.declare(OperandDecl::Bool(v));
                }
                "page" => {
                    program.declare(OperandDecl::Page);
                }
                "freeq" => {
                    program.declare(OperandDecl::FreeQueue);
                }
                "queue" => {
                    program.declare(OperandDecl::Queue { recency: false });
                }
                "rqueue" => {
                    program.declare(OperandDecl::Queue { recency: true });
                }
                "kernel" => {
                    let var = match arg {
                        Some("free_count") => KernelVar::FreeCount,
                        Some("active_count") => KernelVar::ActiveCount,
                        Some("inactive_count") => KernelVar::InactiveCount,
                        Some("allocated_count") => KernelVar::AllocatedCount,
                        Some("min_frames") => KernelVar::MinFrames,
                        Some("global_free_count") => KernelVar::GlobalFreeCount,
                        Some("reclaim_target") => KernelVar::ReclaimTarget,
                        other => {
                            return Err(Diagnostic::new(
                                span,
                                format!("unknown kernel variable {other:?}"),
                            ))
                        }
                    };
                    program.declare(OperandDecl::Kernel(var));
                }
                other => return Err(Diagnostic::new(span, format!("unknown directive .{other}"))),
            }
            continue;
        }
        let Some((_, lines)) = current.as_mut() else {
            return Err(Diagnostic::new(span, "instruction outside of .event"));
        };
        if let Some(label) = line.strip_suffix(':') {
            lines.push(Line::Label(label.trim().to_string(), span));
        } else {
            lines.push(Line::Instr(line.to_string(), span));
        }
    }
    if let Some(done) = current.take() {
        events.push(done);
    }

    for (name, lines) in events {
        let cmds = assemble_event(&lines)?;
        program.add_event(name, cmds);
    }
    Ok(program)
}

enum Line {
    Label(String, Span),
    Instr(String, Span),
}

fn assemble_event(lines: &[Line]) -> Result<Vec<RawCmd>, Diagnostic> {
    // Pass 1: label positions.
    let mut labels: HashMap<&str, u16> = HashMap::new();
    let mut pc = 0u16;
    for l in lines {
        match l {
            Line::Label(name, span) => {
                if labels.insert(name.as_str(), pc).is_some() {
                    return Err(Diagnostic::new(*span, format!("duplicate label `{name}`")));
                }
            }
            Line::Instr(..) => pc += 1,
        }
    }
    // Pass 2: encode.
    let mut out = Vec::new();
    for l in lines {
        let Line::Instr(text, span) = l else { continue };
        out.push(encode_instr(text, &labels, *span)?);
    }
    Ok(out)
}

fn encode_instr(text: &str, labels: &HashMap<&str, u16>, span: Span) -> Result<RawCmd, Diagnostic> {
    let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (text, ""),
    };
    let ops: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };
    let err = |msg: &str| Diagnostic::new(span, format!("{mnemonic}: {msg}"));
    let slot = |i: usize| -> Result<u8, Diagnostic> {
        ops.get(i)
            .ok_or_else(|| err("missing operand"))?
            .parse::<u8>()
            .map_err(|_| err("operand must be a slot number"))
    };
    let end_flag = |i: usize| -> Result<QueueEnd, Diagnostic> {
        match ops.get(i).copied() {
            Some("head") => Ok(QueueEnd::Head),
            Some("tail") => Ok(QueueEnd::Tail),
            _ => Err(err("expected head or tail")),
        }
    };
    let target = |i: usize| -> Result<u16, Diagnostic> {
        let t = ops.get(i).ok_or_else(|| err("missing jump target"))?;
        if let Ok(n) = t.parse::<u16>() {
            return Ok(n);
        }
        labels
            .get(t)
            .copied()
            .ok_or_else(|| err(&format!("unknown label `{t}`")))
    };

    let cmd = match mnemonic {
        "return" => {
            if ops.is_empty() {
                build::ret(NO_OPERAND)
            } else {
                build::ret(slot(0)?)
            }
        }
        "arith" => {
            // The operation name is the last operand (`arith a, inc` has no
            // second slot).
            let op = match ops.last().copied() {
                Some("add") => ArithOp::Add,
                Some("sub") => ArithOp::Sub,
                Some("mul") => ArithOp::Mul,
                Some("div") => ArithOp::Div,
                Some("mod") => ArithOp::Mod,
                Some("mov") => ArithOp::Mov,
                Some("inc") => ArithOp::Inc,
                Some("dec") => ArithOp::Dec,
                _ => return Err(err("bad arith op")),
            };
            let b = if matches!(op, ArithOp::Inc | ArithOp::Dec) {
                NO_OPERAND
            } else {
                slot(1)?
            };
            RawCmd::new(OpCode::Arith as u8, slot(0)?, b, op as u8)
        }
        "comp" => {
            let op = match ops.get(2).copied() {
                Some("eq") => CompOp::Eq,
                Some("gt") => CompOp::Gt,
                Some("lt") => CompOp::Lt,
                Some("ge") => CompOp::Ge,
                Some("le") => CompOp::Le,
                Some("ne") => CompOp::Ne,
                _ => return Err(err("bad comparison op")),
            };
            build::comp(slot(0)?, slot(1)?, op)
        }
        "logic" => {
            let op = match ops.last().copied() {
                Some("and") => LogicOp::And,
                Some("or") => LogicOp::Or,
                Some("xor") => LogicOp::Xor,
                Some("not") => LogicOp::Not,
                Some("store") => LogicOp::StoreCond,
                Some("load") => LogicOp::LoadCond,
                _ => return Err(err("bad logic op")),
            };
            let b = if ops.len() > 2 { slot(1)? } else { NO_OPERAND };
            build::logic(slot(0)?, b, op)
        }
        "emptyq" => build::emptyq(slot(0)?),
        "inq" => build::inq(slot(0)?, slot(1)?),
        "jf" => build::jump(JumpMode::IfFalse, target(0)?),
        "ja" => build::jump(JumpMode::Always, target(0)?),
        "jt" => build::jump(JumpMode::IfTrue, target(0)?),
        "dequeue" => build::dequeue(slot(0)?, slot(1)?, end_flag(2)?),
        "enqueue" => build::enqueue(slot(0)?, slot(1)?, end_flag(2)?),
        "request" => {
            let granted = if ops.len() > 1 { slot(1)? } else { NO_OPERAND };
            build::request(slot(0)?, granted)
        }
        "release" => build::release(slot(0)?),
        "flush" => build::flush(slot(0)?),
        "set" => {
            let bit = match ops.get(1).copied() {
                Some("ref") => PageBit::Reference,
                Some("mod") => PageBit::Modify,
                _ => return Err(err("expected ref or mod")),
            };
            let value = match ops.get(2).copied() {
                Some("set") => true,
                Some("clear") => false,
                _ => return Err(err("expected set or clear")),
            };
            build::set(slot(0)?, bit, value)
        }
        "ref" => build::is_ref(slot(0)?),
        "mod" => build::is_mod(slot(0)?),
        "find" => build::find(slot(0)?, slot(1)?),
        "activate" => build::activate(slot(0)?),
        "fifo" | "lru" | "mru" => {
            let dst = if ops.len() > 1 { slot(1)? } else { NO_OPERAND };
            match mnemonic {
                "fifo" => build::fifo(slot(0)?, dst),
                "lru" => build::lru(slot(0)?, dst),
                _ => build::mru(slot(0)?, dst),
            }
        }
        "migrate" => build::migrate(slot(0)?),
        other => return Err(Diagnostic::new(span, format!("unknown mnemonic `{other}`"))),
    };
    Ok(cmd)
}

/// Renders a program as an assembler listing (labels become numeric
/// targets; declarations come first).
pub fn disassemble(program: &PolicyProgram) -> String {
    let mut out = String::new();
    for (i, d) in program.decls.iter().enumerate() {
        let line = match d {
            OperandDecl::Int(v) => format!(".int {v}"),
            OperandDecl::Bool(b) => format!(".bool {b}"),
            OperandDecl::Page => ".page".to_string(),
            OperandDecl::FreeQueue => ".freeq".to_string(),
            OperandDecl::Queue { recency: false } => ".queue".to_string(),
            OperandDecl::Queue { recency: true } => ".rqueue".to_string(),
            OperandDecl::Kernel(v) => format!(".kernel {}", kernel_name(*v)),
        };
        out.push_str(&format!("{line:<24}; slot {i}\n"));
    }
    for (id, seg) in program.events.iter().enumerate() {
        let name = program
            .event_names
            .get(id)
            .map(String::as_str)
            .unwrap_or("unnamed");
        out.push_str(&format!(".event {name}\n"));
        for (cc, cmd) in seg.iter().enumerate() {
            out.push_str(&format!("    {:<28}; cc {cc}\n", render(*cmd)));
        }
    }
    out
}

fn kernel_name(v: KernelVar) -> &'static str {
    match v {
        KernelVar::FreeCount => "free_count",
        KernelVar::ActiveCount => "active_count",
        KernelVar::InactiveCount => "inactive_count",
        KernelVar::AllocatedCount => "allocated_count",
        KernelVar::MinFrames => "min_frames",
        KernelVar::GlobalFreeCount => "global_free_count",
        KernelVar::ReclaimTarget => "reclaim_target",
    }
}

fn render(cmd: RawCmd) -> String {
    let Some(op) = cmd.opcode() else {
        return format!("<invalid 0x{:08x}>", cmd.0);
    };
    let a = cmd.a();
    let b = cmd.b();
    let c = cmd.c();
    match op {
        OpCode::Return => {
            if a == NO_OPERAND {
                "return".into()
            } else {
                format!("return {a}")
            }
        }
        OpCode::Arith => {
            let ops = ["add", "sub", "mul", "div", "mod", "mov", "inc", "dec"];
            let name = ops.get(c as usize).copied().unwrap_or("?");
            if c >= 6 {
                format!("arith {a}, {name}")
            } else {
                format!("arith {a}, {b}, {name}")
            }
        }
        OpCode::Comp => {
            let ops = ["eq", "gt", "lt", "ge", "le", "ne"];
            format!(
                "comp {a}, {b}, {}",
                ops.get(c as usize).copied().unwrap_or("?")
            )
        }
        OpCode::Logic => {
            let ops = ["and", "or", "xor", "not", "store", "load"];
            let name = ops.get(c as usize).copied().unwrap_or("?");
            if b == NO_OPERAND {
                format!("logic {a}, {name}")
            } else {
                format!("logic {a}, {b}, {name}")
            }
        }
        OpCode::EmptyQ => format!("emptyq {a}"),
        OpCode::InQ => format!("inq {a}, {b}"),
        OpCode::Jump => {
            let m = ["jf", "ja", "jt"].get(a as usize).copied().unwrap_or("j?");
            format!("{m} {}", cmd.jump_target())
        }
        OpCode::DeQueue => format!("dequeue {a}, {b}, {}", end_name(c)),
        OpCode::EnQueue => format!("enqueue {a}, {b}, {}", end_name(c)),
        OpCode::Request => {
            if b == NO_OPERAND {
                format!("request {a}")
            } else {
                format!("request {a}, {b}")
            }
        }
        OpCode::Release => format!("release {a}"),
        OpCode::Flush => format!("flush {a}"),
        OpCode::Set => format!(
            "set {a}, {}, {}",
            if b == 1 { "ref" } else { "mod" },
            if c == 1 { "set" } else { "clear" }
        ),
        OpCode::Ref => format!("ref {a}"),
        OpCode::Mod => format!("mod {a}"),
        OpCode::Find => format!("find {a}, {b}"),
        OpCode::Activate => format!("activate {a}"),
        OpCode::Fifo => replace_render("fifo", a, b),
        OpCode::Lru => replace_render("lru", a, b),
        OpCode::Mru => replace_render("mru", a, b),
        OpCode::Migrate => format!("migrate {a}"),
    }
}

fn replace_render(name: &str, a: u8, b: u8) -> String {
    if b == NO_OPERAND {
        format!("{name} {a}")
    } else {
        format!("{name} {a}, {b}")
    }
}

fn end_name(c: u8) -> &'static str {
    if c == 1 {
        "tail"
    } else {
        "head"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
.freeq                  ; slot 0
.page                   ; slot 1
.kernel free_count      ; slot 2
.int 0                  ; slot 3

.event PageFault
    comp 2, 3, gt
    jf refill
    dequeue 1, 0, head
    return 1
refill:
    activate 2
    ja 2
.event ReclaimFrame
    return
.event Refill
    fifo 0, 1
    return
"#;

    #[test]
    fn assembles_with_labels() {
        let p = assemble(SAMPLE).expect("assembles");
        assert_eq!(p.events.len(), 3);
        assert_eq!(p.decls.len(), 4);
        let pf = p.event(0).expect("PageFault");
        assert_eq!(pf.len(), 6);
        // `jf refill` resolves to cc 4.
        assert_eq!(pf[1].jump_target(), 4);
        assert_eq!(pf[1].a(), JumpMode::IfFalse as u8);
    }

    #[test]
    fn round_trips_through_disassembly() {
        let p = assemble(SAMPLE).expect("assembles");
        let text = disassemble(&p);
        let q = assemble(&text).expect("reassembles");
        assert_eq!(p.decls, q.decls);
        for (a, b) in p.events.iter().zip(q.events.iter()) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn unknown_label_is_reported() {
        let err = assemble(".event E\n    ja nowhere\n").expect_err("unknown label");
        assert!(err.message.contains("nowhere"));
        assert_eq!(err.span.line, 2);
    }

    #[test]
    fn duplicate_label_is_reported() {
        let err = assemble(".event E\nx:\nx:\n    return\n").expect_err("duplicate label");
        assert!(err.message.contains("duplicate label"));
    }

    #[test]
    fn instruction_outside_event_is_rejected() {
        let err = assemble("return").expect_err("no event");
        assert!(err.message.contains("outside"));
    }

    #[test]
    fn unknown_mnemonic_is_rejected() {
        let err = assemble(".event E\n    zorp 1\n").expect_err("bad mnemonic");
        assert!(err.message.contains("zorp"));
    }

    #[test]
    fn all_mnemonics_assemble() {
        let all = r#"
.freeq
.page
.int 1
.bool false
.rqueue
.event PageFault
    arith 2, 2, add
    arith 2, inc
    comp 2, 2, le
    logic 3, load
    emptyq 0
    inq 0, 1
    dequeue 1, 0, tail
    enqueue 1, 0, head
    request 2, 2
    flush 1
    set 1, ref, clear
    ref 1
    mod 1
    find 1, 2
    fifo 4
    lru 4, 1
    mru 4
    migrate 2
    release 1
    return 1
.event ReclaimFrame
    return
"#;
        let p = assemble(all).expect("assembles");
        assert_eq!(p.event(0).expect("segment").len(), 20);
        // And every command renders back.
        let text = disassemble(&p);
        assert!(text.contains("request 2, 2"));
        assert!(text.contains("set 1, ref, clear"));
        assert!(assemble(&text).is_ok());
    }
}

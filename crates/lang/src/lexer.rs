//! The policy-language lexer.

use crate::diag::{Diagnostic, Span};
use crate::token::{Tok, Token};

/// Tokenizes `source`, returning the token stream (terminated by `Eof`).
pub fn lex(source: &str) -> Result<Vec<Token>, Diagnostic> {
    let mut out = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! push {
        ($tok:expr, $len:expr) => {{
            out.push(Token {
                tok: $tok,
                span: Span { line, col },
            });
            i += $len;
            col += $len as u32;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = Span { line, col };
                i += 2;
                col += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(Diagnostic::new(start, "unterminated block comment"));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        col += 2;
                        break;
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
            '(' => push!(Tok::LParen, 1),
            ')' => push!(Tok::RParen, 1),
            '{' => push!(Tok::LBrace, 1),
            '}' => push!(Tok::RBrace, 1),
            ';' => push!(Tok::Semi, 1),
            ',' => push!(Tok::Comma, 1),
            '+' => push!(Tok::Plus, 1),
            '-' => push!(Tok::Minus, 1),
            '*' => push!(Tok::Star, 1),
            '/' => push!(Tok::Slash, 1),
            '%' => push!(Tok::Percent, 1),
            '=' if bytes.get(i + 1) == Some(&b'=') => push!(Tok::EqEq, 2),
            '=' => push!(Tok::Assign, 1),
            '!' if bytes.get(i + 1) == Some(&b'=') => push!(Tok::Ne, 2),
            '!' => push!(Tok::Bang, 1),
            '<' if bytes.get(i + 1) == Some(&b'=') => push!(Tok::Le, 2),
            '<' => push!(Tok::Lt, 1),
            '>' if bytes.get(i + 1) == Some(&b'=') => push!(Tok::Ge, 2),
            '>' => push!(Tok::Gt, 1),
            '&' if bytes.get(i + 1) == Some(&b'&') => push!(Tok::AndAnd, 2),
            '|' if bytes.get(i + 1) == Some(&b'|') => push!(Tok::OrOr, 2),
            '0'..='9' => {
                let start = i;
                let span = Span { line, col };
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &source[start..i];
                col += (i - start) as u32;
                let value: i64 = text
                    .parse()
                    .map_err(|_| Diagnostic::new(span, format!("integer `{text}` out of range")))?;
                out.push(Token {
                    tok: Tok::IntLit(value),
                    span,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let span = Span { line, col };
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let text = &source[start..i];
                col += (i - start) as u32;
                let tok = match text {
                    "event" => Tok::Event,
                    "int" => Tok::Int,
                    "bool" => Tok::Bool,
                    "page" => Tok::Page,
                    "queue" => Tok::Queue,
                    "recency" => Tok::Recency,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "while" => Tok::While,
                    "return" => Tok::Return,
                    "activate" => Tok::Activate,
                    "break" => Tok::Break,
                    "continue" => Tok::Continue,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    _ => Tok::Ident(text.to_string()),
                };
                out.push(Token { tok, span });
            }
            other => {
                return Err(Diagnostic::new(
                    Span { line, col },
                    format!("unexpected character `{other}`"),
                ))
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        span: Span { line, col },
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src)
            .expect("lexes")
            .into_iter()
            .map(|t| t.tok)
            .collect()
    }

    #[test]
    fn keywords_and_identifiers() {
        let toks = kinds("event PageFault page p");
        assert_eq!(
            toks,
            vec![
                Tok::Event,
                Tok::Ident("PageFault".into()),
                Tok::Page,
                Tok::Ident("p".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators_longest_match() {
        let toks = kinds("<= < == = != ! && || >= >");
        assert_eq!(
            toks,
            vec![
                Tok::Le,
                Tok::Lt,
                Tok::EqEq,
                Tok::Assign,
                Tok::Ne,
                Tok::Bang,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Ge,
                Tok::Gt,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = kinds("a // line comment\n b /* block\n comment */ c");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 007"),
            vec![Tok::IntLit(42), Tok::IntLit(7), Tok::Eof]
        );
    }

    #[test]
    fn line_and_column_tracking() {
        let toks = lex("a\n  b").expect("lexes");
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[0].span.col, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[1].span.col, 3);
    }

    #[test]
    fn bad_character_is_rejected() {
        let err = lex("a @ b").expect_err("rejects");
        assert!(err.message.contains("`@`"));
        assert_eq!(err.span.col, 3);
    }

    #[test]
    fn unterminated_comment_is_rejected() {
        let err = lex("/* never ends").expect_err("rejects");
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn huge_integer_is_rejected() {
        assert!(lex("99999999999999999999").is_err());
    }
}

//! Tokens of the policy language.

use crate::diag::Span;

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    // Keywords.
    /// `event`
    Event,
    /// `int`
    Int,
    /// `bool`
    Bool,
    /// `page`
    Page,
    /// `queue`
    Queue,
    /// `recency`
    Recency,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `return`
    Return,
    /// `activate`
    Activate,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `true`
    True,
    /// `false`
    False,
    // Literals and identifiers.
    /// An identifier.
    Ident(String),
    /// An integer literal.
    IntLit(i64),
    // Punctuation.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `!`
    Bang,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// End of input.
    Eof,
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Kind and payload.
    pub tok: Tok,
    /// Source position.
    pub span: Span,
}

impl Tok {
    /// A short description for error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::IntLit(v) => format!("integer `{v}`"),
            Tok::Eof => "end of input".to_string(),
            other => format!("`{}`", other.text()),
        }
    }

    fn text(&self) -> &'static str {
        match self {
            Tok::Event => "event",
            Tok::Int => "int",
            Tok::Bool => "bool",
            Tok::Page => "page",
            Tok::Queue => "queue",
            Tok::Recency => "recency",
            Tok::If => "if",
            Tok::Else => "else",
            Tok::While => "while",
            Tok::Return => "return",
            Tok::Activate => "activate",
            Tok::Break => "break",
            Tok::Continue => "continue",
            Tok::True => "true",
            Tok::False => "false",
            Tok::LParen => "(",
            Tok::RParen => ")",
            Tok::LBrace => "{",
            Tok::RBrace => "}",
            Tok::Semi => ";",
            Tok::Comma => ",",
            Tok::Assign => "=",
            Tok::EqEq => "==",
            Tok::Ne => "!=",
            Tok::Lt => "<",
            Tok::Le => "<=",
            Tok::Gt => ">",
            Tok::Ge => ">=",
            Tok::Plus => "+",
            Tok::Minus => "-",
            Tok::Star => "*",
            Tok::Slash => "/",
            Tok::Percent => "%",
            Tok::Bang => "!",
            Tok::AndAnd => "&&",
            Tok::OrOr => "||",
            Tok::Ident(_) | Tok::IntLit(_) | Tok::Eof => unreachable!(),
        }
    }
}

//! `hipecc` — the stand-alone HiPEC policy translator (paper §4.3.4).
//!
//! ```text
//! hipecc compile <policy.hp>    translate pseudo-code; print the listing
//! hipecc asm <policy.hps>       assemble a hand-coded listing
//! hipecc check <policy.hp|hps>  translate/assemble + run the security checker
//! hipecc words <policy.hp>      emit the raw command buffer (hex words)
//! ```
//!
//! Inputs ending in `.hps` are treated as assembler listings; anything else
//! as pseudo-code.

use std::process::ExitCode;

use hipec_core::PolicyProgram;

fn load(path: &str) -> Result<PolicyProgram, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    if path.ends_with(".hps") {
        hipec_lang::assemble(&source).map_err(|d| format!("{path}:{d}"))
    } else {
        hipec_lang::compile(&source).map_err(|diags| {
            diags
                .iter()
                .map(|d| format!("{path}:{d}"))
                .collect::<Vec<_>>()
                .join("\n")
        })
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (cmd, path) = match (args.get(1), args.get(2)) {
        (Some(c), Some(p)) => (c.as_str(), p.as_str()),
        _ => {
            eprintln!("usage: hipecc <compile|asm|check|words> <policy-file>");
            return ExitCode::FAILURE;
        }
    };

    let program = match load(path) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    match cmd {
        "compile" | "asm" => {
            print!("{}", hipec_lang::disassemble(&program));
            ExitCode::SUCCESS
        }
        "check" => match hipec_core::validate_program(&program) {
            Ok(()) => {
                let warnings = hipec_core::analysis::analyze_program(&program);
                for w in &warnings {
                    eprintln!("warning: {w}");
                }
                println!(
                    "{path}: OK ({} events, {} commands, {} operand slots{})",
                    program.events.len(),
                    program.total_commands(),
                    program.decls.len(),
                    if warnings.is_empty() {
                        String::new()
                    } else {
                        format!(", {} warnings", warnings.len())
                    }
                );
                ExitCode::SUCCESS
            }
            Err(errors) => {
                for e in errors {
                    eprintln!("error: {e}");
                }
                ExitCode::FAILURE
            }
        },
        "words" => {
            for (i, w) in program.to_words().iter().enumerate() {
                if i % 8 == 0 && i > 0 {
                    println!();
                }
                print!("{w:08x} ");
            }
            println!();
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown subcommand `{other}`");
            ExitCode::FAILURE
        }
    }
}

//! The HiPEC pseudo-code translator (paper §4.3.4).
//!
//! "It is not convenient for a programmer to design a page replacement
//! policy by directly using the low-level HiPEC command set." This crate is
//! the stand-alone translator the paper describes: it compiles a C-like
//! policy language into streams of HiPEC commands, ready to install with
//! `vm_map_hipec` / `vm_allocate_hipec`.
//!
//! # The policy language
//!
//! ```text
//! queue fifo_q;                 // a plain container queue
//! recency queue lru_q;          // kernel keeps it ordered by last use
//! int free_target = 4;          // a mutable counter
//!
//! event PageFault() {
//!     if (free_count > 0) {
//!         page p = dequeue_head(free_queue);
//!         enqueue_tail(fifo_q, p);
//!         return p;
//!     } else {
//!         activate Evict;
//!         page p = dequeue_head(free_queue);
//!         enqueue_tail(fifo_q, p);
//!         return p;
//!     }
//! }
//!
//! event ReclaimFrame() { return; }
//! event Evict() { fifo(fifo_q); }
//! ```
//!
//! * **Declarations** — `int x = n;`, `bool b = true;`, `page p;`,
//!   `queue q;`, `recency queue q;` at top level or inside blocks.
//! * **Kernel symbols** — `free_queue` (the container's private free
//!   queue), and the read-only counters `free_count`, `active_count`,
//!   `inactive_count`, `allocated_count`, `min_frames`,
//!   `global_free_count`, `reclaim_target`.
//! * **Statements** — assignment, `if`/`else`, `while` (with `break;` and
//!   `continue;`), `return [value];`, `activate EventName;`, and builtin
//!   calls.
//! * **Page builtins** — `dequeue_head(q)`, `dequeue_tail(q)`, `fifo(q)`,
//!   `lru(q)`, `mru(q)` (one-shot replacement, yielding the freed page),
//!   `find(vaddr)`, `flush(p)`, `release(p)`, `enqueue_head(q, p)`,
//!   `enqueue_tail(q, p)`, `set_ref(p)`, `reset_ref(p)`, `set_mod(p)`,
//!   `reset_mod(p)`, `migrate(container)`.
//! * **Conditions** — integer comparisons, `referenced(p)`, `modified(p)`,
//!   `empty(q)`, `in_queue(q, p)`, `request(n)` (true on a full grant),
//!   bool variables, `!`, `&&`, `||` (short-circuit).
//!
//! `PageFault` and `ReclaimFrame` are required and become events 0 and 1;
//! other events are numbered in order of appearance and reached via
//! `activate`.
//!
//! # Examples
//!
//! ```
//! let source = r#"
//!     event PageFault() {
//!         page p = dequeue_head(free_queue);
//!         return p;
//!     }
//!     event ReclaimFrame() { return; }
//! "#;
//! let program = hipec_lang::compile(source).expect("compiles");
//! assert!(hipec_core::validate_program(&program).is_ok());
//! ```

pub mod asm;
pub mod ast;
pub mod codegen;
pub mod diag;
pub mod lexer;
pub mod opt;
pub mod parser;
pub mod token;

pub use asm::{assemble, disassemble};
pub use codegen::compile_ast;
pub use diag::{Diagnostic, Span};
pub use opt::optimize;

use hipec_core::PolicyProgram;

/// Compiles policy pseudo-code into a HiPEC command program.
pub fn compile(source: &str) -> Result<PolicyProgram, Vec<Diagnostic>> {
    let tokens = lexer::lex(source).map_err(|d| vec![d])?;
    let ast = parser::parse(&tokens).map_err(|d| vec![d])?;
    codegen::compile_ast(&ast)
}

/// Compiles and then runs the peephole optimizer (fewer commands = less
/// per-fault interpretation overhead).
pub fn compile_optimized(source: &str) -> Result<PolicyProgram, Vec<Diagnostic>> {
    compile(source).map(|p| opt::optimize(&p))
}

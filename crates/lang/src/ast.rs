//! The abstract syntax tree of the policy language.

use hipec_core::command::CompOp;

use crate::diag::Span;

/// A whole policy source file.
#[derive(Debug, Clone, Default)]
pub struct Policy {
    /// Top-level declarations.
    pub globals: Vec<Decl>,
    /// Event definitions, in source order.
    pub events: Vec<EventDef>,
}

/// One event definition.
#[derive(Debug, Clone)]
pub struct EventDef {
    /// Event name (`PageFault`, `ReclaimFrame`, user names).
    pub name: String,
    /// Body.
    pub body: Vec<Stmt>,
    /// Position of the `event` keyword.
    pub span: Span,
}

/// A variable declaration (top level or in a block).
#[derive(Debug, Clone)]
pub enum Decl {
    /// `int name = value;`
    Int {
        /// Variable name.
        name: String,
        /// Initializer.
        init: IntExpr,
        /// Position.
        span: Span,
    },
    /// `bool name = true|false;`
    Bool {
        /// Variable name.
        name: String,
        /// Initial value.
        init: bool,
        /// Position.
        span: Span,
    },
    /// `page name;` or `page name = <page expr>;`
    Page {
        /// Variable name.
        name: String,
        /// Optional initializer.
        init: Option<PageExpr>,
        /// Position.
        span: Span,
    },
    /// `queue name;` / `recency queue name;`
    Queue {
        /// Queue name.
        name: String,
        /// Kernel-maintained recency ordering.
        recency: bool,
        /// Position.
        span: Span,
    },
}

/// Statements.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// A nested declaration.
    Decl(Decl),
    /// `x = <int expr>;`
    AssignInt(String, IntExpr, Span),
    /// `p = <page expr>;`
    AssignPage(String, PageExpr, Span),
    /// `b = <condition>;`
    AssignBool(String, Cond, Span),
    /// `if (cond) { .. } else { .. }`
    If(Cond, Vec<Stmt>, Vec<Stmt>, Span),
    /// `while (cond) { .. }`
    While(Cond, Vec<Stmt>, Span),
    /// `return;` / `return <value>;`
    Return(Option<RetVal>, Span),
    /// `activate Name;`
    Activate(String, Span),
    /// `break;` — exit the innermost `while`.
    Break(Span),
    /// `continue;` — jump to the innermost `while`'s condition.
    Continue(Span),
    /// A builtin call in statement position.
    Call(Builtin, Span),
}

/// A `return` value.
#[derive(Debug, Clone)]
pub enum RetVal {
    /// Return a page.
    Page(PageExpr),
    /// Return an integer.
    Int(IntExpr),
}

/// Builtin calls usable as statements.
#[derive(Debug, Clone)]
pub enum Builtin {
    /// `enqueue_head(q, p)`
    EnqueueHead(String, String),
    /// `enqueue_tail(q, p)`
    EnqueueTail(String, String),
    /// `flush(p)` — p is rebound to the exchanged clean frame.
    Flush(String),
    /// `release(p)`
    Release(String),
    /// `set_ref(p)` / `reset_ref(p)` / `set_mod(p)` / `reset_mod(p)`
    SetBit {
        /// Page variable.
        page: String,
        /// True for the reference bit, false for the modify bit.
        reference: bool,
        /// Set or clear.
        value: bool,
    },
    /// `migrate(container)`
    Migrate(IntExpr),
    /// `request(n)` in statement position (grant ignored).
    Request(IntExpr),
    /// `fifo(q)` / `lru(q)` / `mru(q)` in statement position.
    Replace(ReplaceKind, String),
}

/// Which one-shot replacement command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplaceKind {
    /// FIFO (head victim).
    Fifo,
    /// LRU (head of a recency queue).
    Lru,
    /// MRU (tail of a recency queue).
    Mru,
}

/// Expressions producing a page.
#[derive(Debug, Clone)]
pub enum PageExpr {
    /// A page variable.
    Var(String),
    /// `dequeue_head(q)`
    DequeueHead(String),
    /// `dequeue_tail(q)`
    DequeueTail(String),
    /// `fifo(q)` / `lru(q)` / `mru(q)` — the freed page.
    Replace(ReplaceKind, String),
    /// `find(vaddr)`
    Find(IntExpr),
}

/// Integer expressions.
#[derive(Debug, Clone)]
pub enum IntExpr {
    /// A literal.
    Lit(i64),
    /// An `int` variable or kernel counter.
    Var(String),
    /// A binary operation.
    Bin(Box<IntExpr>, IntBinOp, Box<IntExpr>),
}

/// Integer binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntBinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

/// Boolean conditions.
#[derive(Debug, Clone)]
pub enum Cond {
    /// `a <op> b`
    Cmp(IntExpr, CompOp, IntExpr),
    /// `referenced(p)`
    Referenced(String),
    /// `modified(p)`
    Modified(String),
    /// `empty(q)`
    Empty(String),
    /// `in_queue(q, p)`
    InQueue(String, String),
    /// `request(n)` — true when fully granted.
    Request(IntExpr),
    /// A `bool` variable.
    Var(String),
    /// `true` / `false`
    Lit(bool),
    /// `!c`
    Not(Box<Cond>),
    /// `a && b` (short-circuit)
    And(Box<Cond>, Box<Cond>),
    /// `a || b` (short-circuit)
    Or(Box<Cond>, Box<Cond>),
}

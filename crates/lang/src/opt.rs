//! A peephole optimizer for compiled command programs.
//!
//! The executor charges per command fetched (§4.2: more commands = more
//! overhead), so shaving commands off a policy directly cuts its per-fault
//! cost. Three semantics-preserving passes run to a fixpoint:
//!
//! * **jump threading** — a jump whose target is an unconditional jump is
//!   retargeted to the final destination (taken jumps clear the condition
//!   flag either way, so chains collapse safely);
//! * **jump-to-next elimination** — an unconditional jump to the next
//!   command is removed, unless the following command reads the condition
//!   flag (a moded `Jump` or `Logic store`), which the jump would have
//!   cleared;
//! * **unreachable-code elimination** — commands no path reaches are
//!   dropped, with every jump target renumbered.

use std::sync::Arc;

use hipec_core::command::{JumpMode, LogicOp, OpCode, RawCmd};
use hipec_core::PolicyProgram;

/// Optimizes every event of `program`. Pure: returns the optimized copy.
pub fn optimize(program: &PolicyProgram) -> PolicyProgram {
    let mut out = program.clone();
    out.events = program
        .events
        .iter()
        .map(|seg| Arc::new(optimize_event(seg)))
        .collect();
    out
}

fn optimize_event(seg: &[RawCmd]) -> Vec<RawCmd> {
    let mut code: Vec<RawCmd> = seg.to_vec();
    // Each pass can expose more work for the others; iterate to fixpoint.
    // `drop_jump_to_next` removes at most one jump per round, so a chain
    // of K removable jumps needs K+1 rounds — the bound must scale with
    // the stream, not sit at a constant (a fixed cap of 8 silently shipped
    // half-optimized streams for larger events). Every non-converged round
    // either shrinks the stream (at most `len` times) or only retargets
    // jumps; the slack beyond `len` covers trailing retarget-only rounds,
    // so a sound pass set converges well inside the bound.
    let max_rounds = 2 * seg.len() + 4;
    let mut converged = false;
    for _ in 0..max_rounds {
        let before = code.clone();
        thread_jumps(&mut code);
        drop_jump_to_next(&mut code);
        drop_unreachable(&mut code);
        if before == code {
            converged = true;
            break;
        }
    }
    if !converged {
        // A pass set that oscillates instead of converging is an optimizer
        // bug: surface it loudly in debug builds and diagnose in release
        // ones. Shipping the last iterate is still safe — each pass is
        // individually semantics-preserving, so a non-converged stream is
        // merely under-optimized, never wrong.
        debug_assert!(
            converged,
            "peephole fixpoint not reached after {max_rounds} rounds \
             (event of {} commands): {code:?}",
            seg.len()
        );
        eprintln!(
            "hipec-lang: peephole fixpoint not reached after {max_rounds} rounds \
             (event of {} commands); shipping the last safe iterate",
            seg.len()
        );
    }
    code
}

fn is_jump(c: RawCmd) -> bool {
    c.opcode() == Some(OpCode::Jump)
}

fn is_unconditional(c: RawCmd) -> bool {
    is_jump(c) && c.a() == JumpMode::Always as u8
}

/// True if executing `c` observes the condition flag.
fn reads_flag(c: RawCmd) -> bool {
    match c.opcode() {
        Some(OpCode::Jump) => c.a() != JumpMode::Always as u8,
        Some(OpCode::Logic) => LogicOp::from_u8(c.c()) == Some(LogicOp::StoreCond),
        _ => false,
    }
}

fn thread_jumps(code: &mut [RawCmd]) {
    for i in 0..code.len() {
        if !is_jump(code[i]) {
            continue;
        }
        let mut target = code[i].jump_target() as usize;
        let mut hops = 0;
        while target < code.len() && is_unconditional(code[target]) && hops < code.len() {
            target = code[target].jump_target() as usize;
            hops += 1;
        }
        if target != code[i].jump_target() as usize && target < code.len() {
            let mode = JumpMode::from_u8(code[i].a()).expect("validated mode");
            code[i] = hipec_core::command::build::jump(mode, target as u16);
        }
    }
}

fn drop_jump_to_next(code: &mut Vec<RawCmd>) {
    let Some(i) = (0..code.len()).find(|&i| {
        is_unconditional(code[i])
            && code[i].jump_target() as usize == i + 1
            && code.get(i + 1).is_none_or(|next| !reads_flag(*next))
    }) else {
        return;
    };
    remove_at(code, i);
}

fn drop_unreachable(code: &mut Vec<RawCmd>) {
    loop {
        let len = code.len();
        if len == 0 {
            return;
        }
        let mut reachable = vec![false; len];
        let mut stack = vec![0usize];
        while let Some(cc) = stack.pop() {
            if std::mem::replace(&mut reachable[cc], true) {
                continue;
            }
            let c = code[cc];
            match c.opcode() {
                Some(OpCode::Return) => {}
                Some(OpCode::Jump) => {
                    let t = c.jump_target() as usize;
                    if t < len {
                        stack.push(t);
                    }
                    if c.a() != JumpMode::Always as u8 && cc + 1 < len {
                        stack.push(cc + 1);
                    }
                }
                _ => {
                    if cc + 1 < len {
                        stack.push(cc + 1);
                    }
                }
            }
        }
        match reachable.iter().position(|r| !r) {
            Some(dead) => remove_at(code, dead),
            None => return,
        }
    }
}

/// Removes the command at `at`, renumbering every jump target behind it.
fn remove_at(code: &mut Vec<RawCmd>, at: usize) {
    code.remove(at);
    for c in code.iter_mut() {
        if is_jump(*c) {
            let t = c.jump_target() as usize;
            if t > at {
                let mode = JumpMode::from_u8(c.a()).expect("validated mode");
                *c = hipec_core::command::build::jump(mode, (t - 1) as u16);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipec_core::command::{build, CompOp, QueueEnd};
    use hipec_core::{OperandDecl, NO_OPERAND};

    fn count(program: &PolicyProgram) -> usize {
        program.total_commands()
    }

    #[test]
    fn jump_chains_collapse() {
        let mut p = PolicyProgram::new();
        let _q = p.declare(OperandDecl::FreeQueue);
        p.add_event(
            "PageFault",
            vec![
                build::jump(JumpMode::Always, 2), // 0 → 2 → 4
                build::ret(NO_OPERAND),           // 1 (dead)
                build::jump(JumpMode::Always, 4), // 2
                build::ret(NO_OPERAND),           // 3 (dead)
                build::ret(NO_OPERAND),           // 4
            ],
        );
        p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
        let o = optimize(&p);
        // Threading makes 0 jump straight to 4; DCE removes 1..=3; the
        // jump-to-next pass then removes the jump itself.
        assert_eq!(o.event(0).expect("segment").len(), 1);
        assert_eq!(
            o.event(0).expect("segment")[0].opcode(),
            Some(OpCode::Return)
        );
    }

    #[test]
    fn conditional_jump_after_test_is_preserved() {
        let mut p = PolicyProgram::new();
        let _fq = p.declare(OperandDecl::FreeQueue);
        let a = p.declare(OperandDecl::Int(1));
        let b = p.declare(OperandDecl::Int(2));
        let page = p.declare(OperandDecl::Page);
        let q = p.declare(OperandDecl::Queue { recency: false });
        p.add_event(
            "PageFault",
            vec![
                build::comp(a, b, CompOp::Lt),
                build::jump(JumpMode::IfFalse, 4),
                build::dequeue(page, q, QueueEnd::Head),
                build::ret(page),
                build::ret(NO_OPERAND),
            ],
        );
        p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
        let o = optimize(&p);
        assert_eq!(count(&o), count(&p), "nothing to optimize away");
        assert_eq!(
            o.event(0).expect("segment").as_slice(),
            p.event(0).expect("segment").as_slice()
        );
    }

    #[test]
    fn jump_to_next_is_removed_only_when_flag_unread() {
        // Safe: followed by a plain command.
        let mut p = PolicyProgram::new();
        let _fq = p.declare(OperandDecl::FreeQueue);
        let page = p.declare(OperandDecl::Page);
        let q = p.declare(OperandDecl::Queue { recency: false });
        p.add_event(
            "PageFault",
            vec![
                build::jump(JumpMode::Always, 1),
                build::dequeue(page, q, QueueEnd::Head),
                build::ret(page),
            ],
        );
        p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
        let o = optimize(&p);
        assert_eq!(o.event(0).expect("segment").len(), 2);

        // Unsafe: the next command reads the condition flag the jump would
        // have cleared.
        let mut p = PolicyProgram::new();
        let _fq = p.declare(OperandDecl::FreeQueue);
        let a = p.declare(OperandDecl::Int(1));
        p.add_event(
            "PageFault",
            vec![
                build::comp(a, a, CompOp::Eq),    // sets the flag
                build::jump(JumpMode::Always, 2), // clears it
                build::jump(JumpMode::IfTrue, 0), // must NOT become reachable-with-flag
                build::ret(NO_OPERAND),
            ],
        );
        p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
        let o = optimize(&p);
        let seg = o.event(0).expect("segment");
        assert!(
            seg.iter().any(|c| is_unconditional(*c)),
            "flag-clearing jump must survive: {seg:?}"
        );
    }

    #[test]
    fn deep_jump_chains_converge_past_the_old_eight_round_cap() {
        // Twelve `[Comp, Jump Always -> next]` pairs: the jumps target Comp
        // commands (nothing to thread), everything is reachable (nothing
        // for DCE), so only `drop_jump_to_next` makes progress — one jump
        // per round. Reaching the fixpoint needs 13 rounds; the old cap of
        // 8 shipped a stream with 4 jumps still in it.
        const PAIRS: u16 = 12;
        let mut p = PolicyProgram::new();
        let _fq = p.declare(OperandDecl::FreeQueue);
        let a = p.declare(OperandDecl::Int(1));
        let mut cmds = Vec::new();
        for i in 0..PAIRS {
            cmds.push(build::comp(a, a, CompOp::Eq));
            cmds.push(build::jump(JumpMode::Always, 2 * i + 2));
        }
        cmds.push(build::ret(NO_OPERAND));
        p.add_event("PageFault", cmds);
        p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
        hipec_core::validate_program(&p).expect("input program is valid");

        let o = optimize(&p);
        let seg = o.event(0).expect("segment");
        assert!(
            !seg.iter().any(|c| c.opcode() == Some(OpCode::Jump)),
            "every jump-to-next must be gone at the fixpoint: {seg:?}"
        );
        assert_eq!(seg.len(), PAIRS as usize + 1, "12 Comps + Return remain");
        hipec_core::validate_program(&o).expect("optimized program is valid");
    }

    #[test]
    fn optimized_shipped_policies_stay_valid_and_smaller_or_equal() {
        let src = super::tests_support::FIFO_SECOND_CHANCE_FOR_OPT;
        let p = crate::compile(src).expect("compiles");
        let o = optimize(&p);
        hipec_core::validate_program(&o).expect("optimized program is valid");
        assert!(count(&o) <= count(&p));
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    /// A policy with enough control flow to exercise every pass.
    pub const FIFO_SECOND_CHANCE_FOR_OPT: &str = r#"
        queue active_q;
        queue inactive_q;
        int inactive_target = 8;
        int free_target = 2;

        event PageFault() {
            if (free_count == 0) {
                activate Lack_free_frame;
            }
            page p = dequeue_head(free_queue);
            enqueue_tail(active_q, p);
            return p;
        }

        event Lack_free_frame() {
            while (inactive_count < inactive_target && active_count > 0) {
                page p = dequeue_head(active_q);
                reset_ref(p);
                enqueue_tail(inactive_q, p);
            }
            while (free_count < free_target && inactive_count > 0) {
                page q = dequeue_head(inactive_q);
                if (referenced(q)) {
                    enqueue_tail(active_q, q);
                    reset_ref(q);
                } else {
                    if (modified(q)) {
                        flush(q);
                    }
                    enqueue_head(free_queue, q);
                }
            }
        }

        event ReclaimFrame() { return; }
    "#;
}

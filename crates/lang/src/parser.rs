//! Recursive-descent parser for the policy language.

use hipec_core::command::CompOp;

use crate::ast::{
    Builtin, Cond, Decl, EventDef, IntBinOp, IntExpr, PageExpr, Policy, ReplaceKind, RetVal, Stmt,
};
use crate::diag::{Diagnostic, Span};
use crate::token::{Tok, Token};

/// Parses a token stream into a [`Policy`] AST.
pub fn parse(tokens: &[Token]) -> Result<Policy, Diagnostic> {
    Parser { tokens, pos: 0 }.policy()
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> &Tok {
        let t = &self.tokens[self.pos].tok;
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, want: Tok) -> Result<(), Diagnostic> {
        if *self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.unexpected(&want.describe()))
        }
    }

    fn unexpected(&self, wanted: &str) -> Diagnostic {
        Diagnostic::new(
            self.span(),
            format!("expected {wanted}, found {}", self.peek().describe()),
        )
    }

    fn ident(&mut self) -> Result<String, Diagnostic> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            _ => Err(self.unexpected("an identifier")),
        }
    }

    fn policy(&mut self) -> Result<Policy, Diagnostic> {
        let mut p = Policy::default();
        loop {
            match self.peek() {
                Tok::Eof => return Ok(p),
                Tok::Event => p.events.push(self.event()?),
                Tok::Int | Tok::Bool | Tok::Page | Tok::Queue | Tok::Recency => {
                    p.globals.push(self.decl()?)
                }
                _ => return Err(self.unexpected("`event` or a declaration")),
            }
        }
    }

    fn event(&mut self) -> Result<EventDef, Diagnostic> {
        let span = self.span();
        self.eat(Tok::Event)?;
        let name = self.ident()?;
        self.eat(Tok::LParen)?;
        self.eat(Tok::RParen)?;
        let body = self.block()?;
        Ok(EventDef { name, body, span })
    }

    fn decl(&mut self) -> Result<Decl, Diagnostic> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Int => {
                self.bump();
                let name = self.ident()?;
                self.eat(Tok::Assign)?;
                let init = self.int_expr()?;
                self.eat(Tok::Semi)?;
                Ok(Decl::Int { name, init, span })
            }
            Tok::Bool => {
                self.bump();
                let name = self.ident()?;
                self.eat(Tok::Assign)?;
                let init = match self.bump().clone() {
                    Tok::True => true,
                    Tok::False => false,
                    _ => {
                        return Err(Diagnostic::new(
                            span,
                            "bool declarations take `true` or `false`",
                        ))
                    }
                };
                self.eat(Tok::Semi)?;
                Ok(Decl::Bool { name, init, span })
            }
            Tok::Page => {
                self.bump();
                let name = self.ident()?;
                let init = if *self.peek() == Tok::Assign {
                    self.bump();
                    Some(self.page_expr()?)
                } else {
                    None
                };
                self.eat(Tok::Semi)?;
                Ok(Decl::Page { name, init, span })
            }
            Tok::Queue => {
                self.bump();
                let name = self.ident()?;
                self.eat(Tok::Semi)?;
                Ok(Decl::Queue {
                    name,
                    recency: false,
                    span,
                })
            }
            Tok::Recency => {
                self.bump();
                self.eat(Tok::Queue)?;
                let name = self.ident()?;
                self.eat(Tok::Semi)?;
                Ok(Decl::Queue {
                    name,
                    recency: true,
                    span,
                })
            }
            _ => Err(self.unexpected("a declaration")),
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, Diagnostic> {
        self.eat(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while *self.peek() != Tok::RBrace {
            if *self.peek() == Tok::Eof {
                return Err(self.unexpected("`}`"));
            }
            stmts.push(self.stmt()?);
        }
        self.bump();
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Int | Tok::Bool | Tok::Page | Tok::Queue | Tok::Recency => {
                Ok(Stmt::Decl(self.decl()?))
            }
            Tok::If => {
                self.bump();
                self.eat(Tok::LParen)?;
                let cond = self.cond()?;
                self.eat(Tok::RParen)?;
                let then_b = self.block()?;
                let else_b = if *self.peek() == Tok::Else {
                    self.bump();
                    if *self.peek() == Tok::If {
                        // `else if` chains.
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If(cond, then_b, else_b, span))
            }
            Tok::While => {
                self.bump();
                self.eat(Tok::LParen)?;
                let cond = self.cond()?;
                self.eat(Tok::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While(cond, body, span))
            }
            Tok::Return => {
                self.bump();
                let value = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.ret_val()?)
                };
                self.eat(Tok::Semi)?;
                Ok(Stmt::Return(value, span))
            }
            Tok::Activate => {
                self.bump();
                let name = self.ident()?;
                self.eat(Tok::Semi)?;
                Ok(Stmt::Activate(name, span))
            }
            Tok::Break => {
                self.bump();
                self.eat(Tok::Semi)?;
                Ok(Stmt::Break(span))
            }
            Tok::Continue => {
                self.bump();
                self.eat(Tok::Semi)?;
                Ok(Stmt::Continue(span))
            }
            Tok::Ident(name) => {
                self.bump();
                if *self.peek() == Tok::Assign {
                    self.bump();
                    let stmt = self.assignment(name, span)?;
                    self.eat(Tok::Semi)?;
                    Ok(stmt)
                } else if *self.peek() == Tok::LParen {
                    let call = self.builtin_call(&name, span)?;
                    self.eat(Tok::Semi)?;
                    Ok(Stmt::Call(call, span))
                } else {
                    Err(self.unexpected("`=` or `(`"))
                }
            }
            _ => Err(self.unexpected("a statement")),
        }
    }

    fn ret_val(&mut self) -> Result<RetVal, Diagnostic> {
        if let Tok::Ident(name) = self.peek().clone() {
            if self.is_page_builtin(&name) {
                return Ok(RetVal::Page(self.page_expr()?));
            }
        }
        // Bare identifiers are resolved by type at code generation; parse as
        // an integer expression (codegen reinterprets page variables).
        Ok(RetVal::Int(self.int_expr()?))
    }

    fn is_page_builtin(&self, name: &str) -> bool {
        matches!(
            name,
            "dequeue_head" | "dequeue_tail" | "fifo" | "lru" | "mru" | "find"
        )
    }

    fn assignment(&mut self, target: String, span: Span) -> Result<Stmt, Diagnostic> {
        // Disambiguate by the first token(s) of the right-hand side; bare
        // identifiers are typed at code generation.
        if let Tok::Ident(name) = self.peek().clone() {
            if self.is_page_builtin(&name) {
                return Ok(Stmt::AssignPage(target, self.page_expr()?, span));
            }
            if matches!(
                name.as_str(),
                "referenced" | "modified" | "empty" | "in_queue" | "request"
            ) {
                return Ok(Stmt::AssignBool(target, self.cond()?, span));
            }
        }
        if matches!(self.peek(), Tok::True | Tok::False | Tok::Bang) {
            return Ok(Stmt::AssignBool(target, self.cond()?, span));
        }
        let lhs = self.int_expr()?;
        if let Some(op) = self.peek_cmp() {
            self.bump();
            let rhs = self.int_expr()?;
            let cond = self.cond_rest(Cond::Cmp(lhs, op, rhs))?;
            return Ok(Stmt::AssignBool(target, cond, span));
        }
        if matches!(self.peek(), Tok::AndAnd | Tok::OrOr) {
            // `b = x && y` where x parsed as an int expression: only a bare
            // variable can be a bool here.
            if let IntExpr::Var(v) = lhs {
                let cond = self.cond_rest(Cond::Var(v))?;
                return Ok(Stmt::AssignBool(target, cond, span));
            }
            return Err(self.unexpected("a boolean expression"));
        }
        Ok(Stmt::AssignInt(target, lhs, span))
    }

    fn builtin_call(&mut self, name: &str, span: Span) -> Result<Builtin, Diagnostic> {
        self.eat(Tok::LParen)?;
        let b = match name {
            "enqueue_head" | "enqueue_tail" => {
                let q = self.ident()?;
                self.eat(Tok::Comma)?;
                let p = self.ident()?;
                if name == "enqueue_head" {
                    Builtin::EnqueueHead(q, p)
                } else {
                    Builtin::EnqueueTail(q, p)
                }
            }
            "flush" => Builtin::Flush(self.ident()?),
            "release" => Builtin::Release(self.ident()?),
            "set_ref" => Builtin::SetBit {
                page: self.ident()?,
                reference: true,
                value: true,
            },
            "reset_ref" => Builtin::SetBit {
                page: self.ident()?,
                reference: true,
                value: false,
            },
            "set_mod" => Builtin::SetBit {
                page: self.ident()?,
                reference: false,
                value: true,
            },
            "reset_mod" => Builtin::SetBit {
                page: self.ident()?,
                reference: false,
                value: false,
            },
            "migrate" => Builtin::Migrate(self.int_expr()?),
            "request" => Builtin::Request(self.int_expr()?),
            "fifo" => Builtin::Replace(ReplaceKind::Fifo, self.ident()?),
            "lru" => Builtin::Replace(ReplaceKind::Lru, self.ident()?),
            "mru" => Builtin::Replace(ReplaceKind::Mru, self.ident()?),
            other => return Err(Diagnostic::new(span, format!("unknown builtin `{other}`"))),
        };
        self.eat(Tok::RParen)?;
        Ok(b)
    }

    fn page_expr(&mut self) -> Result<PageExpr, Diagnostic> {
        let span = self.span();
        let name = self.ident()?;
        if *self.peek() != Tok::LParen {
            return Ok(PageExpr::Var(name));
        }
        self.eat(Tok::LParen)?;
        let e = match name.as_str() {
            "dequeue_head" => PageExpr::DequeueHead(self.ident()?),
            "dequeue_tail" => PageExpr::DequeueTail(self.ident()?),
            "fifo" => PageExpr::Replace(ReplaceKind::Fifo, self.ident()?),
            "lru" => PageExpr::Replace(ReplaceKind::Lru, self.ident()?),
            "mru" => PageExpr::Replace(ReplaceKind::Mru, self.ident()?),
            "find" => PageExpr::Find(self.int_expr()?),
            other => {
                return Err(Diagnostic::new(
                    span,
                    format!("`{other}` does not produce a page"),
                ))
            }
        };
        self.eat(Tok::RParen)?;
        Ok(e)
    }

    // --- Conditions ---------------------------------------------------------

    fn cond(&mut self) -> Result<Cond, Diagnostic> {
        let first = self.and_cond()?;
        self.or_rest(first)
    }

    fn or_rest(&mut self, mut acc: Cond) -> Result<Cond, Diagnostic> {
        while *self.peek() == Tok::OrOr {
            self.bump();
            let rhs = self.and_cond()?;
            acc = Cond::Or(Box::new(acc), Box::new(rhs));
        }
        Ok(acc)
    }

    fn cond_rest(&mut self, first: Cond) -> Result<Cond, Diagnostic> {
        let mut acc = first;
        while *self.peek() == Tok::AndAnd {
            self.bump();
            let rhs = self.not_cond()?;
            acc = Cond::And(Box::new(acc), Box::new(rhs));
        }
        self.or_rest(acc)
    }

    fn and_cond(&mut self) -> Result<Cond, Diagnostic> {
        let mut acc = self.not_cond()?;
        while *self.peek() == Tok::AndAnd {
            self.bump();
            let rhs = self.not_cond()?;
            acc = Cond::And(Box::new(acc), Box::new(rhs));
        }
        Ok(acc)
    }

    fn not_cond(&mut self) -> Result<Cond, Diagnostic> {
        if *self.peek() == Tok::Bang {
            self.bump();
            return Ok(Cond::Not(Box::new(self.not_cond()?)));
        }
        self.primary_cond()
    }

    fn primary_cond(&mut self) -> Result<Cond, Diagnostic> {
        match self.peek().clone() {
            Tok::True => {
                self.bump();
                return Ok(Cond::Lit(true));
            }
            Tok::False => {
                self.bump();
                return Ok(Cond::Lit(false));
            }
            Tok::Ident(name) => match name.as_str() {
                "referenced" | "modified" => {
                    self.bump();
                    self.eat(Tok::LParen)?;
                    let p = self.ident()?;
                    self.eat(Tok::RParen)?;
                    return Ok(if name == "referenced" {
                        Cond::Referenced(p)
                    } else {
                        Cond::Modified(p)
                    });
                }
                "empty" => {
                    self.bump();
                    self.eat(Tok::LParen)?;
                    let q = self.ident()?;
                    self.eat(Tok::RParen)?;
                    return Ok(Cond::Empty(q));
                }
                "in_queue" => {
                    self.bump();
                    self.eat(Tok::LParen)?;
                    let q = self.ident()?;
                    self.eat(Tok::Comma)?;
                    let p = self.ident()?;
                    self.eat(Tok::RParen)?;
                    return Ok(Cond::InQueue(q, p));
                }
                "request" => {
                    self.bump();
                    self.eat(Tok::LParen)?;
                    let n = self.int_expr()?;
                    self.eat(Tok::RParen)?;
                    return Ok(Cond::Request(n));
                }
                _ => {}
            },
            _ => {}
        }
        // Try `int_expr <cmp> int_expr`, backtracking on failure.
        let save = self.pos;
        if let Ok(lhs) = self.int_expr() {
            if let Some(op) = self.peek_cmp() {
                self.bump();
                let rhs = self.int_expr()?;
                return Ok(Cond::Cmp(lhs, op, rhs));
            }
            if let IntExpr::Var(v) = lhs {
                // A bare identifier: a bool variable.
                return Ok(Cond::Var(v));
            }
        }
        self.pos = save;
        if *self.peek() == Tok::LParen {
            self.bump();
            let c = self.cond()?;
            self.eat(Tok::RParen)?;
            return Ok(c);
        }
        Err(self.unexpected("a condition"))
    }

    fn peek_cmp(&self) -> Option<CompOp> {
        match self.peek() {
            Tok::EqEq => Some(CompOp::Eq),
            Tok::Ne => Some(CompOp::Ne),
            Tok::Lt => Some(CompOp::Lt),
            Tok::Le => Some(CompOp::Le),
            Tok::Gt => Some(CompOp::Gt),
            Tok::Ge => Some(CompOp::Ge),
            _ => None,
        }
    }

    // --- Integer expressions --------------------------------------------------

    fn int_expr(&mut self) -> Result<IntExpr, Diagnostic> {
        let mut acc = self.term()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => IntBinOp::Add,
                Tok::Minus => IntBinOp::Sub,
                _ => return Ok(acc),
            };
            self.bump();
            let rhs = self.term()?;
            acc = IntExpr::Bin(Box::new(acc), op, Box::new(rhs));
        }
    }

    fn term(&mut self) -> Result<IntExpr, Diagnostic> {
        let mut acc = self.factor()?;
        loop {
            let op = match self.peek() {
                Tok::Star => IntBinOp::Mul,
                Tok::Slash => IntBinOp::Div,
                Tok::Percent => IntBinOp::Mod,
                _ => return Ok(acc),
            };
            self.bump();
            let rhs = self.factor()?;
            acc = IntExpr::Bin(Box::new(acc), op, Box::new(rhs));
        }
    }

    fn factor(&mut self) -> Result<IntExpr, Diagnostic> {
        match self.peek().clone() {
            Tok::IntLit(v) => {
                self.bump();
                Ok(IntExpr::Lit(v))
            }
            Tok::Minus => {
                self.bump();
                match self.factor()? {
                    IntExpr::Lit(v) => Ok(IntExpr::Lit(-v)),
                    e => Ok(IntExpr::Bin(
                        Box::new(IntExpr::Lit(0)),
                        IntBinOp::Sub,
                        Box::new(e),
                    )),
                }
            }
            Tok::Ident(name) => {
                self.bump();
                Ok(IntExpr::Var(name))
            }
            Tok::LParen => {
                self.bump();
                let e = self.int_expr()?;
                self.eat(Tok::RParen)?;
                Ok(e)
            }
            _ => Err(self.unexpected("an integer expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_ok(src: &str) -> Policy {
        parse(&lex(src).expect("lexes")).expect("parses")
    }

    #[test]
    fn minimal_policy() {
        let p = parse_ok(
            "event PageFault() { page p = dequeue_head(free_queue); return p; }\n\
             event ReclaimFrame() { return; }",
        );
        assert_eq!(p.events.len(), 2);
        assert_eq!(p.events[0].name, "PageFault");
        assert_eq!(p.events[0].body.len(), 2);
    }

    #[test]
    fn globals_parse() {
        let p = parse_ok(
            "queue fq; recency queue rq; int t = 5; bool flag = true; page scratch;\n\
             event PageFault() { return; } event ReclaimFrame() { return; }",
        );
        assert_eq!(p.globals.len(), 5);
        assert!(matches!(p.globals[1], Decl::Queue { recency: true, .. }));
    }

    #[test]
    fn if_else_and_while() {
        let p = parse_ok(
            "event PageFault() {\n\
               while (free_count < 2) { activate Helper; }\n\
               if (free_count > 0) { return; } else { return; }\n\
             }\n\
             event ReclaimFrame() { return; }\n\
             event Helper() { return; }",
        );
        let body = &p.events[0].body;
        assert!(matches!(body[0], Stmt::While(..)));
        assert!(matches!(body[1], Stmt::If(..)));
    }

    #[test]
    fn else_if_chain() {
        let p = parse_ok(
            "event PageFault() {\n\
               if (free_count > 4) { return; }\n\
               else if (free_count > 2) { return; }\n\
               else { return; }\n\
             }\n\
             event ReclaimFrame() { return; }",
        );
        let Stmt::If(_, _, else_b, _) = &p.events[0].body[0] else {
            panic!("expected if");
        };
        assert_eq!(else_b.len(), 1);
        assert!(matches!(else_b[0], Stmt::If(..)));
    }

    #[test]
    fn conditions_with_connectives() {
        let p = parse_ok(
            "event PageFault() {\n\
               if (referenced(p) && !modified(p) || empty(q)) { return; }\n\
             }\n\
             event ReclaimFrame() { return; }\n\
             queue q; page p;",
        );
        let Stmt::If(cond, ..) = &p.events[0].body[0] else {
            panic!("expected if");
        };
        assert!(matches!(cond, Cond::Or(..)));
    }

    #[test]
    fn parenthesized_comparison_condition() {
        let p = parse_ok(
            "event PageFault() { if ((free_count + 1) * 2 >= 10) { return; } }\n\
             event ReclaimFrame() { return; }",
        );
        let Stmt::If(Cond::Cmp(lhs, op, _), ..) = &p.events[0].body[0] else {
            panic!("expected comparison");
        };
        assert_eq!(*op, CompOp::Ge);
        assert!(matches!(lhs, IntExpr::Bin(..)));
    }

    #[test]
    fn assignments_disambiguate() {
        let p = parse_ok(
            "event PageFault() {\n\
               x = 3 + 4;\n\
               p = dequeue_head(q);\n\
               b = x > 2;\n\
               b = modified(p);\n\
               p2 = p;\n\
             }\n\
             event ReclaimFrame() { return; }",
        );
        let body = &p.events[0].body;
        assert!(matches!(body[0], Stmt::AssignInt(..)));
        assert!(matches!(body[1], Stmt::AssignPage(..)));
        assert!(matches!(body[2], Stmt::AssignBool(..)));
        assert!(matches!(body[3], Stmt::AssignBool(..)));
        // `p2 = p` parses as an int assignment; codegen retypes it.
        assert!(matches!(body[4], Stmt::AssignInt(..)));
    }

    #[test]
    fn builtin_statements() {
        let p = parse_ok(
            "event PageFault() {\n\
               enqueue_tail(q, p); flush(p); release(p); reset_ref(p);\n\
               migrate(1); request(8); fifo(q);\n\
             }\n\
             event ReclaimFrame() { return; }",
        );
        assert_eq!(p.events[0].body.len(), 7);
    }

    #[test]
    fn negative_literals_fold() {
        let p =
            parse_ok("int x = -5; event PageFault() { return; } event ReclaimFrame() { return; }");
        let Decl::Int { init, .. } = &p.globals[0] else {
            panic!("int decl");
        };
        assert!(matches!(init, IntExpr::Lit(-5)));
    }

    #[test]
    fn syntax_errors_have_positions() {
        let err = parse(&lex("event PageFault() { return }").expect("lexes"))
            .expect_err("missing semicolon");
        assert!(err.message.contains("expected"));
        assert_eq!(err.span.line, 1);
    }

    #[test]
    fn unknown_builtin_is_rejected() {
        let err = parse(&lex("event E() { frobnicate(p); }").expect("lexes"))
            .expect_err("unknown builtin");
        assert!(err.message.contains("frobnicate"));
    }

    #[test]
    fn unclosed_block_is_rejected() {
        assert!(parse(&lex("event E() { return;").expect("lexes")).is_err());
    }
}

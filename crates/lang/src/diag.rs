//! Source positions and diagnostics.

use core::fmt;

/// A half-open source span with line/column of its start (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column of the first character.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// One translator diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Where the problem is.
    pub span: Span,
    /// What the problem is.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic.
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

impl std::error::Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let d = Diagnostic::new(Span { line: 3, col: 9 }, "unexpected token");
        assert_eq!(d.to_string(), "3:9: unexpected token");
    }
}

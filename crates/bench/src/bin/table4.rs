//! Regenerates Table 4 (Comparison II): the cost of the dispatch
//! primitives an application-specific policy could be built on — a null
//! system call (the upcall building block), a null IPC round trip, and the
//! HiPEC simple-fault interpretation path (`Comp`, `DeQueue`, `Return`).
//!
//! The simulated-machine numbers come from the calibrated cost model; the
//! HiPEC entry is additionally *measured* by running the real interpreter
//! over the fast path and reading back the virtual time it charged.

use hipec_bench::{finish, json_mode, kernel_stats_json, TextTable};
use hipec_core::command::{build, CompOp, JumpMode, QueueEnd};
use hipec_core::{ContainerKey, HipecKernel, KernelVar, OperandDecl, PolicyProgram, NO_OPERAND};
use hipec_vm::{KernelParams, PAGE_SIZE};

/// Builds the 3-command fast path the paper cites: Comp, DeQueue, Return.
fn fast_path_program() -> PolicyProgram {
    let mut p = PolicyProgram::new();
    let free_q = p.declare(OperandDecl::FreeQueue);
    let page = p.declare(OperandDecl::Page);
    let free_count = p.declare(OperandDecl::Kernel(KernelVar::FreeCount));
    let zero = p.declare(OperandDecl::Int(0));
    // Exactly the three commands the paper cites for the simple fault:
    // Comp, DeQueue, Return. (The guard comparison's else-branch would add
    // a Jump; the benchmark never takes it because the pool stays full.)
    p.add_event(
        "PageFault",
        vec![
            build::comp(free_count, zero, CompOp::Gt),
            build::dequeue(page, free_q, QueueEnd::Head),
            build::ret(page),
        ],
    );
    let _ = JumpMode::IfFalse;
    p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
    p
}

fn main() {
    let mut k = HipecKernel::new(KernelParams::paper_64mb());
    let task = k.vm.create_task();
    let (_addr, _obj, key) = k
        .vm_allocate_hipec(task, 64 * PAGE_SIZE, fast_path_program(), 64)
        .expect("install fast-path policy");
    let _ = ContainerKey(0);

    // Measure the interpreter's command fetch/decode share of the fast
    // path: total charged time minus the native queue operation it performs.
    let iterations = 1_000u64;
    let snap = k.kernel_stats();
    let before = k.vm.now();
    let mut decoded_cmds = 0u64;
    for _ in 0..iterations {
        let cb = k.container(key).expect("container").stats.commands;
        k.run_event_raw(key, hipec_core::EVENT_PAGE_FAULT)
            .expect("fast path runs");
        decoded_cmds += k.container(key).expect("container").stats.commands - cb;
        // Hand the page back so the free queue never empties.
        let page = match k.containers[key.0 as usize].operands[1] {
            hipec_core::OperandSlot::Page(Some(f)) => f,
            _ => unreachable!("fast path leaves the page in slot 1"),
        };
        let free_q = k.containers[key.0 as usize].free_q;
        k.vm.frames.enqueue_tail(free_q, page).expect("give back");
    }
    let per_invocation = k.vm.now().since(before) / iterations;
    let cmds_per_invocation = decoded_cmds / iterations;
    let decode_only = k.vm.cost.cmd_fetch_decode * cmds_per_invocation;

    let m = &k.vm.cost;
    let mut table = TextTable::new(vec!["Evaluation", "Average Time"]);
    table.row(vec![
        "Null System Call".to_string(),
        format!("{} µsec", m.null_syscall.as_us_f64()),
    ]);
    table.row(vec![
        "Null IPC Call".to_string(),
        format!("{} µsec", m.null_ipc.as_us_f64()),
    ]);
    table.row(vec![
        "Simple HiPEC page fault overhead".to_string(),
        format!("≅ {} nsec", decode_only.as_ns()),
    ]);

    let phase = k.kernel_stats().diff(&snap);
    if !json_mode() {
        println!("== Table 4: Comparison II (dispatch primitives) ==\n");
        println!("{table}");
        println!(
            "measured: {cmds_per_invocation} commands interpreted per simple fault; \
             full interpreted path (incl. native queue op) {per_invocation}"
        );
        println!("paper: 19 µs / 292 µs / ≅150 ns");
        // The measurement interval's kernel activity, as a counter delta.
        println!("-- kernel counters over the measurement interval --\n{phase}");
    }

    finish(
        "table4",
        &serde_json::json!({
            "null_syscall_us": m.null_syscall.as_us_f64(),
            "null_ipc_us": m.null_ipc.as_us_f64(),
            "simple_fault_decode_ns": decode_only.as_ns(),
            "commands_per_fault": cmds_per_invocation,
            "full_path_ns": per_invocation.as_ns(),
            "kernel": kernel_stats_json(&phase),
        }),
    );
}

//! Ablation: the `partition_burst` watermark (paper §4.3.1).
//!
//! The paper fixes `partition_burst` at 50 % of post-boot free frames and
//! explicitly defers studying other settings. This harness does that study:
//! it sweeps the watermark from 10 % to 90 % while a specific application
//! (growing its pool with `Request`) competes with a non-specific
//! sequential scanner, and reports how the frames — and the fault rates —
//! divide between the two.

use hipec_core::command::{build, ArithOp, CompOp, JumpMode, QueueEnd};
use hipec_core::{HipecKernel, KernelVar, OperandDecl, PolicyProgram, NO_OPERAND};
use hipec_vm::{KernelParams, VAddr, PAGE_SIZE};

/// MRU policy that greedily grows via Request and evicts on rejection
/// (MRU so a bigger private pool directly cuts the cyclic-scan faults).
fn greedy_policy() -> PolicyProgram {
    let mut p = PolicyProgram::new();
    let free_q = p.declare(OperandDecl::FreeQueue);
    let fifo_q = p.declare(OperandDecl::Queue { recency: true });
    let page = p.declare(OperandDecl::Page);
    let free_count = p.declare(OperandDecl::Kernel(KernelVar::FreeCount));
    let zero = p.declare(OperandDecl::Int(0));
    let chunk = p.declare(OperandDecl::Int(16));
    // One Request per fault (a grant may be clawed straight back by
    // balance reclamation when the burst is small, so the free queue is
    // re-tested and FIFO eviction is the fallback).
    p.add_event(
        "PageFault",
        vec![
            // 0: free queue non-empty → serve
            build::emptyq(free_q),
            build::jump(JumpMode::IfFalse, 7),
            // 2: try to grow once
            build::request(chunk, NO_OPERAND),
            build::emptyq(free_q),
            build::jump(JumpMode::IfFalse, 7),
            // 5: still empty → evict one of our own pages
            build::mru(fifo_q, page),
            build::jump(JumpMode::Always, 7),
            // 7: serve the fault
            build::dequeue(page, free_q, QueueEnd::Head),
            build::enqueue(page, fifo_q, QueueEnd::Tail),
            build::ret(page),
        ],
    );
    let _ = (free_count, zero);
    let want = p.declare(OperandDecl::Kernel(KernelVar::ReclaimTarget));
    let released = p.declare(OperandDecl::Int(0));
    let rpage = p.declare(OperandDecl::Page);
    let alloc = p.declare(OperandDecl::Kernel(KernelVar::AllocatedCount));
    p.add_event(
        "ReclaimFrame",
        vec![
            // 0: released = 0
            build::arith(released, zero, ArithOp::Mov),
            // 1: while released < reclaim_target && allocated > 0
            build::comp(released, want, CompOp::Lt),
            build::jump(JumpMode::IfFalse, 12),
            build::comp(alloc, zero, CompOp::Gt),
            build::jump(JumpMode::IfFalse, 12),
            // 5: refill the free queue if it is empty
            build::emptyq(free_q),
            build::jump(JumpMode::IfFalse, 8),
            build::mru(fifo_q, rpage),
            // 8: hand one frame back
            build::dequeue(rpage, free_q, QueueEnd::Head),
            build::release(rpage),
            build::arith(released, zero, ArithOp::Inc),
            build::jump(JumpMode::Always, 1),
            // 12:
            build::ret(NO_OPERAND),
        ],
    );
    p
}

fn main() {
    let mut params = KernelParams::paper_64mb();
    params.total_frames = 2_048;
    params.wired_frames = 64;
    let pageable = 2_048 - 64;

    let json_only = hipec_bench::json_mode();
    if !json_only {
        println!("== Ablation: partition_burst sweep ==\n");
        println!(
            "{:<10} {:>14} {:>16} {:>18}",
            "burst %", "specific frames", "specific faults", "non-specific faults"
        );
    }
    let mut rows = Vec::new();
    for pct in [10u64, 25, 50, 75, 90] {
        let mut k = HipecKernel::new(params.clone());
        k.gfm.partition_burst = pageable * pct / 100;
        // Specific app: cyclic scan over 1200 pages, starting from 64.
        let t1 = k.vm.create_task();
        let (a1, _o, key) = k
            .vm_allocate_hipec(t1, 1_200 * PAGE_SIZE, greedy_policy(), 64)
            .expect("install");
        // Non-specific app: cyclic scan over 600 pages in the default pool.
        let t2 = k.vm.create_task();
        let (a2, _obj) = k.vm.vm_allocate(t2, 600 * PAGE_SIZE).expect("allocate");

        for _round in 0..4 {
            for p in 0..1_200u64 {
                k.access_sync(t1, VAddr(a1.0 + p * PAGE_SIZE), false)
                    .expect("specific access");
                match k.access(t2, VAddr(a2.0 + (p % 600) * PAGE_SIZE), false) {
                    Ok(r) => {
                        if let Some(done) = r.io_until {
                            k.vm.clock.advance_to(done);
                        }
                    }
                    Err(e) => panic!("non-specific access failed: {e}"),
                }
                k.vm.pump();
            }
        }
        let stats = k.kernel_stats();
        let c = k.container(key).expect("container");
        let specific_faults = c.stats.faults;
        let total_faults = k.vm.stats.get("faults");
        let non_specific_faults = total_faults - specific_faults;
        if !json_only {
            println!(
                "{:<10} {:>14} {:>16} {:>18}",
                pct, c.allocated, specific_faults, non_specific_faults
            );
            println!(
                "{:<10} grants={} rejections={} reclaims={}+{} (normal+forced)",
                "",
                stats.get("gfm_grants").unwrap_or(0),
                stats.get("gfm_rejections").unwrap_or(0),
                stats.get("gfm_normal_reclaims").unwrap_or(0),
                stats.get("gfm_forced_reclaims").unwrap_or(0),
            );
        }
        rows.push(serde_json::json!({
            "burst_pct": pct,
            "specific_frames": c.allocated,
            "specific_faults": specific_faults,
            "non_specific_faults": non_specific_faults,
            "gfm_grants": stats.get("gfm_grants").unwrap_or(0),
            "gfm_rejections": stats.get("gfm_rejections").unwrap_or(0),
            "gfm_normal_reclaims": stats.get("gfm_normal_reclaims").unwrap_or(0),
            "gfm_forced_reclaims": stats.get("gfm_forced_reclaims").unwrap_or(0),
        }));
    }
    if !json_only {
        println!("\nreading: a larger partition lets the specific application grow its");
        println!("private pool (fewer specific faults) at the expense of the default");
        println!("pool; the paper's 50% splits the machine evenly.");
    }
    hipec_bench::finish("ablation_partition", &serde_json::json!({ "rows": rows }));
}

//! Chaos soak: graceful degradation under a phased hostile device —
//! with a second, healthy device that must ride the storm untouched.
//!
//! Drives three mixed workloads (two HiPEC-managed regions with different
//! policies, each bound to its own backing device, plus a default-pool
//! scanner on the boot device) through a phased fault plan targeted at
//! the second device only — quiet warm-up, then an all-torn-and-delayed
//! window (ROADMAP's pathological device), then quiet again — and asserts
//! the graceful-degradation contract end to end:
//!
//! * the faulty device's circuit breaker trips during the window and
//!   closes after it (half-open probes against the healed device), while
//!   the clean device's breaker never trips,
//! * the container routed to the faulty device is quarantined into
//!   default management with its `minFrame` reservation preserved, and is
//!   later restored by probation (ramped back tranche by tranche); the
//!   container on the clean device is never quarantined and ends Healthy,
//! * `check_invariants()` is clean at every audited step and fault
//!   counters keep advancing (no livelock),
//! * the streamed JSONL trace is complete (no dropped records) — and,
//!   because every decision is a pure function of the seed, bit-for-bit
//!   identical across runs. `scripts/verify.sh` runs this twice and
//!   `cmp`s the traces, then gates the run through `trace_analyze`.
//!
//! Usage: `chaos_soak [--out PATH] [--steps N] [--seed S] [--kind disk|flash] [--json]`
//!
//! `--kind flash` backs the hostile device with a small flash array whose
//! log fills during the soak, so garbage-collection erase pauses land in
//! the middle of the storm and its aftermath. The run then additionally
//! pins that GC pauses are *latency only*: they must never feed the
//! breaker's failure EWMA, so every trip closes again (no spurious trips
//! outside the injected fault window) while `gc_pauses` and wear advance.

use std::cell::RefCell;
use std::fs::File;
use std::io::BufWriter;
use std::path::PathBuf;
use std::rc::Rc;

use hipec_bench::{finish, json_mode, kernel_stats_json, results_dir};
use hipec_core::{HealthState, HipecKernel, JsonlSink};
use hipec_disk::{DeviceParams, FaultPhase, PhasedFaultConfig};
use hipec_policies::PolicyKind;
use hipec_sim::SimDuration;
use hipec_vm::{DeviceId, KernelParams, VAddr, PAGE_SIZE};

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

fn fail(msg: &str) -> ! {
    eprintln!("chaos_soak: FAIL: {msg}");
    std::process::exit(1);
}

fn audit(k: &HipecKernel) {
    if let Err(e) = k.check_invariants() {
        fail(&format!("invariant violated: {e}"));
    }
}

fn main() {
    let out: PathBuf = arg_value("--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| results_dir().join("chaos_soak.jsonl"));
    let steps: usize = arg_value("--steps")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2500);
    let seed: u64 = arg_value("--seed")
        .and_then(|s| {
            let s = s.trim_start_matches("0x");
            u64::from_str_radix(s, 16).ok()
        })
        .unwrap_or(0xC4A05);
    let kind = arg_value("--kind").unwrap_or_else(|| "disk".into());
    let json = json_mode();

    let mut params = KernelParams::paper_64mb();
    params.total_frames = 128;
    params.wired_frames = 8;
    params.free_target = 8;
    params.free_min = 4;
    params.inactive_target = 12;

    let mut k = HipecKernel::new(params);

    // The boot device (dev#0) stays clean; the storm is routed to a
    // second device so isolation is observable: only the container bound
    // to dev#1 may degrade.
    let dev_clean = DeviceId(0);
    let bad_params = match kind.as_str() {
        "disk" => DeviceParams::default(),
        // A deliberately tiny array: 10 blocks × 16 pages with 80%
        // over-provisioning exposes 128 logical pages, so the 24-page MRU
        // extent's rewrites fill the log and force GC erases mid-soak.
        "flash" => DeviceParams::Flash(hipec_disk::FlashParams {
            read_page: SimDuration::from_us(150),
            program_page: SimDuration::from_us(900),
            erase_block: SimDuration::from_ms(12),
            pages_per_block: 16,
            blocks: 10,
            logical_pct: 80,
        }),
        other => fail(&format!("unknown --kind {other} (disk|flash)")),
    };
    let dev_bad = k.add_device(bad_params);

    // Complete-from-seq-0 capture: attach before the first emission.
    let file = match File::create(&out) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("chaos_soak: cannot create {}: {e}", out.display());
            std::process::exit(2);
        }
    };
    let sink = Rc::new(RefCell::new(JsonlSink::new(BufWriter::new(file))));
    k.set_sink(Box::new(Rc::clone(&sink)));

    // Quiet warm-up, then the all-torn-and-delayed window, then quiet
    // forever (everything after the last phase injects nothing). Phases
    // are measured in the faulty device's own operations, so the plan
    // stays a pure function of (seed, per-device op index).
    k.vm.set_phased_fault_plan_on(
        dev_bad,
        PhasedFaultConfig {
            seed,
            phases: vec![
                FaultPhase::quiet(150),
                // Short enough that the degraded-mode trickle (breaker
                // probes plus default-path page-ins) drains it; deferred
                // flushes consume no plan ops, so a long window would
                // never end.
                FaultPhase::torn_delayed(120, SimDuration::from_ms(2)),
            ],
        },
    );

    // Two HiPEC-managed regions under different policies, one per
    // device...
    let t_fifo = k.vm.create_task();
    let (b_fifo, _, key_fifo) = k
        .vm_allocate_hipec(
            t_fifo,
            24 * PAGE_SIZE,
            PolicyKind::FifoSecondChance.program(),
            6,
        )
        .expect("install fifo2 policy");
    let t_mru = k.vm.create_task();
    let (b_mru, _, key_mru) = k
        .vm_allocate_hipec_on(dev_bad, t_mru, 24 * PAGE_SIZE, PolicyKind::Mru.program(), 6)
        .expect("install mru policy");
    // ...and a default-pool scanner large enough to oversubscribe memory,
    // so faulting never settles and the pageout daemon keeps writing.
    let t_scan = k.vm.create_task();
    let (b_scan, _) =
        k.vm.vm_allocate(t_scan, 96 * PAGE_SIZE)
            .expect("allocate scanner region");

    let min_fifo = k.container(key_fifo).expect("fifo row").min_frames;
    let min_mru = k.container(key_mru).expect("mru row").min_frames;

    // Write-heavy mixed workload: dirty pages force flushes into the
    // fault window, which is what trips dev#1's breaker and strikes the
    // MRU policy's health.
    let mut last_faults = 0u64;
    let mut stalled = 0u32;
    for s in 0..steps {
        let p = (s as u64 * 7 + 3) % 24;
        let _ = k.access_sync(t_fifo, VAddr(b_fifo.0 + p * PAGE_SIZE), s % 3 != 0);
        let q = (s as u64) % 24;
        let _ = k.access_sync(t_mru, VAddr(b_mru.0 + q * PAGE_SIZE), s % 2 == 0);
        let r = (s as u64 * 5 + 1) % 96;
        let _ = k.access_sync(t_scan, VAddr(b_scan.0 + r * PAGE_SIZE), s % 2 == 1);
        k.pump();
        if s % 64 == 0 {
            audit(&k);
            // No-livelock: the substrate must keep resolving faults even
            // while one device is hostile (oversubscribed regions cannot
            // stop faulting unless something wedged).
            let faults = k.vm.stats.get("faults");
            if faults == last_faults {
                stalled += 1;
                if stalled >= 4 {
                    fail("fault counter stalled across four audit windows (livelock)");
                }
            } else {
                stalled = 0;
            }
            last_faults = faults;
        }
        // Quarantine must preserve the reservation even while the region
        // is under default management.
        for (key, min) in [(key_fifo, min_fifo), (key_mru, min_mru)] {
            let c = k.container(key).expect("row");
            if c.health.quarantined() && c.min_frames != min {
                fail("quarantine did not preserve minFrame");
            }
        }
    }

    // Recovery: probation needs clean checker intervals and a closed
    // breaker on the container's own device, and the adaptive interval
    // may have grown toward 8 s — so walk the clock wakeup by wakeup
    // instead of access by access. The scanner trickle keeps dirty
    // default pages flowing on dev#0, and the MRU trickle keeps dev#1
    // operating so its half-open breaker gets probes to close on. The
    // loop also waits out the restore ramp: probation re-admits the
    // `minFrame` reservation tranche by tranche, not in one burst.
    let mut guard = 0;
    while k
        .containers
        .iter()
        .any(|c| !c.terminated && (c.health.quarantined() || c.restore_pending > 0))
    {
        for i in 0..4u64 {
            let r = (guard as u64 * 11 + i * 5) % 96;
            let _ = k.access_sync(t_scan, VAddr(b_scan.0 + r * PAGE_SIZE), true);
            let q = (guard as u64 * 13 + i * 7) % 24;
            let _ = k.access_sync(t_mru, VAddr(b_mru.0 + q * PAGE_SIZE), true);
        }
        let next = k.checker.next_wakeup;
        k.vm.clock.advance_to(next);
        k.poll_checker();
        k.pump();
        audit(&k);
        guard += 1;
        if guard > 200 {
            fail("quarantined container was never restored (probation wedged)");
        }
    }
    // Drain outstanding write-backs so every flush lifecycle closes
    // before the trace does.
    while let Some(done) = k.vm.next_flush_completion() {
        k.vm.clock.advance_to(done);
        k.pump();
    }
    audit(&k);

    let stats = k.kernel_stats();
    k.take_sink();
    let (written, io_errors) = {
        let s = sink.borrow();
        (s.written(), s.io_errors())
    };

    let trips = stats.get("breaker_trips").unwrap_or(0);
    let closes = stats.get("breaker_closes").unwrap_or(0);
    let quarantines: u64 = stats.containers.iter().map(|c| c.quarantines).sum();
    let restores: u64 = stats.containers.iter().map(|c| c.restores).sum();

    let device_rows: Vec<serde_json::Value> = stats
        .devices
        .iter()
        .map(|d| {
            serde_json::json!({
                "id": d.id,
                "breaker_trips": d.breaker_trips,
                "breaker_closes": d.breaker_closes,
                "queue_depth": d.queue_depth,
            })
        })
        .collect();
    let data = serde_json::json!({
        "out": out.display().to_string(),
        "steps": steps,
        "seed": seed,
        "kind": kind,
        "records_written": written,
        "sink_io_errors": io_errors,
        "breaker_trips": trips,
        "breaker_closes": closes,
        "quarantines": quarantines,
        "restores": restores,
        "devices": device_rows,
        "kernel": kernel_stats_json(&stats),
    });
    if json {
        finish("chaos_soak", &data);
    } else {
        println!(
            "chaos_soak: {written} records -> {} ({steps} steps, seed {seed:#x}): \
             {trips} trip(s), {closes} close(s), {quarantines} quarantine(s), \
             {restores} restore(s)",
            out.display(),
        );
        println!("{stats}");
        finish("chaos_soak", &data);
    }

    if stats.dropped_records != 0 {
        fail(&format!(
            "{} record(s) dropped before the sink saw them",
            stats.dropped_records
        ));
    }
    if io_errors != 0 {
        fail(&format!("{io_errors} sink I/O error(s)"));
    }
    // The full degradation cycle must have been observed on the faulty
    // device: trip -> open -> probe -> close, and quarantine ->
    // probation -> ramped restore.
    let bad = stats
        .device(dev_bad.0)
        .unwrap_or_else(|| fail("no stats row for the faulty device"));
    if bad.breaker_trips == 0 || bad.breaker_closes == 0 {
        fail(&format!(
            "faulty-device breaker cycle not observed ({} trips, {} closes)",
            bad.breaker_trips, bad.breaker_closes
        ));
    }
    if quarantines == 0 || restores == 0 {
        fail(&format!(
            "fallback cycle not observed ({quarantines} quarantines, {restores} restores)"
        ));
    }
    // Device isolation: the clean device's breaker never moved, and the
    // container routed to it rode out the storm without degrading.
    let clean = stats
        .device(dev_clean.0)
        .unwrap_or_else(|| fail("no stats row for the clean device"));
    if clean.breaker_trips != 0 || clean.breaker_open {
        fail(&format!(
            "clean device degraded ({} trips, open={})",
            clean.breaker_trips, clean.breaker_open
        ));
    }
    let fifo_row = stats
        .containers
        .iter()
        .find(|c| c.key == key_fifo.0)
        .unwrap_or_else(|| fail("no stats row for the clean container"));
    if fifo_row.quarantines != 0 {
        fail("the clean device's container was quarantined by a neighbour's storm");
    }
    {
        let c = k.container(key_fifo).expect("fifo row");
        if c.health.state != HealthState::Healthy {
            fail("the clean device's container did not end Healthy");
        }
    }
    // Flash-backed storm device: GC must actually have run (the tiny log
    // fills), its wear counters must surface, and — the EWMA pin — GC
    // pauses are latency only, so every trip was caused by the injected
    // window and closed again. A breaker fed by GC stalls would either
    // trip during the quiet tail (closes < trips) or end the soak open.
    if kind == "flash" {
        let bad = stats
            .device(dev_bad.0)
            .unwrap_or_else(|| fail("no stats row for the flash device"));
        if bad.tier != 1 {
            fail("flash device did not report tier 1");
        }
        if bad.gc_pauses == 0 || bad.max_wear == 0 {
            fail(&format!(
                "flash GC never ran ({} pauses, wear {})",
                bad.gc_pauses, bad.max_wear
            ));
        }
        if bad.write_amp_milli < 1000 {
            fail(&format!(
                "flash write amplification below 1.0 ({} milli)",
                bad.write_amp_milli
            ));
        }
        if bad.breaker_closes < bad.breaker_trips || bad.breaker_open {
            fail(&format!(
                "GC pauses leaked into the breaker EWMA ({} trips, {} closes, open={})",
                bad.breaker_trips, bad.breaker_closes, bad.breaker_open
            ));
        }
    }
    // Restored containers are back on HiPEC management with their
    // reservation honoured — the ramp must have fully drained.
    for (key, min) in [(key_fifo, min_fifo), (key_mru, min_mru)] {
        let c = k.container(key).expect("row");
        if !c.terminated && c.health.quarantined() {
            fail("a container is still quarantined after recovery");
        }
        if !c.terminated && c.allocated < min {
            fail("a restored container holds less than its minFrame");
        }
        if !c.terminated && c.restore_pending != 0 {
            fail("a restored container still owes ramp tranches");
        }
    }
}

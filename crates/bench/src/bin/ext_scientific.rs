//! Extension experiment: out-of-core matrix multiply (the introduction's
//! scientific-simulator motivation). Naive traversal under LRU vs MRU, and
//! blocked traversal — application knowledge beating kernel policy from
//! two directions.
//!
//! `--json` emits the rows plus the per-phase [`hipec_core::KernelStats`]
//! diff of each multiply (the compute phase only, setup excluded).

use hipec_bench::{finish, json_mode, kernel_stats_json};
use hipec_policies::PolicyKind;
use hipec_workloads::matrix::{run_blocked, run_naive, MatrixConfig};

fn main() {
    let json_only = json_mode();
    let cfg = MatrixConfig::small();
    if !json_only {
        println!("== Extension: out-of-core matrix multiply (C = A × B) ==\n");
        println!(
            "n = {}, B = {:.1} MB, private pool {} pages ({:.1} MB), tile {}\n",
            cfg.n,
            cfg.matrix_bytes() as f64 / (1024.0 * 1024.0),
            cfg.pool_pages,
            cfg.pool_pages as f64 * 4096.0 / (1024.0 * 1024.0),
            cfg.tile
        );
        println!("{:<26} {:>12} {:>12}", "variant", "B faults", "elapsed");
    }
    let mut rows = Vec::new();
    let runs: [(&str, Box<dyn Fn() -> _>); 4] = [
        (
            "naive, LRU",
            Box::new(|| run_naive(&cfg, PolicyKind::Lru.program())),
        ),
        (
            "naive, HiPEC MRU",
            Box::new(|| run_naive(&cfg, PolicyKind::Mru.program())),
        ),
        (
            "blocked, LRU",
            Box::new(|| run_blocked(&cfg, PolicyKind::Lru.program())),
        ),
        (
            "blocked, HiPEC MRU",
            Box::new(|| run_blocked(&cfg, PolicyKind::Mru.program())),
        ),
    ];
    for (name, run) in runs {
        let r = run().expect("multiply runs");
        if !json_only {
            println!(
                "{name:<26} {:>12} {:>12}",
                r.b_faults,
                r.elapsed.to_string()
            );
        }
        rows.push(serde_json::json!({
            "variant": name,
            "b_faults": r.b_faults,
            "elapsed_s": r.elapsed.as_secs_f64(),
            "kernel": kernel_stats_json(&r.stats),
        }));
    }
    if !json_only {
        println!("\nreading: the naive traversal is the join's cyclic scan in disguise —");
        println!("installing MRU cuts its faults per the PF_m formula (~45% here, more");
        println!("as B outgrows the pool). Blocking removes the problem at the source");
        println!("(250× fewer faults); either way the fix is application knowledge the");
        println!("fixed kernel policy cannot have.");
    }
    finish("ext_scientific", &serde_json::json!({ "rows": rows }));
}

//! Ablation: complex vs simple commands (paper §4.2).
//!
//! "The more complex a command is, the less overhead it creates because the
//! policy executor does not need to fetch and interpret many commands."
//! This harness runs the same second-chance-flavoured replacement workload
//! with (a) the one-command `LRU` complex policy, (b) the Clock policy
//! written only with simple commands, and (c) the two-queue second-chance
//! policy, and reports commands interpreted per fault and the interpreter's
//! decode share of each fault.

use hipec_core::HipecKernel;
use hipec_policies::PolicyKind;
use hipec_sim::DetRng;
use hipec_vm::{KernelParams, VAddr, PAGE_SIZE};

fn main() {
    let region_pages = 2_048u64;
    let capacity = 1_024u64;
    let mut rng = DetRng::new(77);
    // A reuse-heavy trace so second-chance machinery actually cycles.
    let trace: Vec<u64> = (0..60_000)
        .map(|i| {
            if i % 3 == 0 {
                rng.below(64) // hot set
            } else {
                rng.below(region_pages)
            }
        })
        .collect();

    let json_only = hipec_bench::json_mode();
    if !json_only {
        println!("== Ablation: complex vs simple commands ==\n");
        println!(
            "{:<18} {:>8} {:>12} {:>14} {:>16}",
            "policy", "faults", "commands", "cmds/fault", "decode ns/fault"
        );
    }
    let mut rows = Vec::new();
    for kind in [
        PolicyKind::Lru,
        PolicyKind::Clock,
        PolicyKind::FifoSecondChance,
    ] {
        let mut params = KernelParams::paper_64mb();
        params.total_frames = 4_096;
        params.wired_frames = 64;
        let mut k = HipecKernel::new(params);
        let task = k.vm.create_task();
        let (addr, _obj, key) = k
            .vm_allocate_hipec(task, region_pages * PAGE_SIZE, kind.program(), capacity)
            .expect("install");
        for &p in &trace {
            k.access(task, VAddr(addr.0 + p * PAGE_SIZE), false)
                .expect("access");
            k.vm.pump();
        }
        let c = k.container(key).expect("container");
        let cmds_per_fault = c.stats.commands as f64 / c.stats.faults.max(1) as f64;
        let decode_ns = cmds_per_fault * k.vm.cost.cmd_fetch_decode.as_ns() as f64;
        if !json_only {
            println!(
                "{:<18} {:>8} {:>12} {:>14.1} {:>16.0}",
                kind.name(),
                c.stats.faults,
                c.stats.commands,
                cmds_per_fault,
                decode_ns
            );
        }
        // The per-opcode profile shows *where* each policy's commands go.
        let mut ops = serde_json::Map::new();
        for (op, count, time) in c.op_profile.nonzero() {
            ops.insert(
                op.mnemonic().to_string(),
                serde_json::json!({ "count": count, "time_ns": time.as_ns() }),
            );
        }
        rows.push(serde_json::json!({
            "policy": kind.name(),
            "faults": c.stats.faults,
            "commands": c.stats.commands,
            "cmds_per_fault": cmds_per_fault,
            "decode_ns_per_fault": decode_ns,
            "ops": serde_json::Value::Object(ops),
        }));
    }
    if !json_only {
        println!("\npaper (§4.2): complex commands amortize fetch/decode; simple commands");
        println!("cost more interpretation but give designers full flexibility.");
    }
    hipec_bench::finish("ablation_commands", &serde_json::json!({ "rows": rows }));
}

//! Regenerates Figure 6: elapsed time (in minutes) of the nested-loops
//! join with the outer table swept from 20 MB to 60 MB, under the
//! conventional LRU-like policy vs the HiPEC MRU policy, both with 40 MB of
//! allocated memory. Also prints the paper's analytic fault counts (PF_l /
//! PF_m) next to the measured ones.
//!
//! `--json` emits the rows plus the per-phase [`hipec_core::KernelStats`]
//! diff of each join run (the join phase only, setup excluded).

use hipec_bench::{finish, json_mode, kernel_stats_json, print_series, Series};
use hipec_policies::{analytic, PolicyKind};
use hipec_vm::PAGE_SIZE;
use hipec_workloads::join::{run, JoinConfig};

fn main() {
    const MB: u64 = 1024 * 1024;
    let json_only = json_mode();
    let sizes_mb: Vec<u64> = (20..=60).step_by(5).collect();

    let mut lru_series = Series::new("LRU-like");
    let mut mru_series = Series::new("HiPEC MRU");
    let mut rows = Vec::new();

    for &mb in &sizes_mb {
        let cfg = JoinConfig::paper(mb * MB);
        let lru = run(&cfg, PolicyKind::Lru.program()).expect("LRU join");
        let mru = run(&cfg, PolicyKind::Mru.program()).expect("MRU join");
        // PF_l models the thrashing regime; below MSize there is no
        // replacement and both policies take only the compulsory faults.
        let thrashing = cfg.outer_bytes > cfg.memory_bytes;
        let pf_l = if thrashing {
            analytic::pf_lru(cfg.outer_bytes, cfg.loops(), PAGE_SIZE).to_string()
        } else {
            "n/a".to_string()
        };
        let pf_m = analytic::pf_mru(cfg.outer_bytes, cfg.memory_bytes, cfg.loops(), PAGE_SIZE);
        lru_series.push(mb as f64, lru.elapsed.as_mins_f64());
        mru_series.push(mb as f64, mru.elapsed.as_mins_f64());
        if !json_only {
            println!(
                "outer {mb:>2} MB: LRU {:>8.2} min ({:>7} faults, analytic {:>7}) | MRU {:>7.2} min ({:>6} faults, analytic {:>6})",
                lru.elapsed.as_mins_f64(),
                lru.faults,
                pf_l,
                mru.elapsed.as_mins_f64(),
                mru.faults,
                pf_m,
            );
        }
        rows.push(serde_json::json!({
            "outer_mb": mb,
            "lru_min": lru.elapsed.as_mins_f64(),
            "mru_min": mru.elapsed.as_mins_f64(),
            "lru_faults": lru.faults,
            "mru_faults": mru.faults,
            "pf_l": pf_l.clone(),
            "pf_m": pf_m,
            "lru_kernel": kernel_stats_json(&lru.stats),
            "mru_kernel": kernel_stats_json(&mru.stats),
        }));
    }

    if !json_only {
        print_series(
            "Figure 6: elapsed time (min) for the join operation",
            "outer MB",
            &[lru_series, mru_series],
        );
        println!("\npaper: a great response-time gap opens when the outer table exceeds");
        println!("the 40 MB of available frames; measurements match the analytic PF model.");
    }
    finish("fig6", &serde_json::json!({ "rows": rows }));
}

//! Unplug soak: the device-lifecycle gauntlet, traced and self-gating.
//!
//! Three backing stores — the boot disk, a small flash tier and a doomed
//! disk wearing an all-torn fault plan — carry a write-heavy workload
//! while the run exercises every lifecycle transition in one deterministic
//! story:
//!
//! 1. fault-rate-driven tier rebalancing promotes the hot region onto the
//!    flash device and demotes it again once it cools,
//! 2. the flash device is hot-unplugged mid-storm (`remove_device`): its
//!    objects re-bind to the boot disk, queued copies and re-homed torn
//!    retries drain through the pump, and the entry reaches Removed,
//! 3. the doomed disk's breaker trips on the torn storm, every half-open
//!    probe fails, the backoff budget exhausts and the entry is declared
//!    Dead — the same drain then force-migrates its objects onto the boot
//!    disk, attributed as forced migrations.
//!
//! The exit code is non-zero unless the whole story completes: both drains
//! finish (Removed + Dead-and-drained), **zero** pages are abandoned (the
//! drain machinery is budget-exempt, so even the all-torn device loses no
//! data), every drained page reads back through the survivor, forced
//! migrations are attributed, and `check_invariants()` stays clean at
//! every audited step. The JSONL trace is a pure function of the seed;
//! `scripts/verify.sh` runs the binary twice and `cmp`s the traces.
//!
//! Usage: `unplug_soak [--out PATH] [--steps N] [--seed S] [--json]`

use std::cell::RefCell;
use std::fs::File;
use std::io::BufWriter;
use std::path::PathBuf;
use std::rc::Rc;

use hipec_bench::{finish, json_mode, kernel_stats_json, results_dir};
use hipec_core::{HipecKernel, JsonlSink};
use hipec_disk::{DeviceParams, FaultConfig};
use hipec_sim::SimDuration;
use hipec_vm::{DeviceId, DeviceState, KernelParams, VAddr, PAGE_SIZE};

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

fn fail(msg: &str) -> ! {
    eprintln!("unplug_soak: FAIL: {msg}");
    std::process::exit(1);
}

fn audit(k: &HipecKernel) {
    if let Err(e) = k.check_invariants() {
        fail(&format!("invariant violated: {e}"));
    }
}

/// Drives the pump until every flush and migration lifecycle closes.
fn drain(k: &mut HipecKernel) {
    let mut guard = 0u32;
    while let Some(done) = k.vm.next_flush_completion() {
        k.vm.clock.advance_to(done);
        k.pump();
        guard += 1;
        if guard > 200_000 {
            fail("pump did not quiesce (drain wedged)");
        }
    }
}

fn state_of(k: &HipecKernel, dev: DeviceId) -> DeviceState {
    k.vm.backing_device(dev)
        .unwrap_or_else(|_| fail("device vanished from the table"))
        .state()
}

fn main() {
    let out: PathBuf = arg_value("--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| results_dir().join("unplug_soak.jsonl"));
    let steps: usize = arg_value("--steps")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1200);
    let seed: u64 = arg_value("--seed")
        .and_then(|s| {
            let s = s.trim_start_matches("0x");
            u64::from_str_radix(s, 16).ok()
        })
        .unwrap_or(0x0D15C);
    let json = json_mode();

    let mut params = KernelParams::paper_64mb();
    params.total_frames = 128;
    params.wired_frames = 8;
    params.free_target = 8;
    params.free_min = 4;
    params.inactive_target = 12;

    let mut k = HipecKernel::new(params);

    let dev_boot = DeviceId(0);
    // A small flash tier: big enough for the hot region, small enough
    // that promotion traffic exercises the translation layer.
    let dev_flash = k.add_device(DeviceParams::Flash(hipec_disk::FlashParams {
        read_page: SimDuration::from_us(150),
        program_page: SimDuration::from_us(900),
        erase_block: SimDuration::from_ms(12),
        pages_per_block: 16,
        blocks: 16,
        logical_pct: 80,
    }));
    // The doomed disk: every accepted write completes torn, forever. Its
    // breaker will trip, peg its backoff at the ceiling and exhaust the
    // dead budget below.
    let dev_doomed = k.add_device(DeviceParams::default());

    let file = match File::create(&out) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("unplug_soak: cannot create {}: {e}", out.display());
            std::process::exit(2);
        }
    };
    let sink = Rc::new(RefCell::new(JsonlSink::new(BufWriter::new(file))));
    k.set_sink(Box::new(Rc::clone(&sink)));

    k.vm.set_fault_plan_on(
        dev_doomed,
        FaultConfig {
            seed,
            read_error_permille: 0,
            write_error_permille: 0,
            delay_permille: 0,
            max_delay: SimDuration::ZERO,
            torn_permille: 1000,
        },
    );
    // Two consecutive failed probes at the 320 ms backoff ceiling declare
    // the device permanently failed.
    k.vm.breaker_mut(dev_doomed).set_dead_budget(Some(2));

    // A hot region on the boot disk (rebalancing will promote it to
    // flash), a warm region born on flash (the unplug will drain it), and
    // a doomed region whose device dies under it.
    let t = k.vm.create_task();
    let (b_hot, o_hot) = k.vm.vm_allocate(t, 16 * PAGE_SIZE).expect("hot region");
    let (b_flash, o_flash) =
        k.vm.vm_allocate_on(dev_flash, t, 24 * PAGE_SIZE)
            .expect("flash region");
    let (b_doom, o_doom) =
        k.vm.vm_allocate_on(dev_doomed, t, 24 * PAGE_SIZE)
            .expect("doomed region");
    // A default-pool scanner keeps memory pressured so the pageout daemon
    // writes continuously.
    let (b_scan, _) = k.vm.vm_allocate(t, 72 * PAGE_SIZE).expect("scanner");

    let mut promotions = 0u64;
    let mut demotions = 0u64;
    for s in 0..steps {
        // The hot region goes quiet every third interval, so its fault
        // rate collapses and the rebalancer demotes it off flash again.
        if (s / 100) % 3 != 2 {
            let p = (s as u64 * 7 + 3) % 16;
            let _ = k.access_sync(t, VAddr(b_hot.0 + p * PAGE_SIZE), s % 2 == 0);
        }
        let q = (s as u64) % 24;
        let _ = k.access_sync(t, VAddr(b_flash.0 + q * PAGE_SIZE), s % 2 == 1);
        let d = (s as u64 * 5 + 1) % 24;
        let _ = k.access_sync(t, VAddr(b_doom.0 + d * PAGE_SIZE), s % 3 != 0);
        let r = (s as u64 * 11 + 2) % 72;
        let _ = k.access_sync(t, VAddr(b_scan.0 + r * PAGE_SIZE), s % 2 == 0);
        k.pump();
        if s % 100 == 99 {
            // Hot/cold rebalancing between the disk and flash tiers; the
            // hot region's fault rate decides, and counters reset each
            // interval.
            let (p, d) = k.rebalance_tiers(8);
            promotions += p;
            demotions += d;
            // The rebalancer sees the doomed and flash regions as cold
            // (their pages pin resident, so they stop faulting) and
            // demotes them to the boot disk. Pin them back: the story
            // needs them bound to their devices when the unplug and the
            // Dead escalation strike — and re-migrating onto a device
            // whose breaker is open exercises the parked-copy path that
            // the drain later cancels.
            for (obj, home) in [(o_flash, dev_flash), (o_doom, dev_doomed)] {
                if k.vm.device_of(obj).ok() != Some(home) {
                    let _ = k.migrate_object(obj, home);
                }
            }
            audit(&k);
        }
    }

    // Hot-unplug the flash tier mid-storm: everything it backs re-binds
    // to the boot disk and the drain rides the pump to completion.
    let survivor = match k.remove_device(dev_flash) {
        Ok(s) => s,
        Err(e) => fail(&format!("remove_device(flash) refused: {e}")),
    };
    if survivor != dev_boot {
        fail("flash drain picked the wrong survivor");
    }
    audit(&k);
    // Keep the doomed device's torn storm churning until its breaker
    // exhausts; the drain loop walks every probe window deterministically.
    drain(&mut k);
    audit(&k);

    if state_of(&k, dev_flash) != DeviceState::Removed {
        fail("flash device never reached Removed");
    }
    if state_of(&k, dev_doomed) != DeviceState::Dead {
        fail("doomed device never escalated to Dead");
    }
    let stats = k.kernel_stats();
    if stats.get("devices_dead_drained").unwrap_or(0) != 1 {
        fail("the Dead device's forced drain never completed");
    }
    if stats.get("flush_abandoned").unwrap_or(0) != 0 {
        fail(&format!(
            "{} page(s) abandoned — the drain lost data",
            stats.get("flush_abandoned").unwrap_or(0)
        ));
    }
    if stats.get("forced_migrations").unwrap_or(0) == 0 {
        fail("Dead escalation attributed no forced migrations");
    }
    if stats.get("retries_rehomed").unwrap_or(0) == 0 {
        fail("no torn retry was re-homed (the storm never parked a flush?)");
    }
    if promotions == 0 || demotions == 0 {
        fail(&format!(
            "tier rebalancing did not cycle ({promotions} promotions, {demotions} demotions)"
        ));
    }
    // Every page of every drained region must read back through the
    // survivor — the zero-lost-pages contract, checked end to end.
    for (base, pages, name) in [
        (b_hot, 16, "hot"),
        (b_flash, 24, "flash"),
        (b_doom, 24, "doomed"),
    ] {
        for p in 0..pages {
            if k.access_sync(t, VAddr(base.0 + p * PAGE_SIZE), false)
                .is_err()
            {
                fail(&format!("page {p} of the {name} region was lost"));
            }
        }
    }
    drain(&mut k);
    audit(&k);
    for (obj, name) in [(o_hot, "hot"), (o_flash, "flash"), (o_doom, "doomed")] {
        match k.vm.device_of(obj) {
            Ok(d) if d == dev_boot => {}
            other => fail(&format!("{name} region is not on the survivor: {other:?}")),
        }
    }

    let stats = k.kernel_stats();
    k.take_sink();
    let (written, io_errors) = {
        let s = sink.borrow();
        (s.written(), s.io_errors())
    };

    let data = serde_json::json!({
        "out": out.display().to_string(),
        "steps": steps,
        "seed": seed,
        "records_written": written,
        "sink_io_errors": io_errors,
        "promotions": promotions,
        "demotions": demotions,
        "kernel": kernel_stats_json(&stats),
    });
    if json {
        finish("unplug_soak", &data);
    } else {
        println!(
            "unplug_soak: {written} records -> {} ({steps} steps, seed {seed:#x}): \
             {promotions} promotion(s), {demotions} demotion(s), \
             {} object migration(s), {} forced, {} page(s) copied",
            out.display(),
            stats.get("object_migrations").unwrap_or(0),
            stats.get("forced_migrations").unwrap_or(0),
            stats.get("migrated_pages").unwrap_or(0),
        );
        println!("{stats}");
        finish("unplug_soak", &data);
    }

    if stats.dropped_records != 0 {
        fail(&format!(
            "{} record(s) dropped before the sink saw them",
            stats.dropped_records
        ));
    }
    if io_errors != 0 {
        fail(&format!("{io_errors} sink I/O error(s)"));
    }
}

//! Policy tournament: every shipped policy × every workload shape × both
//! executor backends × clean/chaos fault plans.
//!
//! Human mode prints one ranked table per workload (clean-plan faults and
//! hit rates) plus the overall Borda ranking; `--json` emits the full cell
//! matrix (schema v5, see [`hipec_bench::JSON_SCHEMA_VERSION`]). Every
//! number derives from the seed, so two runs with the same flags produce
//! bit-identical output — `scripts/verify.sh` gates on that.
//!
//! Usage: `tournament [--seed S] [--ops N] [--short] [--json]`

use hipec_bench::finish;
use hipec_workloads::tournament::{run, Cell, Tournament, TournamentConfig};
use serde_json::Value;

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

fn cell_json(c: &Cell) -> Value {
    serde_json::json!({
        "policy": c.policy,
        "workload": c.workload,
        "backend": c.backend,
        "plan": c.plan,
        "accesses": c.accesses,
        "ok": c.ok,
        "faults": c.faults,
        "hits": c.hits,
        "hit_permille": c.hit_permille,
        "p50_fault_ns": c.p50_fault_ns,
        "p99_fault_ns": c.p99_fault_ns,
        "p99_event_ns": c.p99_event_ns,
        "p99_flush_ns": c.p99_flush_ns,
        "commands": c.commands,
        "events": c.events,
        "flushes": c.flushes,
        "released": c.released,
        "device_faults": c.device_faults,
        "quarantines": c.quarantines,
        "elapsed_ns": c.elapsed_ns,
    })
}

fn report(t: &Tournament) {
    println!(
        "== HiPEC policy tournament (seed {:#x}, {} refs/workload) ==",
        t.seed, t.ops
    );
    for &wl in &t.workloads {
        println!("\n-- {wl} (clean plan, interpreter) --");
        println!(
            "{:>10} {:>8} {:>8} {:>6} {:>12} {:>12} {:>12} {:>12}",
            "policy", "faults", "hits", "hit‰", "p50_fault", "p99_fault", "p99_event", "p99_flush"
        );
        let mut rows: Vec<&Cell> = t
            .cells
            .iter()
            .filter(|c| c.workload == wl && c.plan == "clean" && c.backend == "interpreter")
            .collect();
        rows.sort_by_key(|c| (c.faults, c.policy));
        for c in rows {
            println!(
                "{:>10} {:>8} {:>8} {:>6} {:>10}ns {:>10}ns {:>10}ns {:>10}ns",
                c.policy,
                c.faults,
                c.hits,
                c.hit_permille,
                c.p50_fault_ns,
                c.p99_fault_ns,
                c.p99_event_ns,
                c.p99_flush_ns
            );
        }
    }
    println!("\n-- chaos resilience (interpreter) --");
    println!(
        "{:>10} {:>10} {:>10} {:>12} {:>12}",
        "policy", "ok_refs", "dev_faults", "quarantines", "flushes"
    );
    for kind in hipec_policies::PolicyKind::ALL {
        let (mut ok, mut dev, mut q, mut fl) = (0u64, 0u64, 0u64, 0u64);
        for c in t
            .cells
            .iter()
            .filter(|c| c.policy == kind.name() && c.plan == "chaos" && c.backend == "interpreter")
        {
            ok += c.ok;
            dev += c.device_faults;
            q += c.quarantines;
            fl += c.flushes;
        }
        println!(
            "{:>10} {:>10} {:>10} {:>12} {:>12}",
            kind.name(),
            ok,
            dev,
            q,
            fl
        );
    }
    println!("\n-- overall ranking (Borda points over clean cells; lower is better) --");
    for (i, r) in t.ranking.iter().enumerate() {
        println!(
            "{:>2}. {:<10} points {:>3}  total clean faults {:>8}",
            i + 1,
            r.policy,
            r.points,
            r.clean_faults
        );
    }
}

fn main() {
    let mut cfg = if std::env::args().any(|a| a == "--short") {
        TournamentConfig::short()
    } else {
        TournamentConfig::full()
    };
    if let Some(s) = arg_value("--seed") {
        cfg.seed = parse_u64(&s, "--seed");
    }
    if let Some(s) = arg_value("--ops") {
        cfg.ops = parse_u64(&s, "--ops");
    }
    let t = match run(&cfg) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tournament: FAIL: {e}");
            std::process::exit(1);
        }
    };
    if !hipec_bench::json_mode() {
        report(&t);
    }
    let data = serde_json::json!({
        "seed": t.seed,
        "ops": t.ops,
        "workloads": t.workloads,
        "policies": hipec_policies::PolicyKind::ALL
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>(),
        "cells": t.cells.iter().map(cell_json).collect::<Vec<_>>(),
        "ranking": t.ranking.iter().map(|r| serde_json::json!({
            "policy": r.policy,
            "points": r.points,
            "clean_faults": r.clean_faults,
        })).collect::<Vec<_>>(),
    });
    finish("tournament", &data);
}

fn parse_u64(s: &str, flag: &str) -> u64 {
    let digits = s.trim_start_matches("0x");
    let radix = if digits.len() < s.len() { 16 } else { 10 };
    match u64::from_str_radix(digits, radix) {
        Ok(v) => v,
        Err(_) => {
            eprintln!("tournament: bad value for {flag}: {s}");
            std::process::exit(2);
        }
    }
}

//! Ablation: the security checker's adaptive wakeup (paper §4.3.3).
//!
//! Compares the paper's halve-on-timeout / double-when-idle schedule
//! against fixed 250 ms and fixed 8 s wakeups, on two scenarios:
//!
//! * a *quiet* hour of virtual time (no runaway policies): how many wakeups
//!   (= background CPU cost) does each schedule burn?
//! * a *runaway* policy: how long until it is detected and killed?

use hipec_core::command::{build, JumpMode};
use hipec_core::{HipecKernel, OperandDecl, PolicyProgram, NO_OPERAND};
use hipec_policies::PolicyKind;
use hipec_sim::SimDuration;
use hipec_vm::{KernelParams, PAGE_SIZE};

fn runaway_program() -> PolicyProgram {
    let mut p = PolicyProgram::new();
    let _fq = p.declare(OperandDecl::FreeQueue);
    let page = p.declare(OperandDecl::Page);
    p.add_event(
        "PageFault",
        vec![build::jump(JumpMode::Always, 0), build::ret(page)],
    );
    p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
    p
}

#[derive(Clone, Copy)]
enum Schedule {
    Adaptive,
    Fixed(SimDuration),
}

impl Schedule {
    fn name(self) -> String {
        match self {
            Schedule::Adaptive => "adaptive (paper)".to_string(),
            Schedule::Fixed(d) => format!("fixed {d}"),
        }
    }

    fn apply(self, k: &mut HipecKernel) {
        match self {
            Schedule::Adaptive => k.checker.adaptive = true,
            Schedule::Fixed(d) => {
                k.checker.adaptive = false;
                k.checker.interval = d;
                k.checker.next_wakeup = k.vm.now() + d;
            }
        }
    }
}

fn small_params() -> KernelParams {
    let mut p = KernelParams::paper_64mb();
    p.total_frames = 512;
    p.wired_frames = 16;
    p
}

fn main() {
    let json_only = hipec_bench::json_mode();
    let schedules = [
        Schedule::Adaptive,
        Schedule::Fixed(SimDuration::from_ms(250)),
        Schedule::Fixed(SimDuration::from_secs(8)),
    ];

    if !json_only {
        println!("== Ablation: checker wakeup schedule ==\n");
        println!(
            "{:<18} {:>16} {:>20}",
            "schedule", "quiet-hr wakeups", "runaway detection"
        );
    }
    let mut rows = Vec::new();
    for s in schedules {
        // Scenario 1: a quiet hour with one well-behaved app.
        let quiet_wakeups = {
            let mut k = HipecKernel::new(small_params());
            s.apply(&mut k);
            let task = k.vm.create_task();
            let (addr, _o, _c) = k
                .vm_allocate_hipec(task, 8 * PAGE_SIZE, PolicyKind::Fifo.program(), 8)
                .expect("install");
            k.access_sync(task, addr, false).expect("one fault");
            k.vm.charge(SimDuration::from_secs(3_600));
            k.poll_checker();
            k.checker.wakeups
        };

        // Scenario 2: a runaway policy faults at t≈1 s.
        let detection = {
            let mut k = HipecKernel::new(small_params());
            s.apply(&mut k);
            let task = k.vm.create_task();
            let (addr, _o, _c) = k
                .vm_allocate_hipec(task, 8 * PAGE_SIZE, runaway_program(), 8)
                .expect("install");
            k.vm.charge(SimDuration::from_secs(1));
            let started = k.vm.now();
            let err = k.access(task, addr, false).expect_err("runaway");
            let _ = err;
            k.vm.now().since(started)
        };

        if !json_only {
            println!(
                "{:<18} {:>16} {:>20}",
                s.name(),
                quiet_wakeups,
                detection.to_string()
            );
        }
        rows.push(serde_json::json!({
            "schedule": s.name(),
            "quiet_hour_wakeups": quiet_wakeups,
            "runaway_detection_ms": detection.as_ms_f64(),
        }));
    }
    if !json_only {
        println!("\npaper (§4.3.3): the adaptive schedule sleeps most of the time when no");
        println!("timeouts occur (cheap background cost) yet converges to 250 ms wakeups");
        println!("when runaways appear (fast detection) — the fixed schedules give you");
        println!("only one of the two.");
    }
    hipec_bench::finish("ablation_checker", &serde_json::json!({ "rows": rows }));
}

//! Ablation: application-specific policies on flash (paper §6).
//!
//! "The new hardware architecture, such as flash RAM, can be managed
//! efficiently if each specific application can control the device." This
//! harness quantifies that: the same write-mixed workload runs under (a) a
//! plain FIFO policy that evicts dirty pages freely, and (b) a
//! *clean-first* policy that rotates dirty pages back and evicts clean
//! ones, flushing only when everything is dirty. On flash, fewer dirty
//! evictions mean fewer programs, less garbage collection and less wear.

use hipec_core::HipecKernel;
use hipec_policies::PolicyKind;
use hipec_sim::DetRng;
use hipec_vm::{KernelParams, VAddr, PAGE_SIZE};

const CLEAN_FIRST: &str = r#"
    queue clock_q;

    event PageFault() {
        if (free_count == 0) {
            activate Evict;
        }
        page p = dequeue_head(free_queue);
        enqueue_tail(clock_q, p);
        return p;
    }

    event Evict() {
        // Pass 1: evict the first clean page, rotating dirty ones back.
        int scanned = 0;
        bool done = false;
        while (!done && scanned < active_count) {
            page p = dequeue_head(clock_q);
            if (modified(p)) {
                enqueue_tail(clock_q, p);
                scanned = scanned + 1;
            } else {
                enqueue_head(free_queue, p);
                done = true;
            }
        }
        // Pass 2: everything is dirty — flush one and free it.
        if (!done) {
            page q = dequeue_head(clock_q);
            flush(q);
            enqueue_head(free_queue, q);
        }
    }

    event ReclaimFrame() {
        int released = 0;
        while (released < reclaim_target && allocated_count > 0) {
            if (free_count == 0) {
                activate Evict;
            }
            page p = dequeue_head(free_queue);
            release(p);
            released = released + 1;
        }
    }
"#;

struct Run {
    elapsed_s: f64,
    pageouts: u64,
    programs: u64,
    erases: u64,
    wa: f64,
    wear: u32,
}

fn run(policy_name: &str, program: hipec_core::PolicyProgram) -> Run {
    let mut params = KernelParams::paper_64mb_flash();
    params.total_frames = 2_048;
    params.wired_frames = 64;
    // A small flash card (2048 physical pages over 128 blocks) so the
    // workload actually exercises garbage collection and wear.
    params.disk = hipec_disk::DeviceParams::Flash(hipec_disk::FlashParams {
        pages_per_block: 16,
        blocks: 128,
        logical_pct: 80,
        ..hipec_disk::FlashParams::early_flash_card()
    });
    let mut k = HipecKernel::new(params);
    let task = k.vm.create_task();
    let region = 1_200u64;
    let pool = 512u64;
    let (base, _o, _key) = k
        .vm_allocate_hipec(task, region * PAGE_SIZE, program, pool)
        .expect("install");

    // A mixed workload: cyclic sweeps with 25 % writes — the pattern of a
    // log-processing application on a flash-backed machine.
    let mut rng = DetRng::new(0xF1A5);
    let start = k.vm.now();
    for _round in 0..10 {
        for p in 0..region {
            let write = rng.chance(0.4);
            k.access_sync(task, VAddr(base.0 + p * PAGE_SIZE), write)
                .unwrap_or_else(|e| panic!("{policy_name}: {e}"));
            k.vm.pump();
        }
    }
    let elapsed = k.vm.now().since(start);
    let flash = k.vm.device().as_flash().expect("flash machine").stats();
    let wear = k.vm.device().as_flash().expect("flash machine").max_wear();
    Run {
        elapsed_s: elapsed.as_secs_f64(),
        pageouts: k.vm.stats.get("pageouts"),
        programs: flash.programs,
        erases: flash.erases,
        wa: flash.write_amplification(),
        wear,
    }
}

fn main() {
    let json_only = hipec_bench::json_mode();
    if !json_only {
        println!("== Ablation: policies on flash RAM (paper §6 extension) ==\n");
        println!(
            "{:<14} {:>10} {:>10} {:>10} {:>8} {:>6} {:>9}",
            "policy", "elapsed s", "pageouts", "programs", "erases", "WA", "max wear"
        );
    }
    let mut rows = Vec::new();
    for (name, program) in [
        ("FIFO", PolicyKind::Fifo.program()),
        (
            "clean-first",
            hipec_lang::compile(CLEAN_FIRST).expect("shipped policy compiles"),
        ),
    ] {
        let r = run(name, program);
        if !json_only {
            println!(
                "{:<14} {:>10.2} {:>10} {:>10} {:>8} {:>6.2} {:>9}",
                name, r.elapsed_s, r.pageouts, r.programs, r.erases, r.wa, r.wear
            );
        }
        rows.push(serde_json::json!({
            "policy": name,
            "elapsed_s": r.elapsed_s,
            "pageouts": r.pageouts,
            "programs": r.programs,
            "erases": r.erases,
            "write_amplification": r.wa,
            "max_wear": r.wear,
        }));
    }
    if !json_only {
        println!("\nreading: the clean-first policy trades interpreted scan work for");
        println!("roughly half the flash programs and a third of the erases (and the");
        println!("write amplification that goes with them) — the device-aware decision");
        println!("only the application can make, which is the paper's §6 argument for");
        println!("extending HiPEC to new hardware.");
    }
    hipec_bench::finish("ablation_flash", &serde_json::json!({ "rows": rows }));
}

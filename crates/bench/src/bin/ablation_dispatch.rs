//! Ablation: policy dispatch mechanisms (paper §2 / §5.1).
//!
//! What would the Table 3 no-I/O sweep cost if the per-fault replacement
//! decision were dispatched to the application by the alternatives the
//! paper argues against?
//!
//! * **in-kernel interpretation** — HiPEC: the measured sweep;
//! * **upcall** — kernel → user procedure invocation and back, modelled as
//!   two null system calls per fault (the paper uses the null syscall time
//!   to describe upcall overhead);
//! * **IPC** — a PREMO-style external pager exchange, one null IPC round
//!   trip per fault.

use hipec_policies::PolicyKind;
use hipec_sim::CostModel;
use hipec_vm::KernelParams;
use hipec_workloads::fault_sweep;

fn main() {
    const MB: u64 = 1024 * 1024;
    let bytes = 40 * MB;
    let cost = CostModel::acer_altos_486();

    let mach = fault_sweep::run_mach(KernelParams::paper_64mb(), bytes, false);
    let hipec = fault_sweep::run_hipec(
        KernelParams::paper_64mb(),
        bytes,
        false,
        PolicyKind::FifoSecondChance.program(),
    );
    let faults = mach.faults;
    let upcall = mach.elapsed + (cost.null_syscall * 2).saturating_mul(faults);
    let ipc = mach.elapsed + cost.null_ipc.saturating_mul(faults);

    let json_only = hipec_bench::json_mode();
    if !json_only {
        println!("== Ablation: per-fault policy dispatch mechanism ==\n");
        println!("40 MB sweep, {faults} faults, no disk I/O\n");
        println!("{:<28} {:>14} {:>12}", "mechanism", "elapsed", "overhead");
    }
    let base = mach.elapsed.as_ns() as f64;
    let mut rows = Vec::new();
    for (name, elapsed) in [
        ("in-kernel (Mach, fixed)", mach.elapsed),
        ("in-kernel interp. (HiPEC)", hipec.elapsed),
        ("upcall (2 × null syscall)", upcall),
        ("IPC (PREMO-style pager)", ipc),
    ] {
        let pct = (elapsed.as_ns() as f64 / base - 1.0) * 100.0;
        if !json_only {
            println!("{name:<28} {:>14} {pct:>11.2}%", elapsed.to_string());
        }
        rows.push(serde_json::json!({
            "mechanism": name,
            "elapsed_ms": elapsed.as_ms_f64(),
            "overhead_pct": pct,
        }));
    }
    if !json_only {
        println!("\nreading: interpretation costs ~1.8%; an upcall per fault costs ~10%,");
        println!("IPC ~75% — the factor the paper's design eliminates by never crossing");
        println!("the kernel/user boundary.");
    }
    hipec_bench::finish("ablation_dispatch", &serde_json::json!({ "rows": rows }));
}

//! Seeded long-run soak with a streaming JSONL trace sink attached.
//!
//! Builds a small pressured kernel, attaches a `JsonlSink` *before the
//! first emission* (so the trace is complete from seq 0), and drives two
//! specific applications plus a default-pool scanner for `--steps`
//! iterations under a delay-only fault plan. The JSONL trace lands at
//! `--out`; the exit code is non-zero if any record was dropped or the
//! sink hit an I/O error. `scripts/verify.sh` runs this twice and diffs
//! the outputs to prove bit-for-bit determinism, then feeds one through
//! `trace_analyze`.
//!
//! Usage: `trace_soak [--out PATH] [--steps N] [--seed S]
//! [--stats-export PATH] [--json]` — `--stats-export` additionally writes
//! the final kernel snapshot as Prometheus-style text exposition
//! ([`hipec_core::stats_export`]); the bytes are a pure function of the
//! seed, which is what verify.sh's double-run `cmp` gate checks.

use std::cell::RefCell;
use std::fs::File;
use std::io::BufWriter;
use std::path::PathBuf;
use std::rc::Rc;

use hipec_bench::{finish, json_mode, kernel_stats_json, results_dir};
use hipec_core::{HipecKernel, JsonlSink};
use hipec_disk::FaultConfig;
use hipec_policies::PolicyKind;
use hipec_vm::{KernelParams, VAddr, PAGE_SIZE};

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

fn main() {
    let out: PathBuf = arg_value("--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| results_dir().join("trace_soak.jsonl"));
    let steps: usize = arg_value("--steps")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1500);
    let seed: u64 = arg_value("--seed")
        .and_then(|s| {
            let s = s.trim_start_matches("0x");
            u64::from_str_radix(s, 16).ok()
        })
        .unwrap_or(0x5EED);
    let json = json_mode();

    let mut params = KernelParams::paper_64mb();
    params.total_frames = 128;
    params.wired_frames = 8;
    params.free_target = 8;
    params.free_min = 4;
    params.inactive_target = 12;

    let mut k = HipecKernel::new(params);

    // The sink must attach before the first emission so the trace is
    // complete from seq 0 (trace_analyze then enforces full lifecycles).
    let file = match File::create(&out) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("trace_soak: cannot create {}: {e}", out.display());
            std::process::exit(2);
        }
    };
    let sink = Rc::new(RefCell::new(JsonlSink::new(BufWriter::new(file))));
    k.set_sink(Box::new(Rc::clone(&sink)));

    // Delay-only fault plan: deterministic latency jitter with no read
    // errors and no torn writes, so a clean run has zero anomalies.
    k.vm.set_fault_plan(FaultConfig {
        seed,
        read_error_permille: 0,
        write_error_permille: 0,
        delay_permille: 150,
        max_delay: hipec_sim::SimDuration::from_us(500),
        torn_permille: 0,
    });

    // Two specific applications with different policies...
    let t_fifo = k.vm.create_task();
    let (b_fifo, _, _) = k
        .vm_allocate_hipec(
            t_fifo,
            24 * PAGE_SIZE,
            PolicyKind::FifoSecondChance.program(),
            6,
        )
        .expect("install fifo2 policy");
    let t_mru = k.vm.create_task();
    let (b_mru, _, _) = k
        .vm_allocate_hipec(t_mru, 24 * PAGE_SIZE, PolicyKind::Mru.program(), 6)
        .expect("install mru policy");
    // ...and a default-pool scanner to keep the pageout daemon busy.
    let t_scan = k.vm.create_task();
    let (b_scan, _) =
        k.vm.vm_allocate(t_scan, 48 * PAGE_SIZE)
            .expect("allocate scanner region");

    for s in 0..steps {
        let p = (s as u64 * 7 + 3) % 24;
        let _ = k.access_sync(t_fifo, VAddr(b_fifo.0 + p * PAGE_SIZE), s % 2 == 0);
        let q = (s as u64) % 24;
        let _ = k.access_sync(t_mru, VAddr(b_mru.0 + q * PAGE_SIZE), s % 3 == 0);
        let r = (s as u64 * 5 + 1) % 48;
        let _ = k.access_sync(t_scan, VAddr(b_scan.0 + r * PAGE_SIZE), s % 2 == 1);
        k.pump();
    }
    // Drain outstanding write-backs so every flush_start gets its
    // completion before the trace closes.
    while let Some(done) = k.vm.next_flush_completion() {
        k.vm.clock.advance_to(done);
        k.pump();
    }

    let stats = k.kernel_stats();
    if let Some(p) = arg_value("--stats-export") {
        if let Err(e) = std::fs::write(&p, hipec_core::stats_export(&stats)) {
            eprintln!("trace_soak: cannot write {p}: {e}");
            std::process::exit(2);
        }
    }
    k.take_sink();
    let (written, io_errors) = {
        let s = sink.borrow();
        (s.written(), s.io_errors())
    };

    let data = serde_json::json!({
        "out": out.display().to_string(),
        "steps": steps,
        "seed": seed,
        "records_written": written,
        "sink_io_errors": io_errors,
        "kernel": kernel_stats_json(&stats),
    });
    if json {
        finish("trace_soak", &data);
    } else {
        println!(
            "trace_soak: {} records -> {} ({} steps, seed {seed:#x})",
            written,
            out.display(),
            steps
        );
        println!("{stats}");
        finish("trace_soak", &data);
    }

    if stats.dropped_records != 0 {
        eprintln!(
            "trace_soak: FAIL: {} record(s) dropped before the sink saw them",
            stats.dropped_records
        );
        std::process::exit(1);
    }
    if io_errors != 0 {
        eprintln!("trace_soak: FAIL: {io_errors} sink I/O error(s)");
        std::process::exit(1);
    }
}

//! Regenerates Table 3 (Comparison I): page-fault handling time for a
//! 40 MB region on the unmodified Mach kernel vs the HiPEC kernel running
//! the same FIFO-with-second-chance policy, with and without disk I/O.

use hipec_bench::{finish, json_mode, kernel_stats_json, TextTable};
use hipec_policies::PolicyKind;
use hipec_vm::KernelParams;
use hipec_workloads::fault_sweep;

fn main() {
    const MB: u64 = 1024 * 1024;
    let json_only = json_mode();
    let bytes = 40 * MB;

    let mut table = TextTable::new(vec!["Evaluation", "Average Time"]);
    let mut json = serde_json::Map::new();

    for with_io in [false, true] {
        let label = if with_io {
            "with disk I/O operations"
        } else {
            "Without disk I/O operations"
        };
        let mach = fault_sweep::run_mach(KernelParams::paper_64mb(), bytes, with_io);
        let hipec = fault_sweep::run_hipec(
            KernelParams::paper_64mb(),
            bytes,
            with_io,
            PolicyKind::FifoSecondChance.program(),
        );
        let overhead = (hipec.elapsed.as_ns() as f64 / mach.elapsed.as_ns() as f64 - 1.0) * 100.0;

        table.row(vec![
            format!("40 Mbytes page fault — {label}"),
            String::new(),
        ]);
        table.row(vec![
            "  Running on Mach 3.0 Kernel".to_string(),
            format!("{:.1} msec", mach.elapsed.as_ms_f64()),
        ]);
        table.row(vec![
            "  Running on HiPEC mechanism".to_string(),
            format!("{:.1} msec", hipec.elapsed.as_ms_f64()),
        ]);
        table.row(vec![
            "  HiPEC Overhead".to_string(),
            format!("{overhead:.3}%"),
        ]);
        table.row(vec![
            "  fault latency (mean / p99)".to_string(),
            format!("{} / {}", mach.latency.mean(), mach.latency.quantile(0.99)),
        ]);

        let stats = hipec.kernel.as_ref().expect("hipec runs snapshot counters");
        let policy = stats.containers.first().expect("one container installed");
        let key = if with_io { "with_io" } else { "no_io" };
        json.insert(
            key.to_string(),
            serde_json::json!({
                "mach_ms": mach.elapsed.as_ms_f64(),
                "hipec_ms": hipec.elapsed.as_ms_f64(),
                "overhead_pct": overhead,
                "faults": mach.faults,
                "policy_faults": policy.faults,
                "policy_commands": policy.commands,
                "dev_reads": stats.get("dev_reads").unwrap_or(0),
                "kernel": kernel_stats_json(stats),
            }),
        );
        if with_io && !json_only {
            println!("-- kernel counters, HiPEC with-I/O sweep --\n{stats}");
        }
    }

    if !json_only {
        println!("== Table 3: Comparison I (HiPEC mechanism overhead) ==\n");
        println!("{table}");
        println!(
            "paper: no-I/O 4016.5 ms vs 4088.6 ms (1.8%); with-I/O 82485.5 ms vs 82505.6 ms (0.024%)"
        );
    }
    finish("table3", &serde_json::Value::Object(json));
}

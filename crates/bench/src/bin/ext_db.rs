//! Extension experiment: per-region policies for a database (paper §6).
//!
//! A query mix interleaves B-tree index probes (hot upper levels → LRU's
//! home turf) with full table scans (cyclic → MRU's home turf). HiPEC's
//! central claim is that one application can give *each region its own
//! policy*; this harness compares that against every uniform policy.
//!
//! `--json` emits the rows plus the per-phase [`hipec_core::KernelStats`]
//! diff of each mix run (the query phase only, setup excluded).

use hipec_bench::{finish, json_mode, kernel_stats_json};
use hipec_policies::PolicyKind;
use hipec_workloads::db::{run_query_mix, DbConfig};

fn main() {
    let json_only = json_mode();
    let cfg = DbConfig::small();
    if !json_only {
        println!("== Extension: per-region policies for a database query mix ==\n");
        println!(
            "index {} pages (levels {:?}, pool {}), table {} pages (pool {}), {} scans\n",
            cfg.index_pages(),
            cfg.index_levels,
            cfg.index_pool,
            cfg.table_pages,
            cfg.table_pool,
            cfg.scans
        );
        println!(
            "{:<28} {:>12} {:>12} {:>12}",
            "configuration", "index faults", "table faults", "elapsed"
        );
    }
    let mut rows = Vec::new();
    let configs = [
        ("LRU index + MRU table", PolicyKind::Lru, PolicyKind::Mru),
        ("uniform LRU", PolicyKind::Lru, PolicyKind::Lru),
        ("uniform MRU", PolicyKind::Mru, PolicyKind::Mru),
        ("uniform FIFO", PolicyKind::Fifo, PolicyKind::Fifo),
        (
            "uniform 2nd-chance",
            PolicyKind::FifoSecondChance,
            PolicyKind::FifoSecondChance,
        ),
    ];
    for (name, index_policy, table_policy) in configs {
        let r = run_query_mix(&cfg, index_policy, table_policy).expect("query mix");
        if !json_only {
            println!(
                "{name:<28} {:>12} {:>12} {:>12}",
                r.index_faults,
                r.table_faults,
                r.elapsed.to_string()
            );
        }
        rows.push(serde_json::json!({
            "config": name,
            "index_faults": r.index_faults,
            "table_faults": r.table_faults,
            "elapsed_s": r.elapsed.as_secs_f64(),
            "kernel": kernel_stats_json(&r.stats),
        }));
    }
    if !json_only {
        println!("\nreading: no single policy serves both access patterns; per-region");
        println!("control (the first row) wins on both fault counts at once — the");
        println!("workload the paper's §6 DBMS plan was written for.");
    }
    finish("ext_db", &serde_json::json!({ "rows": rows }));
}

//! Regenerates Figure 5: AIM-like multiuser throughput on the unmodified
//! Mach kernel vs the HiPEC kernel, across three workload mixes.
//!
//! The paper's claim: the two kernels "almost provide the same throughput"
//! under every mix, with the curve peaking around 5–6 users and declining
//! under contention.
//!
//! `--json` emits the series plus a per-phase [`hipec_core::KernelStats`]
//! diff for every (mix, users) HiPEC run.

use hipec_bench::{finish, json_mode, kernel_stats_json, print_series, Series};
use hipec_core::HipecKernel;
use hipec_vm::{Kernel, KernelParams};
use hipec_workloads::aim::{run, AimConfig, Mix};

fn main() {
    let json_only = json_mode();
    let user_counts: Vec<u32> = (1..=12).collect();
    let mixes = [Mix::standard(), Mix::disk_heavy(), Mix::memory_heavy()];
    let mut json = serde_json::Map::new();

    for mix in mixes {
        let mut mach_series = Series::new("Mach kernel");
        let mut hipec_series = Series::new("HiPEC kernel");
        let mut phases = Vec::new();
        for &users in &user_counts {
            let cfg = AimConfig {
                users,
                mix,
                duration: hipec_sim::SimDuration::from_secs(120),
                ..AimConfig::default()
            };
            let mut mach = Kernel::new(KernelParams::paper_64mb());
            let rm = run(&mut mach, &cfg).expect("mach run");
            let mut hipec = HipecKernel::new(KernelParams::paper_64mb());
            let snap = hipec.kernel_stats();
            let rh = run(&mut hipec, &cfg).expect("hipec run");
            let phase = hipec.kernel_stats().diff(&snap);
            mach_series.push(users as f64, rm.jobs_per_minute);
            hipec_series.push(users as f64, rh.jobs_per_minute);
            phases.push(serde_json::json!({
                "users": users,
                "kernel": kernel_stats_json(&phase),
            }));
        }
        if !json_only {
            print_series(
                &format!("Figure 5 ({} workload): jobs/minute", mix.name),
                "users",
                &[mach_series.clone(), hipec_series.clone()],
            );
        }
        json.insert(
            mix.name.to_string(),
            serde_json::json!({
                "users": user_counts,
                "mach_jpm": mach_series.points.iter().map(|p| p.1).collect::<Vec<_>>(),
                "hipec_jpm": hipec_series.points.iter().map(|p| p.1).collect::<Vec<_>>(),
                "hipec_phases": phases,
            }),
        );
    }
    if !json_only {
        println!("\npaper: the original Mach kernel and the modified HiPEC kernel almost");
        println!("provide the same throughput under all three mixes; contention degrades");
        println!("throughput beyond ~5-6 users.");
    }
    finish("fig5", &serde_json::Value::Object(json));
}

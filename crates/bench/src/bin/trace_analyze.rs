//! Offline JSONL trace analysis.
//!
//! Replays a trace written by a `JsonlSink` (e.g. by `trace_soak`) and
//! reports frame lifecycles, fault/flush latency histograms and any
//! anomalies: frame leaks (flushes that never complete), retry storms,
//! abandoned write-backs, checker timeouts, and sequence gaps (records
//! lost to ring overwrites). Exits non-zero when anomalies are found, so
//! it can gate CI.
//!
//! Usage: `trace_analyze [FILE] [--json] [--legacy-residency]` — reads
//! stdin when no file (or `-`) is given. `--legacy-residency` restores
//! the conservative clear-on-reclaim residency accounting for traces
//! recorded before per-frame `forced_seize` events existed.

use std::io::Read;

use hipec_bench::analyze::{analyze_lines_with, AnalyzeOptions};
use hipec_bench::{finish, json_mode};

fn main() {
    let json = json_mode();
    let legacy = std::env::args().any(|a| a == "--legacy-residency");
    let path = std::env::args()
        .skip(1)
        .find(|a| a != "--json" && a != "-" && a != "--legacy-residency");
    let text = match &path {
        Some(p) => match std::fs::read_to_string(p) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("trace_analyze: cannot read {p}: {e}");
                std::process::exit(2);
            }
        },
        None => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("trace_analyze: cannot read stdin: {e}");
                std::process::exit(2);
            }
            buf
        }
    };

    let options = AnalyzeOptions {
        legacy_residency: legacy,
    };
    let analysis = match analyze_lines_with(text.lines(), options) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("trace_analyze: malformed trace: {e}");
            std::process::exit(2);
        }
    };

    if json {
        finish("trace_analyze", &analysis.to_json());
    } else {
        print!("{analysis}");
        finish("trace_analyze", &analysis.to_json());
    }

    if !analysis.is_clean() {
        eprintln!(
            "trace_analyze: FAIL: {} anomaly(ies)",
            analysis.anomalies.len()
        );
        std::process::exit(1);
    }
}

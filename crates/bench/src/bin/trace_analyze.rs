//! Offline JSONL trace analysis.
//!
//! Replays a trace written by a `JsonlSink` (e.g. by `trace_soak`) and
//! reports frame lifecycles, fault/flush latency histograms and any
//! anomalies: frame leaks (flushes that never complete), retry storms,
//! abandoned write-backs, checker timeouts, and sequence gaps (records
//! lost to ring overwrites). Exits non-zero when anomalies are found, so
//! it can gate CI.
//!
//! Usage: `trace_analyze [FILE] [--json] [--legacy-residency]
//! [--gate-p99-fault-ns N] [--gate-p99-flush-ns N]` — reads stdin when no
//! file (or `-`) is given. `--legacy-residency` restores the conservative
//! clear-on-reclaim residency accounting for traces recorded before
//! per-frame `forced_seize` events existed. The `--gate-p99-*` flags turn
//! a latency tail past N virtual ns into an anomaly (and a non-zero exit),
//! so CI can pin percentile regressions, not just lifecycle bugs.

use std::io::Read;

use hipec_bench::analyze::{analyze_lines_with, AnalyzeOptions};
use hipec_bench::{finish, json_mode};

fn parse_gate(value: Option<String>, flag: &str) -> u64 {
    match value.and_then(|s| s.parse().ok()) {
        Some(n) => n,
        None => {
            eprintln!("trace_analyze: {flag} needs an integer ns value");
            std::process::exit(2);
        }
    }
}

fn main() {
    let json = json_mode();
    let mut legacy = false;
    let mut gate_fault = 0u64;
    let mut gate_flush = 0u64;
    let mut path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" | "-" => {}
            "--legacy-residency" => legacy = true,
            "--gate-p99-fault-ns" => gate_fault = parse_gate(args.next(), "--gate-p99-fault-ns"),
            "--gate-p99-flush-ns" => gate_flush = parse_gate(args.next(), "--gate-p99-flush-ns"),
            _ => path = Some(a),
        }
    }
    let text = match &path {
        Some(p) => match std::fs::read_to_string(p) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("trace_analyze: cannot read {p}: {e}");
                std::process::exit(2);
            }
        },
        None => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("trace_analyze: cannot read stdin: {e}");
                std::process::exit(2);
            }
            buf
        }
    };

    let options = AnalyzeOptions {
        legacy_residency: legacy,
        gate_p99_fault_ns: gate_fault,
        gate_p99_flush_ns: gate_flush,
    };
    let analysis = match analyze_lines_with(text.lines(), options) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("trace_analyze: malformed trace: {e}");
            std::process::exit(2);
        }
    };

    if json {
        finish("trace_analyze", &analysis.to_json());
    } else {
        print!("{analysis}");
        finish("trace_analyze", &analysis.to_json());
    }

    if !analysis.is_clean() {
        eprintln!(
            "trace_analyze: FAIL: {} anomaly(ies)",
            analysis.anomalies.len()
        );
        std::process::exit(1);
    }
}

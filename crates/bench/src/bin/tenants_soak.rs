//! Tenants soak: the multi-tenant QoS gauntlet, traced and self-gating.
//!
//! Runs the `tenants` workload — a Zipf tenant population in three
//! weighted share classes, bursty arrivals under admission control,
//! mixed policies, and a storm device (all-torn write-backs + injected
//! completion delays) under the Free tier — and gates the QoS story:
//!
//! 1. the arrival bursts must trip the admission throttle, and every
//!    throttled Standard/Premium tenant must eventually install;
//! 2. the storm class must visibly degrade: its p99 fault latency ends
//!    well above the healthy classes';
//! 3. the healthy classes must be isolated: their p99 stays under an
//!    absolute bound even though the storm device's retry backlog rides
//!    the same pump (the head-of-line regression this tree fixes).
//!
//! The per-class rows come from the kernel's own `class_fault`
//! histograms and are emitted in the `--json` document (schema v7) as a
//! `classes` array. The whole run is a pure function of the seed;
//! `scripts/verify.sh` runs the binary twice and `cmp`s the JSON.
//!
//! Usage: `tenants_soak [--ops N] [--seed S] [--json]`

use hipec_bench::{finish, json_mode, kernel_stats_json, results_dir};
use hipec_core::ShareClass;
use hipec_workloads::tenants::{run, TenantsConfig};

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

fn fail(msg: &str) -> ! {
    eprintln!("tenants_soak: FAIL: {msg}");
    std::process::exit(1);
}

/// Healthy classes must stay under this p99 bound while the storm rages.
/// The boot disk's unloaded fault p99 sits near 30 ms; the bound leaves
/// 2x headroom before the gate calls it head-of-line blocking.
const HEALTHY_P99_BOUND_NS: u64 = 60_000_000;

fn main() {
    let mut cfg = TenantsConfig::small();
    if let Some(ops) = arg_value("--ops").and_then(|s| s.parse().ok()) {
        cfg.ops = ops;
    }
    if let Some(seed) = arg_value("--seed").and_then(|s| {
        let s = s.trim_start_matches("0x");
        u64::from_str_radix(s, 16).ok()
    }) {
        cfg.seed = seed;
    }
    let json = json_mode();

    let r = match run(&cfg) {
        Ok(r) => r,
        Err(e) => fail(&format!("workload refused: {e}")),
    };

    if r.throttled == 0 {
        fail("arrival bursts never tripped the admission throttle");
    }
    for class in [ShareClass::Standard, ShareClass::Premium] {
        let row = &r.classes[class.index()];
        if row.installed != row.tenants {
            fail(&format!(
                "{} tenant(s) of class {} never installed (throttle must be retryable)",
                row.tenants - row.installed,
                class.name()
            ));
        }
        if row.faults == 0 {
            fail(&format!("class {} served no faults", class.name()));
        }
        let p99 = row.p99_fault.as_ns();
        if p99 > HEALTHY_P99_BOUND_NS {
            fail(&format!(
                "class {} p99 {}ns exceeds the {HEALTHY_P99_BOUND_NS}ns isolation bound",
                class.name(),
                p99
            ));
        }
    }
    let free = &r.classes[ShareClass::Free.index()];
    if free.faults == 0 {
        fail("the storm class served no faults");
    }
    let healthy_worst = [ShareClass::Standard, ShareClass::Premium]
        .iter()
        .map(|c| r.classes[c.index()].p99_fault.as_ns())
        .max()
        .unwrap_or(0);
    if free.p99_fault.as_ns() <= healthy_worst {
        fail(&format!(
            "the storm class did not degrade (free p99 {}ns <= healthy worst {healthy_worst}ns)",
            free.p99_fault.as_ns()
        ));
    }

    let classes: Vec<serde_json::Value> = r
        .classes
        .iter()
        .map(|c| {
            serde_json::json!({
                "class": c.class.name(),
                "tenants": c.tenants,
                "installed": c.installed,
                "faults": c.faults,
                "p50_fault_ns": c.p50_fault.as_ns(),
                "p99_fault_ns": c.p99_fault.as_ns(),
            })
        })
        .collect();
    let data = serde_json::json!({
        "ops": cfg.ops,
        "seed": cfg.seed,
        "accesses": r.accesses,
        "errors": r.errors,
        "installs": r.installs,
        "admission_throttled": r.throttled,
        "admission_over_share": r.over_share,
        "elapsed_ns": r.elapsed.as_ns(),
        "healthy_p99_bound_ns": HEALTHY_P99_BOUND_NS,
        "classes": classes,
        "kernel": kernel_stats_json(&r.stats),
    });
    if json {
        finish("tenants_soak", &data);
    } else {
        println!(
            "tenants_soak: {} ops over {} tenant(s), {} install(s) \
             ({} throttled, {} over share), seed {:#x}",
            r.accesses, cfg.tenants, r.installs, r.throttled, r.over_share, cfg.seed
        );
        for c in &r.classes {
            println!(
                "  {:>8}: {}/{} installed, {:>6} faults, p50 {} p99 {}",
                c.class.name(),
                c.installed,
                c.tenants,
                c.faults,
                c.p50_fault,
                c.p99_fault
            );
        }
        println!("(results: {})", results_dir().display());
        finish("tenants_soak", &data);
    }
}

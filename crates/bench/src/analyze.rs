//! Offline analysis of JSONL kernel traces.
//!
//! Consumes the line-per-record stream written by
//! `hipec_core::JsonlSink` (schema of `hipec_core::render_jsonl`) and
//! reconstructs what the kernel did: per-type event counts, fault and
//! flush latency histograms, frame flush lifecycles, frame-residency
//! lifecycles (fault → migrate/release → reclaim), and a list of
//! anomalies — frame leaks (a `vm.flush_start` never matched by a
//! completion), double residency, commands executed by a quarantined or
//! terminated container, retry storms, abandoned write-backs, checker
//! timeouts and sequence gaps (records lost to ring overwrites).
//!
//! The analyzer is degradation-aware and device-aware: between a
//! `vm.breaker_trip` and its `vm.breaker_close` *that* paging device is
//! known-sick, so device collateral carrying its id (abandoned write-backs,
//! retry storms) is counted as *expected degradation* instead of flagged —
//! collateral on a different, healthy device is still an anomaly. A breaker
//! left open on any device, or a container left quarantined without a
//! `fallback_restored`, at the end of a trace is still an anomaly — the
//! graceful-degradation contract demands recovery. Records without a
//! `device` field (traces from before the device dimension) fold onto
//! device 0, which reproduces the old single-breaker semantics.
//!
//! The frame-residency audit is exact: frames leave the map only on the
//! per-frame events that retire them (`release`, `forced_seize`,
//! `orphan_recovered`, `flush_exchange`) or on whole-container transitions
//! (`terminated`, `quarantined`). Count-only `normal_reclaim` /
//! `forced_reclaim` records no longer clear a container's entire entry set;
//! for traces predating the per-frame `forced_seize` event, the old
//! conservative clearing is available behind
//! [`AnalyzeOptions::legacy_residency`]. The `trace_analyze` binary wraps
//! this module; tests feed it synthetic traces.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use hipec_sim::stats::Histogram;
use hipec_sim::SimDuration;
use serde_json::Value;

/// A torn write-back retried this many times (or more) counts as a retry
/// storm anomaly — the paging device is effectively wedged on that frame.
pub const RETRY_STORM_THRESHOLD: u64 = 6;

/// Everything the analyzer learned from one trace.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// Total records parsed.
    pub events: u64,
    /// Sequence number of the first record (None for an empty trace).
    /// Non-zero means the trace starts mid-run (ring overwrote history
    /// before a sink attached), so unmatched completions are not flagged.
    pub first_seq: Option<u64>,
    /// Sequence number of the last record.
    pub last_seq: Option<u64>,
    /// Records missing between consecutive lines (sum of gap sizes).
    pub seq_gaps: u64,
    /// Record counts per `"type"` field.
    pub by_type: BTreeMap<String, u64>,
    /// Substrate fault latencies (`vm.fault` `latency_ns`).
    pub fault_latency: Histogram,
    /// Policy-resolved fault latencies (`policy_fault_resolved`).
    pub policy_fault_latency: Histogram,
    /// Write-back latencies (`vm.flush_start` → `vm.flush_complete`).
    pub flush_latency: Histogram,
    /// Write-backs abandoned after exhausting retries.
    pub abandoned_flushes: u64,
    /// Policies the security checker timed out.
    pub checker_timeouts: u64,
    /// Torn write-back re-issues.
    pub torn_retries: u64,
    /// Retries rejected by the bounded retry queue.
    pub retry_rejected: u64,
    /// Deepest retry attempt seen on any frame.
    pub max_retry_attempt: u64,
    /// Frames whose flush never completed by end of trace (leaks).
    pub leaked_flushes: u64,
    /// Circuit-breaker trips (`vm.breaker_trip`).
    pub breaker_trips: u64,
    /// Circuit-breaker closes (`vm.breaker_close`).
    pub breaker_closes: u64,
    /// Half-open probe writes (`vm.breaker_probe`).
    pub breaker_probes: u64,
    /// Health degradations (`health_degraded`).
    pub degrades: u64,
    /// Containers quarantined into default management (`quarantined`).
    pub quarantines: u64,
    /// Quarantined containers restored to HiPEC management
    /// (`fallback_restored`).
    pub restores: u64,
    /// Device collateral (abandoned write-backs, retry storms, checker
    /// timeouts) absorbed inside open-breaker windows or attributed to
    /// already-quarantined containers instead of flagged as anomalies.
    pub expected_degradations: u64,
    /// Frames still resident under each live container when the trace
    /// ended, reconstructed from the residency lifecycle (container key →
    /// frame count). Informational, not an anomaly: live specific
    /// applications legitimately hold their working set.
    pub resident_at_end: BTreeMap<u64, u64>,
    /// Human-readable anomaly descriptions; empty on a clean trace.
    pub anomalies: Vec<String>,
}

impl Analysis {
    /// True when the trace shows no anomalies.
    pub fn is_clean(&self) -> bool {
        self.anomalies.is_empty()
    }

    /// Serializes the analysis (including histograms as
    /// `[[floor_ns, ceil_ns, count], ...]` bucket triples) to JSON.
    pub fn to_json(&self) -> Value {
        fn hist(h: &Histogram) -> Value {
            serde_json::json!({
                "count": h.count(),
                "total_ns": h.total_ns() as u64,
                "mean_ns": h.mean().as_ns(),
                "p50_ns": h.quantile(0.5).as_ns(),
                "p99_ns": h.quantile(0.99).as_ns(),
                "buckets": Value::Array(
                    h.nonzero_buckets()
                        .map(|(lo, hi, n)| serde_json::json!([lo, hi, n]))
                        .collect(),
                ),
            })
        }
        let mut by_type = serde_json::Map::new();
        for (k, v) in &self.by_type {
            by_type.insert(k.clone(), serde_json::to_value(v));
        }
        let mut resident = serde_json::Map::new();
        for (k, v) in &self.resident_at_end {
            resident.insert(k.to_string(), serde_json::to_value(v));
        }
        serde_json::json!({
            "events": self.events,
            "first_seq": self.first_seq.map(Value::U64).unwrap_or(Value::Null),
            "last_seq": self.last_seq.map(Value::U64).unwrap_or(Value::Null),
            "seq_gaps": self.seq_gaps,
            "by_type": Value::Object(by_type),
            "fault_latency": hist(&self.fault_latency),
            "policy_fault_latency": hist(&self.policy_fault_latency),
            "flush_latency": hist(&self.flush_latency),
            "abandoned_flushes": self.abandoned_flushes,
            "checker_timeouts": self.checker_timeouts,
            "torn_retries": self.torn_retries,
            "retry_rejected": self.retry_rejected,
            "max_retry_attempt": self.max_retry_attempt,
            "leaked_flushes": self.leaked_flushes,
            "breaker_trips": self.breaker_trips,
            "breaker_closes": self.breaker_closes,
            "breaker_probes": self.breaker_probes,
            "degrades": self.degrades,
            "quarantines": self.quarantines,
            "restores": self.restores,
            "expected_degradations": self.expected_degradations,
            "resident_at_end": Value::Object(resident),
            "anomalies": Value::Array(
                self.anomalies
                    .iter()
                    .map(|a| Value::Str(a.clone()))
                    .collect(),
            ),
        })
    }
}

impl fmt::Display for Analysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace: {} events (seq {}..{}), {} missing",
            self.events,
            self.first_seq.map_or("-".to_string(), |s| s.to_string()),
            self.last_seq.map_or("-".to_string(), |s| s.to_string()),
            self.seq_gaps
        )?;
        writeln!(f, "events by type:")?;
        for (k, v) in &self.by_type {
            writeln!(f, "  {k:>24}: {v}")?;
        }
        for (name, h) in [
            ("fault latency", &self.fault_latency),
            ("policy fault latency", &self.policy_fault_latency),
            ("flush latency", &self.flush_latency),
        ] {
            if h.count() == 0 {
                continue;
            }
            writeln!(
                f,
                "{name}: n={} mean={} p50={} p99={}",
                h.count(),
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99)
            )?;
            for (lo, hi, n) in h.nonzero_buckets() {
                writeln!(f, "  [{lo:>12} ns, {hi:>12} ns]: {n}")?;
            }
        }
        if self.breaker_trips + self.breaker_closes + self.breaker_probes != 0 {
            writeln!(
                f,
                "breaker: {} trip(s), {} close(s), {} probe(s)",
                self.breaker_trips, self.breaker_closes, self.breaker_probes
            )?;
        }
        if self.degrades + self.quarantines + self.restores != 0 {
            writeln!(
                f,
                "health: {} degrade(s), {} quarantine(s), {} restore(s), \
                 {} expected degradation(s) absorbed",
                self.degrades, self.quarantines, self.restores, self.expected_degradations
            )?;
        }
        if !self.resident_at_end.is_empty() {
            write!(f, "frames resident at end:")?;
            for (c, n) in &self.resident_at_end {
                write!(f, " c{c}={n}")?;
            }
            writeln!(f)?;
        }
        if self.anomalies.is_empty() {
            writeln!(f, "anomalies: none")?;
        } else {
            writeln!(f, "anomalies ({}):", self.anomalies.len())?;
            for a in &self.anomalies {
                writeln!(f, "  ! {a}")?;
            }
        }
        Ok(())
    }
}

fn field_u64(obj: &serde_json::Map, key: &str) -> Option<u64> {
    obj.get(key).and_then(Value::as_u64)
}

/// Knobs for [`analyze_lines_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyzeOptions {
    /// Restore the pre-`forced_seize` residency handling: count-only
    /// `normal_reclaim` / `forced_reclaim` records conservatively clear the
    /// container's whole residency entry set. Needed only for traces
    /// recorded before per-frame seizure events existed; on current traces
    /// it weakens the audit.
    pub legacy_residency: bool,
    /// Flag an anomaly when the substrate fault latency p99 exceeds this
    /// many virtual ns (0 disables the gate).
    pub gate_p99_fault_ns: u64,
    /// Flag an anomaly when the flush latency p99 exceeds this many
    /// virtual ns (0 disables the gate).
    pub gate_p99_flush_ns: u64,
}

/// Analyzes a JSONL trace given as an iterator of lines, with default
/// options (exact residency audit).
///
/// Returns `Err` only on malformed input (unparseable line, missing
/// `seq`/`at_ns`/`type`); kernel-level problems are reported through
/// [`Analysis::anomalies`].
pub fn analyze_lines<'a, I>(lines: I) -> Result<Analysis, String>
where
    I: IntoIterator<Item = &'a str>,
{
    analyze_lines_with(lines, AnalyzeOptions::default())
}

/// Analyzes a JSONL trace with explicit [`AnalyzeOptions`].
pub fn analyze_lines_with<'a, I>(lines: I, options: AnalyzeOptions) -> Result<Analysis, String>
where
    I: IntoIterator<Item = &'a str>,
{
    let mut a = Analysis::default();
    // frame -> (flush_start at_ns, start seq), for lifecycle matching.
    let mut inflight: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    // frame -> owning container, for residency lifecycle matching. Frames
    // leave via the per-frame events that retire them (release,
    // forced_seize, orphan_recovered, flush_exchange) or on whole-container
    // transitions, so a surviving entry is a hard claim of residency.
    let mut resident: BTreeMap<u64, u64> = BTreeMap::new();
    // Containers currently under default management (terminated or
    // quarantined): HiPEC commands from them are anomalies.
    let mut in_fallback: BTreeSet<u64> = BTreeSet::new();
    // Containers currently quarantined (awaiting restore).
    let mut quarantined_now: BTreeSet<u64> = BTreeSet::new();
    // Devices between a vm.breaker_trip and the matching vm.breaker_close:
    // those devices are known-sick, so their collateral is expected, not
    // anomalous. Pre-device traces fold onto device 0.
    let mut open_devices: BTreeSet<u64> = BTreeSet::new();
    let mut prev_seq: Option<u64> = None;

    for (lineno, line) in lines.into_iter().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(line)
            .map_err(|e| format!("line {}: bad JSON: {e:?}", lineno + 1))?;
        let obj = v
            .as_object()
            .ok_or_else(|| format!("line {}: not an object", lineno + 1))?;
        let seq = field_u64(obj, "seq").ok_or_else(|| format!("line {}: no seq", lineno + 1))?;
        let at_ns =
            field_u64(obj, "at_ns").ok_or_else(|| format!("line {}: no at_ns", lineno + 1))?;
        let kind = obj
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {}: no type", lineno + 1))?;

        a.events += 1;
        if a.first_seq.is_none() {
            a.first_seq = Some(seq);
        }
        if let Some(prev) = prev_seq {
            if seq <= prev {
                a.anomalies
                    .push(format!("seq {seq} after {prev}: sequence not increasing"));
            } else if seq != prev + 1 {
                let missing = seq - prev - 1;
                a.seq_gaps += missing;
                a.anomalies.push(format!(
                    "{missing} record(s) dropped between seq {prev} and {seq}"
                ));
            }
        }
        prev_seq = Some(seq);
        a.last_seq = Some(seq);
        *a.by_type.entry(kind.to_string()).or_insert(0) += 1;

        // Residency lifecycle: a HiPEC command naming a container that the
        // trace already put under default management is a contract breach.
        let fallback_guard =
            |a: &mut Analysis, in_fallback: &BTreeSet<u64>, container: u64, what: &str| {
                if in_fallback.contains(&container) {
                    a.anomalies.push(format!(
                        "container {container}: {what} at seq {seq} while under \
                         default management (terminated or quarantined)"
                    ));
                }
            };

        match kind {
            "vm.fault" => {
                if let Some(ns) = field_u64(obj, "latency_ns") {
                    a.fault_latency.record(SimDuration::from_ns(ns));
                }
            }
            "policy_fault_resolved" => {
                if let Some(ns) = field_u64(obj, "latency_ns") {
                    a.policy_fault_latency.record(SimDuration::from_ns(ns));
                }
                let container = field_u64(obj, "container").unwrap_or(u64::MAX);
                let frame = field_u64(obj, "frame").unwrap_or(u64::MAX);
                fallback_guard(&mut a, &in_fallback, container, "resolved a policy fault");
                if let Some(&owner) = resident.get(&frame) {
                    if owner != container {
                        a.anomalies.push(format!(
                            "frame {frame}: resolved a fault for container {container} \
                             at seq {seq} while still resident under container {owner} \
                             (double residency)"
                        ));
                    }
                }
                resident.insert(frame, container);
            }
            "request" => {
                let container = field_u64(obj, "container").unwrap_or(u64::MAX);
                fallback_guard(&mut a, &in_fallback, container, "issued a Request");
            }
            "release" => {
                let container = field_u64(obj, "container").unwrap_or(u64::MAX);
                let frame = field_u64(obj, "frame").unwrap_or(u64::MAX);
                fallback_guard(&mut a, &in_fallback, container, "issued a Release");
                resident.remove(&frame);
            }
            "flush_exchange" => {
                let container = field_u64(obj, "container").unwrap_or(u64::MAX);
                fallback_guard(&mut a, &in_fallback, container, "issued a Flush");
                if let Some(dirty) = field_u64(obj, "dirty") {
                    resident.remove(&dirty);
                }
                if let Some(replacement) = field_u64(obj, "replacement") {
                    if let Some(&owner) = resident.get(&replacement) {
                        if owner != container {
                            a.anomalies.push(format!(
                                "frame {replacement}: flush replacement for container \
                                 {container} at seq {seq} while still resident under \
                                 container {owner} (double residency)"
                            ));
                        }
                    }
                    resident.insert(replacement, container);
                }
            }
            "migrate" => {
                let to = field_u64(obj, "to").unwrap_or(u64::MAX);
                fallback_guard(&mut a, &in_fallback, to, "received a Migrate");
                if let Some(frame) = field_u64(obj, "frame") {
                    // Migrated frames come off the source's free queue; a
                    // tracked one simply changes owner.
                    if let Some(owner) = resident.get_mut(&frame) {
                        *owner = to;
                    }
                }
            }
            "orphan_recovered" => {
                if let Some(frame) = field_u64(obj, "frame") {
                    resident.remove(&frame);
                }
            }
            // Count-only summaries. The frames themselves are retired by
            // the per-frame release / forced_seize records, so the map
            // stays exact — unless the trace predates those events and
            // the caller asked for the conservative fallback.
            "normal_reclaim" | "forced_reclaim" if options.legacy_residency => {
                let container = field_u64(obj, "container").unwrap_or(u64::MAX);
                resident.retain(|_, owner| *owner != container);
            }
            "forced_seize" => {
                if let Some(frame) = field_u64(obj, "frame") {
                    resident.remove(&frame);
                }
            }
            "terminated" => {
                let container = field_u64(obj, "container").unwrap_or(u64::MAX);
                in_fallback.insert(container);
                quarantined_now.remove(&container);
                resident.retain(|_, owner| *owner != container);
            }
            "quarantined" => {
                a.quarantines += 1;
                let container = field_u64(obj, "container").unwrap_or(u64::MAX);
                in_fallback.insert(container);
                quarantined_now.insert(container);
                resident.retain(|_, owner| *owner != container);
            }
            "fallback_restored" => {
                a.restores += 1;
                let container = field_u64(obj, "container").unwrap_or(u64::MAX);
                if !quarantined_now.remove(&container) {
                    a.anomalies.push(format!(
                        "container {container}: fallback_restored at seq {seq} \
                         without a preceding quarantine"
                    ));
                }
                in_fallback.remove(&container);
            }
            "health_degraded" => {
                a.degrades += 1;
            }
            "vm.breaker_trip" => {
                a.breaker_trips += 1;
                open_devices.insert(field_u64(obj, "device").unwrap_or(0));
            }
            "vm.breaker_close" => {
                a.breaker_closes += 1;
                open_devices.remove(&field_u64(obj, "device").unwrap_or(0));
            }
            "vm.breaker_probe" => {
                a.breaker_probes += 1;
            }
            "vm.flush_start" => {
                let frame = field_u64(obj, "frame").unwrap_or(u64::MAX);
                if let Some((start_ns, start_seq)) = inflight.insert(frame, (at_ns, seq)) {
                    a.anomalies.push(format!(
                        "frame {frame}: flush_start at seq {seq} while flush from \
                         seq {start_seq} (at {start_ns} ns) still open"
                    ));
                }
            }
            "vm.flush_complete" => {
                let frame = field_u64(obj, "frame").unwrap_or(u64::MAX);
                match inflight.remove(&frame) {
                    Some((start_ns, _)) => a
                        .flush_latency
                        .record(SimDuration::from_ns(at_ns.saturating_sub(start_ns))),
                    // Only a complete-from-birth trace can call an
                    // unmatched completion an anomaly; a mid-run capture
                    // legitimately misses the start.
                    None if a.first_seq == Some(0) && a.seq_gaps == 0 => {
                        a.anomalies
                            .push(format!("frame {frame}: flush_complete without flush_start"));
                    }
                    None => {}
                }
            }
            "vm.flush_abandoned" => {
                let frame = field_u64(obj, "frame").unwrap_or(u64::MAX);
                inflight.remove(&frame);
                a.abandoned_flushes += 1;
                let attempts = field_u64(obj, "attempts").unwrap_or(0);
                // Collateral is excused only on the device whose breaker is
                // actually open — a healthy device abandoning write-backs
                // is anomalous no matter what its neighbors are doing.
                if open_devices.contains(&field_u64(obj, "device").unwrap_or(0)) {
                    a.expected_degradations += 1;
                } else {
                    a.anomalies.push(format!(
                        "frame {frame}: write-back abandoned after {attempts} attempts"
                    ));
                }
            }
            "vm.torn_retry" => {
                a.torn_retries += 1;
                let attempt = field_u64(obj, "attempt").unwrap_or(0);
                a.max_retry_attempt = a.max_retry_attempt.max(attempt);
                if attempt >= RETRY_STORM_THRESHOLD {
                    if open_devices.contains(&field_u64(obj, "device").unwrap_or(0)) {
                        a.expected_degradations += 1;
                    } else {
                        let frame = field_u64(obj, "frame").unwrap_or(u64::MAX);
                        a.anomalies
                            .push(format!("frame {frame}: retry storm (attempt {attempt})"));
                    }
                }
            }
            "vm.retry_rejected" => {
                a.retry_rejected += 1;
            }
            "checker_timeout" => {
                a.checker_timeouts += 1;
                let container = field_u64(obj, "container").unwrap_or(u64::MAX);
                // A timeout while the device is tripped, or one that the
                // checker answered by quarantining the container, is the
                // environment's fault; a timeout that killed a healthy
                // container is the policy's own.
                if !open_devices.is_empty() || quarantined_now.contains(&container) {
                    a.expected_degradations += 1;
                } else {
                    a.anomalies
                        .push(format!("container {container}: checker timeout"));
                }
            }
            _ => {}
        }
    }

    a.leaked_flushes = inflight.len() as u64;
    for (frame, (start_ns, start_seq)) in &inflight {
        a.anomalies.push(format!(
            "frame {frame}: flush started at seq {start_seq} ({start_ns} ns) \
             never completed (leak)"
        ));
    }
    // The graceful-degradation contract requires recovery: a breaker still
    // open, or a container still quarantined, when the trace closes means
    // the run ended degraded.
    for device in &open_devices {
        a.anomalies.push(format!(
            "device {device}: circuit breaker still open at end of trace"
        ));
    }
    for container in &quarantined_now {
        a.anomalies.push(format!(
            "container {container}: still quarantined at end of trace \
             (no recovery cycle)"
        ));
    }
    for owner in resident.values() {
        *a.resident_at_end.entry(*owner).or_insert(0) += 1;
    }
    // Percentile gates: a seeded soak has a deterministic latency
    // distribution, so a tail drifting past the configured ceiling is a
    // regression even when every lifecycle closes cleanly.
    if options.gate_p99_fault_ns != 0 {
        let p99 = a.fault_latency.quantile(0.99).as_ns();
        if p99 > options.gate_p99_fault_ns {
            a.anomalies.push(format!(
                "fault latency p99 {p99} ns exceeds gate {} ns",
                options.gate_p99_fault_ns
            ));
        }
    }
    if options.gate_p99_flush_ns != 0 {
        let p99 = a.flush_latency.quantile(0.99).as_ns();
        if p99 > options.gate_p99_flush_ns {
            a.anomalies.push(format!(
                "flush latency p99 {p99} ns exceeds gate {} ns",
                options.gate_p99_flush_ns
            ));
        }
    }
    Ok(a)
}

/// Analyzes a whole JSONL document held in memory.
pub fn analyze_str(text: &str) -> Result<Analysis, String> {
    analyze_lines(text.lines())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_trace_has_no_anomalies() {
        let trace = "\
{\"seq\":0,\"at_ns\":0,\"type\":\"install\",\"container\":1,\"min_frames\":4}
{\"seq\":1,\"at_ns\":100,\"type\":\"vm.fault\",\"task\":0,\"vpage\":3,\"kind\":\"page_in\",\"write\":false,\"latency_ns\":2500}
{\"seq\":2,\"at_ns\":200,\"type\":\"vm.flush_start\",\"frame\":7,\"torn\":false}
{\"seq\":3,\"at_ns\":900,\"type\":\"vm.flush_complete\",\"frame\":7}
";
        let a = analyze_str(trace).unwrap();
        assert!(a.is_clean(), "anomalies: {:?}", a.anomalies);
        assert_eq!(a.events, 4);
        assert_eq!(a.first_seq, Some(0));
        assert_eq!(a.last_seq, Some(3));
        assert_eq!(a.seq_gaps, 0);
        assert_eq!(a.by_type.get("vm.fault"), Some(&1));
        assert_eq!(a.fault_latency.count(), 1);
        assert_eq!(a.flush_latency.count(), 1);
        assert_eq!(a.flush_latency.total_ns(), 700);
    }

    #[test]
    fn percentile_gates_flag_slow_tails_only() {
        let trace = "\
{\"seq\":0,\"at_ns\":100,\"type\":\"vm.fault\",\"task\":0,\"vpage\":3,\"kind\":\"page_in\",\"write\":false,\"latency_ns\":2500}
{\"seq\":1,\"at_ns\":200,\"type\":\"vm.flush_start\",\"frame\":7,\"torn\":false}
{\"seq\":2,\"at_ns\":900,\"type\":\"vm.flush_complete\",\"frame\":7}
";
        let generous = AnalyzeOptions {
            gate_p99_fault_ns: 1_000_000,
            gate_p99_flush_ns: 1_000_000,
            ..AnalyzeOptions::default()
        };
        let a = analyze_lines_with(trace.lines(), generous).unwrap();
        assert!(a.is_clean(), "anomalies: {:?}", a.anomalies);

        let tight = AnalyzeOptions {
            gate_p99_fault_ns: 1_000,
            gate_p99_flush_ns: 100,
            ..AnalyzeOptions::default()
        };
        let a = analyze_lines_with(trace.lines(), tight).unwrap();
        assert_eq!(a.anomalies.len(), 2, "anomalies: {:?}", a.anomalies);
        assert!(a.anomalies[0].contains("fault latency p99"));
        assert!(a.anomalies[1].contains("flush latency p99"));
    }

    #[test]
    fn seq_gap_counts_dropped_records() {
        let trace = "\
{\"seq\":0,\"at_ns\":0,\"type\":\"checker_wake\",\"detected\":0}
{\"seq\":4,\"at_ns\":50,\"type\":\"checker_wake\",\"detected\":0}
";
        let a = analyze_str(trace).unwrap();
        assert_eq!(a.seq_gaps, 3);
        assert_eq!(a.anomalies.len(), 1);
        assert!(a.anomalies[0].contains("3 record(s) dropped"));
    }

    #[test]
    fn flush_leak_and_double_start_flagged() {
        let trace = "\
{\"seq\":0,\"at_ns\":0,\"type\":\"vm.flush_start\",\"frame\":3,\"torn\":false}
{\"seq\":1,\"at_ns\":10,\"type\":\"vm.flush_start\",\"frame\":3,\"torn\":false}
";
        let a = analyze_str(trace).unwrap();
        assert_eq!(a.leaked_flushes, 1);
        assert_eq!(a.anomalies.len(), 2);
        assert!(a.anomalies[0].contains("still open"));
        assert!(a.anomalies[1].contains("never completed"));
    }

    #[test]
    fn retry_storm_abandonment_and_timeouts_flagged() {
        let trace = "\
{\"seq\":0,\"at_ns\":0,\"type\":\"vm.torn_retry\",\"frame\":2,\"attempt\":1}
{\"seq\":1,\"at_ns\":10,\"type\":\"vm.torn_retry\",\"frame\":2,\"attempt\":6}
{\"seq\":2,\"at_ns\":20,\"type\":\"vm.flush_abandoned\",\"frame\":2,\"attempts\":7}
{\"seq\":3,\"at_ns\":30,\"type\":\"checker_timeout\",\"container\":5}
";
        let a = analyze_str(trace).unwrap();
        assert_eq!(a.torn_retries, 2);
        assert_eq!(a.max_retry_attempt, 6);
        assert_eq!(a.abandoned_flushes, 1);
        assert_eq!(a.checker_timeouts, 1);
        assert_eq!(a.anomalies.len(), 3);
    }

    #[test]
    fn midrun_capture_tolerates_unmatched_completion() {
        // first_seq != 0: the ring overwrote history before the sink
        // attached, so an orphan completion is expected, not an anomaly.
        let trace = "{\"seq\":40,\"at_ns\":500,\"type\":\"vm.flush_complete\",\"frame\":9}\n";
        let a = analyze_str(trace).unwrap();
        assert!(a.is_clean(), "anomalies: {:?}", a.anomalies);
    }

    #[test]
    fn complete_trace_flags_unmatched_completion() {
        let trace = "\
{\"seq\":0,\"at_ns\":0,\"type\":\"checker_wake\",\"detected\":0}
{\"seq\":1,\"at_ns\":500,\"type\":\"vm.flush_complete\",\"frame\":9}
";
        let a = analyze_str(trace).unwrap();
        assert_eq!(a.anomalies.len(), 1);
        assert!(a.anomalies[0].contains("without flush_start"));
    }

    #[test]
    fn malformed_input_is_an_error() {
        assert!(analyze_str("not json\n").is_err());
        assert!(analyze_str("{\"at_ns\":0,\"type\":\"x\"}\n").is_err());
        let err = analyze_str("{\"seq\":0,\"at_ns\":0}\n").unwrap_err();
        assert!(err.contains("no type"));
    }

    #[test]
    fn breaker_window_absorbs_device_collateral() {
        // Abandonment, a deep retry and a quarantine-path timeout all land
        // inside the trip..close window (or on a quarantined container):
        // expected degradation, not anomalies — and the full
        // quarantine-then-restore cycle leaves the trace clean.
        let trace = "\
{\"seq\":0,\"at_ns\":0,\"type\":\"install\",\"container\":0,\"min_frames\":4}
{\"seq\":1,\"at_ns\":10,\"type\":\"vm.breaker_trip\",\"ewma_milli\":578}
{\"seq\":2,\"at_ns\":20,\"type\":\"vm.torn_retry\",\"frame\":3,\"attempt\":7}
{\"seq\":3,\"at_ns\":30,\"type\":\"vm.flush_abandoned\",\"frame\":3,\"attempts\":8}
{\"seq\":4,\"at_ns\":40,\"type\":\"health_degraded\",\"container\":0,\"strikes\":3}
{\"seq\":5,\"at_ns\":50,\"type\":\"quarantined\",\"container\":0,\"reclaimed\":6}
{\"seq\":6,\"at_ns\":60,\"type\":\"vm.breaker_probe\",\"ok\":true}
{\"seq\":7,\"at_ns\":70,\"type\":\"vm.breaker_close\",\"ewma_milli\":90}
{\"seq\":8,\"at_ns\":80,\"type\":\"checker_timeout\",\"container\":0}
{\"seq\":9,\"at_ns\":90,\"type\":\"fallback_restored\",\"container\":0,\"readmitted\":4}
";
        let a = analyze_str(trace).unwrap();
        assert!(a.is_clean(), "anomalies: {:?}", a.anomalies);
        assert_eq!(a.breaker_trips, 1);
        assert_eq!(a.breaker_closes, 1);
        assert_eq!(a.breaker_probes, 1);
        assert_eq!(a.degrades, 1);
        assert_eq!(a.quarantines, 1);
        assert_eq!(a.restores, 1);
        assert_eq!(a.expected_degradations, 3);
        assert_eq!(a.abandoned_flushes, 1);
        assert_eq!(a.checker_timeouts, 1);
    }

    #[test]
    fn unrecovered_degradation_is_flagged() {
        let trace = "\
{\"seq\":0,\"at_ns\":0,\"type\":\"vm.breaker_trip\",\"ewma_milli\":600}
{\"seq\":1,\"at_ns\":10,\"type\":\"quarantined\",\"container\":2,\"reclaimed\":5}
";
        let a = analyze_str(trace).unwrap();
        assert_eq!(a.anomalies.len(), 2, "anomalies: {:?}", a.anomalies);
        assert!(a.anomalies[0].contains("breaker still open"));
        assert!(a.anomalies[1].contains("still quarantined"));
    }

    #[test]
    fn fallback_container_activity_is_flagged() {
        let trace = "\
{\"seq\":0,\"at_ns\":0,\"type\":\"quarantined\",\"container\":1,\"reclaimed\":3}
{\"seq\":1,\"at_ns\":10,\"type\":\"policy_fault_resolved\",\"container\":1,\"frame\":9,\"latency_ns\":100}
{\"seq\":2,\"at_ns\":20,\"type\":\"fallback_restored\",\"container\":1,\"readmitted\":3}
{\"seq\":3,\"at_ns\":30,\"type\":\"fallback_restored\",\"container\":1,\"readmitted\":3}
";
        let a = analyze_str(trace).unwrap();
        assert_eq!(a.anomalies.len(), 2, "anomalies: {:?}", a.anomalies);
        assert!(a.anomalies[0].contains("while under default management"));
        assert!(a.anomalies[1].contains("without a preceding quarantine"));
    }

    #[test]
    fn residency_lifecycle_flags_double_residency() {
        let trace = "\
{\"seq\":0,\"at_ns\":0,\"type\":\"policy_fault_resolved\",\"container\":1,\"frame\":5,\"latency_ns\":100}
{\"seq\":1,\"at_ns\":10,\"type\":\"policy_fault_resolved\",\"container\":2,\"frame\":5,\"latency_ns\":100}
";
        let a = analyze_str(trace).unwrap();
        assert_eq!(a.anomalies.len(), 1, "anomalies: {:?}", a.anomalies);
        assert!(a.anomalies[0].contains("double residency"));
    }

    #[test]
    fn residency_lifecycle_follows_release_seize_and_migrate() {
        // fault -> release frees frame 5 for container 2; forced
        // reclamation names frame 7 in a per-frame forced_seize, so its
        // reuse by container 1 is legitimate; the migrated frame 9 ends
        // under container 2.
        let trace = "\
{\"seq\":0,\"at_ns\":0,\"type\":\"policy_fault_resolved\",\"container\":1,\"frame\":5,\"latency_ns\":100}
{\"seq\":1,\"at_ns\":10,\"type\":\"release\",\"container\":1,\"frame\":5}
{\"seq\":2,\"at_ns\":20,\"type\":\"policy_fault_resolved\",\"container\":2,\"frame\":5,\"latency_ns\":100}
{\"seq\":3,\"at_ns\":30,\"type\":\"policy_fault_resolved\",\"container\":2,\"frame\":7,\"latency_ns\":100}
{\"seq\":4,\"at_ns\":40,\"type\":\"forced_seize\",\"container\":2,\"frame\":7}
{\"seq\":5,\"at_ns\":40,\"type\":\"forced_reclaim\",\"container\":2,\"taken\":1}
{\"seq\":6,\"at_ns\":50,\"type\":\"policy_fault_resolved\",\"container\":1,\"frame\":7,\"latency_ns\":100}
{\"seq\":7,\"at_ns\":60,\"type\":\"policy_fault_resolved\",\"container\":1,\"frame\":9,\"latency_ns\":100}
{\"seq\":8,\"at_ns\":70,\"type\":\"migrate\",\"from\":1,\"to\":2,\"frame\":9}
";
        let a = analyze_str(trace).unwrap();
        assert!(a.is_clean(), "anomalies: {:?}", a.anomalies);
        assert_eq!(a.resident_at_end.get(&1), Some(&1)); // frame 7
        assert_eq!(a.resident_at_end.get(&2), Some(&2)); // frames 5 and 9
    }

    #[test]
    fn exact_audit_flags_reuse_not_covered_by_a_seize() {
        // The count-only reclaim no longer clears container 2's entries, so
        // container 1 re-faulting frame 7 without a forced_seize (or
        // release) naming it first is exactly the double residency the
        // conservative clearing used to hide.
        let trace = "\
{\"seq\":0,\"at_ns\":0,\"type\":\"policy_fault_resolved\",\"container\":2,\"frame\":7,\"latency_ns\":100}
{\"seq\":1,\"at_ns\":10,\"type\":\"normal_reclaim\",\"container\":2,\"asked\":1,\"recovered\":1}
{\"seq\":2,\"at_ns\":20,\"type\":\"policy_fault_resolved\",\"container\":1,\"frame\":7,\"latency_ns\":100}
";
        let a = analyze_str(trace).unwrap();
        assert_eq!(a.anomalies.len(), 1, "anomalies: {:?}", a.anomalies);
        assert!(a.anomalies[0].contains("double residency"));
        // The same trace passes under the legacy fallback for pre-seize
        // recordings.
        let legacy = analyze_lines_with(
            trace.lines(),
            AnalyzeOptions {
                legacy_residency: true,
                ..AnalyzeOptions::default()
            },
        )
        .unwrap();
        assert!(legacy.is_clean(), "anomalies: {:?}", legacy.anomalies);
    }

    #[test]
    fn breaker_gating_is_per_device() {
        // Device 1 is tripped; its abandonment is expected degradation.
        // Device 0's breaker is closed, so identical collateral there is an
        // anomaly — a sick neighbor excuses nothing.
        let trace = "\
{\"seq\":0,\"at_ns\":0,\"type\":\"vm.breaker_trip\",\"device\":1,\"ewma_milli\":578}
{\"seq\":1,\"at_ns\":10,\"type\":\"vm.flush_abandoned\",\"device\":1,\"frame\":3,\"attempts\":8}
{\"seq\":2,\"at_ns\":20,\"type\":\"vm.flush_abandoned\",\"device\":0,\"frame\":4,\"attempts\":8}
{\"seq\":3,\"at_ns\":30,\"type\":\"vm.breaker_close\",\"device\":1,\"ewma_milli\":90}
";
        let a = analyze_str(trace).unwrap();
        assert_eq!(a.expected_degradations, 1);
        assert_eq!(a.anomalies.len(), 1, "anomalies: {:?}", a.anomalies);
        assert!(a.anomalies[0].contains("frame 4"));
    }

    #[test]
    fn unclosed_breakers_are_reported_per_device() {
        let trace = "\
{\"seq\":0,\"at_ns\":0,\"type\":\"vm.breaker_trip\",\"device\":2,\"ewma_milli\":600}
{\"seq\":1,\"at_ns\":10,\"type\":\"vm.breaker_trip\",\"device\":0,\"ewma_milli\":600}
{\"seq\":2,\"at_ns\":20,\"type\":\"vm.breaker_close\",\"device\":2,\"ewma_milli\":90}
";
        let a = analyze_str(trace).unwrap();
        assert_eq!(a.anomalies.len(), 1, "anomalies: {:?}", a.anomalies);
        assert!(a.anomalies[0].contains("device 0"));
        assert!(a.anomalies[0].contains("breaker still open"));
    }

    #[test]
    fn to_json_round_trips() {
        let trace = "\
{\"seq\":0,\"at_ns\":0,\"type\":\"vm.fault\",\"task\":0,\"vpage\":1,\"kind\":\"hit\",\"write\":true,\"latency_ns\":5}
";
        let a = analyze_str(trace).unwrap();
        let v = a.to_json();
        let text = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(
            back.as_object().unwrap().get("events").unwrap().as_u64(),
            Some(1)
        );
        let fl = back.as_object().unwrap().get("fault_latency").unwrap();
        assert_eq!(
            fl.as_object().unwrap().get("count").unwrap().as_u64(),
            Some(1)
        );
    }
}

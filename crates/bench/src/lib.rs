//! Experiment harnesses regenerating every table and figure of the paper.
//!
//! Each binary prints the paper-style rows/series and a `paper:` reference
//! line so the shapes can be compared at a glance:
//!
//! * `table3` — HiPEC mechanism overhead (Comparison I),
//! * `table4` — dispatch primitives (Comparison II),
//! * `fig5` — AIM-like multiuser throughput, Mach vs HiPEC kernel,
//! * `fig6` — nested-loops join elapsed time, LRU vs HiPEC MRU,
//! * `ablation_commands` — complex vs simple command policies,
//! * `ablation_checker` — adaptive vs fixed checker wakeup,
//! * `ablation_partition` — `partition_burst` sweep,
//! * `ablation_dispatch` — in-kernel interpretation vs upcall vs IPC.
//!
//! Results are also dumped as JSON under `target/hipec-results/` so
//! EXPERIMENTS.md can cite exact numbers. Every binary also accepts
//! `--json`, which suppresses the human-readable report and emits the
//! result document (schema version [`JSON_SCHEMA_VERSION`]) as the sole
//! stdout output, so CI can redirect it straight into a `BENCH_*.json`
//! artifact.

use std::fs;
use std::path::PathBuf;

use hipec_core::KernelStats;
use serde_json::Value;

pub mod analyze;

pub use hipec_sim::stats::{Series, TextTable};

/// Version of the `--json` output schema emitted by every bench binary.
///
/// The document shape is `{"bench": <name>, "schema": N, "data": {...}}`;
/// bump this when a field inside `data` changes meaning, never reuse.
///
/// v2: kernel snapshots gained a `devices` array (one row per backing
/// device with `breaker_trips` / `breaker_closes` / `queue_depth` and the
/// rest of [`hipec_core::DeviceRow`]); the flat `breaker_*` / `dev_*` /
/// `retryq_*` globals became sums over those rows.
///
/// v3: the envelope gained a top-level `backend` field naming the policy
/// executor the binary ran under (`"interpreter"` or `"native"`, the
/// build's default [`hipec_core::ExecBackend`]), so results from JIT-on
/// and JIT-off builds are distinguishable after the fact.
///
/// v4: the `tournament` binary's `data` is a policy × workload × backend ×
/// plan matrix: `cells[]` rows each carry `policy`, `workload`, `backend`,
/// `plan` (`"clean"`/`"chaos"`), `accesses`/`ok`/`faults`/`hits`/
/// `hit_permille`, `p50_fault_ns`/`p99_fault_ns`, and the per-container
/// counter diff (`commands`, `events`, `flushes`, `released`,
/// `device_faults`, `quarantines`); `ranking[]` orders policies by Borda
/// points over the clean cells. Unlike the envelope's `backend` (still the
/// build default), each cell's `backend` names the executor that produced
/// that row.
///
/// v5: kernel snapshots gained a `latency` array — one row per
/// [`hipec_core::LatencyRow`] with `metric`, `key` (the human label: opcode
/// mnemonic for `op_charge`, decimal container key / device id otherwise),
/// `count`, `saturated`, `p50_ns`/`p90_ns`/`p99_ns`/`p999_ns` and `max_ns`,
/// in the snapshot's fixed deterministic row order. The `tournament`
/// matrix's cells gained `p99_event_ns` (per-container top-level event
/// duration) and `p99_flush_ns` (device-0 flush completion latency) beside
/// the existing fault percentiles.
///
/// v6: device rows gained the lifecycle and tier surface — `tier` (0 disk,
/// 1 flash), `state` (0 Active, 1 Draining, 2 Removed, 3 Dead),
/// `migrations` (copies landed on this device), `migr_pending` (queued or
/// in-flight copies, a gauge), and the flash wear counters
/// `write_amp_milli` (integer milli-units, `programs * 1000 /
/// host_writes`), `max_wear` (highest per-block erase count) and
/// `gc_pauses` (erase stalls). All zero for disks, so v5 consumers that
/// ignored unknown fields keep working; the version still bumps because
/// rows now appear for Removed/Dead devices whose ids stay in the table.
///
/// v7: kernel snapshots' `latency` arrays gained `class_fault` rows — one
/// per occupied tenant share class, keyed by the class name (`free` /
/// `standard` / `premium`) — aggregating fault service latency per class.
/// The new `tenants_soak` binary's `data` carries a `classes` array with
/// one row per class (`class`, `tenants`, `installed`, `faults`,
/// `p50_fault_ns`, `p99_fault_ns`) plus the admission counters
/// `admission_throttled` and `admission_over_share`.
pub const JSON_SCHEMA_VERSION: u64 = 7;

/// True when the binary was invoked with `--json`: machine-readable mode.
///
/// In this mode the human-readable report must be suppressed; the JSON
/// document printed by [`finish`] is the sole stdout output.
pub fn json_mode() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Serializes a [`KernelStats`] snapshot (or a `diff` of two) to JSON.
///
/// Gauges, the full global counter map, `dropped_records`, one row per
/// container — including the per-opcode profile as
/// `{"<mnemonic>": {"count": N, "time_ns": N}}` — and the occupied latency
/// rows with their percentiles, all as integers so the output is stable
/// across platforms.
pub fn kernel_stats_json(stats: &KernelStats) -> Value {
    let mut global = serde_json::Map::new();
    for (&k, &v) in &stats.global {
        global.insert(k.to_string(), serde_json::to_value(&v));
    }
    let containers: Vec<Value> = stats
        .containers
        .iter()
        .map(|c| {
            let mut ops = serde_json::Map::new();
            for (op, count, time) in c.ops.nonzero() {
                ops.insert(
                    op.mnemonic().to_string(),
                    serde_json::json!({
                        "count": count,
                        "time_ns": time.as_ns(),
                    }),
                );
            }
            serde_json::json!({
                "key": c.key,
                "faults": c.faults,
                "commands": c.commands,
                "events": c.events,
                "requested": c.requested,
                "released": c.released,
                "flushes": c.flushes,
                "device_faults": c.device_faults,
                "quarantines": c.quarantines,
                "restores": c.restores,
                "allocated": c.allocated,
                "terminated": c.terminated,
                "quarantined": c.quarantined,
                "ops": Value::Object(ops),
            })
        })
        .collect();
    let devices: Vec<Value> = stats
        .devices
        .iter()
        .map(|d| {
            serde_json::json!({
                "id": d.id,
                "reads": d.reads,
                "writes": d.writes,
                "read_errors": d.read_errors,
                "write_errors": d.write_errors,
                "torn_writes": d.torn_writes,
                "breaker_trips": d.breaker_trips,
                "breaker_closes": d.breaker_closes,
                "breaker_probes": d.breaker_probes,
                "breaker_deferred": d.breaker_deferred,
                "breaker_open": d.breaker_open,
                "inflight": d.inflight,
                "queue_depth": d.queue_depth,
                "retryq_pushes": d.retryq_pushes,
                "retryq_pops": d.retryq_pops,
                "tier": d.tier,
                "state": d.state,
                "migrations": d.migrations,
                "migr_pending": d.migr_pending,
                "write_amp_milli": d.write_amp_milli,
                "max_wear": d.max_wear,
                "gc_pauses": d.gc_pauses,
            })
        })
        .collect();
    let latency: Vec<Value> = stats
        .latency
        .iter()
        .filter(|r| !r.hist.is_empty())
        .map(|r| {
            serde_json::json!({
                "metric": r.metric.name(),
                "key": r.key_label(),
                "count": r.count(),
                "saturated": r.saturated(),
                "p50_ns": r.p50().as_ns(),
                "p90_ns": r.p90().as_ns(),
                "p99_ns": r.p99().as_ns(),
                "p999_ns": r.p999().as_ns(),
                "max_ns": r.max().as_ns(),
            })
        })
        .collect();
    serde_json::json!({
        "at_ns": stats.at.as_ns(),
        "free_frames": stats.free_frames,
        "total_specific": stats.total_specific,
        "inflight_flushes": stats.inflight_flushes,
        "retry_depth": stats.retry_depth,
        "dropped_records": stats.dropped_records,
        "global": Value::Object(global),
        "devices": Value::Array(devices),
        "containers": Value::Array(containers),
        "latency": Value::Array(latency),
    })
}

/// Finishes a bench binary: dumps `data` under `target/hipec-results/`
/// and, in [`json_mode`], prints the wrapped document
/// `{"bench", "schema", "data"}` to stdout as the machine-readable result.
pub fn finish(name: &str, data: &Value) {
    dump_json(name, data);
    if json_mode() {
        let doc = serde_json::json!({
            "bench": name,
            "schema": JSON_SCHEMA_VERSION,
            "backend": hipec_core::ExecBackend::default().name(),
            "data": data.clone(),
        });
        println!("{}", serde_json::to_string_pretty(&doc).unwrap_or_default());
    }
}

/// Where JSON result dumps go.
pub fn results_dir() -> PathBuf {
    let dir =
        PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string()))
            .join("hipec-results");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Dumps a JSON value for EXPERIMENTS.md provenance.
pub fn dump_json(name: &str, value: &serde_json::Value) {
    let path = results_dir().join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(text) => {
            if let Err(e) = fs::write(&path, text) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else if !json_mode() {
                // In --json mode the wrapped document is the sole stdout
                // output; the provenance pointer would corrupt it.
                println!("(json: {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Prints a figure as aligned text series.
pub fn print_series(title: &str, xlabel: &str, series: &[Series]) {
    println!("\n== {title} ==");
    print!("{xlabel:>10}");
    for s in series {
        print!("{:>16}", s.label);
    }
    println!();
    if let Some(first) = series.first() {
        for (i, (x, _)) in first.points.iter().enumerate() {
            print!("{x:>10.1}");
            for s in series {
                match s.points.get(i) {
                    Some((_, y)) => print!("{y:>16.2}"),
                    None => print!("{:>16}", "-"),
                }
            }
            println!();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_creatable() {
        let d = results_dir();
        assert!(d.exists());
    }

    #[test]
    fn series_print_does_not_panic() {
        let mut a = Series::new("LRU");
        a.push(20.0, 1.0);
        a.push(40.0, 2.0);
        let mut b = Series::new("MRU");
        b.push(20.0, 1.0);
        print_series("test", "MB", &[a, b]);
    }
}

//! Experiment harnesses regenerating every table and figure of the paper.
//!
//! Each binary prints the paper-style rows/series and a `paper:` reference
//! line so the shapes can be compared at a glance:
//!
//! * `table3` — HiPEC mechanism overhead (Comparison I),
//! * `table4` — dispatch primitives (Comparison II),
//! * `fig5` — AIM-like multiuser throughput, Mach vs HiPEC kernel,
//! * `fig6` — nested-loops join elapsed time, LRU vs HiPEC MRU,
//! * `ablation_commands` — complex vs simple command policies,
//! * `ablation_checker` — adaptive vs fixed checker wakeup,
//! * `ablation_partition` — `partition_burst` sweep,
//! * `ablation_dispatch` — in-kernel interpretation vs upcall vs IPC.
//!
//! Results are also dumped as JSON under `target/hipec-results/` so
//! EXPERIMENTS.md can cite exact numbers.

use std::fs;
use std::path::PathBuf;

pub use hipec_sim::stats::{Series, TextTable};

/// Where JSON result dumps go.
pub fn results_dir() -> PathBuf {
    let dir =
        PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string()))
            .join("hipec-results");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Dumps a JSON value for EXPERIMENTS.md provenance.
pub fn dump_json(name: &str, value: &serde_json::Value) {
    let path = results_dir().join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(text) => {
            if let Err(e) = fs::write(&path, text) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("(json: {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Prints a figure as aligned text series.
pub fn print_series(title: &str, xlabel: &str, series: &[Series]) {
    println!("\n== {title} ==");
    print!("{xlabel:>10}");
    for s in series {
        print!("{:>16}", s.label);
    }
    println!();
    if let Some(first) = series.first() {
        for (i, (x, _)) in first.points.iter().enumerate() {
            print!("{x:>10.1}");
            for s in series {
                match s.points.get(i) {
                    Some((_, y)) => print!("{y:>16.2}"),
                    None => print!("{:>16}", "-"),
                }
            }
            println!();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_creatable() {
        let d = results_dir();
        assert!(d.exists());
    }

    #[test]
    fn series_print_does_not_panic() {
        let mut a = Series::new("LRU");
        a.push(20.0, 1.0);
        a.push(40.0, 2.0);
        let mut b = Series::new("MRU");
        b.push(20.0, 1.0);
        print_series("test", "MB", &[a, b]);
    }
}

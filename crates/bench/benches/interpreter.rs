//! Real (host wall-clock) performance of the policy executor: how fast
//! does this implementation fetch, decode and dispatch HiPEC commands?
//!
//! The paper's ≈150 ns figure is for a 1994 i486-50; this measures the
//! Rust executor on the machine running the benchmark, under both the
//! reference interpreter and the native (JIT) step-chain backend, so the
//! dispatch saving of pre-lowered policies is directly visible.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hipec_core::command::{build, ArithOp, CompOp, JumpMode, QueueEnd};
use hipec_core::{ExecBackend, HipecKernel, KernelVar, OperandDecl, PolicyProgram, NO_OPERAND};
use hipec_vm::{KernelParams, PAGE_SIZE};

/// The 3-command simple fault path: Comp, DeQueue, Return.
fn fast_path() -> PolicyProgram {
    let mut p = PolicyProgram::new();
    let free_q = p.declare(OperandDecl::FreeQueue);
    let page = p.declare(OperandDecl::Page);
    let free_count = p.declare(OperandDecl::Kernel(KernelVar::FreeCount));
    let zero = p.declare(OperandDecl::Int(0));
    p.add_event(
        "PageFault",
        vec![
            build::comp(free_count, zero, CompOp::Gt),
            build::dequeue(page, free_q, QueueEnd::Head),
            build::ret(page),
        ],
    );
    p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
    p
}

/// A 64-iteration arithmetic loop: pure fetch/decode/dispatch work.
fn arith_loop() -> PolicyProgram {
    let mut p = PolicyProgram::new();
    let _fq = p.declare(OperandDecl::FreeQueue);
    let i = p.declare(OperandDecl::Int(0));
    let n = p.declare(OperandDecl::Int(64));
    let zero = p.declare(OperandDecl::Int(0));
    p.add_event(
        "PageFault",
        vec![
            build::arith(i, zero, ArithOp::Mov),
            build::comp(i, n, CompOp::Lt),
            build::jump(JumpMode::IfFalse, 5),
            build::arith(i, zero, ArithOp::Inc),
            build::jump(JumpMode::Always, 1),
            build::ret(i),
        ],
    );
    p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
    p
}

fn setup(program: PolicyProgram, backend: ExecBackend) -> (HipecKernel, hipec_core::ContainerKey) {
    let mut params = KernelParams::paper_64mb();
    params.total_frames = 512;
    params.wired_frames = 16;
    let mut k = HipecKernel::new(params);
    k.set_backend(backend);
    let task = k.vm.create_task();
    let (_a, _o, key) = k
        .vm_allocate_hipec(task, 64 * PAGE_SIZE, program, 64)
        .expect("install");
    (k, key)
}

fn bench_interpreter(c: &mut Criterion) {
    let mut group = c.benchmark_group("interpreter");
    group.sample_size(30);

    for backend in [ExecBackend::Interpreter, ExecBackend::Native] {
        // Simple fault path (3 commands + one queue op); the page is
        // handed back each round so the free queue never drains.
        let (mut k, key) = setup(fast_path(), backend);
        group.throughput(Throughput::Elements(3));
        group.bench_function(format!("fast_path_3_commands/{}", backend.name()), |b| {
            b.iter(|| {
                let v = k.run_event_raw(key, 0).expect("fast path");
                if let hipec_core::ExecValue::Page(f) = v {
                    let free_q = k.containers[key.0 as usize].free_q;
                    k.vm.frames.enqueue_tail(free_q, f).expect("give back");
                }
                v
            })
        });

        // Arithmetic loop: ≈ 258 commands per invocation, no kernel
        // objects — pure fetch/decode/dispatch cost.
        let (mut k, key) = setup(arith_loop(), backend);
        group.throughput(Throughput::Elements(64 * 4 + 2));
        group.bench_function(format!("arith_loop_64/{}", backend.name()), |b| {
            b.iter(|| k.run_event_raw(key, 0).expect("loop runs"))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_interpreter);
criterion_main!(benches);

//! Intrusive frame-queue performance: the O(1) operations every
//! replacement decision is built from.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hipec_vm::{FrameId, FrameTable};

fn bench_queues(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_queues");
    group.sample_size(30);

    const N: u32 = 4_096;

    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("enqueue_dequeue_cycle", |b| {
        let mut t = FrameTable::new(N);
        let q = t.new_queue(false);
        b.iter(|| {
            for i in 0..N {
                t.enqueue_tail(q, FrameId(i)).expect("enqueue");
            }
            while t.dequeue_head(q).expect("dequeue").is_some() {}
        })
    });

    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("auto_recency_touch", |b| {
        let mut t = FrameTable::new(N);
        let q = t.new_queue(true);
        for i in 0..N {
            t.enqueue_tail(q, FrameId(i)).expect("enqueue");
        }
        b.iter(|| {
            // Touch in a stride pattern: every touch is a mid-queue remove
            // plus a tail enqueue.
            for i in (0..N).step_by(7) {
                t.touch(FrameId(i), false).expect("touch");
            }
        })
    });

    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("mid_queue_remove", |b| {
        let mut t = FrameTable::new(N);
        let q = t.new_queue(false);
        b.iter(|| {
            for i in 0..N {
                t.enqueue_tail(q, FrameId(i)).expect("enqueue");
            }
            // Remove every other frame from the middle.
            for i in (0..N).step_by(2) {
                t.remove(FrameId(i)).expect("remove");
            }
            while t.dequeue_head(q).expect("dequeue").is_some() {}
        })
    });

    group.finish();
}

criterion_group!(benches, bench_queues);
criterion_main!(benches);

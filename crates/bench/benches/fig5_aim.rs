//! Figure 5 as a Criterion benchmark: one short AIM run per kernel, at
//! 4 users (near the paper's knee). Tracks the host cost of the multiuser
//! simulation; the `fig5` binary prints the actual throughput curves.

use criterion::{criterion_group, criterion_main, Criterion};
use hipec_core::HipecKernel;
use hipec_sim::SimDuration;
use hipec_vm::{Kernel, KernelParams};
use hipec_workloads::aim::{run, AimConfig};

fn quick_cfg() -> AimConfig {
    AimConfig {
        users: 4,
        duration: SimDuration::from_secs(5),
        mem_pages: 300,
        mem_region_pages: 400,
        ..AimConfig::default()
    }
}

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group.sample_size(15);

    group.bench_function("aim_4users_mach", |b| {
        b.iter(|| {
            let mut k = Kernel::new(KernelParams::paper_64mb());
            run(&mut k, &quick_cfg()).expect("run")
        })
    });
    group.bench_function("aim_4users_hipec", |b| {
        b.iter(|| {
            let mut k = HipecKernel::new(KernelParams::paper_64mb());
            run(&mut k, &quick_cfg()).expect("run")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);

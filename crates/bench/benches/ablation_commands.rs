//! Complex-vs-simple command ablation as a Criterion benchmark: host cost
//! of resolving one fault through a one-command `LRU` policy vs the
//! all-simple-commands Clock policy.

use criterion::{criterion_group, criterion_main, Criterion};
use hipec_core::HipecKernel;
use hipec_policies::PolicyKind;
use hipec_vm::{KernelParams, VAddr, PAGE_SIZE};

fn faulting_kernel(kind: PolicyKind) -> (HipecKernel, hipec_vm::TaskId, hipec_vm::VAddr) {
    let mut params = KernelParams::paper_64mb();
    params.total_frames = 256;
    params.wired_frames = 8;
    let mut k = HipecKernel::new(params);
    let task = k.vm.create_task();
    let (base, _o, _c) = k
        .vm_allocate_hipec(task, 4 * PAGE_SIZE, kind.program(), 2)
        .expect("install");
    (k, task, base)
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_commands");
    group.sample_size(30);

    for kind in [PolicyKind::Lru, PolicyKind::Clock] {
        let (mut k, task, base) = faulting_kernel(kind);
        let mut i = 0u64;
        group.bench_function(format!("fault_via_{}", kind.name()), |b| {
            b.iter(|| {
                // Cycle 4 pages through a 2-frame pool: every access faults.
                i = (i + 1) % 4;
                k.access(task, VAddr(base.0 + i * PAGE_SIZE), false)
                    .expect("fault")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);

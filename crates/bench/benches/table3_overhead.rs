//! Table 3 as a Criterion benchmark: the 40 MB fault sweep at reduced
//! scale (4 MB) so the comparison runs in milliseconds of host time. The
//! reported virtual-time ratio is what the table states; this benchmark
//! tracks the host cost of simulating each variant.

use criterion::{criterion_group, criterion_main, Criterion};
use hipec_policies::PolicyKind;
use hipec_vm::KernelParams;
use hipec_workloads::fault_sweep;

fn bench_table3(c: &mut Criterion) {
    const MB: u64 = 1024 * 1024;
    let mut group = c.benchmark_group("table3");
    group.sample_size(20);

    group.bench_function("mach_sweep_no_io", |b| {
        b.iter(|| fault_sweep::run_mach(KernelParams::paper_64mb(), 4 * MB, false))
    });
    group.bench_function("hipec_sweep_no_io", |b| {
        b.iter(|| {
            fault_sweep::run_hipec(
                KernelParams::paper_64mb(),
                4 * MB,
                false,
                PolicyKind::FifoSecondChance.program(),
            )
        })
    });
    group.bench_function("mach_sweep_with_io", |b| {
        b.iter(|| fault_sweep::run_mach(KernelParams::paper_64mb(), 4 * MB, true))
    });
    group.bench_function("hipec_sweep_with_io", |b| {
        b.iter(|| {
            fault_sweep::run_hipec(
                KernelParams::paper_64mb(),
                4 * MB,
                true,
                PolicyKind::FifoSecondChance.program(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);

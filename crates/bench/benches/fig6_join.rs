//! Figure 6 as a Criterion benchmark: a scaled-down join (6 MB outer,
//! 4 MB memory, 8 scans) under LRU vs MRU. The `fig6` binary runs the
//! paper-scale sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use hipec_policies::PolicyKind;
use hipec_workloads::join::{run, JoinConfig};

fn small_cfg() -> JoinConfig {
    const MB: u64 = 1024 * 1024;
    let mut cfg = JoinConfig::paper(6 * MB);
    cfg.memory_bytes = 4 * MB;
    cfg.inner_bytes = 512; // 8 scans
    cfg
}

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);

    group.bench_function("join_lru_6mb", |b| {
        b.iter(|| run(&small_cfg(), PolicyKind::Lru.program()).expect("join"))
    });
    group.bench_function("join_mru_6mb", |b| {
        b.iter(|| run(&small_cfg(), PolicyKind::Mru.program()).expect("join"))
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);

//! Table 4's primitives as real measurements: one simulated fault through
//! each dispatch path, timed on the host.

use criterion::{criterion_group, criterion_main, Criterion};
use hipec_core::HipecKernel;
use hipec_policies::PolicyKind;
use hipec_vm::{Kernel, KernelParams, VAddr, PAGE_SIZE};

fn bench_table4(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4");
    group.sample_size(30);

    // Resident access on the plain kernel (the baseline "nothing happens").
    let mut params = KernelParams::paper_64mb();
    params.total_frames = 256;
    params.wired_frames = 8;
    let mut mach = Kernel::new(params.clone());
    let t = mach.create_task();
    let (addr, _) = mach.vm_allocate(t, PAGE_SIZE).expect("allocate");
    mach.access(t, addr, false).expect("warm");
    group.bench_function("mach_resident_access", |b| {
        b.iter(|| mach.access(t, addr, false).expect("hit"))
    });

    // A HiPEC fault resolved by the interpreted MRU policy, alternating
    // between two pages of a one-frame pool so every access faults.
    let mut k = HipecKernel::new(params);
    let task = k.vm.create_task();
    let (base, _o, _key) = k
        .vm_allocate_hipec(task, 2 * PAGE_SIZE, PolicyKind::Mru.program(), 1)
        .expect("install");
    let mut flip = false;
    group.bench_function("hipec_interpreted_fault", |b| {
        b.iter(|| {
            flip = !flip;
            let addr = VAddr(base.0 + (flip as u64) * PAGE_SIZE);
            k.access(task, addr, false).expect("fault")
        })
    });

    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);

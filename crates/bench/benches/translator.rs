//! Translator performance: pseudo-code compilation and assembler speed.

use criterion::{criterion_group, criterion_main, Criterion};
use hipec_policies::{asm_listings, sources};

fn bench_translator(c: &mut Criterion) {
    let mut group = c.benchmark_group("translator");
    group.sample_size(30);

    group.bench_function("compile_fifo_second_chance", |b| {
        b.iter(|| hipec_lang::compile(sources::FIFO_SECOND_CHANCE).expect("compiles"))
    });

    group.bench_function("compile_mru", |b| {
        b.iter(|| hipec_lang::compile(sources::MRU).expect("compiles"))
    });

    group.bench_function("assemble_table2_listing", |b| {
        b.iter(|| hipec_lang::assemble(asm_listings::FIFO_SECOND_CHANCE_ASM).expect("assembles"))
    });

    let program = hipec_lang::compile(sources::FIFO_SECOND_CHANCE).expect("compiles");
    group.bench_function("validate_program", |b| {
        b.iter(|| hipec_core::validate_program(&program).expect("valid"))
    });

    group.bench_function("wire_round_trip", |b| {
        b.iter(|| {
            let words = program.to_words();
            hipec_core::PolicyProgram::from_words(&words).expect("decodes")
        })
    });

    group.finish();
}

criterion_group!(benches, bench_translator);
criterion_main!(benches);

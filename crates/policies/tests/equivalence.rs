//! Interpreted-vs-native equivalence: the compiled HiPEC policies must
//! fault exactly like their plain-Rust oracles on the same reference
//! traces.

use hipec_core::HipecKernel;
use hipec_policies::native::{CacheSim, Fifo, Lru, Mru, Replacement};
use hipec_policies::PolicyKind;
use hipec_sim::DetRng;
use hipec_vm::{KernelParams, VAddr, PAGE_SIZE};

fn run_interpreted(kind: PolicyKind, trace: &[u64], region_pages: u64, capacity: u64) -> u64 {
    let mut params = KernelParams::paper_64mb();
    params.total_frames = 2_048;
    params.wired_frames = 64;
    let mut k = HipecKernel::new(params);
    let task = k.vm.create_task();
    let (addr, _obj, key) = k
        .vm_allocate_hipec(task, region_pages * PAGE_SIZE, kind.program(), capacity)
        .expect("install");
    for &page in trace {
        k.access_sync(task, VAddr(addr.0 + page * PAGE_SIZE), false)
            .expect("access");
        k.vm.pump();
    }
    k.container(key).expect("container").stats.faults
}

fn run_native<P: Replacement>(policy: P, trace: &[u64], capacity: u64) -> u64 {
    CacheSim::new(policy, capacity as usize).run(trace.iter().copied())
}

fn traces(region_pages: u64) -> Vec<(&'static str, Vec<u64>)> {
    let mut rng = DetRng::new(0x5EED);
    let cyclic: Vec<u64> = (0..4).flat_map(|_| 0..region_pages).collect();
    let random: Vec<u64> = (0..2_000).map(|_| rng.below(region_pages)).collect();
    let hot_cold: Vec<u64> = (0..1_000)
        .flat_map(|i| [i % 4, rng.below(region_pages)])
        .collect();
    let strided: Vec<u64> = (0..1_500u64).map(|i| (i * 7) % region_pages).collect();
    vec![
        ("cyclic", cyclic),
        ("random", random),
        ("hot_cold", hot_cold),
        ("strided", strided),
    ]
}

#[test]
fn interpreted_fifo_matches_native_fifo() {
    let (region, cap) = (48u64, 32u64);
    for (name, trace) in traces(region) {
        let interp = run_interpreted(PolicyKind::Fifo, &trace, region, cap);
        let native = run_native(Fifo::default(), &trace, cap);
        assert_eq!(interp, native, "trace `{name}`");
    }
}

#[test]
fn interpreted_lru_matches_native_lru() {
    let (region, cap) = (48u64, 32u64);
    for (name, trace) in traces(region) {
        let interp = run_interpreted(PolicyKind::Lru, &trace, region, cap);
        let native = run_native(Lru::default(), &trace, cap);
        assert_eq!(interp, native, "trace `{name}`");
    }
}

#[test]
fn interpreted_mru_matches_native_mru() {
    let (region, cap) = (48u64, 32u64);
    for (name, trace) in traces(region) {
        let interp = run_interpreted(PolicyKind::Mru, &trace, region, cap);
        let native = run_native(Mru::default(), &trace, cap);
        assert_eq!(interp, native, "trace `{name}`");
    }
}

#[test]
fn second_chance_lands_between_fifo_and_oracle_bounds() {
    // FIFO-with-second-chance approximates LRU; on reuse-heavy traces it
    // must not fault more than plain FIFO (beyond a small slack for its
    // two-queue staging) and never less than OPT.
    let (region, cap) = (48u64, 32u64);
    for (name, trace) in traces(region) {
        let sc = run_interpreted(PolicyKind::FifoSecondChance, &trace, region, cap);
        let fifo = run_native(Fifo::default(), &trace, cap);
        let opt = hipec_policies::native::opt_faults(&trace, cap as usize);
        assert!(
            sc <= fifo + fifo / 4 + 8,
            "trace `{name}`: second chance ({sc}) much worse than FIFO ({fifo})"
        );
        assert!(sc >= opt, "trace `{name}`: beat OPT?! ({sc} < {opt})");
    }
}

#[test]
fn clock_policy_runs_clean_on_all_traces() {
    let (region, cap) = (48u64, 32u64);
    for (name, trace) in traces(region) {
        let clock = run_interpreted(PolicyKind::Clock, &trace, region, cap);
        let native = run_native(hipec_policies::native::Clock::default(), &trace, cap);
        assert_eq!(clock, native, "trace `{name}`");
    }
}

#[test]
fn hand_coded_listings_match_translator_output_behaviour() {
    let (region, cap) = (48u64, 32u64);
    let run_program = |program: hipec_core::PolicyProgram, trace: &[u64]| -> u64 {
        let mut params = KernelParams::paper_64mb();
        params.total_frames = 2_048;
        params.wired_frames = 64;
        let mut k = HipecKernel::new(params);
        let task = k.vm.create_task();
        let (addr, _obj, key) = k
            .vm_allocate_hipec(task, region * PAGE_SIZE, program, cap)
            .expect("install");
        for &page in trace {
            k.access_sync(task, VAddr(addr.0 + page * PAGE_SIZE), false)
                .expect("access");
            k.vm.pump();
        }
        k.container(key).expect("container").stats.faults
    };
    for (name, trace) in traces(region) {
        let asm_mru = run_program(hipec_policies::asm_listings::mru(), &trace);
        let compiled_mru = run_interpreted(PolicyKind::Mru, &trace, region, cap);
        assert_eq!(asm_mru, compiled_mru, "MRU listings diverge on `{name}`");

        let asm_sc = run_program(hipec_policies::asm_listings::fifo_second_chance(), &trace);
        let compiled_sc = run_interpreted(PolicyKind::FifoSecondChance, &trace, region, cap);
        assert_eq!(
            asm_sc, compiled_sc,
            "second-chance listings diverge on `{name}`"
        );
    }
}

#[test]
fn learned_and_awrp_listings_match_translator_output_behaviour() {
    // The hand-coded perceptron and AWRP listings implement the same
    // decision procedure as their pseudo-code sources, so fault counts
    // must agree exactly on every trace.
    let (region, cap) = (48u64, 32u64);
    let run_program = |program: hipec_core::PolicyProgram, trace: &[u64]| -> u64 {
        let mut params = KernelParams::paper_64mb();
        params.total_frames = 2_048;
        params.wired_frames = 64;
        let mut k = HipecKernel::new(params);
        let task = k.vm.create_task();
        let (addr, _obj, key) = k
            .vm_allocate_hipec(task, region * PAGE_SIZE, program, cap)
            .expect("install");
        for &page in trace {
            k.access_sync(task, VAddr(addr.0 + page * PAGE_SIZE), false)
                .expect("access");
            k.vm.pump();
        }
        k.container(key).expect("container").stats.faults
    };
    for (name, trace) in traces(region) {
        let asm_learned = run_program(hipec_policies::asm_listings::learned(), &trace);
        let compiled_learned = run_interpreted(PolicyKind::Learned, &trace, region, cap);
        assert_eq!(
            asm_learned, compiled_learned,
            "Learned listings diverge on `{name}`"
        );

        let asm_awrp = run_program(hipec_policies::asm_listings::awrp(), &trace);
        let compiled_awrp = run_interpreted(PolicyKind::Awrp, &trace, region, cap);
        assert_eq!(asm_awrp, compiled_awrp, "AWRP listings diverge on `{name}`");
    }
}

#[test]
fn optimizer_preserves_hand_assembled_listing_behaviour() {
    // `optimized_policies_fault_identically_to_unoptimized` below feeds the
    // optimizer translator *output*; hand-assembled listings are a separate
    // input class (jump structures the codegen never emits — the Learned
    // saturation chain, AWRP's weight-share spin loop). Pin that class too:
    // the peephole passes must keep any valid hand-written listing valid
    // and decision-identical.
    let (region, cap) = (48u64, 32u64);
    let run_program = |program: hipec_core::PolicyProgram, trace: &[u64]| -> u64 {
        let mut params = KernelParams::paper_64mb();
        params.total_frames = 2_048;
        params.wired_frames = 64;
        let mut k = HipecKernel::new(params);
        let task = k.vm.create_task();
        let (addr, _obj, key) = k
            .vm_allocate_hipec(task, region * PAGE_SIZE, program, cap)
            .expect("install");
        for &page in trace {
            k.access_sync(task, VAddr(addr.0 + page * PAGE_SIZE), false)
                .expect("access");
            k.vm.pump();
        }
        k.container(key).expect("container").stats.faults
    };
    for (lname, listing) in [
        (
            "second-chance",
            hipec_policies::asm_listings::fifo_second_chance(),
        ),
        ("mru", hipec_policies::asm_listings::mru()),
        ("learned", hipec_policies::asm_listings::learned()),
        ("awrp", hipec_policies::asm_listings::awrp()),
    ] {
        let optimized = hipec_lang::optimize(&listing);
        hipec_core::validate_program(&optimized).expect("optimized listing stays valid");
        for (tname, trace) in traces(region) {
            assert_eq!(
                run_program(listing.clone(), &trace),
                run_program(optimized.clone(), &trace),
                "optimizer changed {lname} behaviour on `{tname}`"
            );
        }
    }
}

#[test]
fn learned_policy_is_scan_resistant_in_kernel() {
    // Same shape as the 2Q scan test: a hot set re-referenced between
    // one-shot scan bursts. The perceptron has no hard-wired probation
    // rule; it must *learn* that never-re-referenced pages are cold and
    // end up clearly ahead of LRU.
    let (region, cap) = (256u64, 24u64);
    let hot = 8u64;
    let mut trace = Vec::new();
    let mut cold = hot;
    let mut scan = |trace: &mut Vec<u64>, n: u64| {
        for _ in 0..n {
            trace.push(cold);
            cold = hot + (cold - hot + 1) % (region - hot);
        }
    };
    for _ in 0..4 {
        trace.extend(0..hot);
        scan(&mut trace, 8);
    }
    for _ in 0..25 {
        trace.extend(0..hot);
        scan(&mut trace, 40);
    }
    let lru = run_interpreted(PolicyKind::Lru, &trace, region, cap);
    let learned = run_interpreted(PolicyKind::Learned, &trace, region, cap);
    assert!(
        learned + 100 < lru,
        "Learned must beat LRU on scan-polluted traces ({learned} vs {lru})"
    );
}

#[test]
fn optimized_policies_fault_identically_to_unoptimized() {
    let (region, cap) = (48u64, 32u64);
    let run_program = |program: hipec_core::PolicyProgram, trace: &[u64]| -> u64 {
        let mut params = KernelParams::paper_64mb();
        params.total_frames = 2_048;
        params.wired_frames = 64;
        let mut k = HipecKernel::new(params);
        let task = k.vm.create_task();
        let (addr, _obj, key) = k
            .vm_allocate_hipec(task, region * PAGE_SIZE, program, cap)
            .expect("install");
        for &page in trace {
            k.access_sync(task, VAddr(addr.0 + page * PAGE_SIZE), false)
                .expect("access");
            k.vm.pump();
        }
        k.container(key).expect("container").stats.faults
    };
    for kind in PolicyKind::ALL {
        let plain = kind.program();
        let optimized = kind.program_optimized();
        assert!(
            optimized.total_commands() <= plain.total_commands(),
            "{}: optimizer must not grow the program",
            kind.name()
        );
        hipec_core::validate_program(&optimized).expect("optimized program validates");
        for (name, trace) in traces(region) {
            let a = run_program(plain.clone(), &trace);
            let b = run_program(optimized.clone(), &trace);
            assert_eq!(
                a,
                b,
                "{} diverged after optimization on `{name}`",
                kind.name()
            );
        }
    }
}

#[test]
fn optimizer_reduces_interpreted_commands_per_fault() {
    // The whole point: fewer fetch/decode cycles for the same decisions.
    let (region, cap) = (48u64, 32u64);
    let commands_per_fault = |program: hipec_core::PolicyProgram| -> f64 {
        let mut params = KernelParams::paper_64mb();
        params.total_frames = 2_048;
        params.wired_frames = 64;
        let mut k = HipecKernel::new(params);
        let task = k.vm.create_task();
        let (addr, _obj, key) = k
            .vm_allocate_hipec(task, region * PAGE_SIZE, program, cap)
            .expect("install");
        for round in 0..3u64 {
            for page in 0..region {
                let _ = round;
                k.access_sync(task, VAddr(addr.0 + page * PAGE_SIZE), false)
                    .expect("access");
                k.vm.pump();
            }
        }
        let c = k.container(key).expect("container");
        c.stats.commands as f64 / c.stats.faults.max(1) as f64
    };
    let kind = PolicyKind::FifoSecondChance;
    let before = commands_per_fault(kind.program());
    let after = commands_per_fault(kind.program_optimized());
    assert!(
        after <= before,
        "optimization must not add work: {after:.2} vs {before:.2}"
    );
}

#[test]
fn two_queue_is_scan_resistant() {
    // Phase 1 (warmup): short scans, so the hot set gets re-referenced
    // while still on aged probation and is promoted to the protected
    // queue. Phase 2: long one-shot scan bursts, much larger than memory.
    // LRU lets every burst flush the hot set; 2Q's probation absorbs the
    // burst (evictions prefer probation over the protected queue), so the
    // promoted hot set survives indefinitely.
    let (region, cap) = (256u64, 24u64);
    let hot = 8u64;
    let mut trace = Vec::new();
    let mut cold = hot;
    let mut scan = |trace: &mut Vec<u64>, n: u64| {
        for _ in 0..n {
            trace.push(cold);
            cold = hot + (cold - hot + 1) % (region - hot);
        }
    };
    for _ in 0..4 {
        trace.extend(0..hot);
        scan(&mut trace, 8);
    }
    for _ in 0..25 {
        trace.extend(0..hot);
        scan(&mut trace, 40);
    }
    let lru = run_interpreted(PolicyKind::Lru, &trace, region, cap);
    let two_q = run_interpreted(PolicyKind::TwoQueue, &trace, region, cap);
    let fifo = run_interpreted(PolicyKind::Fifo, &trace, region, cap);
    assert!(
        two_q + 100 < lru,
        "2Q must beat LRU on scan-polluted traces ({two_q} vs {lru})"
    );
    assert!(
        two_q + 100 < fifo,
        "2Q must beat FIFO on scan-polluted traces ({two_q} vs {fifo})"
    );
}

//! Native Rust reference implementations of the replacement policies.
//!
//! These operate on abstract page identifiers over a fixed-capacity cache,
//! independent of the VM substrate. They serve as oracles for the
//! interpreted policies (tests compare fault counts) and as fast baselines
//! for trace experiments. [`opt_faults`] implements Belady's optimal
//! algorithm for lower-bound comparisons.

use std::collections::{HashMap, HashSet, VecDeque};

/// A replacement policy over abstract pages.
pub trait Replacement {
    /// Policy name.
    fn name(&self) -> &'static str;
    /// Called when a resident page is accessed.
    fn on_access(&mut self, page: u64);
    /// Called when a page is inserted after a fault.
    fn on_insert(&mut self, page: u64);
    /// Chooses and removes the victim. Only called when non-empty.
    fn evict(&mut self) -> u64;
}

/// FIFO: evict in insertion order.
#[derive(Debug, Default)]
pub struct Fifo {
    queue: VecDeque<u64>,
}

impl Replacement for Fifo {
    fn name(&self) -> &'static str {
        "FIFO"
    }
    fn on_access(&mut self, _page: u64) {}
    fn on_insert(&mut self, page: u64) {
        self.queue.push_back(page);
    }
    fn evict(&mut self) -> u64 {
        self.queue.pop_front().expect("evict on non-empty cache")
    }
}

/// Exact LRU.
#[derive(Debug, Default)]
pub struct Lru {
    // Recency list: front = least recently used.
    order: VecDeque<u64>,
}

impl Lru {
    fn touch(&mut self, page: u64) {
        if let Some(i) = self.order.iter().position(|&p| p == page) {
            self.order.remove(i);
        }
        self.order.push_back(page);
    }
}

impl Replacement for Lru {
    fn name(&self) -> &'static str {
        "LRU"
    }
    fn on_access(&mut self, page: u64) {
        self.touch(page);
    }
    fn on_insert(&mut self, page: u64) {
        self.touch(page);
    }
    fn evict(&mut self) -> u64 {
        self.order.pop_front().expect("evict on non-empty cache")
    }
}

/// Exact MRU: evict the most recently used page.
#[derive(Debug, Default)]
pub struct Mru {
    order: VecDeque<u64>,
}

impl Replacement for Mru {
    fn name(&self) -> &'static str {
        "MRU"
    }
    fn on_access(&mut self, page: u64) {
        if let Some(i) = self.order.iter().position(|&p| p == page) {
            self.order.remove(i);
        }
        self.order.push_back(page);
    }
    fn on_insert(&mut self, page: u64) {
        self.order.push_back(page);
    }
    fn evict(&mut self) -> u64 {
        self.order.pop_back().expect("evict on non-empty cache")
    }
}

/// Clock / second chance: a circulating queue with reference bits.
#[derive(Debug, Default)]
pub struct Clock {
    queue: VecDeque<u64>,
    referenced: HashSet<u64>,
}

impl Replacement for Clock {
    fn name(&self) -> &'static str {
        "Clock"
    }
    fn on_access(&mut self, page: u64) {
        self.referenced.insert(page);
    }
    fn on_insert(&mut self, page: u64) {
        self.queue.push_back(page);
        // The faulting access itself references the page, exactly as the
        // VM substrate's fault path sets the reference bit on entry.
        self.referenced.insert(page);
    }
    fn evict(&mut self) -> u64 {
        loop {
            let page = self.queue.pop_front().expect("evict on non-empty cache");
            if self.referenced.remove(&page) {
                self.queue.push_back(page);
            } else {
                return page;
            }
        }
    }
}

/// Saturation bound for [`LearnedCache`] weights (mirrors `w_max` in
/// [`crate::sources::LEARNED`]).
pub const LEARNED_W_MAX: i64 = 32;
/// Aged pages examined per eviction (mirrors `scan_limit` in the source).
pub const LEARNED_SCAN_LIMIT: usize = 8;

/// LearnedCache: an integer-weight perceptron deciding evict-vs-protect.
///
/// Native reference for [`crate::sources::LEARNED`]: pages age from a
/// fresh queue into an aged queue with their reference bit cleared, and the
/// eviction scan predicts hot/cold from an integer dot product, training on
/// the observed re-reference bit. The abstract trace has no dirty bit, so
/// the learned feature here is "survived a previous scan" instead of the
/// modified bit; the perceptron machinery (features, saturating updates,
/// labels) is the same.
#[derive(Debug, Default)]
pub struct LearnedCache {
    fresh: VecDeque<u64>,
    aged: VecDeque<u64>,
    referenced: HashSet<u64>,
    survivor: HashSet<u64>,
    w_surv: i64,
    w_bias: i64,
}

impl LearnedCache {
    /// Current (w_surv, w_bias) weights, for bound checks in tests.
    pub fn weights(&self) -> (i64, i64) {
        (self.w_surv, self.w_bias)
    }

    fn train(&mut self, f_surv: i64, label: bool) -> bool {
        let score = self.w_surv * f_surv + self.w_bias;
        let pred = score > 0;
        let err = i64::from(label) - i64::from(pred);
        if err != 0 {
            let clamp = |w: i64| w.clamp(-LEARNED_W_MAX, LEARNED_W_MAX);
            self.w_surv = clamp(self.w_surv + err * f_surv);
            self.w_bias = clamp(self.w_bias + err);
        }
        pred
    }
}

impl Replacement for LearnedCache {
    fn name(&self) -> &'static str {
        "Learned"
    }
    fn on_access(&mut self, page: u64) {
        self.referenced.insert(page);
    }
    fn on_insert(&mut self, page: u64) {
        self.fresh.push_back(page);
        self.referenced.insert(page);
    }
    fn evict(&mut self) -> u64 {
        // Age fresh pages: clear the fault-time reference bit so a set bit
        // on an aged page is a genuine re-reference (the training label).
        while let Some(f) = self.fresh.pop_front() {
            self.referenced.remove(&f);
            self.aged.push_back(f);
        }
        for _ in 0..LEARNED_SCAN_LIMIT {
            let Some(p) = self.aged.pop_front() else {
                break;
            };
            let f_surv = i64::from(self.survivor.contains(&p));
            let label = self.referenced.remove(&p);
            let pred = self.train(f_surv, label);
            if label || pred {
                // Observed or predicted hot: recycle with a fresh chance.
                self.survivor.insert(p);
                self.aged.push_back(p);
            } else {
                self.survivor.remove(&p);
                return p;
            }
        }
        // Scan budget exhausted: evict the oldest aged page outright.
        let v = self.aged.pop_front().expect("evict on non-empty cache");
        self.referenced.remove(&v);
        self.survivor.remove(&v);
        v
    }
}

/// Weight bound for [`Awrp`] (mirrors `w_max` in [`crate::sources::AWRP`]).
pub const AWRP_W_MAX: i64 = 64;

/// AWRP — adaptive weight ranking over recency and frequency.
///
/// Native reference for [`crate::sources::AWRP`], at per-page granularity
/// (plain Rust has the per-page integer state the command set lacks): each
/// resident page is ranked by `w_r * last_access + w_f * frequency`, the
/// eviction victim is the rank minimum, and a hit on a page that one
/// component alone would have evicted next shifts weight toward the other
/// component, clamped to `[1, AWRP_W_MAX]`.
#[derive(Debug)]
pub struct Awrp {
    tick: u64,
    last: HashMap<u64, u64>,
    freq: HashMap<u64, u64>,
    w_r: i64,
    w_f: i64,
}

impl Default for Awrp {
    fn default() -> Self {
        Awrp {
            tick: 0,
            last: HashMap::new(),
            freq: HashMap::new(),
            w_r: 8,
            w_f: 8,
        }
    }
}

impl Awrp {
    /// Current (w_r, w_f) weights, for bound checks in tests.
    pub fn weights(&self) -> (i64, i64) {
        (self.w_r, self.w_f)
    }

    /// Eviction rank of a resident page: lower evicts first. The page id
    /// tie-break makes the ranking a total order over any page set.
    pub fn rank_key(&self, page: u64) -> (i64, u64) {
        let last = self.last.get(&page).copied().unwrap_or(0) as i64;
        let freq = self.freq.get(&page).copied().unwrap_or(0) as i64;
        (self.w_r * last + self.w_f * freq, page)
    }

    fn touch(&mut self, page: u64) {
        self.tick += 1;
        self.last.insert(page, self.tick);
        *self.freq.entry(page).or_insert(0) += 1;
    }

    /// The resident page a single component (recency or frequency) would
    /// evict next, ignoring the other component.
    fn component_min(&self, by_freq: bool) -> Option<u64> {
        self.last
            .keys()
            .map(|&p| {
                let v = if by_freq {
                    self.freq[&p]
                } else {
                    self.last[&p]
                };
                (v, p)
            })
            .min()
            .map(|(_, p)| p)
    }
}

impl Replacement for Awrp {
    fn name(&self) -> &'static str {
        "AWRP"
    }
    fn on_access(&mut self, page: u64) {
        // A hit on the page a lone component ranked as the next victim is
        // evidence that component misranks: shift weight to the other one.
        let clamp = |w: i64| w.clamp(1, AWRP_W_MAX);
        if self.component_min(false) == Some(page) {
            self.w_f = clamp(self.w_f + 1);
            self.w_r = clamp(self.w_r - 1);
        } else if self.component_min(true) == Some(page) {
            self.w_r = clamp(self.w_r + 1);
            self.w_f = clamp(self.w_f - 1);
        }
        self.touch(page);
    }
    fn on_insert(&mut self, page: u64) {
        self.touch(page);
    }
    fn evict(&mut self) -> u64 {
        let victim = self
            .last
            .keys()
            .map(|&p| (self.rank_key(p), p))
            .min()
            .map(|(_, p)| p)
            .expect("evict on non-empty cache");
        self.last.remove(&victim);
        self.freq.remove(&victim);
        victim
    }
}

/// A fixed-capacity cache simulator counting faults over a reference trace.
pub struct CacheSim<P: Replacement> {
    policy: P,
    capacity: usize,
    resident: HashSet<u64>,
    /// Faults observed so far.
    pub faults: u64,
    /// Hits observed so far.
    pub hits: u64,
}

impl<P: Replacement> CacheSim<P> {
    /// Creates a simulator with `capacity` page slots.
    pub fn new(policy: P, capacity: usize) -> Self {
        assert!(capacity > 0, "cache needs at least one slot");
        CacheSim {
            policy,
            capacity,
            resident: HashSet::new(),
            faults: 0,
            hits: 0,
        }
    }

    /// Feeds one reference; returns true if it faulted.
    pub fn access(&mut self, page: u64) -> bool {
        if self.resident.contains(&page) {
            self.hits += 1;
            self.policy.on_access(page);
            return false;
        }
        self.faults += 1;
        if self.resident.len() >= self.capacity {
            let victim = self.policy.evict();
            self.resident.remove(&victim);
        }
        self.resident.insert(page);
        self.policy.on_insert(page);
        true
    }

    /// Feeds a whole trace; returns the fault count for it.
    pub fn run(&mut self, trace: impl IntoIterator<Item = u64>) -> u64 {
        let before = self.faults;
        for page in trace {
            self.access(page);
        }
        self.faults - before
    }

    /// The policy, for inspection.
    pub fn policy(&self) -> &P {
        &self.policy
    }
}

/// Fault count of Belady's optimal (clairvoyant) policy on `trace` with
/// `capacity` slots — the lower bound no online policy can beat.
pub fn opt_faults(trace: &[u64], capacity: usize) -> u64 {
    assert!(capacity > 0);
    // Next-use index for each position, precomputed back to front.
    let mut next_use = vec![usize::MAX; trace.len()];
    let mut last_seen: HashMap<u64, usize> = HashMap::new();
    for i in (0..trace.len()).rev() {
        next_use[i] = last_seen.get(&trace[i]).copied().unwrap_or(usize::MAX);
        last_seen.insert(trace[i], i);
    }
    let mut resident: HashMap<u64, usize> = HashMap::new(); // page → next use
    let mut faults = 0;
    for (i, &page) in trace.iter().enumerate() {
        if let std::collections::hash_map::Entry::Occupied(mut e) = resident.entry(page) {
            e.insert(next_use[i]);
            continue;
        }
        faults += 1;
        if resident.len() >= capacity {
            // Evict the page used farthest in the future.
            let (&victim, _) = resident
                .iter()
                .max_by_key(|(_, &next)| next)
                .expect("cache is non-empty");
            resident.remove(&victim);
        }
        resident.insert(page, next_use[i]);
    }
    faults
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cyclic_trace(pages: u64, loops: u64) -> Vec<u64> {
        (0..loops).flat_map(|_| 0..pages).collect()
    }

    #[test]
    fn cold_faults_only_when_trace_fits() {
        let trace = cyclic_trace(8, 5);
        for faults in [
            CacheSim::new(Fifo::default(), 8).run(trace.clone()),
            CacheSim::new(Lru::default(), 8).run(trace.clone()),
            CacheSim::new(Mru::default(), 8).run(trace.clone()),
            CacheSim::new(Clock::default(), 8).run(trace.clone()),
        ] {
            assert_eq!(faults, 8, "fits in memory: compulsory misses only");
        }
    }

    #[test]
    fn lru_and_fifo_thrash_on_cyclic_scans() {
        let trace = cyclic_trace(10, 4);
        assert_eq!(CacheSim::new(Lru::default(), 8).run(trace.clone()), 40);
        assert_eq!(CacheSim::new(Fifo::default(), 8).run(trace.clone()), 40);
    }

    #[test]
    fn mru_matches_the_paper_formula_on_cyclic_scans() {
        let (pages, cap, loops) = (10u64, 8usize, 4u64);
        let trace = cyclic_trace(pages, loops);
        let faults = CacheSim::new(Mru::default(), cap).run(trace);
        let expected = (pages - cap as u64) * (loops - 1) + pages;
        assert_eq!(faults, expected);
    }

    #[test]
    fn opt_is_a_lower_bound() {
        let trace: Vec<u64> = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2, 3, 8, 4]
            .into_iter()
            .map(|x: i32| x as u64)
            .collect();
        let opt = opt_faults(&trace, 3);
        for faults in [
            CacheSim::new(Fifo::default(), 3).run(trace.clone()),
            CacheSim::new(Lru::default(), 3).run(trace.clone()),
            CacheSim::new(Mru::default(), 3).run(trace.clone()),
            CacheSim::new(Clock::default(), 3).run(trace.clone()),
        ] {
            assert!(opt <= faults, "OPT ({opt}) must not exceed {faults}");
        }
        // And on a cyclic scan OPT equals MRU (both keep a stable prefix).
        let cyc = cyclic_trace(10, 4);
        assert_eq!(
            opt_faults(&cyc, 8),
            CacheSim::new(Mru::default(), 8).run(cyc.clone())
        );
    }

    #[test]
    fn lru_keeps_the_hot_set() {
        // Hot pages interleaved with a cold stream: LRU must hold the hot set.
        let mut trace = Vec::new();
        for i in 0..200u64 {
            trace.push(1_000); // hot
            trace.push(1_001); // hot
            trace.push(i); // cold, never reused
        }
        let mut sim = CacheSim::new(Lru::default(), 4);
        sim.run(trace);
        // 2 hot faults + 200 cold faults.
        assert_eq!(sim.faults, 202);
    }

    #[test]
    fn clock_approximates_lru_under_reuse() {
        let mut trace = Vec::new();
        for i in 0..100u64 {
            trace.push(7_000);
            trace.push(i % 20);
        }
        let lru = CacheSim::new(Lru::default(), 10).run(trace.clone());
        let clock = CacheSim::new(Clock::default(), 10).run(trace.clone());
        let fifo = CacheSim::new(Fifo::default(), 10).run(trace);
        assert!(clock <= fifo, "second chance must not be worse than FIFO");
        // Clock lands in LRU's neighbourhood.
        assert!((clock as i64 - lru as i64).abs() < (fifo as i64 - lru as i64).max(10));
    }

    #[test]
    fn learned_resists_one_shot_scans() {
        // Hot working set with periodic one-shot sweeps: the perceptron
        // must learn that never-re-referenced pages are cold and keep the
        // hot set resident at least as well as plain LRU does.
        let mut trace = Vec::new();
        let mut cold = 10_000u64;
        for round in 0..300u64 {
            for h in 0..6u64 {
                trace.push(h);
            }
            if round % 3 == 0 {
                for _ in 0..12 {
                    trace.push(cold);
                    cold += 1;
                }
            }
        }
        let learned = CacheSim::new(LearnedCache::default(), 16).run(trace.clone());
        let lru = CacheSim::new(Lru::default(), 16).run(trace);
        assert!(
            learned <= lru,
            "learned ({learned}) must not thrash worse than LRU ({lru}) on scans"
        );
    }

    #[test]
    fn learned_weights_stay_saturated() {
        let mut sim = CacheSim::new(LearnedCache::default(), 8);
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            sim.access(x % 64);
            let (w_surv, w_bias) = sim.policy().weights();
            assert!(w_surv.abs() <= LEARNED_W_MAX && w_bias.abs() <= LEARNED_W_MAX);
        }
    }

    #[test]
    fn awrp_rank_is_a_total_order_and_weights_stay_bounded() {
        let mut sim = CacheSim::new(Awrp::default(), 8);
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..5_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            sim.access(x % 24);
            let (w_r, w_f) = sim.policy().weights();
            assert!((1..=AWRP_W_MAX).contains(&w_r) && (1..=AWRP_W_MAX).contains(&w_f));
        }
        // Distinct pages always rank distinctly (page-id tie-break).
        let mut keys: Vec<_> = (0..24u64).map(|p| sim.policy().rank_key(p)).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 24);
    }

    #[test]
    fn counters_track_hits() {
        let mut sim = CacheSim::new(Fifo::default(), 2);
        sim.access(1);
        sim.access(1);
        sim.access(2);
        sim.access(1);
        assert_eq!(sim.faults, 2);
        assert_eq!(sim.hits, 2);
        assert_eq!(sim.policy().name(), "FIFO");
    }
}

//! Hand-coded assembler listings, in the spirit of the paper's Table 2.
//!
//! The paper presents the FIFO-with-second-chance policy twice: as pseudo
//! code (Figure 4) and as a hand-coded command listing (Table 2). These
//! listings are this repository's Table 2 analogue; tests verify they
//! behave identically to the translator's output.

use hipec_core::PolicyProgram;

/// FIFO with second chance, hand-coded (Table 2 analogue).
///
/// Slot map: 0 free queue, 1 active queue, 2 inactive queue, 3 scratch
/// page, 4 inactive_target, 5 free_target, 6 const 0, plus kernel counters.
pub const FIFO_SECOND_CHANCE_ASM: &str = r#"
.freeq                      ; 0  _free_queue
.queue                      ; 1  _active_queue
.queue                      ; 2  _inactive_queue
.page                       ; 3  scratch page
.int 8                      ; 4  inactive_target
.int 2                      ; 5  free_target
.int 0                      ; 6  constant 0
.kernel free_count          ; 7
.kernel active_count        ; 8
.kernel inactive_count      ; 9
.kernel reclaim_target      ; 10
.kernel allocated_count     ; 11
.int 0                      ; 12 released counter

.event PageFault
    comp 7, 6, gt           ; free_count > 0 ?
    jf refill
serve:
    dequeue 3, 0, head
    enqueue 3, 1, tail
    return 3
refill:
    activate 2              ; Lack_free_frame
    ja serve

.event ReclaimFrame
    arith 12, 6, mov        ; released = 0
loop:
    comp 12, 10, lt         ; released < reclaim_target ?
    jf out
    comp 11, 6, gt          ; allocated_count > 0 ?
    jf out
    comp 7, 6, gt           ; free_count > 0 ?
    jt take
    activate 2
take:
    dequeue 3, 0, head
    release 3
    arith 12, inc
    ja loop
out:
    return

.event Lack_free_frame
stage1:
    comp 9, 4, lt           ; inactive_count < inactive_target ?
    jf stage2
    comp 8, 6, gt           ; active_count > 0 ?
    jf stage2
    dequeue 3, 1, head
    set 3, ref, clear
    enqueue 3, 2, tail
    ja stage1
stage2:
    comp 7, 5, lt           ; free_count < free_target ?
    jf done
    comp 9, 6, gt           ; inactive_count > 0 ?
    jf done
    dequeue 3, 2, head
    ref 3
    jf cold
    enqueue 3, 1, tail      ; second chance
    set 3, ref, clear
    ja stage2
cold:
    mod 3
    jf clean
    flush 3
clean:
    enqueue 3, 0, head      ; onto the free queue
    ja stage2
done:
    return
"#;

/// MRU, hand-coded.
pub const MRU_ASM: &str = r#"
.freeq                      ; 0
.rqueue                     ; 1  recency queue
.page                       ; 2
.int 0                      ; 3
.kernel free_count          ; 4
.kernel reclaim_target      ; 5
.kernel allocated_count     ; 6
.int 0                      ; 7 released

.event PageFault
    comp 4, 3, gt
    jt serve
    mru 1
serve:
    dequeue 2, 0, head
    enqueue 2, 1, tail
    return 2

.event ReclaimFrame
    arith 7, 3, mov
loop:
    comp 7, 5, lt
    jf out
    comp 6, 3, gt
    jf out
    comp 4, 3, gt
    jt take
    mru 1
take:
    dequeue 2, 0, head
    release 2
    arith 7, inc
    ja loop
out:
    return
"#;

/// LearnedCache perceptron, hand-coded.
///
/// Same algorithm as [`crate::sources::LEARNED`], written directly against
/// the command set: weights live in persistent operand slots 5–7, feature
/// extraction materializes the survivor and modified bits into slots
/// 12–13, and the saturating update is a chain of `arith`/`comp` pairs.
/// Slot map in the listing comments (DESIGN.md §12).
pub const LEARNED_ASM: &str = r#"
.freeq                      ; 0  free queue
.queue                      ; 1  fresh_q (active_count)
.queue                      ; 2  aged_q probation (inactive_count)
.queue                      ; 3  surv_q survivors (uncounted)
.page                       ; 4  scratch page
.int 0                      ; 5  w_surv    (persistent weight)
.int 0                      ; 6  w_mod     (persistent weight)
.int 0                      ; 7  w_bias    (persistent weight)
.int 32                     ; 8  w_max
.int 8                      ; 9  scan_limit
.int 0                      ; 10 constant 0
.int 0                      ; 11 scanned
.int 0                      ; 12 f_surv    (feature)
.int 0                      ; 13 f_mod     (feature)
.int 0                      ; 14 score
.int 0                      ; 15 label
.int 0                      ; 16 pred
.int 0                      ; 17 err
.int 0                      ; 18 -w_max    (computed)
.int 0                      ; 19 tmp (err * feature)
.int 0                      ; 20 released
.kernel free_count          ; 21
.kernel active_count        ; 22
.kernel inactive_count      ; 23
.kernel allocated_count     ; 24
.kernel reclaim_target      ; 25

.event PageFault
    comp 21, 10, gt         ; free_count > 0 ?
    jt serve
    activate 2
serve:
    dequeue 4, 0, head
    enqueue 4, 1, tail
    return 4

.event ReclaimFrame
    arith 20, 10, mov       ; released = 0
loop:
    comp 20, 25, lt         ; released < reclaim_target ?
    jf out
    comp 24, 10, gt         ; allocated_count > 0 ?
    jf out
    comp 21, 10, gt         ; free_count > 0 ?
    jt take
    activate 2
take:
    dequeue 4, 0, head
    release 4
    arith 20, inc
    ja loop
out:
    return

.event Evict
age:
    comp 22, 10, gt         ; active_count > 0 ?
    jf scaninit
    dequeue 4, 1, head
    set 4, ref, clear       ; age: a later set bit is a re-reference
    enqueue 4, 2, tail
    ja age
scaninit:
    arith 11, 10, mov       ; scanned = 0
scan:
    comp 11, 9, lt          ; scanned < scan_limit ?
    jf forced
    comp 23, 10, gt         ; probation first ...
    jt fromaged
    emptyq 3                ; ... survivors otherwise ...
    jt forced               ; ... nothing at all: break
    dequeue 4, 3, head
    arith 12, 10, mov
    arith 12, inc           ; f_surv = 1
    ja havep
fromaged:
    dequeue 4, 2, head
    arith 12, 10, mov       ; f_surv = 0
havep:
    arith 11, inc
    arith 13, 10, mov       ; f_mod = 0
    mod 4
    jf fcold
    arith 13, inc           ; f_mod = 1
fcold:
    arith 14, 5, mov        ; score = w_surv
    arith 14, 12, mul       ;       * f_surv
    arith 19, 6, mov        ; tmp = w_mod
    arith 19, 13, mul       ;     * f_mod
    arith 14, 19, add
    arith 14, 7, add        ;       + w_bias
    arith 15, 10, mov       ; label = 0
    ref 4
    jf lcold
    arith 15, inc           ; label = 1 (re-referenced)
lcold:
    arith 16, 10, mov       ; pred = 0
    comp 14, 10, gt         ; score > 0 ?
    jf pcold
    arith 16, inc           ; pred = 1
pcold:
    arith 17, 15, mov       ; err = label
    arith 17, 16, sub       ;     - pred
    comp 17, 10, eq         ; prediction correct: skip the update
    jt decide
    arith 19, 17, mov       ; w_surv += err * f_surv
    arith 19, 12, mul
    arith 5, 19, add
    arith 19, 17, mov       ; w_mod += err * f_mod
    arith 19, 13, mul
    arith 6, 19, add
    arith 7, 17, add        ; w_bias += err
    arith 18, 10, mov       ; -w_max = 0
    arith 18, 8, sub        ;        - w_max
    comp 5, 8, gt           ; saturate w_surv to [-w_max, w_max]
    jf k1
    arith 5, 8, mov
k1:
    comp 5, 18, lt
    jf k2
    arith 5, 18, mov
k2:
    comp 6, 8, gt           ; saturate w_mod
    jf k3
    arith 6, 8, mov
k3:
    comp 6, 18, lt
    jf k4
    arith 6, 18, mov
k4:
    comp 7, 8, gt           ; saturate w_bias
    jf k5
    arith 7, 8, mov
k5:
    comp 7, 18, lt
    jf decide
    arith 7, 18, mov
decide:
    comp 15, 10, gt         ; label == 1: observed hot, promote
    jf chkpred
    set 4, ref, clear
    enqueue 4, 3, tail
    ja scan
chkpred:
    comp 16, 10, gt         ; pred == 1: predicted hot, protect in class
    jf victim
    comp 12, 10, gt
    jt tosurv
    enqueue 4, 2, tail
    ja scan
tosurv:
    enqueue 4, 3, tail
    ja scan
victim:
    mod 4
    jf vclean
    flush 4
vclean:
    enqueue 4, 0, head
    return
forced:
    comp 23, 10, gt         ; budget exhausted: oldest probation page ...
    jf trysurv
    dequeue 4, 2, head
    ja fvict
trysurv:
    emptyq 3                ; ... or the oldest survivor
    jt give_up
    dequeue 4, 3, head
fvict:
    mod 4
    jf fclean
    flush 4
fclean:
    enqueue 4, 0, head
give_up:
    return
"#;

/// AWRP, hand-coded.
///
/// Same algorithm as [`crate::sources::AWRP`]: class weights in persistent
/// slots 5–6, weighted-share comparison via two `arith mul` products, and
/// the pardon/credit loop bounded by `spin_limit`.
pub const AWRP_ASM: &str = r#"
.freeq                      ; 0  free queue
.rqueue                     ; 1  recent_q   (active_count)
.rqueue                     ; 2  frequent_q (inactive_count)
.queue                      ; 3  fresh_q (fault staging, uncounted)
.page                       ; 4  scratch page
.int 8                      ; 5  w_r  (persistent weight)
.int 8                      ; 6  w_f  (persistent weight)
.int 64                     ; 7  w_max
.int 8                      ; 8  spin_limit
.int 0                      ; 9  constant 0
.int 1                      ; 10 constant 1
.int 0                      ; 11 spins
.int 0                      ; 12 active_count * w_f
.int 0                      ; 13 inactive_count * w_r
.kernel free_count          ; 14
.kernel active_count        ; 15
.kernel inactive_count      ; 16
.kernel allocated_count     ; 17
.kernel reclaim_target      ; 18
.int 0                      ; 19 released

.event PageFault
    comp 14, 9, gt          ; free_count > 0 ?
    jt serve
    activate 2
serve:
    dequeue 4, 0, head
    enqueue 4, 3, tail      ; stage through fresh_q
    return 4

.event ReclaimFrame
    arith 19, 9, mov        ; released = 0
loop:
    comp 19, 18, lt         ; released < reclaim_target ?
    jf out
    comp 17, 9, gt          ; allocated_count > 0 ?
    jf out
    comp 14, 9, gt          ; free_count > 0 ?
    jt take
    activate 2
take:
    dequeue 4, 0, head
    release 4
    arith 19, inc
    ja loop
out:
    return

.event Rank
age:
    emptyq 3                ; drain staged faults into recent_q
    jt spininit
    dequeue 4, 3, head
    set 4, ref, clear       ; age: a later set bit is a re-reference
    enqueue 4, 1, tail
    ja age
spininit:
    arith 11, 9, mov        ; spins = 0
spin:
    comp 11, 8, lt          ; spins < spin_limit ?
    jf fallback
    arith 11, inc
    arith 12, 15, mov       ; share_l = active_count
    arith 12, 6, mul        ;         * w_f
    arith 13, 16, mov       ; share_r = inactive_count
    arith 13, 5, mul        ;         * w_r
    comp 12, 13, lt         ; recent under its share: pick frequent
    jt try_freq
pick_recent:
    comp 15, 9, gt          ; active_count > 0 ?
    jf pick_freq
    dequeue 4, 1, head
    ref 4
    jf evict_it
    set 4, ref, clear       ; pardon: promote, credit recency class
    enqueue 4, 2, tail
    arith 5, 10, add        ; w_r += 1
    arith 6, 10, sub        ; w_f -= 1
    ja clamp
try_freq:
    comp 16, 9, gt          ; inactive_count > 0 ?
    jf pick_recent
pick_freq:
    comp 16, 9, gt          ; forced back to recent if both drained
    jf pick_recent_forced
    dequeue 4, 2, head
    ref 4
    jf evict_it
    set 4, ref, clear       ; pardon: recycle, credit frequency class
    enqueue 4, 2, tail
    arith 6, 10, add        ; w_f += 1
    arith 5, 10, sub        ; w_r -= 1
    ja clamp
pick_recent_forced:
    comp 15, 9, gt
    jf fallback
    ja pick_recent
clamp:
    comp 5, 10, lt          ; clamp w_r to [1, w_max]
    jf c1
    arith 5, 10, mov
c1:
    comp 5, 7, gt
    jf c2
    arith 5, 7, mov
c2:
    comp 6, 10, lt          ; clamp w_f to [1, w_max]
    jf c3
    arith 6, 10, mov
c3:
    comp 6, 7, gt
    jf spin
    arith 6, 7, mov
    ja spin
evict_it:
    mod 4
    jf clean
    flush 4
clean:
    enqueue 4, 0, head
    return
fallback:
    comp 15, 9, gt          ; pardon budget exhausted: strict LRU
    jf try_lru_freq
    lru 1
    return
try_lru_freq:
    lru 2
    return
"#;

/// Assembles the hand-coded FIFO-with-second-chance listing.
pub fn fifo_second_chance() -> PolicyProgram {
    hipec_lang::assemble(FIFO_SECOND_CHANCE_ASM).expect("shipped listing assembles")
}

/// Assembles the hand-coded LearnedCache perceptron listing.
pub fn learned() -> PolicyProgram {
    hipec_lang::assemble(LEARNED_ASM).expect("shipped listing assembles")
}

/// Assembles the hand-coded AWRP listing.
pub fn awrp() -> PolicyProgram {
    hipec_lang::assemble(AWRP_ASM).expect("shipped listing assembles")
}

/// Assembles the hand-coded MRU listing.
pub fn mru() -> PolicyProgram {
    hipec_lang::assemble(MRU_ASM).expect("shipped listing assembles")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listings_assemble_and_validate() {
        for p in [fifo_second_chance(), mru(), learned(), awrp()] {
            hipec_core::validate_program(&p).expect("valid");
            assert!(p.events.len() >= 2);
        }
    }
}

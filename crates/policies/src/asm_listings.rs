//! Hand-coded assembler listings, in the spirit of the paper's Table 2.
//!
//! The paper presents the FIFO-with-second-chance policy twice: as pseudo
//! code (Figure 4) and as a hand-coded command listing (Table 2). These
//! listings are this repository's Table 2 analogue; tests verify they
//! behave identically to the translator's output.

use hipec_core::PolicyProgram;

/// FIFO with second chance, hand-coded (Table 2 analogue).
///
/// Slot map: 0 free queue, 1 active queue, 2 inactive queue, 3 scratch
/// page, 4 inactive_target, 5 free_target, 6 const 0, plus kernel counters.
pub const FIFO_SECOND_CHANCE_ASM: &str = r#"
.freeq                      ; 0  _free_queue
.queue                      ; 1  _active_queue
.queue                      ; 2  _inactive_queue
.page                       ; 3  scratch page
.int 8                      ; 4  inactive_target
.int 2                      ; 5  free_target
.int 0                      ; 6  constant 0
.kernel free_count          ; 7
.kernel active_count        ; 8
.kernel inactive_count      ; 9
.kernel reclaim_target      ; 10
.kernel allocated_count     ; 11
.int 0                      ; 12 released counter

.event PageFault
    comp 7, 6, gt           ; free_count > 0 ?
    jf refill
serve:
    dequeue 3, 0, head
    enqueue 3, 1, tail
    return 3
refill:
    activate 2              ; Lack_free_frame
    ja serve

.event ReclaimFrame
    arith 12, 6, mov        ; released = 0
loop:
    comp 12, 10, lt         ; released < reclaim_target ?
    jf out
    comp 11, 6, gt          ; allocated_count > 0 ?
    jf out
    comp 7, 6, gt           ; free_count > 0 ?
    jt take
    activate 2
take:
    dequeue 3, 0, head
    release 3
    arith 12, inc
    ja loop
out:
    return

.event Lack_free_frame
stage1:
    comp 9, 4, lt           ; inactive_count < inactive_target ?
    jf stage2
    comp 8, 6, gt           ; active_count > 0 ?
    jf stage2
    dequeue 3, 1, head
    set 3, ref, clear
    enqueue 3, 2, tail
    ja stage1
stage2:
    comp 7, 5, lt           ; free_count < free_target ?
    jf done
    comp 9, 6, gt           ; inactive_count > 0 ?
    jf done
    dequeue 3, 2, head
    ref 3
    jf cold
    enqueue 3, 1, tail      ; second chance
    set 3, ref, clear
    ja stage2
cold:
    mod 3
    jf clean
    flush 3
clean:
    enqueue 3, 0, head      ; onto the free queue
    ja stage2
done:
    return
"#;

/// MRU, hand-coded.
pub const MRU_ASM: &str = r#"
.freeq                      ; 0
.rqueue                     ; 1  recency queue
.page                       ; 2
.int 0                      ; 3
.kernel free_count          ; 4
.kernel reclaim_target      ; 5
.kernel allocated_count     ; 6
.int 0                      ; 7 released

.event PageFault
    comp 4, 3, gt
    jt serve
    mru 1
serve:
    dequeue 2, 0, head
    enqueue 2, 1, tail
    return 2

.event ReclaimFrame
    arith 7, 3, mov
loop:
    comp 7, 5, lt
    jf out
    comp 6, 3, gt
    jf out
    comp 4, 3, gt
    jt take
    mru 1
take:
    dequeue 2, 0, head
    release 2
    arith 7, inc
    ja loop
out:
    return
"#;

/// Assembles the hand-coded FIFO-with-second-chance listing.
pub fn fifo_second_chance() -> PolicyProgram {
    hipec_lang::assemble(FIFO_SECOND_CHANCE_ASM).expect("shipped listing assembles")
}

/// Assembles the hand-coded MRU listing.
pub fn mru() -> PolicyProgram {
    hipec_lang::assemble(MRU_ASM).expect("shipped listing assembles")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listings_assemble_and_validate() {
        for p in [fifo_second_chance(), mru()] {
            hipec_core::validate_program(&p).expect("valid");
            assert!(p.events.len() >= 2);
        }
    }
}

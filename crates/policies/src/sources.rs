//! Pseudo-code sources for the shipped policies.
//!
//! Convention used by all sources: the **first** declared queue is reported
//! by the `active_count` kernel counter and the second by `inactive_count`
//! (the counters bind to the container's queues in declaration order).

/// Plain FIFO: evict the oldest-faulted page.
pub const FIFO: &str = r#"
    queue fifo_q;

    event PageFault() {
        if (free_count == 0) {
            fifo(fifo_q);
        }
        page p = dequeue_head(free_queue);
        enqueue_tail(fifo_q, p);
        return p;
    }

    event ReclaimFrame() {
        int released = 0;
        while (released < reclaim_target && allocated_count > 0) {
            if (free_count == 0) {
                fifo(fifo_q);
            }
            page p = dequeue_head(free_queue);
            release(p);
            released = released + 1;
        }
    }
"#;

/// FIFO with second chance — the paper's Figure 4, and the policy the Mach
/// pageout daemon implements natively (used for the Table 3 comparison).
pub const FIFO_SECOND_CHANCE: &str = r#"
    queue active_q;
    queue inactive_q;
    int inactive_target = 8;
    int free_target = 2;

    event PageFault() {
        if (free_count == 0) {
            activate Lack_free_frame;
        }
        page p = dequeue_head(free_queue);
        enqueue_tail(active_q, p);
        return p;
    }

    event Lack_free_frame() {
        // Stage 1: refill the inactive queue, clearing reference bits.
        while (inactive_count < inactive_target && active_count > 0) {
            page p = dequeue_head(active_q);
            reset_ref(p);
            enqueue_tail(inactive_q, p);
        }
        // Stage 2: reclaim from the inactive head with second chance.
        while (free_count < free_target && inactive_count > 0) {
            page q = dequeue_head(inactive_q);
            if (referenced(q)) {
                enqueue_tail(active_q, q);
                reset_ref(q);
            } else {
                if (modified(q)) {
                    flush(q);
                }
                enqueue_head(free_queue, q);
            }
        }
    }

    event ReclaimFrame() {
        int released = 0;
        while (released < reclaim_target && allocated_count > 0) {
            if (free_count == 0) {
                activate Lack_free_frame;
            }
            page p = dequeue_head(free_queue);
            release(p);
            released = released + 1;
        }
    }
"#;

/// Exact LRU over a kernel-maintained recency queue.
pub const LRU: &str = r#"
    recency queue lru_q;

    event PageFault() {
        if (free_count == 0) {
            lru(lru_q);
        }
        page p = dequeue_head(free_queue);
        enqueue_tail(lru_q, p);
        return p;
    }

    event ReclaimFrame() {
        int released = 0;
        while (released < reclaim_target && allocated_count > 0) {
            if (free_count == 0) {
                lru(lru_q);
            }
            page p = dequeue_head(free_queue);
            release(p);
            released = released + 1;
        }
    }
"#;

/// MRU: evict the most recently used page — optimal for cyclic scans such
/// as the nested-loops join of §5.3.
pub const MRU: &str = r#"
    recency queue mru_q;

    event PageFault() {
        if (free_count == 0) {
            mru(mru_q);
        }
        page p = dequeue_head(free_queue);
        enqueue_tail(mru_q, p);
        return p;
    }

    event ReclaimFrame() {
        int released = 0;
        while (released < reclaim_target && allocated_count > 0) {
            if (free_count == 0) {
                mru(mru_q);
            }
            page p = dequeue_head(free_queue);
            release(p);
            released = released + 1;
        }
    }
"#;

/// Clock: second chance on one circulating queue, written entirely with
/// simple commands (no complex `FIFO`/`LRU`/`MRU` command) — the expensive
/// end of the paper's simple-vs-complex command trade-off (§4.2).
pub const CLOCK: &str = r#"
    queue clock_q;

    event PageFault() {
        if (free_count == 0) {
            activate Tick;
        }
        page p = dequeue_head(free_queue);
        enqueue_tail(clock_q, p);
        return p;
    }

    event Tick() {
        bool done = false;
        while (!done && active_count > 0) {
            page p = dequeue_head(clock_q);
            if (referenced(p)) {
                reset_ref(p);
                enqueue_tail(clock_q, p);
            } else {
                if (modified(p)) {
                    flush(p);
                }
                enqueue_head(free_queue, p);
                done = true;
            }
        }
    }

    event ReclaimFrame() {
        int released = 0;
        while (released < reclaim_target && allocated_count > 0) {
            if (free_count == 0) {
                activate Tick;
            }
            page p = dequeue_head(free_queue);
            release(p);
            released = released + 1;
        }
    }
"#;

/// Simplified 2Q (scan-resistant): first-touch pages enter a FIFO probation
/// queue (`a1`); pages referenced again while on probation are promoted to
/// a protected recency queue (`am`) at eviction-scan time. Evictions prefer
/// unreferenced probation pages, so one-shot scans cannot flush the hot set
/// — the scan-resistance LRU lacks.
pub const TWO_QUEUE: &str = r#"
    queue a1_fresh;       // just-faulted pages (reference bit still set
                          // from the faulting access itself)
    queue a1_cleared;     // aged probation: reference bits cleared
    recency queue am;     // protected (LRU order)

    event PageFault() {
        if (free_count == 0) {
            activate Evict;
        }
        page p = dequeue_head(free_queue);
        enqueue_tail(a1_fresh, p);
        return p;
    }

    event Evict() {
        // Age the fresh pages: clear the fault-time reference bit so a
        // later set bit means a genuine *re*-reference.
        while (active_count > 0) {
            page f = dequeue_head(a1_fresh);
            reset_ref(f);
            enqueue_tail(a1_cleared, f);
        }
        // Scan aged probation: promote re-referenced pages, evict the
        // first cold one. One-shot scan pages are never re-referenced, so
        // they go straight out — the hot set in `am` survives.
        bool done = false;
        while (!done && inactive_count > 0) {
            page p = dequeue_head(a1_cleared);
            if (referenced(p)) {
                reset_ref(p);
                enqueue_tail(am, p);
            } else {
                if (modified(p)) {
                    flush(p);
                }
                enqueue_head(free_queue, p);
                done = true;
            }
        }
        // Probation exhausted: fall back to LRU on the protected queue.
        if (!done) {
            lru(am);
        }
    }

    event ReclaimFrame() {
        int released = 0;
        while (released < reclaim_target && allocated_count > 0) {
            if (free_count == 0) {
                activate Evict;
            }
            page p = dequeue_head(free_queue);
            release(p);
            released = released + 1;
        }
    }
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sources_compile_clean() {
        for (name, src) in [
            ("FIFO", FIFO),
            ("FIFO_SECOND_CHANCE", FIFO_SECOND_CHANCE),
            ("LRU", LRU),
            ("MRU", MRU),
            ("CLOCK", CLOCK),
            ("TWO_QUEUE", TWO_QUEUE),
        ] {
            let p = hipec_lang::compile(src)
                .unwrap_or_else(|e| panic!("{name} failed to compile: {e:?}"));
            hipec_core::validate_program(&p)
                .unwrap_or_else(|e| panic!("{name} failed validation: {e:?}"));
        }
    }
}

//! Pseudo-code sources for the shipped policies.
//!
//! Convention used by all sources: the **first** declared queue is reported
//! by the `active_count` kernel counter and the second by `inactive_count`
//! (the counters bind to the container's queues in declaration order).

/// Plain FIFO: evict the oldest-faulted page.
pub const FIFO: &str = r#"
    queue fifo_q;

    event PageFault() {
        if (free_count == 0) {
            fifo(fifo_q);
        }
        page p = dequeue_head(free_queue);
        enqueue_tail(fifo_q, p);
        return p;
    }

    event ReclaimFrame() {
        int released = 0;
        while (released < reclaim_target && allocated_count > 0) {
            if (free_count == 0) {
                fifo(fifo_q);
            }
            page p = dequeue_head(free_queue);
            release(p);
            released = released + 1;
        }
    }
"#;

/// FIFO with second chance — the paper's Figure 4, and the policy the Mach
/// pageout daemon implements natively (used for the Table 3 comparison).
pub const FIFO_SECOND_CHANCE: &str = r#"
    queue active_q;
    queue inactive_q;
    int inactive_target = 8;
    int free_target = 2;

    event PageFault() {
        if (free_count == 0) {
            activate Lack_free_frame;
        }
        page p = dequeue_head(free_queue);
        enqueue_tail(active_q, p);
        return p;
    }

    event Lack_free_frame() {
        // Stage 1: refill the inactive queue, clearing reference bits.
        while (inactive_count < inactive_target && active_count > 0) {
            page p = dequeue_head(active_q);
            reset_ref(p);
            enqueue_tail(inactive_q, p);
        }
        // Stage 2: reclaim from the inactive head with second chance.
        while (free_count < free_target && inactive_count > 0) {
            page q = dequeue_head(inactive_q);
            if (referenced(q)) {
                enqueue_tail(active_q, q);
                reset_ref(q);
            } else {
                if (modified(q)) {
                    flush(q);
                }
                enqueue_head(free_queue, q);
            }
        }
    }

    event ReclaimFrame() {
        int released = 0;
        while (released < reclaim_target && allocated_count > 0) {
            if (free_count == 0) {
                activate Lack_free_frame;
            }
            page p = dequeue_head(free_queue);
            release(p);
            released = released + 1;
        }
    }
"#;

/// Exact LRU over a kernel-maintained recency queue.
pub const LRU: &str = r#"
    recency queue lru_q;

    event PageFault() {
        if (free_count == 0) {
            lru(lru_q);
        }
        page p = dequeue_head(free_queue);
        enqueue_tail(lru_q, p);
        return p;
    }

    event ReclaimFrame() {
        int released = 0;
        while (released < reclaim_target && allocated_count > 0) {
            if (free_count == 0) {
                lru(lru_q);
            }
            page p = dequeue_head(free_queue);
            release(p);
            released = released + 1;
        }
    }
"#;

/// MRU: evict the most recently used page — optimal for cyclic scans such
/// as the nested-loops join of §5.3.
pub const MRU: &str = r#"
    recency queue mru_q;

    event PageFault() {
        if (free_count == 0) {
            mru(mru_q);
        }
        page p = dequeue_head(free_queue);
        enqueue_tail(mru_q, p);
        return p;
    }

    event ReclaimFrame() {
        int released = 0;
        while (released < reclaim_target && allocated_count > 0) {
            if (free_count == 0) {
                mru(mru_q);
            }
            page p = dequeue_head(free_queue);
            release(p);
            released = released + 1;
        }
    }
"#;

/// Clock: second chance on one circulating queue, written entirely with
/// simple commands (no complex `FIFO`/`LRU`/`MRU` command) — the expensive
/// end of the paper's simple-vs-complex command trade-off (§4.2).
pub const CLOCK: &str = r#"
    queue clock_q;

    event PageFault() {
        if (free_count == 0) {
            activate Tick;
        }
        page p = dequeue_head(free_queue);
        enqueue_tail(clock_q, p);
        return p;
    }

    event Tick() {
        bool done = false;
        while (!done && active_count > 0) {
            page p = dequeue_head(clock_q);
            if (referenced(p)) {
                reset_ref(p);
                enqueue_tail(clock_q, p);
            } else {
                if (modified(p)) {
                    flush(p);
                }
                enqueue_head(free_queue, p);
                done = true;
            }
        }
    }

    event ReclaimFrame() {
        int released = 0;
        while (released < reclaim_target && allocated_count > 0) {
            if (free_count == 0) {
                activate Tick;
            }
            page p = dequeue_head(free_queue);
            release(p);
            released = released + 1;
        }
    }
"#;

/// Simplified 2Q (scan-resistant): first-touch pages enter a FIFO probation
/// queue (`a1`); pages referenced again while on probation are promoted to
/// a protected recency queue (`am`) at eviction-scan time. Evictions prefer
/// unreferenced probation pages, so one-shot scans cannot flush the hot set
/// — the scan-resistance LRU lacks.
pub const TWO_QUEUE: &str = r#"
    queue a1_fresh;       // just-faulted pages (reference bit still set
                          // from the faulting access itself)
    queue a1_cleared;     // aged probation: reference bits cleared
    recency queue am;     // protected (LRU order)

    event PageFault() {
        if (free_count == 0) {
            activate Evict;
        }
        page p = dequeue_head(free_queue);
        enqueue_tail(a1_fresh, p);
        return p;
    }

    event Evict() {
        // Age the fresh pages: clear the fault-time reference bit so a
        // later set bit means a genuine *re*-reference.
        while (active_count > 0) {
            page f = dequeue_head(a1_fresh);
            reset_ref(f);
            enqueue_tail(a1_cleared, f);
        }
        // Scan aged probation: promote re-referenced pages, evict the
        // first cold one. One-shot scan pages are never re-referenced, so
        // they go straight out — the hot set in `am` survives.
        bool done = false;
        while (!done && inactive_count > 0) {
            page p = dequeue_head(a1_cleared);
            if (referenced(p)) {
                reset_ref(p);
                enqueue_tail(am, p);
            } else {
                if (modified(p)) {
                    flush(p);
                }
                enqueue_head(free_queue, p);
                done = true;
            }
        }
        // Probation exhausted: fall back to LRU on the protected queue.
        if (!done) {
            lru(am);
        }
    }

    event ReclaimFrame() {
        int released = 0;
        while (released < reclaim_target && allocated_count > 0) {
            if (free_count == 0) {
                activate Evict;
            }
            page p = dequeue_head(free_queue);
            release(p);
            released = released + 1;
        }
    }
"#;

/// LearnedCache: an integer-weight perceptron deciding evict-vs-protect.
///
/// Pages age from `fresh_q` into the `aged_q` probation queue with their
/// reference bit cleared, exactly as in 2Q — a set bit on an aged page is
/// therefore a genuine re-reference and serves as the training *label*.
/// Pages observed hot move to `surv_q`; queue membership doubles as the
/// per-page *survivor* feature bit (the command set has no per-page
/// integer state, so the feature is encoded structurally). At eviction
/// time the policy scans up to `scan_limit` candidates — probation first —
/// and for each extracts integer features into operand slots (survivor
/// bit, modified bit, constant bias), computes the dot product against the
/// persistent top-level weight slots, and predicts hot (protect) or cold
/// (evict). Mispredictions update the weights by the perceptron rule,
/// saturating at `+/- w_max` so the fixed-point weights can never run away
/// (DESIGN.md §12).
///
/// Scan-resistance is learned rather than hard-wired: one-shot scan pages
/// are never re-referenced, so every hot prediction on a non-survivor is
/// a misprediction and the bias sinks until probation drains FIFO-style,
/// while `w_surv` grows until survivors are protected on prediction alone.
pub const LEARNED: &str = r#"
    queue fresh_q;        // unscanned pages (active_count)
    queue aged_q;         // probation: never survived a scan (inactive_count)
    queue surv_q;         // survivors: observed hot at least once (uncounted)

    int w_surv = 0;       // weight: survivor feature
    int w_mod = 0;        // weight: modified-bit feature
    int w_bias = 0;       // weight: constant bias feature
    int w_max = 32;       // saturation bound for every weight
    int scan_limit = 8;   // candidates examined per eviction

    event PageFault() {
        if (free_count == 0) {
            activate Evict;
        }
        page p = dequeue_head(free_queue);
        enqueue_tail(fresh_q, p);
        return p;
    }

    event Evict() {
        // Age fresh pages: clear the fault-time reference bit so a set bit
        // on an aged page is a genuine re-reference (the training label).
        while (active_count > 0) {
            page f = dequeue_head(fresh_q);
            reset_ref(f);
            enqueue_tail(aged_q, f);
        }
        bool done = false;
        int scanned = 0;
        while (!done && scanned < scan_limit) {
            if (inactive_count == 0 && empty(surv_q)) {
                break;
            }
            scanned = scanned + 1;
            // Draw the candidate: probation first, survivors otherwise.
            // Feature extraction into operand slots (DESIGN.md §12).
            int f_surv = 0;
            page p;
            if (inactive_count > 0) {
                p = dequeue_head(aged_q);
            } else {
                p = dequeue_head(surv_q);
                f_surv = 1;
            }
            int f_mod = 0;
            if (modified(p)) {
                f_mod = 1;
            }
            int score = w_surv * f_surv + w_mod * f_mod + w_bias;
            int label = 0;
            if (referenced(p)) {
                label = 1;
            }
            int pred = 0;
            if (score > 0) {
                pred = 1;
            }
            // Perceptron update on mispredict, saturating at +/- w_max.
            int err = label - pred;
            if (err != 0) {
                w_surv = w_surv + err * f_surv;
                w_mod = w_mod + err * f_mod;
                w_bias = w_bias + err;
                if (w_surv > w_max) {
                    w_surv = w_max;
                }
                if (w_surv < -w_max) {
                    w_surv = -w_max;
                }
                if (w_mod > w_max) {
                    w_mod = w_max;
                }
                if (w_mod < -w_max) {
                    w_mod = -w_max;
                }
                if (w_bias > w_max) {
                    w_bias = w_max;
                }
                if (w_bias < -w_max) {
                    w_bias = -w_max;
                }
            }
            if (label == 1) {
                // Observed hot: promote to (or recycle in) the survivors.
                reset_ref(p);
                enqueue_tail(surv_q, p);
            } else if (pred == 1) {
                // Predicted hot: protect in its own class this round (the
                // label corrects the weights if the prediction keeps
                // missing).
                if (f_surv == 1) {
                    enqueue_tail(surv_q, p);
                } else {
                    enqueue_tail(aged_q, p);
                }
            } else {
                if (modified(p)) {
                    flush(p);
                }
                enqueue_head(free_queue, p);
                done = true;
            }
        }
        if (!done) {
            // Scan budget exhausted: evict the oldest probation page
            // outright, or the oldest survivor if probation is empty.
            if (inactive_count > 0) {
                page v = dequeue_head(aged_q);
                if (modified(v)) {
                    flush(v);
                }
                enqueue_head(free_queue, v);
            } else if (!empty(surv_q)) {
                page s = dequeue_head(surv_q);
                if (modified(s)) {
                    flush(s);
                }
                enqueue_head(free_queue, s);
            }
        }
    }

    event ReclaimFrame() {
        int released = 0;
        while (released < reclaim_target && allocated_count > 0) {
            if (free_count == 0) {
                activate Evict;
            }
            page p = dequeue_head(free_queue);
            release(p);
            released = released + 1;
        }
    }
"#;

/// AWRP — adaptive weight ranking over recency and frequency.
///
/// Two ranked classes, both kernel-maintained recency (LRU) queues:
/// `recent_q` holds pages seen once, `frequent_q` pages genuinely
/// re-referenced. Faults stage through an uncounted `fresh_q` and are aged
/// into `recent_q` with the fault-time reference bit cleared, so a set bit
/// later is a real re-reference (same trick as 2Q). Persistent weights
/// `w_r`/`w_f` rank the classes: the eviction scan drains whichever class
/// exceeds its weighted share (recent, unless
/// `active_count * w_f < inactive_count * w_r`). A drained page found
/// referenced is pardoned — promoted or recycled — and each pardon is
/// evidence its class was misranked too cheap, so that class's weight is
/// bumped (ARC-style), clamped to `[1, w_max]`. Per-page scalar ranking is
/// approximated at class granularity: the command set has no per-page
/// integer state, so kernel LRU order within a class stands in for the
/// per-page recency term.
pub const AWRP: &str = r#"
    recency queue recent_q;     // aged, seen once (active_count)
    recency queue frequent_q;   // re-referenced (inactive_count)
    queue fresh_q;              // fault staging, uncounted

    int w_r = 8;          // weight (value) of the recency class
    int w_f = 8;          // weight (value) of the frequency class
    int w_max = 64;       // weights stay in [1, w_max]
    int spin_limit = 8;   // pardons tolerated per eviction

    event PageFault() {
        if (free_count == 0) {
            activate Rank;
        }
        page p = dequeue_head(free_queue);
        enqueue_tail(fresh_q, p);
        return p;
    }

    event Rank() {
        // Age staged faults: clear the fault-time reference bit so a set
        // bit on a ranked page is a genuine re-reference.
        while (!empty(fresh_q)) {
            page f = dequeue_head(fresh_q);
            reset_ref(f);
            enqueue_tail(recent_q, f);
        }
        bool done = false;
        int spins = 0;
        while (!done && spins < spin_limit) {
            spins = spins + 1;
            // Drain the class holding more than its weighted share.
            bool pick_recent = true;
            if (active_count * w_f < inactive_count * w_r) {
                pick_recent = false;
            }
            if (inactive_count == 0) {
                pick_recent = true;
            }
            if (active_count == 0) {
                pick_recent = false;
            }
            if (pick_recent) {
                page p = dequeue_head(recent_q);
                if (referenced(p)) {
                    // Genuine re-reference: promote, and credit the
                    // recency class the weights just tried to drain.
                    reset_ref(p);
                    enqueue_tail(frequent_q, p);
                    w_r = w_r + 1;
                    w_f = w_f - 1;
                } else {
                    if (modified(p)) {
                        flush(p);
                    }
                    enqueue_head(free_queue, p);
                    done = true;
                }
            } else {
                page q = dequeue_head(frequent_q);
                if (referenced(q)) {
                    // Still hot: recycle in class, credit frequency.
                    reset_ref(q);
                    enqueue_tail(frequent_q, q);
                    w_f = w_f + 1;
                    w_r = w_r - 1;
                } else {
                    if (modified(q)) {
                        flush(q);
                    }
                    enqueue_head(free_queue, q);
                    done = true;
                }
            }
            // Clamp both weights to [1, w_max].
            if (w_r < 1) {
                w_r = 1;
            }
            if (w_r > w_max) {
                w_r = w_max;
            }
            if (w_f < 1) {
                w_f = 1;
            }
            if (w_f > w_max) {
                w_f = w_max;
            }
        }
        if (!done) {
            // Pardon budget exhausted: evict strictly by LRU, recent
            // class first.
            if (active_count > 0) {
                lru(recent_q);
            } else {
                lru(frequent_q);
            }
        }
    }

    event ReclaimFrame() {
        int released = 0;
        while (released < reclaim_target && allocated_count > 0) {
            if (free_count == 0) {
                activate Rank;
            }
            page p = dequeue_head(free_queue);
            release(p);
            released = released + 1;
        }
    }
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sources_compile_clean() {
        for (name, src) in [
            ("FIFO", FIFO),
            ("FIFO_SECOND_CHANCE", FIFO_SECOND_CHANCE),
            ("LRU", LRU),
            ("MRU", MRU),
            ("CLOCK", CLOCK),
            ("TWO_QUEUE", TWO_QUEUE),
            ("LEARNED", LEARNED),
            ("AWRP", AWRP),
        ] {
            let p = hipec_lang::compile(src)
                .unwrap_or_else(|e| panic!("{name} failed to compile: {e:?}"));
            hipec_core::validate_program(&p)
                .unwrap_or_else(|e| panic!("{name} failed validation: {e:?}"));
        }
    }
}

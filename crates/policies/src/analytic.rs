//! The paper's closed-form fault-count models for the nested-loops join
//! (§5.3).
//!
//! With an outer table of `OutLSize` bytes scanned `Loop` times, a page
//! size of `PageSize` and `MSize` bytes of allocated memory:
//!
//! * LRU faults on every outer page of every scan:
//!   `PF_l = OutLSize · Loop / PageSize`
//! * MRU faults on every page of the first scan, then only on the part
//!   that does not fit:
//!   `PF_m = ((OutLSize − MSize) · (Loop − 1) + OutLSize) / PageSize`
//! * `Gain = (PF_l − PF_m) · PFHandleTime
//!         = (Loop − 1) · MSize / PageSize · PFHandleTime`

use hipec_sim::SimDuration;

/// Page faults for the LRU-like policy (the paper's `PF_l`).
pub fn pf_lru(outl_bytes: u64, loops: u64, page_size: u64) -> u64 {
    outl_bytes / page_size * loops
}

/// Page faults for the MRU policy with `msize_bytes` of memory (`PF_m`).
///
/// When the outer table fits in memory only the compulsory first-scan
/// faults remain.
pub fn pf_mru(outl_bytes: u64, msize_bytes: u64, loops: u64, page_size: u64) -> u64 {
    let outl_pages = outl_bytes / page_size;
    if outl_bytes <= msize_bytes {
        return outl_pages;
    }
    let extra_pages = (outl_bytes - msize_bytes) / page_size;
    extra_pages * (loops - 1) + outl_pages
}

/// The paper's `Gain` equation: time saved by MRU over LRU.
pub fn gain(
    outl_bytes: u64,
    msize_bytes: u64,
    loops: u64,
    page_size: u64,
    fault_time: SimDuration,
) -> SimDuration {
    let l = pf_lru(outl_bytes, loops, page_size);
    let m = pf_mru(outl_bytes, msize_bytes, loops, page_size);
    fault_time.saturating_mul(l.saturating_sub(m))
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;
    const PAGE: u64 = 4096;

    #[test]
    fn paper_configuration_counts() {
        // §5.3: 40 MB memory, Loop = 64, outer table 60 MB.
        let outl = 60 * MB;
        let msize = 40 * MB;
        assert_eq!(pf_lru(outl, 64, PAGE), 983_040);
        assert_eq!(
            pf_mru(outl, msize, 64, PAGE),
            (20 * MB / PAGE) * 63 + 15_360
        );
    }

    #[test]
    fn below_memory_size_both_policies_only_cold_fault_once_for_mru() {
        let outl = 20 * MB;
        let msize = 40 * MB;
        assert_eq!(pf_mru(outl, msize, 64, PAGE), outl / PAGE);
        // LRU still rescans, but with ample memory the formula's premise
        // (replacement every scan) no longer holds — callers use PF_l only
        // above MSize. The gain formula is zero-safe regardless:
        assert!(pf_lru(outl, 64, PAGE) > pf_mru(outl, msize, 64, PAGE));
    }

    #[test]
    fn gain_matches_the_closed_form_above_msize() {
        // Gain = (Loop − 1) · MSize/PageSize · PFHandleTime for OutL > MSize.
        let outl = 60 * MB;
        let msize = 40 * MB;
        let loops = 64;
        let t = SimDuration::from_ms(8);
        let g = gain(outl, msize, loops, PAGE, t);
        let expected = t.saturating_mul((loops - 1) * (msize / PAGE));
        assert_eq!(g, expected);
    }
}

//! A library of page-replacement policies for HiPEC.
//!
//! Three forms of every policy, mirroring how the paper's artifacts would
//! ship:
//!
//! * [`sources`] — pseudo-code source text (the paper's Figure 4 style),
//!   compiled on demand by the `hipec-lang` translator;
//! * [`asm_listings`] — hand-coded assembler listings (the paper's Table 2
//!   style), for users who bypass the translator;
//! * [`native`] — plain-Rust reference implementations over abstract page
//!   traces, used as baselines and oracles in tests and benchmarks.
//!
//! [`analytic`] provides the paper's closed-form fault-count models for the
//! nested-loops join (PF_l, PF_m and the gain equation from §5.3).

pub mod analytic;
pub mod asm_listings;
pub mod native;
pub mod sources;

use hipec_core::PolicyProgram;

/// The replacement policies shipped with this library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Plain FIFO over a private pool.
    Fifo,
    /// FIFO with second chance (the paper's Figure 4 / Mach default).
    FifoSecondChance,
    /// Exact LRU over a kernel-maintained recency queue.
    Lru,
    /// MRU — the right policy for cyclic scans (paper §5.3).
    Mru,
    /// Clock (second chance on a circulating queue, simple commands only).
    Clock,
    /// Simplified 2Q: FIFO probation + protected LRU (scan-resistant).
    TwoQueue,
    /// LearnedCache: integer-weight perceptron over operand-slot features.
    Learned,
    /// AWRP: adaptive weight ranking over recency/frequency classes.
    Awrp,
}

impl PolicyKind {
    /// All shipped policies.
    pub const ALL: [PolicyKind; 8] = [
        PolicyKind::Fifo,
        PolicyKind::FifoSecondChance,
        PolicyKind::Lru,
        PolicyKind::Mru,
        PolicyKind::Clock,
        PolicyKind::TwoQueue,
        PolicyKind::Learned,
        PolicyKind::Awrp,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Fifo => "FIFO",
            PolicyKind::FifoSecondChance => "FIFO-2ndChance",
            PolicyKind::Lru => "LRU",
            PolicyKind::Mru => "MRU",
            PolicyKind::Clock => "Clock",
            PolicyKind::TwoQueue => "2Q",
            PolicyKind::Learned => "Learned",
            PolicyKind::Awrp => "AWRP",
        }
    }

    /// The pseudo-code source for this policy.
    pub fn source(self) -> &'static str {
        match self {
            PolicyKind::Fifo => sources::FIFO,
            PolicyKind::FifoSecondChance => sources::FIFO_SECOND_CHANCE,
            PolicyKind::Lru => sources::LRU,
            PolicyKind::Mru => sources::MRU,
            PolicyKind::Clock => sources::CLOCK,
            PolicyKind::TwoQueue => sources::TWO_QUEUE,
            PolicyKind::Learned => sources::LEARNED,
            PolicyKind::Awrp => sources::AWRP,
        }
    }

    /// Compiles the policy's pseudo-code into an installable program.
    ///
    /// # Panics
    ///
    /// Never in practice: the shipped sources are compile-tested; a panic
    /// here means the library itself is broken.
    pub fn program(self) -> PolicyProgram {
        hipec_lang::compile(self.source())
            .unwrap_or_else(|e| panic!("shipped policy {self:?} failed to compile: {e:?}"))
    }

    /// Like [`PolicyKind::program`], with the peephole optimizer applied
    /// (fewer commands per fault, identical behaviour).
    pub fn program_optimized(self) -> PolicyProgram {
        hipec_lang::optimize(&self.program())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_shipped_policy_compiles_and_validates() {
        for kind in PolicyKind::ALL {
            let program = kind.program();
            hipec_core::validate_program(&program)
                .unwrap_or_else(|e| panic!("{} failed validation: {e:?}", kind.name()));
            assert!(
                program.total_commands() > 2,
                "{} is non-trivial",
                kind.name()
            );
        }
    }

    /// Every shipped policy lowers completely to native step chains: one
    /// step per source command in every event, so the JIT covers the whole
    /// shipped corpus with no interpreter fallback.
    #[test]
    fn every_shipped_policy_lowers_to_native_steps() {
        for kind in PolicyKind::ALL {
            let program = kind.program();
            let compiled = hipec_core::jit::compile_policy(&program);
            assert_eq!(
                compiled.event_count(),
                program.events.len(),
                "{} events lower one-to-one",
                kind.name()
            );
            assert_eq!(
                compiled.step_count(),
                program.total_commands(),
                "{} lowers one step per source command",
                kind.name()
            );
        }
    }

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<_> = PolicyKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PolicyKind::ALL.len());
    }
}

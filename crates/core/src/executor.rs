//! The application-specific policy executor (paper §4.3.2).
//!
//! Invoked by the page-fault handler or the global frame manager, the
//! executor fetches commands from the installed policy buffer, decodes them
//! and performs the operations — in kernel mode, with no kernel/user
//! crossing. Each command charges [`hipec_sim::CostModel::cmd_fetch_decode`]
//! plus the native cost of the operation it performs, so interpreted
//! policies pay exactly the decode overhead the paper measures on top of
//! the work a native policy would do.
//!
//! Execution is *fuel-limited*: a policy that exceeds its per-invocation
//! budget is marked runaway and sits "stuck" until the security checker's
//! timeout detection terminates the application, as in the paper.

use hipec_vm::{FrameId, QueueId};

use crate::command::{ArithOp, CompOp, JumpMode, LogicOp, OpCode, PageBit, QueueEnd, NO_OPERAND};
use crate::error::PolicyFault;
use crate::kernel::HipecKernel;
use crate::operand::OperandSlot;

/// Executor resource limits.
#[derive(Debug, Clone, Copy)]
pub struct ExecLimits {
    /// Commands one top-level invocation may interpret.
    pub fuel: u32,
    /// Maximum `Activate` nesting depth.
    pub max_depth: u8,
}

impl Default for ExecLimits {
    fn default() -> Self {
        ExecLimits {
            fuel: 100_000,
            max_depth: 8,
        }
    }
}

/// The value a policy event returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecValue {
    /// `Return` with no operand.
    None,
    /// A page (the `PageFault` contract).
    Page(FrameId),
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
}

/// Which execution backend [`HipecKernel::run_event`] dispatches to.
///
/// Both backends observe the same accounting contract — per installed
/// command, `cmd_fetch_decode` plus the operation's native charges — so
/// traces, [`crate::KernelStats`] and fuel behavior are bit-identical
/// either way. The interpreter is the reference implementation; the native
/// backend ([`crate::jit`]) exists purely to cut host-CPU dispatch cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecBackend {
    /// Fetch, decode and dispatch each 32-bit command on every execution.
    Interpreter,
    /// Pre-lowered fn-pointer step chains, installed at `vm_*_hipec` time
    /// (see [`crate::jit`]). Containers without a compiled form fall back
    /// to the interpreter.
    Native,
}

impl ExecBackend {
    /// Stable machine-readable name (bench `--json` output).
    pub fn name(self) -> &'static str {
        match self {
            ExecBackend::Interpreter => "interpreter",
            ExecBackend::Native => "native",
        }
    }
}

impl Default for ExecBackend {
    /// Native when the `jit` feature (default-on) is compiled in, so
    /// regular kernels get compiled dispatch; interpreter otherwise.
    fn default() -> Self {
        if cfg!(feature = "jit") {
            ExecBackend::Native
        } else {
            ExecBackend::Interpreter
        }
    }
}

impl HipecKernel {
    /// Interprets one event of container `cidx`'s policy.
    ///
    /// `depth` is the `Activate` nesting level; `fuel` is shared across the
    /// whole invocation.
    pub(crate) fn run_event(
        &mut self,
        cidx: usize,
        event: u8,
        depth: u8,
        fuel: &mut u32,
    ) -> Result<ExecValue, PolicyFault> {
        let before = self.containers[cidx].stats.commands;
        #[cfg(feature = "metrics")]
        let entered = self.vm.now();
        let result = self.run_event_inner(cidx, event, depth, fuel);
        let delta = self.containers[cidx].stats.commands - before;
        // Top-level events get one duration sample each; a nested
        // `Activate` is part of its parent's span, not a sample of its own.
        #[cfg(feature = "metrics")]
        if depth == 0 {
            let spent = self.vm.now().since(entered);
            self.containers[cidx].lat_event.record(spent);
        }
        self.emit(crate::trace::TraceEvent::PolicyEvent {
            container: self.containers[cidx].key,
            event,
            commands: delta.min(u32::MAX as u64) as u32,
            ok: result.is_ok(),
        });
        result
    }

    /// Backend dispatch: containers with a compiled form run natively when
    /// the kernel's backend is [`ExecBackend::Native`]; everything else
    /// takes the reference interpreter. Shared by top-level invocations and
    /// nested `Activate`s, so mixed programs stay consistent.
    fn run_event_inner(
        &mut self,
        cidx: usize,
        event: u8,
        depth: u8,
        fuel: &mut u32,
    ) -> Result<ExecValue, PolicyFault> {
        #[cfg(feature = "jit")]
        if self.backend == ExecBackend::Native {
            // Take-and-restore instead of `Arc::clone`: moving the pointer
            // out avoids two atomic refcount updates per event. While the
            // event runs the container shows no compiled form, so a nested
            // `Activate` of the same container takes the interpreter —
            // bit-identical by contract (enforced by tests/jit.rs).
            if let Some(compiled) = self.containers[cidx].compiled.take() {
                let result = self.run_event_native(cidx, event, depth, fuel, &compiled);
                self.containers[cidx].compiled = Some(compiled);
                return result;
            }
        }
        self.run_event_interp(cidx, event, depth, fuel)
    }

    /// The reference interpreter (paper §4.3.2): fetch, decode and execute
    /// one 32-bit command at a time. The native backend in [`crate::jit`]
    /// must stay bit-compatible with this loop's charges, faults, profile
    /// attribution and condition-flag behavior.
    fn run_event_interp(
        &mut self,
        cidx: usize,
        event: u8,
        depth: u8,
        fuel: &mut u32,
    ) -> Result<ExecValue, PolicyFault> {
        let seg = self.containers[cidx]
            .program
            .event(event)
            .cloned()
            .ok_or(PolicyFault::UnknownEvent(event))?;
        self.containers[cidx].stats.events += 1;
        let mut cc: usize = 0;
        let mut cond = false;
        loop {
            if cc >= seg.len() {
                return Err(PolicyFault::MissingReturn);
            }
            if *fuel == 0 {
                self.containers[cidx].runaway = true;
                return Err(PolicyFault::OutOfFuel);
            }
            *fuel -= 1;
            let cmd = seg[cc];
            // Profile anchor: everything the command charges (decode, queue
            // ops, I/O wait) lands between here and the attribution point.
            let t0 = self.vm.now();
            self.vm.charge(self.vm.cost.cmd_fetch_decode);
            self.containers[cidx].stats.commands += 1;
            let op = cmd.opcode().ok_or(PolicyFault::BadOpcode { cmd, cc })?;
            self.containers[cidx].op_profile.bump(op);
            let mut new_cond = false;
            match op {
                OpCode::Return => {
                    // Resolve the value first: a faulting Return (empty page
                    // slot, queue operand) is counted but not attributed,
                    // like every other faulting command.
                    let value = if cmd.a() == NO_OPERAND {
                        ExecValue::None
                    } else {
                        match *self.slot(cidx, cmd.a(), cc)? {
                            OperandSlot::Int(v) => ExecValue::Int(v),
                            OperandSlot::Bool(b) => ExecValue::Bool(b),
                            OperandSlot::Page(Some(f)) => ExecValue::Page(f),
                            OperandSlot::Page(None) => {
                                return Err(PolicyFault::EmptyPageSlot { index: cmd.a(), cc })
                            }
                            OperandSlot::Kernel(v) => {
                                ExecValue::Int(self.containers[cidx].kernel_var(v, &self.vm))
                            }
                            OperandSlot::Queue(_) => {
                                return Err(PolicyFault::TypeMismatch {
                                    expected: "returnable value",
                                    found: "queue",
                                    cc,
                                })
                            }
                        }
                    };
                    let spent = self.vm.now().since(t0);
                    self.profile_op(cidx, op, spent);
                    return Ok(value);
                }
                OpCode::Arith => {
                    let aop = ArithOp::from_u8(cmd.c()).ok_or(PolicyFault::BadFlag { cmd, cc })?;
                    let a = self.read_int(cidx, cmd.a(), cc)?;
                    let b = match aop {
                        ArithOp::Inc | ArithOp::Dec => 1,
                        _ => self.read_int(cidx, cmd.b(), cc)?,
                    };
                    let v = match aop {
                        ArithOp::Add | ArithOp::Inc => a.wrapping_add(b),
                        ArithOp::Sub | ArithOp::Dec => a.wrapping_sub(b),
                        ArithOp::Mul => a.wrapping_mul(b),
                        ArithOp::Div => {
                            if b == 0 {
                                return Err(PolicyFault::DivideByZero { cc });
                            }
                            a.wrapping_div(b)
                        }
                        ArithOp::Mod => {
                            if b == 0 {
                                return Err(PolicyFault::DivideByZero { cc });
                            }
                            a.wrapping_rem(b)
                        }
                        ArithOp::Mov => b,
                    };
                    self.write_int(cidx, cmd.a(), v, cc)?;
                }
                OpCode::Comp => {
                    let cop = CompOp::from_u8(cmd.c()).ok_or(PolicyFault::BadFlag { cmd, cc })?;
                    let a = self.read_int(cidx, cmd.a(), cc)?;
                    let b = self.read_int(cidx, cmd.b(), cc)?;
                    new_cond = cop.eval(a, b);
                }
                OpCode::Logic => {
                    let lop = LogicOp::from_u8(cmd.c()).ok_or(PolicyFault::BadFlag { cmd, cc })?;
                    match lop {
                        LogicOp::And => {
                            new_cond = self.read_bool(cidx, cmd.a(), cc)?
                                && self.read_bool(cidx, cmd.b(), cc)?
                        }
                        LogicOp::Or => {
                            new_cond = self.read_bool(cidx, cmd.a(), cc)?
                                || self.read_bool(cidx, cmd.b(), cc)?
                        }
                        LogicOp::Xor => {
                            new_cond = self.read_bool(cidx, cmd.a(), cc)?
                                ^ self.read_bool(cidx, cmd.b(), cc)?
                        }
                        LogicOp::Not => new_cond = !self.read_bool(cidx, cmd.a(), cc)?,
                        LogicOp::StoreCond => {
                            self.write_bool(cidx, cmd.a(), cond, cc)?;
                            new_cond = cond;
                        }
                        LogicOp::LoadCond => new_cond = self.read_bool(cidx, cmd.a(), cc)?,
                    }
                }
                OpCode::EmptyQ => {
                    let q = self.read_queue(cidx, cmd.a(), cc)?;
                    new_cond = self.vm.frames.queue_is_empty(q)?;
                }
                OpCode::InQ => {
                    let q = self.read_queue(cidx, cmd.a(), cc)?;
                    let page = self.read_page(cidx, cmd.b(), cc)?;
                    new_cond = self.vm.frames.queue_of(page)? == Some(q);
                }
                OpCode::Jump => {
                    let mode =
                        JumpMode::from_u8(cmd.a()).ok_or(PolicyFault::BadFlag { cmd, cc })?;
                    let take = match mode {
                        JumpMode::IfFalse => !cond,
                        JumpMode::Always => true,
                        JumpMode::IfTrue => cond,
                    };
                    if take {
                        let target = cmd.jump_target();
                        if (target as usize) >= seg.len() {
                            return Err(PolicyFault::JumpOutOfRange {
                                target,
                                len: seg.len(),
                            });
                        }
                        cc = target as usize;
                        cond = false;
                        // Taken jumps bypass the loop tail; attribute here.
                        let spent = self.vm.now().since(t0);
                        self.profile_op(cidx, op, spent);
                        continue;
                    }
                }
                OpCode::DeQueue => {
                    let q = self.read_queue(cidx, cmd.b(), cc)?;
                    let end = QueueEnd::from_u8(cmd.c()).ok_or(PolicyFault::BadFlag { cmd, cc })?;
                    let page = match end {
                        QueueEnd::Head => self.vm.frames.dequeue_head(q)?,
                        QueueEnd::Tail => self.vm.frames.dequeue_tail(q)?,
                    };
                    self.vm.charge(self.vm.cost.queue_op);
                    self.write_page(cidx, cmd.a(), page, cc)?;
                }
                OpCode::EnQueue => {
                    let page = self.read_page(cidx, cmd.a(), cc)?;
                    let q = self.read_queue(cidx, cmd.b(), cc)?;
                    let end = QueueEnd::from_u8(cmd.c()).ok_or(PolicyFault::BadFlag { cmd, cc })?;
                    // Pushing onto the container's free queue is the eviction
                    // point: the page must be clean and gets unmapped.
                    if q == self.containers[cidx].free_q {
                        let frame = self.vm.frames.frame(page)?;
                        if frame.mod_bit {
                            return Err(PolicyFault::DirtyFree);
                        }
                        if frame.owner.is_some() {
                            self.vm.evict_frame(page)?;
                        }
                    }
                    if self.vm.frames.queue_of(page)?.is_some() {
                        self.vm.frames.remove(page)?;
                        self.vm.charge(self.vm.cost.queue_op);
                    }
                    match end {
                        QueueEnd::Head => self.vm.frames.enqueue_head(q, page)?,
                        QueueEnd::Tail => self.vm.frames.enqueue_tail(q, page)?,
                    }
                    self.vm.charge(self.vm.cost.queue_op);
                }
                OpCode::Request => {
                    let n = self.read_int(cidx, cmd.a(), cc)?;
                    let granted = self.gfm_request(cidx, n.max(0) as u64)?;
                    if cmd.b() != NO_OPERAND {
                        self.write_int(cidx, cmd.b(), granted as i64, cc)?;
                    }
                    new_cond = granted == n.max(0) as u64 && n > 0;
                }
                OpCode::Release => {
                    let page = self.read_page(cidx, cmd.a(), cc)?;
                    self.gfm_release(cidx, page)?;
                    self.write_page(cidx, cmd.a(), None, cc)?;
                }
                OpCode::Flush => {
                    let page = self.read_page(cidx, cmd.a(), cc)?;
                    let replacement = self.flush_exchange(cidx, page)?;
                    self.write_page(cidx, cmd.a(), Some(replacement), cc)?;
                }
                OpCode::Set => {
                    let page = self.read_page(cidx, cmd.a(), cc)?;
                    let bit = PageBit::from_u8(cmd.b()).ok_or(PolicyFault::BadFlag { cmd, cc })?;
                    let value = match cmd.c() {
                        0 => false,
                        1 => true,
                        _ => return Err(PolicyFault::BadFlag { cmd, cc }),
                    };
                    self.vm.charge(self.vm.cost.bit_op);
                    let frame = self.vm.frames.frame_mut(page)?;
                    match bit {
                        PageBit::Reference => frame.ref_bit = value,
                        PageBit::Modify => {
                            if !value && frame.mod_bit {
                                // Clearing the modify bit of a dirty page
                                // would lose data; policies must Flush.
                                return Err(PolicyFault::UnsafeModClear);
                            }
                            frame.mod_bit = value;
                        }
                    }
                }
                OpCode::Ref => {
                    let page = self.read_page(cidx, cmd.a(), cc)?;
                    self.vm.charge(self.vm.cost.bit_op);
                    new_cond = self.vm.frames.frame(page)?.ref_bit;
                }
                OpCode::Mod => {
                    let page = self.read_page(cidx, cmd.a(), cc)?;
                    self.vm.charge(self.vm.cost.bit_op);
                    new_cond = self.vm.frames.frame(page)?.mod_bit;
                }
                OpCode::Find => {
                    let vaddr = self.read_int(cidx, cmd.b(), cc)?;
                    let task = self.containers[cidx].task;
                    let vpage = (vaddr.max(0) as u64) / hipec_vm::PAGE_SIZE;
                    let frame = self
                        .vm
                        .task(task)
                        .map_err(PolicyFault::Vm)?
                        .translate(vpage);
                    self.vm.charge(self.vm.cost.mem_touch);
                    self.write_page(cidx, cmd.a(), frame, cc)?;
                }
                OpCode::Activate => {
                    if depth >= self.limits.max_depth {
                        return Err(PolicyFault::DepthExceeded);
                    }
                    // Procedure-call semantics: the nested event's return
                    // value is discarded.
                    self.run_event(cidx, cmd.a(), depth + 1, fuel)?;
                }
                OpCode::Fifo | OpCode::Lru | OpCode::Mru => {
                    let q = self.read_queue(cidx, cmd.a(), cc)?;
                    let victim = match op {
                        // FIFO and LRU reclaim the head (oldest-enqueued /
                        // least-recently-used of a recency queue); MRU the
                        // tail.
                        OpCode::Fifo | OpCode::Lru => self.vm.frames.dequeue_head(q)?,
                        _ => self.vm.frames.dequeue_tail(q)?,
                    };
                    self.vm.charge(self.vm.cost.queue_op);
                    match victim {
                        Some(v) => {
                            let freed = self.reclaim_one(cidx, v)?;
                            if cmd.b() != NO_OPERAND {
                                self.write_page(cidx, cmd.b(), Some(freed), cc)?;
                            }
                            new_cond = true;
                        }
                        None => new_cond = false,
                    }
                }
                OpCode::Migrate => {
                    let target = self.read_int(cidx, cmd.a(), cc)?;
                    self.migrate_frame(cidx, target)?;
                }
            }
            let spent = self.vm.now().since(t0);
            self.profile_op(cidx, op, spent);
            cond = if op.is_test() { new_cond } else { false };
            cc += 1;
        }
    }

    /// Turns a replacement victim into a clean free frame on the container's
    /// free queue (the body of the `FIFO`/`LRU`/`MRU` complex commands).
    /// Returns the frame that landed on the free queue.
    pub(crate) fn reclaim_one(
        &mut self,
        cidx: usize,
        victim: FrameId,
    ) -> Result<FrameId, PolicyFault> {
        self.vm.charge(self.vm.cost.bit_op);
        let dirty = self.vm.frames.frame(victim)?.mod_bit;
        let freed = if dirty {
            self.flush_exchange(cidx, victim)?
        } else {
            self.vm.evict_frame(victim)?;
            victim
        };
        let free_q = self.containers[cidx].free_q;
        self.vm.frames.enqueue_tail(free_q, freed)?;
        self.vm.charge(self.vm.cost.queue_op);
        Ok(freed)
    }

    // --- Typed operand access ------------------------------------------------

    pub(crate) fn slot(
        &self,
        cidx: usize,
        idx: u8,
        cc: usize,
    ) -> Result<&OperandSlot, PolicyFault> {
        self.containers[cidx]
            .operands
            .get(idx as usize)
            .ok_or(PolicyFault::BadOperandIndex { index: idx, cc })
    }

    pub(crate) fn read_int(&self, cidx: usize, idx: u8, cc: usize) -> Result<i64, PolicyFault> {
        match *self.slot(cidx, idx, cc)? {
            OperandSlot::Int(v) => Ok(v),
            OperandSlot::Kernel(v) => Ok(self.containers[cidx].kernel_var(v, &self.vm)),
            ref s => Err(PolicyFault::TypeMismatch {
                expected: "int",
                found: s.type_name(),
                cc,
            }),
        }
    }

    pub(crate) fn write_int(
        &mut self,
        cidx: usize,
        idx: u8,
        v: i64,
        cc: usize,
    ) -> Result<(), PolicyFault> {
        match self.slot(cidx, idx, cc)? {
            OperandSlot::Int(_) => {
                self.containers[cidx].operands[idx as usize] = OperandSlot::Int(v);
                Ok(())
            }
            OperandSlot::Kernel(_) => Err(PolicyFault::ReadOnlySlot { index: idx, cc }),
            s => Err(PolicyFault::TypeMismatch {
                expected: "int",
                found: s.type_name(),
                cc,
            }),
        }
    }

    pub(crate) fn read_bool(&self, cidx: usize, idx: u8, cc: usize) -> Result<bool, PolicyFault> {
        match *self.slot(cidx, idx, cc)? {
            OperandSlot::Bool(b) => Ok(b),
            ref s => Err(PolicyFault::TypeMismatch {
                expected: "bool",
                found: s.type_name(),
                cc,
            }),
        }
    }

    pub(crate) fn write_bool(
        &mut self,
        cidx: usize,
        idx: u8,
        v: bool,
        cc: usize,
    ) -> Result<(), PolicyFault> {
        match self.slot(cidx, idx, cc)? {
            OperandSlot::Bool(_) => {
                self.containers[cidx].operands[idx as usize] = OperandSlot::Bool(v);
                Ok(())
            }
            s => Err(PolicyFault::TypeMismatch {
                expected: "bool",
                found: s.type_name(),
                cc,
            }),
        }
    }

    pub(crate) fn read_page(
        &self,
        cidx: usize,
        idx: u8,
        cc: usize,
    ) -> Result<FrameId, PolicyFault> {
        match *self.slot(cidx, idx, cc)? {
            OperandSlot::Page(Some(f)) => Ok(f),
            OperandSlot::Page(None) => Err(PolicyFault::EmptyPageSlot { index: idx, cc }),
            ref s => Err(PolicyFault::TypeMismatch {
                expected: "page",
                found: s.type_name(),
                cc,
            }),
        }
    }

    pub(crate) fn write_page(
        &mut self,
        cidx: usize,
        idx: u8,
        v: Option<FrameId>,
        cc: usize,
    ) -> Result<(), PolicyFault> {
        let prev = match *self.slot(cidx, idx, cc)? {
            OperandSlot::Page(p) => p,
            ref s => {
                return Err(PolicyFault::TypeMismatch {
                    expected: "page",
                    found: s.type_name(),
                    cc,
                })
            }
        };
        if let Some(old) = prev {
            if v != Some(old) {
                // Overwriting the slot may destroy the last handle to a
                // parked frame; the kernel reclaims it rather than letting
                // a buggy policy leak it (see `reclaim_orphaned_frame`).
                self.reclaim_orphaned_frame(cidx, idx, old);
            }
        }
        self.containers[cidx].operands[idx as usize] = OperandSlot::Page(v);
        Ok(())
    }

    pub(crate) fn read_queue(
        &self,
        cidx: usize,
        idx: u8,
        cc: usize,
    ) -> Result<QueueId, PolicyFault> {
        match *self.slot(cidx, idx, cc)? {
            OperandSlot::Queue(q) => Ok(q),
            ref s => Err(PolicyFault::TypeMismatch {
                expected: "queue",
                found: s.type_name(),
                cc,
            }),
        }
    }
}

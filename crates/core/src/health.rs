//! Container health tracking: policy quarantine and default-management
//! fallback.
//!
//! A policy that keeps tripping over a faulty paging device — surfaced
//! device faults, abandoned write-backs, device errors mid-event — is not
//! necessarily *malicious*, so killing it (the security checker's answer to
//! bad policies) would punish the application for the environment. Instead
//! each container carries a [`ContainerHealth`] state machine:
//!
//! ```text
//!   Healthy --(strikes >= degrade_after)--> Degraded
//!   Degraded --(strikes >= quarantine_after, or a timeout)--> Quarantined
//!   Degraded --(a clean checker interval decays strikes)--> Healthy
//!   Quarantined --(probation_intervals clean intervals,
//!                  breaker closed, restore sweep succeeds)--> Healthy
//! ```
//!
//! **Quarantine** stops HiPEC execution for the container without tearing
//! it down: its frames return to the global pool, its region reverts to the
//! built-in default FIFO manager (the object's container link is cleared,
//! so the pageout daemon's kernel-managed queues take over), but the
//! container keeps its program, queues and `minFrame` reservation.
//! **Probation** runs on the security checker's wakeup tick: after enough
//! strike-free intervals — and only once the circuit breaker of the device
//! the region pages against has closed — [`HipecKernel::try_restore`] sweeps
//! the region's default-managed pages back out, re-admits a first tranche of
//! the `minFrame` reservation and re-mounts the policy. The remaining
//! reservation ramps in one tranche per clean interval
//! ([`HealthPolicy::restore_tranche`]), so a just-recovered device is not
//! hit with the whole re-fault burst at once.

use hipec_vm::FrameId;

use crate::error::HipecError;
use crate::kernel::HipecKernel;
use crate::trace::TraceEvent;

/// Where a container is in the degradation lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HealthState {
    /// Executing normally.
    #[default]
    Healthy,
    /// Accumulating fault strikes; one clean checker interval decays them.
    Degraded,
    /// HiPEC execution suspended; the region runs under default management.
    Quarantined,
}

/// Per-container health record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ContainerHealth {
    /// Current state.
    pub state: HealthState,
    /// Fault strikes outstanding (decayed by clean checker intervals).
    pub strikes: u64,
    /// Strikes recorded during the current checker interval.
    pub interval_strikes: u64,
    /// Consecutive strike-free checker intervals while quarantined.
    pub clean_intervals: u32,
    /// Times this container entered quarantine.
    pub quarantines: u64,
    /// Times it was restored to HiPEC management.
    pub restores: u64,
}

impl ContainerHealth {
    /// True while the container's policy is suspended.
    pub fn quarantined(&self) -> bool {
        self.state == HealthState::Quarantined
    }
}

/// Kernel-wide thresholds of the health state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Strikes at which a healthy container degrades.
    pub degrade_after: u64,
    /// Strikes at which a degraded container is quarantined.
    pub quarantine_after: u64,
    /// Clean checker intervals required before a restore attempt.
    pub probation_intervals: u32,
    /// Frames a restore re-admits per tranche. The first tranche lands with
    /// the restore itself; each subsequent clean checker interval admits
    /// another until the `minFrame` reservation is whole. Re-admitting the
    /// whole reservation at once floods a freshly recovered device with the
    /// backlog of faults the quarantined region accumulated; ramping spreads
    /// that burst across probation-paced intervals. `0` disables ramping
    /// (single-sweep re-admission).
    pub restore_tranche: u64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            degrade_after: 3,
            quarantine_after: 8,
            probation_intervals: 2,
            restore_tranche: 2,
        }
    }
}

impl HipecKernel {
    /// Records one environmental fault strike against container `cidx`
    /// (surfaced device fault, abandoned write-back, device error
    /// mid-event), advancing the health state machine.
    pub(crate) fn note_strike(&mut self, cidx: usize) {
        let Some(c) = self.containers.get(cidx) else {
            return;
        };
        if c.terminated || c.health.quarantined() {
            return;
        }
        self.containers[cidx].health.strikes += 1;
        self.containers[cidx].health.interval_strikes += 1;
        let strikes = self.containers[cidx].health.strikes;
        match self.containers[cidx].health.state {
            HealthState::Healthy if strikes >= self.health_policy.degrade_after => {
                self.containers[cidx].health.state = HealthState::Degraded;
                self.vm.stats.bump("hipec_degrades");
                self.emit(TraceEvent::HealthDegraded {
                    container: self.containers[cidx].key,
                    strikes,
                });
            }
            HealthState::Degraded if strikes >= self.health_policy.quarantine_after => {
                self.quarantine(cidx);
            }
            _ => {}
        }
    }

    /// Suspends container `cidx`'s policy and reverts its region to the
    /// default FIFO manager.
    ///
    /// Unlike [`HipecKernel::kill`] the container is *not* terminated: its
    /// program, queues and `minFrame` reservation survive for probation.
    /// Every frame it holds returns to the global pool (dirty pages whose
    /// flush submission the device refuses stay on its books, exactly as on
    /// the kill path, and are retried by the restore sweep), and clearing
    /// the object's container link routes subsequent faults through the
    /// default pageout path.
    pub(crate) fn quarantine(&mut self, cidx: usize) {
        let Some(c) = self.containers.get(cidx) else {
            return;
        };
        if c.terminated || c.health.quarantined() {
            return;
        }
        self.containers[cidx].health.state = HealthState::Quarantined;
        self.containers[cidx].health.clean_intervals = 0;
        self.containers[cidx].health.quarantines += 1;
        self.containers[cidx].exec_started = None;
        self.containers[cidx].runaway = false;
        // A ramp interrupted by re-quarantine is void: the next restore
        // starts a fresh one.
        self.containers[cidx].restore_pending = 0;
        let reclaimed = self.reclaim_all_frames(cidx);
        let object = self.containers[cidx].object;
        if let Ok(obj) = self.vm.object_mut(object) {
            obj.container = None;
        }
        self.revert_stranded_frames(cidx);
        self.vm.stats.bump("hipec_quarantines");
        self.emit(TraceEvent::Quarantined {
            container: self.containers[cidx].key,
            reclaimed,
        });
    }

    /// One probation pass over every live container, run on each security
    /// checker wakeup (the virtual-time interval the thresholds count in).
    ///
    /// Healthy containers just reset their interval counter; degraded ones
    /// decay a strike per clean interval and recover once below the degrade
    /// threshold; quarantined ones accumulate clean intervals toward a
    /// restore attempt.
    pub(crate) fn health_tick(&mut self) {
        let n = self.containers.len();
        let mut ramp_ready = vec![false; n];
        for (i, ready) in ramp_ready.iter_mut().enumerate() {
            if self.containers[i].terminated {
                continue;
            }
            let clean = self.containers[i].health.interval_strikes == 0;
            self.containers[i].health.interval_strikes = 0;
            match self.containers[i].health.state {
                HealthState::Healthy => {
                    // Ramped restore: each clean interval re-admits another
                    // tranche of the still-owed `minFrame` reservation.
                    *ready = clean && self.containers[i].restore_pending > 0;
                }
                HealthState::Degraded => {
                    if clean {
                        let strikes = self.containers[i].health.strikes.saturating_sub(1);
                        self.containers[i].health.strikes = strikes;
                        if strikes < self.health_policy.degrade_after {
                            self.containers[i].health.state = HealthState::Healthy;
                        }
                    }
                }
                HealthState::Quarantined => {
                    if clean {
                        self.containers[i].health.clean_intervals += 1;
                    } else {
                        self.containers[i].health.clean_intervals = 0;
                    }
                    if self.containers[i].health.clean_intervals
                        >= self.health_policy.probation_intervals
                    {
                        let _ = self.try_restore(i);
                    }
                }
            }
        }
        // Tranche order rotates one container per tick: when `admit_frames`
        // can only cover some of the concurrent ramps, each takes its turn
        // at the front instead of the lowest id draining the pool every
        // interval. Purely a function of kernel state (the cursor advances
        // with the tick count), so replay is bit-identical.
        if n > 0 {
            let start = self.ramp_cursor % n;
            for off in 0..n {
                let i = (start + off) % n;
                if ramp_ready[i] {
                    self.ramp_tick(i);
                }
            }
            self.ramp_cursor = (self.ramp_cursor + 1) % n;
        }
    }

    /// Admits one tranche of a ramping restore's outstanding `minFrame` debt
    /// (run by [`HipecKernel::health_tick`] on clean intervals only).
    /// Admission failure is not an error — the tranche simply waits for the
    /// next clean interval.
    fn ramp_tick(&mut self, cidx: usize) {
        let tranche = self
            .health_policy
            .restore_tranche
            .max(1)
            .min(self.containers[cidx].restore_pending);
        let Ok(frames) = self.admit_frames(tranche) else {
            return;
        };
        let admitted = frames.len() as u64;
        let free_q = self.containers[cidx].free_q;
        for f in frames {
            if self.vm.frames.enqueue_tail(free_q, f).is_err() {
                return;
            }
        }
        self.containers[cidx].allocated += admitted;
        self.gfm.total_specific += admitted;
        self.containers[cidx].restore_pending -= admitted;
        let outstanding = self.containers[cidx].restore_pending;
        self.emit(TraceEvent::RestoreRamp {
            container: self.containers[cidx].key,
            admitted,
            outstanding,
        });
    }

    /// Attempts to re-admit a quarantined container's policy. Returns true
    /// on success; a false return leaves the container quarantined and the
    /// next probation tick retries.
    ///
    /// Preconditions enforced here: the device circuit breaker must be
    /// closed (restoring onto a faulty device would immediately re-strike),
    /// any frames stuck on the container's books from the quarantine sweep
    /// must now be reclaimable, and the region's default-managed resident
    /// pages must all leave the global queues (flushed if dirty, freed if
    /// clean) before the container link goes back up — frames on the global
    /// active/inactive queues must never belong to a container-linked
    /// object (invariant 5).
    pub(crate) fn try_restore(&mut self, cidx: usize) -> bool {
        let Some(c) = self.containers.get(cidx) else {
            return false;
        };
        if c.terminated || !c.health.quarantined() {
            return false;
        }
        // Only the breaker of the device this region pages against gates the
        // restore: a storm on some other backing device is not this
        // container's problem.
        let device = match self.vm.device_of(c.object) {
            Ok(d) => d,
            Err(_) => return false,
        };
        if !self.vm.breaker(device).is_closed() {
            return false;
        }
        // Frames the quarantine sweep could not take (dirty pages the open
        // breaker refused to flush): the device is healthy now, retry.
        if self.containers[cidx].allocated > 0 {
            let _ = self.reclaim_all_frames(cidx);
            if self.containers[cidx].allocated > 0 {
                return false;
            }
        }
        let object = self.containers[cidx].object;
        let mut resident: Vec<FrameId> = match self.vm.object(object) {
            Ok(o) => o.resident.values().copied().collect(),
            Err(_) => return false,
        };
        // The residency map is a HashMap; sort for replay-stable order.
        resident.sort_unstable();
        for f in resident {
            let Ok(frame) = self.vm.frames.frame(f) else {
                return false;
            };
            if frame.busy || frame.wired {
                return false;
            }
            if frame.mod_bit {
                if self.vm.start_flush(f).is_err() {
                    return false;
                }
            } else if self.vm.evict_frame(f).is_err() || self.vm.return_frame(f).is_err() {
                return false;
            }
        }
        // Re-admit the minFrame reservation, reclaiming from other specific
        // applications if the free pool alone cannot cover it. With ramping
        // enabled only the first tranche lands here; the remainder is owed
        // via `restore_pending` and admitted a tranche per clean interval by
        // `health_tick`, so a freshly recovered device sees a paced trickle
        // of re-faults instead of the full post-restore burst.
        let want = self.containers[cidx].min_frames;
        let first = match self.health_policy.restore_tranche {
            0 => want,
            t => t.min(want),
        };
        let frames = match self.admit_frames(first) {
            Ok(fs) => fs,
            Err(HipecError::MinFramesUnavailable { .. }) => return false,
            Err(_) => return false,
        };
        let readmitted = frames.len() as u64;
        let free_q = self.containers[cidx].free_q;
        for f in frames {
            if self.vm.frames.enqueue_tail(free_q, f).is_err() {
                return false;
            }
        }
        self.containers[cidx].allocated += readmitted;
        self.gfm.total_specific += readmitted;
        self.containers[cidx].restore_pending = want.saturating_sub(readmitted);
        if let Ok(obj) = self.vm.object_mut(object) {
            obj.container = Some(self.containers[cidx].key);
        }
        let health = &mut self.containers[cidx].health;
        health.state = HealthState::Healthy;
        health.strikes = 0;
        health.interval_strikes = 0;
        health.clean_intervals = 0;
        health.restores += 1;
        self.vm.stats.bump("hipec_restores");
        self.emit(TraceEvent::FallbackRestored {
            container: self.containers[cidx].key,
            readmitted,
        });
        true
    }
}

#[cfg(test)]
mod tests {
    use hipec_vm::{DeviceId, KernelParams, PAGE_SIZE};

    use super::*;
    use crate::command::{build, NO_OPERAND};
    use crate::kernel::{ContainerKey, HipecKernel};
    use crate::operand::OperandDecl;
    use crate::program::PolicyProgram;

    fn small_kernel() -> HipecKernel {
        let mut p = KernelParams::paper_64mb();
        p.total_frames = 64;
        p.wired_frames = 4;
        p.free_target = 8;
        p.free_min = 4;
        p.inactive_target = 12;
        HipecKernel::new(p)
    }

    fn idle_program() -> PolicyProgram {
        let mut p = PolicyProgram::new();
        p.declare(OperandDecl::FreeQueue);
        p.declare(OperandDecl::Page);
        p.add_event("PageFault", vec![build::ret(NO_OPERAND)]);
        p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
        p
    }

    fn install(k: &mut HipecKernel, min: u64) -> ContainerKey {
        let t = k.vm.create_task();
        let (_, _, key) = k
            .vm_allocate_hipec(t, 32 * PAGE_SIZE, idle_program(), min)
            .expect("install");
        key
    }

    #[test]
    fn strikes_degrade_then_quarantine() {
        let mut k = small_kernel();
        let key = install(&mut k, 4);
        let i = key.0 as usize;
        for _ in 0..2 {
            k.note_strike(i);
        }
        assert_eq!(k.containers[i].health.state, HealthState::Healthy);
        k.note_strike(i);
        assert_eq!(k.containers[i].health.state, HealthState::Degraded);
        for _ in 0..4 {
            k.note_strike(i);
        }
        assert_eq!(k.containers[i].health.state, HealthState::Degraded);
        k.note_strike(i);
        assert_eq!(k.containers[i].health.state, HealthState::Quarantined);
        assert_eq!(k.containers[i].health.quarantines, 1);
        assert!(!k.containers[i].terminated, "quarantine is not a kill");
        assert_eq!(k.containers[i].allocated, 0, "frames returned to the pool");
        assert_eq!(
            k.vm.object(k.containers[i].object)
                .expect("object lives")
                .container,
            None,
            "region reverts to default management"
        );
        k.check_invariants().expect("consistent after quarantine");
    }

    #[test]
    fn clean_intervals_decay_degraded_back_to_healthy() {
        let mut k = small_kernel();
        let key = install(&mut k, 4);
        let i = key.0 as usize;
        for _ in 0..3 {
            k.note_strike(i);
        }
        assert_eq!(k.containers[i].health.state, HealthState::Degraded);
        // The interval the strikes landed in is itself dirty: the first
        // tick only clears the interval counter.
        k.health_tick();
        assert_eq!(k.containers[i].health.state, HealthState::Degraded);
        k.health_tick();
        assert_eq!(
            k.containers[i].health.state,
            HealthState::Healthy,
            "one clean interval decays below the degrade threshold"
        );
        assert_eq!(k.containers[i].health.strikes, 2);
    }

    #[test]
    fn probation_restores_a_quarantined_container() {
        let mut k = small_kernel();
        let key = install(&mut k, 4);
        let i = key.0 as usize;
        for _ in 0..8 {
            k.note_strike(i);
        }
        assert!(k.containers[i].health.quarantined());
        // The strike interval is dirty; then two clean checker intervals
        // (the default probation) earn the restore.
        k.health_tick();
        assert!(k.containers[i].health.quarantined(), "strike interval");
        k.health_tick();
        assert!(k.containers[i].health.quarantined(), "probation not yet up");
        k.health_tick();
        assert_eq!(k.containers[i].health.state, HealthState::Healthy);
        assert_eq!(k.containers[i].health.restores, 1);
        // The restore admits only the first tranche; the rest of the
        // reservation ramps in on subsequent clean intervals.
        let tranche = k.health_policy.restore_tranche;
        assert_eq!(k.containers[i].allocated, tranche);
        assert_eq!(
            k.containers[i].restore_pending,
            k.containers[i].min_frames - tranche
        );
        k.health_tick();
        assert_eq!(k.containers[i].allocated, k.containers[i].min_frames);
        assert_eq!(k.containers[i].restore_pending, 0);
        assert_eq!(
            k.vm.object(k.containers[i].object)
                .expect("object lives")
                .container,
            Some(key.0),
            "policy re-mounted"
        );
        k.check_invariants().expect("consistent after restore");
    }

    #[test]
    fn restore_waits_for_the_breaker_to_close() {
        let mut k = small_kernel();
        let key = install(&mut k, 4);
        let i = key.0 as usize;
        for _ in 0..8 {
            k.note_strike(i);
        }
        assert!(k.containers[i].health.quarantined());
        // Trip the region's device breaker: three consecutive failures.
        for _ in 0..3 {
            let now = k.vm.now();
            let _ = k.vm.breaker_mut(DeviceId(0)).record(now, false);
        }
        assert!(!k.vm.breaker(DeviceId(0)).is_closed());
        for _ in 0..5 {
            k.health_tick();
        }
        assert!(
            k.containers[i].health.quarantined(),
            "no restore onto a tripped device"
        );
        let _ = key;
    }

    #[test]
    fn quarantined_regions_fault_through_the_default_path() {
        let mut k = small_kernel();
        let t = k.vm.create_task();
        let (addr, _, key) = k
            .vm_allocate_hipec(t, 8 * PAGE_SIZE, idle_program(), 4)
            .expect("install");
        let i = key.0 as usize;
        for _ in 0..8 {
            k.note_strike(i);
        }
        assert!(k.containers[i].health.quarantined());
        // The idle policy returns no page, so a policy-routed fault would
        // kill the container; under default management the access succeeds.
        let faults_before = k.containers[i].stats.faults;
        k.access_sync(t, addr, false)
            .expect("default path serves it");
        assert!(!k.containers[i].terminated);
        assert_eq!(k.containers[i].stats.faults, faults_before);
        k.check_invariants().expect("consistent under fallback");
    }
}

//! HiPEC: High Performance External Virtual Memory Caching.
//!
//! A from-scratch reproduction of the mechanism from Lee, Chen & Chang
//! (OSDI 1994): applications install their own page-replacement policies as
//! sequences of 32-bit commands that the kernel interprets at page-fault
//! time — no kernel/user crossing, no upcalls, no IPC.
//!
//! The crate layers on the `hipec-vm` Mach-style substrate:
//!
//! * [`command`] — the 20-command set (plus the `Migrate` extension) and
//!   its binary encoding;
//! * [`program`] — policy programs, operand declarations and the
//!   command-buffer wire format;
//! * [`container`] — the per-region kernel object holding the operand
//!   array, private frame queues and execution timestamps;
//! * [`executor`] — the in-kernel interpreter;
//! * [`checker`] — static validation and adaptive timeout detection;
//! * [`admission`] — per-tenant weighted share classes and bursty-arrival
//!   throttling ahead of the `minFrame` admission;
//! * [`manager`] — the global frame manager (partition_burst, minFrame,
//!   FAFR reclamation, asynchronous flush);
//! * [`kernel`] — [`HipecKernel`], the modified kernel with
//!   `vm_allocate_hipec` / `vm_map_hipec`;
//! * [`trace`] — the merged deterministic event ring plus streaming
//!   [`TraceSink`]s with a stable JSONL schema (feature `trace`, default
//!   on);
//! * [`metrics`] — [`KernelStats`] counter snapshots with `diff`;
//! * [`hist`] / [`obs`] — fixed-footprint log-linear latency histograms
//!   and the attribution layer surfacing them as [`LatencyRow`]s and
//!   Prometheus-style text exposition (recording sites behind the
//!   `metrics` feature, default on).
//!
//! # Examples
//!
//! ```
//! use hipec_core::{HipecKernel, PolicyProgram, OperandDecl};
//! use hipec_core::command::{build, QueueEnd, NO_OPERAND};
//! use hipec_vm::{KernelParams, VAddr, PAGE_SIZE};
//!
//! // A trivial policy: serve faults straight from the private free list.
//! let mut program = PolicyProgram::new();
//! let free_q = program.declare(OperandDecl::FreeQueue);
//! let page = program.declare(OperandDecl::Page);
//! program.add_event("PageFault", vec![
//!     build::dequeue(page, free_q, QueueEnd::Head),
//!     build::ret(page),
//! ]);
//! program.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
//!
//! let mut kernel = HipecKernel::new(KernelParams::paper_64mb());
//! let task = kernel.vm.create_task();
//! let (addr, _object, _key) = kernel
//!     .vm_allocate_hipec(task, 8 * PAGE_SIZE, program, 8)
//!     .expect("install policy");
//! kernel.access(task, addr, false).expect("fault resolved by policy");
//! kernel.access(task, VAddr(addr.0 + PAGE_SIZE), true).expect("again");
//! ```

pub mod admission;
pub mod analysis;
pub mod checker;
pub mod command;
pub mod container;
pub mod error;
pub mod executor;
pub mod health;
pub mod hist;
pub mod invariants;
#[cfg(feature = "jit")]
pub mod jit;
pub mod kernel;
pub mod manager;
pub mod metrics;
pub mod obs;
pub mod operand;
pub mod program;
pub mod trace;

pub use admission::{AdmissionControl, AdmitReject, ShareClass};
pub use analysis::analyze_program;
pub use checker::{validate_program, SecurityChecker};
pub use command::{OpCode, RawCmd, NO_OPERAND};
pub use container::{Container, ContainerStats, OpProfile};
pub use error::{HipecError, PolicyFault};
pub use executor::{ExecBackend, ExecLimits, ExecValue};
pub use health::{ContainerHealth, HealthPolicy, HealthState};
pub use hist::LatencyHistogram;
pub use invariants::FramePartition;
pub use kernel::{ContainerKey, HipecKernel};
pub use manager::GlobalFrameManager;
pub use metrics::{ContainerCounters, DeviceRow, KernelStats};
pub use obs::{stats_export, LatencyMetric, LatencyRow, ObsState};
pub use operand::{KernelVar, OperandDecl, OperandSlot};
pub use program::{PolicyProgram, WireError, EVENT_PAGE_FAULT, EVENT_RECLAIM_FRAME, HIPEC_MAGIC};
pub use trace::{
    event_kind, render_jsonl, CountingSink, EventRing, JsonlSink, MemorySink, TraceEvent,
    TraceRecord, TraceSink,
};

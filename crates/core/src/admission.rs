//! Per-tenant admission control: weighted share classes on top of
//! `minFrame`.
//!
//! The paper's admission story stops at the per-region `minFrame`
//! guarantee: any install whose reservation the global frame manager can
//! cover is mounted. With thousands of tenants that is not enough — a
//! burst of installs from one customer class can claim the whole
//! partitionable pool before anyone else arrives, and nothing stops a
//! best-effort class from starving a paying one. This module adds the
//! missing layer, two deterministic checks ahead of the `minFrame`
//! admission in `setup_hipec_region`:
//!
//! * **Weighted share cap.** Each container carries a [`ShareClass`];
//!   a class's live containers may hold at most
//!   `partition_burst · weight / Σ weights` frames. The cap is computed
//!   from the kernel's own books (summed `allocated` of live containers),
//!   so it is a pure function of kernel state.
//! * **Bursty-arrival throttle.** Installs per class are counted in a
//!   window that rolls on every security-checker wakeup — the kernel's
//!   existing adaptive clock (paper §4.3.3). A class gets
//!   `burst_base · weight` installs per interval; the rest are rejected
//!   with a retryable error. Keying the window on the checker interval
//!   means the throttle tightens exactly when the kernel is struggling
//!   (timeouts halve the interval → fewer wall-clock installs per window
//!   — no: a *shorter* interval rolls the window more often, admitting
//!   more; a calm kernel's 8 s interval stretches the window and smooths
//!   arrival bursts over it).
//!
//! Admission control ships **disabled** so single-tenant workloads and
//! the paper experiments are byte-identical with it compiled in; the
//! `tenants` workload enables it explicitly.

/// The weighted share class of a tenant's containers.
///
/// Weights are relative claims on the partitionable pool
/// (`partition_burst`): with the default weights 1/2/4 a Premium tenant
/// population may hold four times the frames of the Free population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum ShareClass {
    /// Best-effort tenants (weight 1).
    Free,
    /// The default class every legacy entry point installs under
    /// (weight 2).
    #[default]
    Standard,
    /// Latency-sensitive tenants (weight 4).
    Premium,
}

impl ShareClass {
    /// Every class, in ascending-weight order; a class's position here is
    /// its stable index in per-class arrays and snapshot keys.
    pub const ALL: [ShareClass; 3] = [ShareClass::Free, ShareClass::Standard, ShareClass::Premium];

    /// Relative claim on the partitionable pool.
    pub fn weight(self) -> u64 {
        match self {
            ShareClass::Free => 1,
            ShareClass::Standard => 2,
            ShareClass::Premium => 4,
        }
    }

    /// Sum of all class weights (the share-cap denominator).
    pub fn total_weight() -> u64 {
        Self::ALL.iter().map(|c| c.weight()).sum()
    }

    /// Stable snake_case name used in export labels and bench `--json`.
    pub fn name(self) -> &'static str {
        match self {
            ShareClass::Free => "free",
            ShareClass::Standard => "standard",
            ShareClass::Premium => "premium",
        }
    }

    /// This class's index in [`ShareClass::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// The class at `index` in [`ShareClass::ALL`], if in range.
    pub fn from_index(index: usize) -> Option<ShareClass> {
        Self::ALL.get(index).copied()
    }

    /// The frame cap of this class: its weighted share of the
    /// partitionable pool.
    pub fn share_cap(self, partition_burst: u64) -> u64 {
        partition_burst * self.weight() / Self::total_weight()
    }
}

/// Why admission control turned an install away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitReject {
    /// The class spent its install budget for the current checker
    /// interval; the install is retryable once the window rolls.
    Throttled,
    /// The reservation would push the class past its weighted share of
    /// the partitionable pool.
    ShareExceeded,
}

/// State of the per-tenant admission layer, owned by
/// [`crate::HipecKernel`].
#[derive(Debug, Clone)]
pub struct AdmissionControl {
    /// When false (the boot default) every install passes straight to the
    /// `minFrame` admission, preserving the paper's behavior exactly.
    pub enabled: bool,
    /// Installs a weight-1 class may start per checker interval; a class
    /// of weight `w` gets `w · burst_base`.
    pub burst_base: u32,
    /// Installs started per class in the current checker interval.
    window_installs: [u32; ShareClass::ALL.len()],
    /// Lifetime burst-throttle rejections per class.
    pub throttled: [u64; ShareClass::ALL.len()],
    /// Lifetime share-cap rejections per class.
    pub over_share: [u64; ShareClass::ALL.len()],
}

impl Default for AdmissionControl {
    fn default() -> Self {
        AdmissionControl {
            enabled: false,
            burst_base: 8,
            window_installs: [0; ShareClass::ALL.len()],
            throttled: [0; ShareClass::ALL.len()],
            over_share: [0; ShareClass::ALL.len()],
        }
    }
}

impl AdmissionControl {
    /// An enabled admission layer granting `burst_base` installs per
    /// weight unit per checker interval.
    pub fn enabled_with(burst_base: u32) -> Self {
        AdmissionControl {
            enabled: true,
            burst_base: burst_base.max(1),
            ..AdmissionControl::default()
        }
    }

    /// Rolls the arrival window: called on every security-checker wakeup,
    /// so the throttle clock is the kernel's existing adaptive interval.
    pub(crate) fn roll_window(&mut self) {
        self.window_installs = [0; ShareClass::ALL.len()];
    }

    /// Checks one install of `min_frames` for `class`, where the class's
    /// live containers already hold `class_frames` of the
    /// `partition_burst` pool. Counts the install against the arrival
    /// window on success. A pure function of admission state and its
    /// arguments — no clock, no randomness — so rejection patterns replay
    /// bit-identically.
    pub(crate) fn admit(
        &mut self,
        class: ShareClass,
        min_frames: u64,
        class_frames: u64,
        partition_burst: u64,
    ) -> Result<(), AdmitReject> {
        if !self.enabled {
            return Ok(());
        }
        let i = class.index();
        let burst_cap = u64::from(self.burst_base) * class.weight();
        if u64::from(self.window_installs[i]) >= burst_cap {
            self.throttled[i] += 1;
            return Err(AdmitReject::Throttled);
        }
        if class_frames.saturating_add(min_frames) > class.share_cap(partition_burst) {
            self.over_share[i] += 1;
            return Err(AdmitReject::ShareExceeded);
        }
        self.window_installs[i] += 1;
        Ok(())
    }

    /// Lifetime rejections (throttle + share cap) across every class.
    pub fn total_rejections(&self) -> u64 {
        self.throttled.iter().sum::<u64>() + self.over_share.iter().sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_weights_and_caps() {
        assert_eq!(ShareClass::total_weight(), 7);
        assert_eq!(ShareClass::Premium.share_cap(700), 400);
        assert_eq!(ShareClass::Standard.share_cap(700), 200);
        assert_eq!(ShareClass::Free.share_cap(700), 100);
        assert_eq!(ShareClass::from_index(2), Some(ShareClass::Premium));
        assert_eq!(ShareClass::from_index(9), None);
        assert_eq!(ShareClass::default(), ShareClass::Standard);
    }

    #[test]
    fn disabled_admits_everything() {
        let mut a = AdmissionControl::default();
        for _ in 0..10_000 {
            assert_eq!(a.admit(ShareClass::Free, u64::MAX, u64::MAX, 0), Ok(()));
        }
        assert_eq!(a.total_rejections(), 0);
    }

    #[test]
    fn burst_throttle_is_weighted_and_rolls_with_the_window() {
        let mut a = AdmissionControl::enabled_with(2);
        // Weight 1 → 2 installs per window.
        assert!(a.admit(ShareClass::Free, 1, 0, 1000).is_ok());
        assert!(a.admit(ShareClass::Free, 1, 0, 1000).is_ok());
        assert_eq!(
            a.admit(ShareClass::Free, 1, 0, 1000),
            Err(AdmitReject::Throttled)
        );
        // Premium's weight-4 budget is untouched by Free's burst.
        for _ in 0..8 {
            assert!(a.admit(ShareClass::Premium, 1, 0, 1000).is_ok());
        }
        assert_eq!(
            a.admit(ShareClass::Premium, 1, 0, 1000),
            Err(AdmitReject::Throttled)
        );
        a.roll_window();
        assert!(a.admit(ShareClass::Free, 1, 0, 1000).is_ok());
        assert_eq!(a.throttled, [1, 0, 1]);
    }

    #[test]
    fn share_cap_rejects_without_spending_the_window() {
        let mut a = AdmissionControl::enabled_with(8);
        // Free's cap of a 700-frame pool is 100 frames.
        assert_eq!(
            a.admit(ShareClass::Free, 8, 96, 700),
            Err(AdmitReject::ShareExceeded)
        );
        assert_eq!(a.over_share, [1, 0, 0]);
        // The rejected install did not burn window budget.
        for _ in 0..8 {
            assert!(a.admit(ShareClass::Free, 8, 0, 700).is_ok());
        }
    }
}

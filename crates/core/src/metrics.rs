//! Per-container and global counter snapshots.
//!
//! [`KernelStats`] assembles every counter the kernel maintains — the VM
//! substrate's event counters, the global frame manager's books, the
//! security checker, the paging device, the torn-write retry queue and the
//! trace ring — plus one [`ContainerCounters`] row per container. Snapshots
//! are plain data: [`KernelStats::diff`] subtracts two of them to get the
//! activity of an interval, which is how the bench binaries report
//! per-phase kernel work.

use std::collections::BTreeMap;
use std::fmt;

use hipec_sim::SimTime;

use crate::container::OpProfile;
use crate::kernel::HipecKernel;
use crate::obs::LatencyRow;

/// Saturating counter difference that flags time-travel: a monotone counter
/// can only shrink between an "earlier" and a "later" snapshot if the caller
/// swapped the arguments or mixed snapshots from different kernels. Debug
/// builds assert (`went_backwards`); release builds saturate to zero.
fn sat_diff(name: &str, later: u64, earlier: u64) -> u64 {
    debug_assert!(
        later >= earlier,
        "went_backwards: counter `{name}` later={later} earlier={earlier}"
    );
    later.saturating_sub(earlier)
}

/// Counter snapshot for one container.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContainerCounters {
    /// The container's key.
    pub key: u32,
    /// Policy-resolved page faults.
    pub faults: u64,
    /// Commands interpreted.
    pub commands: u64,
    /// Event invocations.
    pub events: u64,
    /// Frames obtained via `Request`.
    pub requested: u64,
    /// Frames given back via `Release` or reclamation.
    pub released: u64,
    /// `Flush` exchanges performed.
    pub flushes: u64,
    /// Device faults surfaced to this container (abandoned write-backs).
    pub device_faults: u64,
    /// Times this container entered quarantine.
    pub quarantines: u64,
    /// Times it was restored from quarantine to HiPEC management.
    pub restores: u64,
    /// Frames currently allocated (gauge, not a counter).
    pub allocated: u64,
    /// True once the container has been terminated.
    pub terminated: bool,
    /// True while the container is quarantined (gauge, not a counter).
    pub quarantined: bool,
    /// Per-opcode command counts and virtual-time attribution.
    pub ops: OpProfile,
}

impl ContainerCounters {
    /// Counter-wise difference against an earlier snapshot of the same
    /// container (gauges keep `self`'s value).
    pub fn diff(&self, earlier: &ContainerCounters) -> ContainerCounters {
        ContainerCounters {
            key: self.key,
            faults: sat_diff("faults", self.faults, earlier.faults),
            commands: sat_diff("commands", self.commands, earlier.commands),
            events: sat_diff("events", self.events, earlier.events),
            requested: sat_diff("requested", self.requested, earlier.requested),
            released: sat_diff("released", self.released, earlier.released),
            flushes: sat_diff("flushes", self.flushes, earlier.flushes),
            device_faults: sat_diff("device_faults", self.device_faults, earlier.device_faults),
            quarantines: sat_diff("quarantines", self.quarantines, earlier.quarantines),
            restores: sat_diff("restores", self.restores, earlier.restores),
            allocated: self.allocated,
            terminated: self.terminated,
            quarantined: self.quarantined,
            ops: self.ops.diff(&earlier.ops),
        }
    }
}

/// Counter snapshot for one backing device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceRow {
    /// The device's id (0 = the boot paging device).
    pub id: u32,
    /// Read submissions accepted.
    pub reads: u64,
    /// Write submissions accepted.
    pub writes: u64,
    /// Read submissions rejected.
    pub read_errors: u64,
    /// Write submissions rejected.
    pub write_errors: u64,
    /// Writes accepted but completed torn.
    pub torn_writes: u64,
    /// Times this device's breaker tripped open.
    pub breaker_trips: u64,
    /// Times it closed again after a clean probe streak.
    pub breaker_closes: u64,
    /// Degraded-mode submissions that served as probes.
    pub breaker_probes: u64,
    /// Submissions deferred by backoff or the in-flight cap.
    pub breaker_deferred: u64,
    /// True while the breaker is open or half-open (gauge).
    pub breaker_open: bool,
    /// Write-backs in flight on this device (gauge).
    pub inflight: u64,
    /// Torn write-backs parked for re-issue (gauge).
    pub queue_depth: u64,
    /// Lifetime retry-queue pushes.
    pub retryq_pushes: u64,
    /// Lifetime retry-queue pops.
    pub retryq_pops: u64,
    /// Storage tier (gauge): 0 = disk, 1 = flash.
    pub tier: u64,
    /// Lifecycle state (gauge): 0 Active, 1 Draining, 2 Removed, 3 Dead.
    pub state: u64,
    /// Migration copies completed onto this device.
    pub migrations: u64,
    /// Migration copies queued or in flight on this device (gauge).
    pub migr_pending: u64,
    /// Flash write amplification in milli-units (gauge, integer —
    /// `programs * 1000 / host_writes`); 0 for disks and idle flash.
    pub write_amp_milli: u64,
    /// Highest per-block erase count (gauge); 0 for disks.
    pub max_wear: u64,
    /// Flash GC pauses taken (erases — each stalls the array); 0 for disks.
    pub gc_pauses: u64,
}

impl DeviceRow {
    /// Counter-wise difference against an earlier snapshot of the same
    /// device (gauges keep `self`'s value).
    pub fn diff(&self, earlier: &DeviceRow) -> DeviceRow {
        DeviceRow {
            id: self.id,
            reads: sat_diff("reads", self.reads, earlier.reads),
            writes: sat_diff("writes", self.writes, earlier.writes),
            read_errors: sat_diff("read_errors", self.read_errors, earlier.read_errors),
            write_errors: sat_diff("write_errors", self.write_errors, earlier.write_errors),
            torn_writes: sat_diff("torn_writes", self.torn_writes, earlier.torn_writes),
            breaker_trips: sat_diff("breaker_trips", self.breaker_trips, earlier.breaker_trips),
            breaker_closes: sat_diff(
                "breaker_closes",
                self.breaker_closes,
                earlier.breaker_closes,
            ),
            breaker_probes: sat_diff(
                "breaker_probes",
                self.breaker_probes,
                earlier.breaker_probes,
            ),
            breaker_deferred: sat_diff(
                "breaker_deferred",
                self.breaker_deferred,
                earlier.breaker_deferred,
            ),
            breaker_open: self.breaker_open,
            inflight: self.inflight,
            queue_depth: self.queue_depth,
            retryq_pushes: sat_diff("retryq_pushes", self.retryq_pushes, earlier.retryq_pushes),
            retryq_pops: sat_diff("retryq_pops", self.retryq_pops, earlier.retryq_pops),
            tier: self.tier,
            state: self.state,
            migrations: sat_diff("migrations", self.migrations, earlier.migrations),
            migr_pending: self.migr_pending,
            write_amp_milli: self.write_amp_milli,
            max_wear: self.max_wear,
            gc_pauses: sat_diff("gc_pauses", self.gc_pauses, earlier.gc_pauses),
        }
    }
}

/// A full kernel counter snapshot at one virtual instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelStats {
    /// Virtual time of the snapshot.
    pub at: SimTime,
    /// Global counters, keyed by name. VM counters keep their names
    /// (`faults`, `pageouts`, …); manager, checker, device, retry-queue and
    /// trace counters are prefixed (`gfm_`, `checker_`, `dev_`, `retryq_`,
    /// `trace_`).
    pub global: BTreeMap<&'static str, u64>,
    /// One row per container (terminated ones included).
    pub containers: Vec<ContainerCounters>,
    /// One row per backing device (the `dev_*` / `breaker_*` globals are
    /// sums over these).
    pub devices: Vec<DeviceRow>,
    /// Frames on the global free queue (gauge).
    pub free_frames: u64,
    /// Frames allocated to specific applications (gauge).
    pub total_specific: u64,
    /// Write-backs in flight (gauge).
    pub inflight_flushes: u64,
    /// Torn write-backs awaiting re-issue (gauge).
    pub retry_depth: u64,
    /// Trace records lost to ring overwrites before any consumer saw them
    /// (see [`HipecKernel::dropped_records`]). Zero whenever a sink was
    /// attached for the whole run.
    pub dropped_records: u64,
    /// Latency-histogram rows in a fixed deterministic order (kernel scope,
    /// occupied opcodes, containers, devices). Empty histograms when the
    /// `metrics` feature is compiled out — the snapshot shape never changes.
    pub latency: Vec<LatencyRow>,
}

impl KernelStats {
    /// A global counter by name, or `None` if no counter of that name was
    /// ever registered. A missing counter is not the same thing as a zero
    /// one — callers that treat absence as zero say so with `unwrap_or(0)`.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.global.get(name).copied()
    }

    /// The counters of container `key`, if it exists.
    pub fn container(&self, key: u32) -> Option<&ContainerCounters> {
        self.containers.iter().find(|c| c.key == key)
    }

    /// The counters of device `id`, if it exists.
    pub fn device(&self, id: u32) -> Option<&DeviceRow> {
        self.devices.iter().find(|d| d.id == id)
    }

    /// Counter-wise difference against an earlier snapshot: every global
    /// and per-container counter becomes `self - earlier` (saturating);
    /// gauges and `at` keep `self`'s values.
    pub fn diff(&self, earlier: &KernelStats) -> KernelStats {
        let mut global = BTreeMap::new();
        for (&k, &v) in &self.global {
            global.insert(k, v.saturating_sub(earlier.get(k).unwrap_or(0)));
        }
        let containers = self
            .containers
            .iter()
            .map(|c| match earlier.container(c.key) {
                Some(e) => c.diff(e),
                None => *c,
            })
            .collect();
        let devices = self
            .devices
            .iter()
            .map(|d| match earlier.device(d.id) {
                Some(e) => d.diff(e),
                None => *d,
            })
            .collect();
        let latency = self
            .latency
            .iter()
            .map(|r| {
                match earlier
                    .latency
                    .iter()
                    .find(|e| e.metric == r.metric && e.key == r.key)
                {
                    Some(e) => r.diff(e),
                    None => *r,
                }
            })
            .collect();
        KernelStats {
            at: self.at,
            global,
            containers,
            devices,
            free_frames: self.free_frames,
            total_specific: self.total_specific,
            inflight_flushes: self.inflight_flushes,
            retry_depth: self.retry_depth,
            dropped_records: self.dropped_records.saturating_sub(earlier.dropped_records),
            latency,
        }
    }

    /// The latency row for `(metric, key)`, if present in this snapshot.
    pub fn latency_row(&self, metric: crate::obs::LatencyMetric, key: u64) -> Option<&LatencyRow> {
        self.latency
            .iter()
            .find(|r| r.metric == metric && r.key == key)
    }
}

impl fmt::Display for KernelStats {
    /// A compact multi-line rendering (non-zero counters only) for bench
    /// binaries and failure reports.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "kernel stats @ {} (free={} specific={} inflight={} retrying={} dropped={})",
            self.at,
            self.free_frames,
            self.total_specific,
            self.inflight_flushes,
            self.retry_depth,
            self.dropped_records
        )?;
        for (k, v) in self.global.iter().filter(|(_, v)| **v != 0) {
            writeln!(f, "  {k}: {v}")?;
        }
        for d in &self.devices {
            writeln!(
                f,
                "  dev#{}: reads={} writes={} rderr={} wrerr={} torn={} trips={} closes={} probes={} deferred={} inflight={} queued={}{}",
                d.id,
                d.reads,
                d.writes,
                d.read_errors,
                d.write_errors,
                d.torn_writes,
                d.breaker_trips,
                d.breaker_closes,
                d.breaker_probes,
                d.breaker_deferred,
                d.inflight,
                d.queue_depth,
                if d.breaker_open { " [open]" } else { "" }
            )?;
            if d.tier != 0 || d.state != 0 || d.migrations != 0 || d.migr_pending != 0 {
                writeln!(
                    f,
                    "    tier={} state={} migrations={} migr_pending={} write_amp_milli={} max_wear={} gc_pauses={}",
                    d.tier,
                    match d.state {
                        0 => "active",
                        1 => "draining",
                        2 => "removed",
                        _ => "dead",
                    },
                    d.migrations,
                    d.migr_pending,
                    d.write_amp_milli,
                    d.max_wear,
                    d.gc_pauses
                )?;
            }
        }
        for c in &self.containers {
            writeln!(
                f,
                "  c{}: faults={} events={} commands={} req={} rel={} flush={} devfault={} alloc={}{}",
                c.key,
                c.faults,
                c.events,
                c.commands,
                c.requested,
                c.released,
                c.flushes,
                c.device_faults,
                c.allocated,
                if c.terminated {
                    " [terminated]"
                } else if c.quarantined {
                    " [quarantined]"
                } else {
                    ""
                }
            )?;
            for (op, count, time) in c.ops.nonzero() {
                writeln!(f, "    {}: {count}x {time}", op.mnemonic())?;
            }
        }
        for r in self.latency.iter().filter(|r| !r.hist.is_empty()) {
            writeln!(f, "  {r}")?;
        }
        Ok(())
    }
}

impl HipecKernel {
    /// Takes a full counter snapshot ([`KernelStats`]) of the kernel now.
    pub fn kernel_stats(&self) -> KernelStats {
        let mut global: BTreeMap<&'static str, u64> = BTreeMap::new();
        for (name, value) in self.vm.stats.iter() {
            global.insert(name, value);
        }
        global.insert("gfm_grants", self.gfm.grants);
        global.insert("gfm_rejections", self.gfm.rejections);
        global.insert("gfm_normal_reclaims", self.gfm.normal_reclaims);
        global.insert("gfm_forced_reclaims", self.gfm.forced_reclaims);
        global.insert("gfm_orphans_recovered", self.gfm.orphans_recovered);
        global.insert("checker_wakeups", self.checker.wakeups);
        global.insert("checker_kills", self.checker.kills);
        let devices: Vec<DeviceRow> = self
            .vm
            .devices_iter()
            .map(|d| {
                let s = d.stats();
                let b = d.breaker().counters();
                let (retryq_pushes, retryq_pops) = d.retry_counters();
                DeviceRow {
                    id: d.id().0,
                    reads: s.reads,
                    writes: s.writes,
                    read_errors: s.read_errors,
                    write_errors: s.write_errors,
                    torn_writes: s.torn_writes,
                    breaker_trips: b.trips,
                    breaker_closes: b.closes,
                    breaker_probes: b.probes,
                    breaker_deferred: b.deferred,
                    breaker_open: !d.breaker().is_closed(),
                    inflight: d.inflight_depth() as u64,
                    queue_depth: d.retry_depth() as u64,
                    retryq_pushes,
                    retryq_pops,
                    tier: u64::from(d.tier()),
                    state: match d.state() {
                        hipec_vm::DeviceState::Active => 0,
                        hipec_vm::DeviceState::Draining => 1,
                        hipec_vm::DeviceState::Removed => 2,
                        hipec_vm::DeviceState::Dead => 3,
                    },
                    migrations: d.migrations_completed(),
                    migr_pending: d.migr_pending() as u64,
                    write_amp_milli: d.flash_stats().map_or(0, |f| {
                        f.programs
                            .saturating_mul(1000)
                            .checked_div(f.host_writes)
                            .unwrap_or(0)
                    }),
                    max_wear: u64::from(d.max_wear()),
                    gc_pauses: d.flash_stats().map_or(0, |f| f.erases),
                }
            })
            .collect();
        // The flat `dev_*` / `breaker_*` / `retryq_*` globals survive as
        // sums over the per-device rows.
        global.insert("dev_reads", devices.iter().map(|d| d.reads).sum());
        global.insert("dev_writes", devices.iter().map(|d| d.writes).sum());
        global.insert(
            "dev_read_errors",
            devices.iter().map(|d| d.read_errors).sum(),
        );
        global.insert(
            "dev_write_errors",
            devices.iter().map(|d| d.write_errors).sum(),
        );
        global.insert(
            "dev_torn_writes",
            devices.iter().map(|d| d.torn_writes).sum(),
        );
        global.insert(
            "retryq_pushes",
            devices.iter().map(|d| d.retryq_pushes).sum(),
        );
        global.insert("retryq_pops", devices.iter().map(|d| d.retryq_pops).sum());
        global.insert(
            "breaker_probes",
            devices.iter().map(|d| d.breaker_probes).sum(),
        );
        global.insert(
            "breaker_deferred",
            devices.iter().map(|d| d.breaker_deferred).sum(),
        );
        global.insert(
            "trace_recorded",
            self.trace.recorded() + self.vm.trace.recorded(),
        );
        global.insert(
            "trace_dropped",
            self.trace.dropped() + self.vm.trace.dropped(),
        );
        let containers = self
            .containers
            .iter()
            .map(|c| ContainerCounters {
                key: c.key,
                faults: c.stats.faults,
                commands: c.stats.commands,
                events: c.stats.events,
                requested: c.stats.requested,
                released: c.stats.released,
                flushes: c.stats.flushes,
                device_faults: c.stats.device_faults,
                quarantines: c.health.quarantines,
                restores: c.health.restores,
                allocated: c.allocated,
                terminated: c.terminated,
                quarantined: c.health.quarantined(),
                ops: c.op_profile,
            })
            .collect();
        KernelStats {
            at: self.vm.now(),
            global,
            containers,
            devices,
            free_frames: self.vm.free_count(),
            total_specific: self.gfm.total_specific,
            inflight_flushes: self.vm.inflight_frames().count() as u64,
            retry_depth: self.vm.retry_frames().count() as u64,
            dropped_records: self.dropped_records(),
            latency: self.latency_rows(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn container_diff_subtracts_counters_and_keeps_gauges() {
        let earlier = ContainerCounters {
            key: 7,
            faults: 10,
            commands: 100,
            allocated: 4,
            ..ContainerCounters::default()
        };
        let later = ContainerCounters {
            key: 7,
            faults: 15,
            commands: 160,
            allocated: 2,
            quarantined: true,
            ..ContainerCounters::default()
        };
        let d = later.diff(&earlier);
        assert_eq!(d.faults, 5);
        assert_eq!(d.commands, 60);
        assert_eq!(d.allocated, 2, "gauges keep the later value");
        assert!(d.quarantined);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn container_diff_asserts_when_a_counter_went_backwards() {
        let earlier = ContainerCounters {
            faults: 9,
            ..ContainerCounters::default()
        };
        let later = ContainerCounters {
            faults: 3,
            ..ContainerCounters::default()
        };
        let panic = std::panic::catch_unwind(|| later.diff(&earlier));
        assert!(panic.is_err(), "backwards counter must trip went_backwards");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn device_diff_asserts_when_a_counter_went_backwards() {
        let earlier = DeviceRow {
            writes: 20,
            ..DeviceRow::default()
        };
        let later = DeviceRow {
            writes: 19,
            ..DeviceRow::default()
        };
        let panic = std::panic::catch_unwind(|| later.diff(&earlier));
        assert!(panic.is_err(), "backwards counter must trip went_backwards");
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn diff_saturates_to_zero_in_release_builds() {
        let earlier = DeviceRow {
            reads: 8,
            ..DeviceRow::default()
        };
        let later = DeviceRow {
            reads: 5,
            ..DeviceRow::default()
        };
        assert_eq!(later.diff(&earlier).reads, 0);
    }
}

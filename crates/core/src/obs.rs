//! Latency attribution: which histogram each virtual-time span lands in,
//! and how the distributions leave the kernel.
//!
//! The engine ([`crate::hist`]) is storage and algebra; this module is the
//! *attribution* layer on top:
//!
//! * [`ObsState`] — the kernel-scope histograms ([`HipecKernel`] owns one):
//!   sampled per-opcode executor charges, the security checker's adaptive
//!   wakeup interval, and the pageout pump's drain cadence. Per-container
//!   fault/event latency lives on [`crate::Container`]; per-device
//!   read/flush/torn-retry latency lives on the VM device table.
//! * [`LatencyRow`] — the snapshot surface: one `(metric, key, histogram)`
//!   row, mergeable and diffable, carried in [`KernelStats::latency`] so
//!   interval percentiles fall out of the same `diff` the counters use.
//! * [`stats_export`] — Prometheus-style text exposition of a snapshot,
//!   deterministic byte-for-byte for a given snapshot (verify.sh runs the
//!   same seeded soak twice and `cmp`s the files).
//!
//! **Sampling rule.** Opcode charges are recorded every
//! [`OP_SAMPLE_EVERY`]-th *attributed* command, counted by a global
//! sequence number that advances identically under both executor backends
//! (both attribute the same commands in the same order — the contract
//! `tests/jit.rs` pins). Everything else is recorded unsampled. All
//! recording sites sit behind the `metrics` feature; storage is
//! unconditional so snapshot shapes and kernel behavior never depend on
//! the feature.

use std::fmt;

use hipec_sim::{SimDuration, SimTime};

use crate::command::OpCode;
use crate::hist::LatencyHistogram;
use crate::kernel::HipecKernel;
use crate::metrics::KernelStats;

/// One in how many attributed commands gets its charge recorded into the
/// per-opcode histograms. Sampling keeps the profiling hook off the hot
/// path's cache footprint (the measured soak budget is ≤ 5% wall-clock,
/// see EXPERIMENTS.md); the exact totals remain in each container's
/// [`crate::OpProfile`].
pub const OP_SAMPLE_EVERY: u64 = 32;

/// Which latency surface a [`LatencyRow`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LatencyMetric {
    /// Security-checker wakeup interval as scheduled (key: 0).
    CheckerInterval,
    /// Virtual time between pageout-pump invocations (key: 0).
    PumpDrain,
    /// Sampled executor charge per opcode (key: the opcode byte).
    OpCharge,
    /// Fault service latency aggregated per tenant share class (key: the
    /// class index in [`crate::ShareClass::ALL`]).
    ClassFault,
    /// Fault service latency, `access` entry to frame-ready (key: the
    /// container key).
    ContainerFault,
    /// Top-level `run_event` duration (key: the container key).
    ContainerEvent,
    /// Demand-read completion latency (key: the device id).
    DeviceRead,
    /// First-issue flush completion latency (key: the device id).
    DeviceFlush,
    /// Torn-retry re-issue completion latency (key: the device id).
    DeviceTornRetry,
}

impl LatencyMetric {
    /// Stable snake_case name used in `stats_export` labels and bench
    /// `--json`.
    pub fn name(self) -> &'static str {
        match self {
            LatencyMetric::CheckerInterval => "checker_interval",
            LatencyMetric::PumpDrain => "pump_drain",
            LatencyMetric::OpCharge => "op_charge",
            LatencyMetric::ClassFault => "class_fault",
            LatencyMetric::ContainerFault => "container_fault",
            LatencyMetric::ContainerEvent => "container_event",
            LatencyMetric::DeviceRead => "dev_read",
            LatencyMetric::DeviceFlush => "dev_flush",
            LatencyMetric::DeviceTornRetry => "dev_torn_retry",
        }
    }
}

/// One latency distribution in a [`KernelStats`] snapshot: a metric, the
/// entity it is keyed on, and the full histogram (so rows merge and diff
/// exactly, not just their summary percentiles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyRow {
    /// Which surface this row describes.
    pub metric: LatencyMetric,
    /// Container key, device id, or opcode byte (0 for kernel-scope rows).
    pub key: u64,
    /// The distribution itself.
    pub hist: LatencyHistogram,
}

impl LatencyRow {
    /// The key rendered for humans and export labels: the opcode mnemonic
    /// for [`LatencyMetric::OpCharge`] rows, the decimal key otherwise.
    pub fn key_label(&self) -> String {
        match self.metric {
            LatencyMetric::OpCharge => OpCode::from_u8(self.key as u8)
                .map(|op| op.mnemonic().to_string())
                .unwrap_or_else(|| self.key.to_string()),
            LatencyMetric::ClassFault => crate::ShareClass::from_index(self.key as usize)
                .map(|c| c.name().to_string())
                .unwrap_or_else(|| self.key.to_string()),
            _ => self.key.to_string(),
        }
    }

    /// Median latency.
    pub fn p50(&self) -> SimDuration {
        self.hist.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> SimDuration {
        self.hist.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> SimDuration {
        self.hist.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> SimDuration {
        self.hist.quantile(0.999)
    }

    /// Exact maximum recorded sample.
    pub fn max(&self) -> SimDuration {
        self.hist.max()
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.hist.count()
    }

    /// Samples that clamped into the saturation bucket.
    pub fn saturated(&self) -> u64 {
        self.hist.saturated()
    }

    /// Interval row between an earlier snapshot of the same `(metric,
    /// key)` row and this one.
    pub fn diff(&self, earlier: &LatencyRow) -> LatencyRow {
        debug_assert_eq!((self.metric, self.key), (earlier.metric, earlier.key));
        LatencyRow {
            metric: self.metric,
            key: self.key,
            hist: self.hist.diff(&earlier.hist),
        }
    }

    /// Merges another row of the same `(metric, key)` into this one.
    pub fn merge(&mut self, other: &LatencyRow) {
        debug_assert_eq!((self.metric, self.key), (other.metric, other.key));
        self.hist.merge(&other.hist);
    }
}

impl fmt::Display for LatencyRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: n={} p50={} p90={} p99={} p999={} max={}{}",
            self.metric.name(),
            self.key_label(),
            self.count(),
            self.p50(),
            self.p90(),
            self.p99(),
            self.p999(),
            self.max(),
            if self.saturated() != 0 {
                " [saturated]"
            } else {
                ""
            }
        )
    }
}

/// Kernel-scope latency state owned by [`HipecKernel`].
#[derive(Debug, Clone)]
pub struct ObsState {
    /// Sampled executor charge per opcode.
    pub op_charge: [LatencyHistogram; OpCode::ALL.len()],
    /// Attributed-command sequence number driving the 1-in-
    /// [`OP_SAMPLE_EVERY`] sampling decision. Identical across executor
    /// backends because attribution order is part of their contract.
    pub op_seq: u64,
    /// Fault service latency per tenant share class, indexed by
    /// [`crate::ShareClass::ALL`] position. The per-class aggregate the
    /// `tenants` workload gates on; rows appear only once a class faults.
    pub class_fault: [LatencyHistogram; crate::ShareClass::ALL.len()],
    /// The adaptive checker interval, recorded as scheduled at each wakeup.
    pub checker_interval: LatencyHistogram,
    /// Virtual time between consecutive pageout-pump invocations (the pump
    /// itself advances no virtual time, so cadence — not span — is the
    /// observable). Same-instant re-pumps are not recorded.
    pub pump_drain: LatencyHistogram,
    /// The previous time-advancing pump instant, for the cadence
    /// measurement.
    pub last_pump: Option<SimTime>,
}

impl Default for ObsState {
    fn default() -> Self {
        ObsState {
            op_charge: [LatencyHistogram::EMPTY; OpCode::ALL.len()],
            op_seq: 0,
            class_fault: [LatencyHistogram::EMPTY; crate::ShareClass::ALL.len()],
            checker_interval: LatencyHistogram::EMPTY,
            pump_drain: LatencyHistogram::EMPTY,
            last_pump: None,
        }
    }
}

impl HipecKernel {
    /// Attributes `spent` virtual time to a completed command: the exact
    /// per-container profile always, plus the sampled kernel-scope opcode
    /// histogram. Every attribution site in both executor backends funnels
    /// through here so the sampling sequence cannot diverge between them.
    #[inline]
    pub(crate) fn profile_op(&mut self, cidx: usize, op: OpCode, spent: SimDuration) {
        self.containers[cidx].op_profile.attribute(op, spent);
        #[cfg(feature = "metrics")]
        {
            self.obs.op_seq += 1;
            if self.obs.op_seq.is_multiple_of(OP_SAMPLE_EVERY) {
                self.obs.op_charge[op as usize].record(spent);
            }
        }
    }

    /// Assembles the latency rows of a snapshot, in a fixed deterministic
    /// order: kernel scope, occupied opcodes, containers, devices.
    pub(crate) fn latency_rows(&self) -> Vec<LatencyRow> {
        let mut rows = vec![
            LatencyRow {
                metric: LatencyMetric::CheckerInterval,
                key: 0,
                hist: self.obs.checker_interval,
            },
            LatencyRow {
                metric: LatencyMetric::PumpDrain,
                key: 0,
                hist: self.obs.pump_drain,
            },
        ];
        for (i, h) in self.obs.op_charge.iter().enumerate() {
            if !h.is_empty() {
                rows.push(LatencyRow {
                    metric: LatencyMetric::OpCharge,
                    key: i as u64,
                    hist: *h,
                });
            }
        }
        for (i, h) in self.obs.class_fault.iter().enumerate() {
            if !h.is_empty() {
                rows.push(LatencyRow {
                    metric: LatencyMetric::ClassFault,
                    key: i as u64,
                    hist: *h,
                });
            }
        }
        for c in &self.containers {
            rows.push(LatencyRow {
                metric: LatencyMetric::ContainerFault,
                key: c.key as u64,
                hist: c.lat_fault,
            });
            rows.push(LatencyRow {
                metric: LatencyMetric::ContainerEvent,
                key: c.key as u64,
                hist: c.lat_event,
            });
        }
        for d in self.vm.devices_iter() {
            let (read, flush, torn) = d.latency();
            let key = d.id().0 as u64;
            rows.push(LatencyRow {
                metric: LatencyMetric::DeviceRead,
                key,
                hist: *read,
            });
            rows.push(LatencyRow {
                metric: LatencyMetric::DeviceFlush,
                key,
                hist: *flush,
            });
            rows.push(LatencyRow {
                metric: LatencyMetric::DeviceTornRetry,
                key,
                hist: *torn,
            });
        }
        rows
    }
}

/// Renders a [`KernelStats`] snapshot as Prometheus-style text exposition:
/// global counters, the snapshot gauges, and one histogram family over
/// every latency row (cumulative `le` buckets over occupied buckets, plus
/// `_sum` / `_count` and the saturation counter). Output bytes are a pure
/// function of the snapshot — identically seeded runs export identical
/// files.
pub fn stats_export(stats: &KernelStats) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(4096);
    let _ = writeln!(out, "# HELP hipec_counter Global kernel counters.");
    let _ = writeln!(out, "# TYPE hipec_counter counter");
    for (name, value) in &stats.global {
        let _ = writeln!(out, "hipec_counter{{name=\"{name}\"}} {value}");
    }
    let _ = writeln!(out, "# HELP hipec_gauge Kernel snapshot gauges.");
    let _ = writeln!(out, "# TYPE hipec_gauge gauge");
    for (name, value) in [
        ("at_ns", stats.at.as_ns()),
        ("free_frames", stats.free_frames),
        ("total_specific", stats.total_specific),
        ("inflight_flushes", stats.inflight_flushes),
        ("retry_depth", stats.retry_depth),
        ("dropped_records", stats.dropped_records),
    ] {
        let _ = writeln!(out, "hipec_gauge{{name=\"{name}\"}} {value}");
    }
    let _ = writeln!(
        out,
        "# HELP hipec_device Per-device lifecycle, tier and flash-wear state."
    );
    let _ = writeln!(out, "# TYPE hipec_device gauge");
    for d in &stats.devices {
        for (name, value) in [
            ("tier", d.tier),
            ("state", d.state),
            ("migrations", d.migrations),
            ("migr_pending", d.migr_pending),
            ("write_amp_milli", d.write_amp_milli),
            ("max_wear", d.max_wear),
            ("gc_pauses", d.gc_pauses),
        ] {
            let _ = writeln!(
                out,
                "hipec_device{{device=\"{}\",name=\"{name}\"}} {value}",
                d.id
            );
        }
    }
    let _ = writeln!(
        out,
        "# HELP hipec_latency_ns Virtual-time latency distributions."
    );
    let _ = writeln!(out, "# TYPE hipec_latency_ns histogram");
    for row in &stats.latency {
        let labels = format!(
            "metric=\"{}\",key=\"{}\"",
            row.metric.name(),
            row.key_label()
        );
        let mut cumulative = 0u64;
        for (_, upper, count) in row.hist.nonzero_buckets() {
            cumulative += count;
            let _ = writeln!(
                out,
                "hipec_latency_ns_bucket{{{labels},le=\"{upper}\"}} {cumulative}"
            );
        }
        let _ = writeln!(
            out,
            "hipec_latency_ns_bucket{{{labels},le=\"+Inf\"}} {}",
            row.count()
        );
        let _ = writeln!(
            out,
            "hipec_latency_ns_sum{{{labels}}} {}",
            row.hist.total_ns()
        );
        let _ = writeln!(out, "hipec_latency_ns_count{{{labels}}} {}", row.count());
        let _ = writeln!(
            out,
            "hipec_latency_saturated{{{labels}}} {}",
            row.saturated()
        );
        let _ = writeln!(
            out,
            "hipec_latency_max_ns{{{labels}}} {}",
            row.max().as_ns()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row_with(ns: &[u64]) -> LatencyRow {
        let mut hist = LatencyHistogram::new();
        for &v in ns {
            hist.record(SimDuration::from_ns(v));
        }
        LatencyRow {
            metric: LatencyMetric::ContainerFault,
            key: 3,
            hist,
        }
    }

    #[test]
    fn row_percentiles_and_display() {
        let row = row_with(&[100, 200, 300, 400, 50_000]);
        assert_eq!(row.count(), 5);
        assert!(row.p50() <= row.p90() && row.p90() <= row.p99());
        assert_eq!(row.max().as_ns(), 50_000);
        let s = row.to_string();
        assert!(s.starts_with("container_fault[3]: n=5"), "{s}");
    }

    #[test]
    fn row_diff_recovers_interval() {
        let earlier = row_with(&[100, 200]);
        let later = row_with(&[100, 200, 5_000, 5_000]);
        let d = later.diff(&earlier);
        assert_eq!(d.count(), 2);
        assert_eq!(d.p50().as_ns(), d.p99().as_ns());
    }

    #[test]
    fn op_charge_key_label_uses_mnemonic() {
        let row = LatencyRow {
            metric: LatencyMetric::OpCharge,
            key: OpCode::Request as u64,
            hist: LatencyHistogram::EMPTY,
        };
        assert_eq!(row.key_label(), OpCode::Request.mnemonic());
    }

    #[test]
    fn export_is_deterministic_and_cumulative() {
        let mut k = HipecKernel::new(hipec_vm::KernelParams::paper_64mb());
        k.obs.checker_interval.record(SimDuration::from_ms(2));
        k.obs.checker_interval.record(SimDuration::from_ms(4));
        let stats = k.kernel_stats();
        let a = stats_export(&stats);
        let b = stats_export(&stats);
        assert_eq!(a, b);
        assert!(a.contains("# TYPE hipec_latency_ns histogram"));
        assert!(
            a.contains("hipec_latency_ns_count{metric=\"checker_interval\",key=\"0\"} 2"),
            "{a}"
        );
        assert!(a.contains("le=\"+Inf\"} 2"));
    }
}

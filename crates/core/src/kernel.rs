//! The HiPEC kernel: the modified Mach kernel of the paper.
//!
//! [`HipecKernel`] wraps the `hipec-vm` kernel and adds everything §4
//! describes: containers, the policy executor, the security checker and the
//! global frame manager. Non-specific applications run through
//! [`HipecKernel::access`] exactly as on plain Mach (plus the per-fault
//! region check the paper measures); specific applications install policies
//! with [`HipecKernel::vm_allocate_hipec`] / [`HipecKernel::vm_map_hipec`].

use hipec_disk::DeviceParams;
use hipec_sim::SimDuration;
#[cfg(feature = "trace")]
use hipec_vm::VmEvent;
use hipec_vm::{
    AccessOutcome, AccessResult, Backing, DeviceId, Kernel, KernelParams, ObjectId, TaskId, VAddr,
    VmError,
};

use crate::admission::{AdmissionControl, AdmitReject, ShareClass};
use crate::checker::{validate_program, SecurityChecker};
use crate::container::Container;
use crate::error::{HipecError, PolicyFault};
use crate::executor::{ExecBackend, ExecLimits, ExecValue};
use crate::health::{HealthPolicy, HealthState};
use crate::manager::GlobalFrameManager;
use crate::program::{PolicyProgram, EVENT_PAGE_FAULT};
use crate::trace::{EventRing, TraceEvent, DEFAULT_TRACE_CAPACITY};
#[cfg(feature = "trace")]
use crate::trace::{TraceRecord, TraceSink};

/// The handle an application receives when it invokes HiPEC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContainerKey(pub u32);

/// The modified (HiPEC) kernel.
pub struct HipecKernel {
    /// The underlying VM substrate (fault path, frame pool, paging device).
    pub vm: Kernel,
    /// All containers ever created (terminated ones stay for inspection).
    pub containers: Vec<Container>,
    /// The global frame manager state.
    pub gfm: GlobalFrameManager,
    /// The security checker.
    pub checker: SecurityChecker,
    /// Per-tenant admission control (weighted share classes and
    /// bursty-arrival throttling; disabled at boot — see
    /// [`crate::admission`]).
    pub admission: AdmissionControl,
    /// Thresholds of the container health state machine (quarantine and
    /// default-management fallback).
    pub health_policy: HealthPolicy,
    /// Rotating start of the restore-ramp scan: advances one container per
    /// health tick so concurrent ramps take turns at a tight free pool
    /// instead of lowest-id-wins (see [`HipecKernel::health_tick`]).
    pub(crate) ramp_cursor: usize,
    /// Executor fuel and nesting limits.
    pub limits: ExecLimits,
    /// Which executor backend `run_event` dispatches to (see
    /// [`ExecBackend`]); both observe the same accounting contract.
    pub(crate) backend: ExecBackend,
    /// Kernel-scope latency histograms (sampled opcode charges, checker
    /// interval, pump cadence); see [`crate::obs`].
    pub obs: crate::obs::ObsState,
    /// The merged kernel event trace (HiPEC layer + drained VM events).
    pub trace: EventRing<TraceEvent>,
    next_seq: u64,
    /// Call counter for sampled invariant audits (see `invariants`;
    /// `debug_check` is compiled out of release builds, as is this).
    #[cfg(debug_assertions)]
    pub(crate) check_tick: std::cell::Cell<u64>,
    /// Reused drain buffer so merging the VM ring never allocates in
    /// steady state.
    #[cfg(feature = "trace")]
    trace_scratch: Vec<TraceRecord<VmEvent>>,
    /// Streaming consumer of the merged trace, fed at every master-ring
    /// push so ring overwrites cannot lose history.
    #[cfg(feature = "trace")]
    sink: Option<Box<dyn TraceSink>>,
    /// Master-ring overwrites that happened while no sink was attached
    /// (the record was lost before any consumer saw it).
    #[cfg(feature = "trace")]
    unsunk_dropped: u64,
}

impl HipecKernel {
    /// Boots the modified kernel. `partition_burst` is set to 50 % of the
    /// free frames after startup (paper §4.3.1).
    pub fn new(params: KernelParams) -> Self {
        let mut vm = Kernel::new(params);
        vm.hipec_check_enabled = true;
        let burst = vm.free_count() / 2;
        HipecKernel {
            vm,
            containers: Vec::new(),
            gfm: GlobalFrameManager::new(burst),
            checker: SecurityChecker::new(),
            admission: AdmissionControl::default(),
            health_policy: HealthPolicy::default(),
            ramp_cursor: 0,
            limits: ExecLimits::default(),
            backend: ExecBackend::default(),
            obs: crate::obs::ObsState::default(),
            trace: EventRing::new(DEFAULT_TRACE_CAPACITY),
            next_seq: 0,
            #[cfg(debug_assertions)]
            check_tick: std::cell::Cell::new(0),
            #[cfg(feature = "trace")]
            trace_scratch: Vec::with_capacity(DEFAULT_TRACE_CAPACITY),
            #[cfg(feature = "trace")]
            sink: None,
            #[cfg(feature = "trace")]
            unsunk_dropped: 0,
        }
    }

    /// Pushes one record onto the master ring and forwards the stored copy
    /// to the attached sink, if any. Overwrites that no sink observed are
    /// tallied for [`HipecKernel::dropped_records`].
    #[cfg(feature = "trace")]
    fn push_master(&mut self, at: hipec_sim::SimTime, event: TraceEvent) {
        match self.sink.as_mut() {
            Some(sink) => {
                if let Some(rec) = self.trace.push(at, event) {
                    sink.record(&rec);
                }
            }
            None => {
                let before = self.trace.dropped();
                self.trace.push(at, event);
                self.unsunk_dropped += self.trace.dropped() - before;
            }
        }
    }

    /// Attaches a streaming trace sink, returning the previous one. The
    /// sink sees every record pushed onto the master ring from now on
    /// (attach before driving work to capture a complete trace). Pending
    /// VM-ring events are merged first so they are attributed to the old
    /// sink (or counted as unsunk), never delivered out of order.
    #[cfg(feature = "trace")]
    pub fn set_sink(&mut self, sink: Box<dyn TraceSink>) -> Option<Box<dyn TraceSink>> {
        self.sync_trace();
        self.sink.replace(sink)
    }

    /// Detaches the current sink after merging any pending VM-ring events
    /// into it and flushing its buffered output.
    #[cfg(feature = "trace")]
    pub fn take_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sync_trace();
        let mut sink = self.sink.take();
        if let Some(s) = sink.as_mut() {
            s.flush_sink();
        }
        sink
    }

    /// Trace records lost to ring overwrites before any consumer saw them.
    ///
    /// VM-ring overwrites always count (they happen before the merge);
    /// master-ring overwrites count only when they happened with no sink
    /// attached — with a sink, every record was already delivered when it
    /// was pushed, so the bounded ring is just a tail buffer. Surfaced as
    /// [`crate::KernelStats::dropped_records`].
    pub fn dropped_records(&self) -> u64 {
        #[cfg(feature = "trace")]
        {
            self.vm.trace.dropped() + self.unsunk_dropped
        }
        #[cfg(not(feature = "trace"))]
        {
            self.vm.trace.dropped() + self.trace.dropped()
        }
    }

    /// Records a HiPEC-layer trace event, first draining the VM substrate's
    /// ring so the merged trace stays in causal order. Free of clock
    /// charges; a no-op with the `trace` feature compiled out.
    #[inline]
    pub(crate) fn emit(&mut self, event: TraceEvent) {
        #[cfg(feature = "trace")]
        {
            self.sync_trace();
            self.push_master(self.vm.now(), event);
        }
        #[cfg(not(feature = "trace"))]
        let _ = event;
    }

    /// Moves any events the VM layer recorded since the last merge into the
    /// master trace (stamped with their original virtual times).
    pub fn sync_trace(&mut self) {
        #[cfg(feature = "trace")]
        {
            if self.vm.trace.is_empty() {
                return;
            }
            self.trace_scratch.clear();
            self.vm.trace.drain_into(&mut self.trace_scratch);
            // The scratch buffer cannot be borrowed while pushing; swap it
            // out so this stays allocation-free.
            let mut scratch = std::mem::take(&mut self.trace_scratch);
            for rec in &scratch {
                self.push_master(rec.at, TraceEvent::Vm(rec.event));
            }
            scratch.clear();
            self.trace_scratch = scratch;
        }
    }

    /// Turns event recording on or off at run time for both layers.
    /// Recording state never affects simulation behavior.
    pub fn set_tracing(&mut self, on: bool) {
        self.trace.set_enabled(on);
        self.vm.trace.set_enabled(on);
    }

    /// The newest `n` trace events rendered one per line (oldest first) —
    /// appended to invariant-violation reports. VM-ring events not yet
    /// merged into the master ring (merging needs `&mut self`) are all
    /// newer than the master's contents, so they render after it.
    pub fn trace_tail(&self, n: usize) -> String {
        let mut out = crate::trace::render_tail(&self.trace, n);
        let pending = self.vm.trace.len();
        for rec in self.vm.trace.iter().skip(pending.saturating_sub(n)) {
            out.push_str(&format!(
                "    [{:>6}] {} vm: {:?}\n",
                rec.seq, rec.at, rec.event
            ));
        }
        out
    }

    /// Registers an additional backing device and returns its id. Regions
    /// bind to a device at setup time via the `_on` variants; device 0 (the
    /// boot paging device) always exists and backs everything else.
    pub fn add_device(&mut self, params: DeviceParams) -> DeviceId {
        self.vm.add_device(params)
    }

    /// Hot-unplugs a backing device (see [`hipec_vm::Kernel::remove_device`]):
    /// every object it backs re-binds to the returned survivor and the
    /// drain completes as the pump runs. HiPEC containers are unaffected
    /// except that their health machinery now gates restores on the
    /// survivor's breaker, since `device_of` follows the re-bind.
    pub fn remove_device(&mut self, dev: DeviceId) -> Result<DeviceId, HipecError> {
        let survivor = self.vm.remove_device(dev)?;
        self.sync_trace();
        self.debug_check();
        Ok(survivor)
    }

    /// Re-binds one object to another Active device, queueing backing-page
    /// copies (see [`hipec_vm::Kernel::migrate_object`]).
    pub fn migrate_object(&mut self, object: ObjectId, to: DeviceId) -> Result<u64, HipecError> {
        let pages = self.vm.migrate_object(object, to)?;
        self.sync_trace();
        self.debug_check();
        Ok(pages)
    }

    /// Fault-rate-driven hot/cold rebalancing across storage tiers (see
    /// [`hipec_vm::Kernel::rebalance_tiers`]).
    pub fn rebalance_tiers(&mut self, hot_threshold: u64) -> (u64, u64) {
        let moved = self.vm.rebalance_tiers(hot_threshold);
        self.sync_trace();
        self.debug_check();
        moved
    }

    /// `vm_allocate_hipec`: an anonymous region under the given policy,
    /// paging against the boot device.
    pub fn vm_allocate_hipec(
        &mut self,
        task: TaskId,
        bytes: u64,
        program: PolicyProgram,
        min_frames: u64,
    ) -> Result<(VAddr, ObjectId, ContainerKey), HipecError> {
        self.setup_hipec_region(
            DeviceId(0),
            task,
            bytes,
            program,
            min_frames,
            Backing::Anonymous,
        )
    }

    /// `vm_allocate_hipec` with an explicit backing device.
    pub fn vm_allocate_hipec_on(
        &mut self,
        device: DeviceId,
        task: TaskId,
        bytes: u64,
        program: PolicyProgram,
        min_frames: u64,
    ) -> Result<(VAddr, ObjectId, ContainerKey), HipecError> {
        self.setup_hipec_region(device, task, bytes, program, min_frames, Backing::Anonymous)
    }

    /// `vm_map_hipec`: a file-backed region under the given policy, paging
    /// against the boot device.
    pub fn vm_map_hipec(
        &mut self,
        task: TaskId,
        bytes: u64,
        program: PolicyProgram,
        min_frames: u64,
    ) -> Result<(VAddr, ObjectId, ContainerKey), HipecError> {
        self.setup_hipec_region(DeviceId(0), task, bytes, program, min_frames, Backing::File)
    }

    /// `vm_map_hipec` with an explicit backing device.
    pub fn vm_map_hipec_on(
        &mut self,
        device: DeviceId,
        task: TaskId,
        bytes: u64,
        program: PolicyProgram,
        min_frames: u64,
    ) -> Result<(VAddr, ObjectId, ContainerKey), HipecError> {
        self.setup_hipec_region(device, task, bytes, program, min_frames, Backing::File)
    }

    /// `vm_allocate_hipec` under an explicit share class and backing
    /// device — the multi-tenant entry point admission control meters.
    pub fn vm_allocate_hipec_as(
        &mut self,
        share: ShareClass,
        device: DeviceId,
        task: TaskId,
        bytes: u64,
        program: PolicyProgram,
        min_frames: u64,
    ) -> Result<(VAddr, ObjectId, ContainerKey), HipecError> {
        self.setup_hipec_region_as(
            share,
            device,
            task,
            bytes,
            program,
            min_frames,
            Backing::Anonymous,
        )
    }

    /// `vm_map_hipec` under an explicit share class and backing device.
    pub fn vm_map_hipec_as(
        &mut self,
        share: ShareClass,
        device: DeviceId,
        task: TaskId,
        bytes: u64,
        program: PolicyProgram,
        min_frames: u64,
    ) -> Result<(VAddr, ObjectId, ContainerKey), HipecError> {
        self.setup_hipec_region_as(
            share,
            device,
            task,
            bytes,
            program,
            min_frames,
            Backing::File,
        )
    }

    fn setup_hipec_region(
        &mut self,
        device: DeviceId,
        task: TaskId,
        bytes: u64,
        program: PolicyProgram,
        min_frames: u64,
        backing: Backing,
    ) -> Result<(VAddr, ObjectId, ContainerKey), HipecError> {
        self.setup_hipec_region_as(
            ShareClass::default(),
            device,
            task,
            bytes,
            program,
            min_frames,
            backing,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn setup_hipec_region_as(
        &mut self,
        share: ShareClass,
        device: DeviceId,
        task: TaskId,
        bytes: u64,
        program: PolicyProgram,
        min_frames: u64,
        backing: Backing,
    ) -> Result<(VAddr, ObjectId, ContainerKey), HipecError> {
        // The security checker validates the command buffer before the
        // container is mounted (paper §4.3).
        if let Err(report) = validate_program(&program) {
            return Err(HipecError::InvalidProgram(report.join("; ")));
        }
        // Per-tenant admission: the weighted share cap and the
        // bursty-arrival throttle run before any frame moves, so a
        // rejected install leaves no kernel state behind.
        let class_frames: u64 = self
            .containers
            .iter()
            .filter(|c| !c.terminated && c.share == share)
            .map(|c| c.allocated)
            .sum();
        if let Err(why) =
            self.admission
                .admit(share, min_frames, class_frames, self.gfm.partition_burst)
        {
            let throttled = why == AdmitReject::Throttled;
            self.vm.stats.bump("admission_rejects");
            self.emit(TraceEvent::AdmissionRejected {
                class: share.index() as u8,
                asked: min_frames,
                throttled,
            });
            return Err(HipecError::AdmissionRejected {
                class: share.name(),
                throttled,
            });
        }
        // minFrame admission: reclaim from existing containers if the free
        // pool alone cannot cover the request.
        let frames = self.admit_frames(min_frames)?;

        let pages = hipec_vm::bytes_to_pages(bytes);
        let object = self.vm.create_object_on(device, pages, backing)?;
        let addr = self.vm.map_object(task, object, 0, pages)?;
        let key = self.containers.len() as u32;
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut container =
            Container::new(key, object, task, program, min_frames, seq, &mut self.vm);
        container.share = share;
        for f in frames {
            self.vm
                .frames
                .enqueue_tail(container.free_q, f)
                .map_err(HipecError::Vm)?;
        }
        container.allocated = min_frames;
        self.gfm.total_specific += min_frames;
        self.vm.object_mut(object)?.container = Some(key);
        self.containers.push(container);
        // Installing the policy costs one system call.
        self.vm.charge(self.vm.cost.null_syscall);
        self.vm.stats.bump("hipec_installs");
        self.emit(TraceEvent::Install {
            container: key,
            min_frames,
        });
        self.debug_check();
        Ok((addr, object, ContainerKey(key)))
    }

    /// Performs one memory access, resolving HiPEC faults via the policy
    /// executor.
    pub fn access(
        &mut self,
        task: TaskId,
        addr: VAddr,
        write: bool,
    ) -> Result<AccessResult, HipecError> {
        self.poll_checker();
        let result = match self.vm.access(task, addr, write) {
            Ok(AccessOutcome::Done(r)) => Ok(r),
            Ok(AccessOutcome::NeedsPolicy(info)) => self.policy_fault(info),
            Err(e) => Err(e.into()),
        };
        self.sync_trace();
        self.debug_check();
        result
    }

    fn policy_fault(
        &mut self,
        info: hipec_vm::PolicyFaultInfo,
    ) -> Result<AccessResult, HipecError> {
        let cidx = info.container as usize;
        let container = self
            .containers
            .get(cidx)
            .ok_or(HipecError::NoSuchContainer(info.container))?;
        if container.terminated {
            return Err(HipecError::Terminated {
                container: info.container,
                reason: "already terminated".into(),
            });
        }
        // Invoke the policy executor: container lookup, operand binding,
        // start timestamp (inspected by the checker).
        self.vm.charge(self.vm.cost.executor_invoke);
        let fault_start = self.vm.now();
        self.containers[cidx].exec_started = Some(fault_start);
        let mut fuel = self.limits.fuel;
        let outcome = self.run_event(cidx, EVENT_PAGE_FAULT, 0, &mut fuel);
        match outcome {
            Ok(ExecValue::Page(frame)) => {
                self.containers[cidx].exec_started = None;
                self.containers[cidx].stats.faults += 1;
                // Defensive checks on the returned frame: it must be clean
                // and evicted, and must not linger on the free queue.
                let free_q = self.containers[cidx].free_q;
                if self.vm.frames.queue_of(frame)? == Some(free_q) {
                    self.vm.frames.remove(frame)?;
                }
                if self.vm.frames.frame(frame)?.owner.is_some() {
                    return Err(self.kill(cidx, "PageFault returned an owned page"));
                }
                let result = match self.vm.complete_policy_fault(info, frame) {
                    Ok(r) => r,
                    Err(VmError::Device(d)) => {
                        // Environmental failure while filling the frame: the
                        // policy's frame goes back to its free queue (it is
                        // still the container's) and the fault is surfaced
                        // without terminating the application.
                        let _ = self.vm.frames.enqueue_tail(free_q, frame);
                        self.note_strike(cidx);
                        return Err(HipecError::Vm(VmError::Device(d)));
                    }
                    Err(e) => return Err(e.into()),
                };
                let end = result.io_until.unwrap_or_else(|| self.vm.now());
                let latency = end.since(fault_start);
                self.vm.fault_latency.record(latency);
                #[cfg(feature = "metrics")]
                self.containers[cidx].lat_fault.record(latency);
                #[cfg(feature = "metrics")]
                self.obs.class_fault[self.containers[cidx].share.index()].record(latency);
                self.emit(TraceEvent::PolicyFaultResolved {
                    container: info.container,
                    frame,
                    latency,
                });
                Ok(result)
            }
            Ok(_) => Err(self.kill(cidx, &PolicyFault::NoPageReturned.to_string())),
            Err(PolicyFault::OutOfFuel) => {
                // A runaway policy: the executor is stuck until the security
                // checker's timeout detection terminates the application.
                // Model the detection latency by running the checker forward.
                let reason = self.detect_runaway(cidx);
                Err(reason)
            }
            Err(PolicyFault::Device(d)) => {
                // Environmental device failure mid-policy: abort the event
                // without killing the application (the page stays faulted;
                // the access can be retried).
                self.containers[cidx].exec_started = None;
                self.note_strike(cidx);
                Err(HipecError::Vm(VmError::Device(d)))
            }
            Err(_) if self.containers[cidx].health.state != HealthState::Healthy => {
                // A policy that wedges while already degraded by
                // environmental faults (its free queue empties when the
                // breaker refuses its flushes) is collateral damage, not
                // misbehavior: quarantine it into default management,
                // mirroring the checker's timeout handling. The faulted
                // access retries through the default pageout path.
                self.quarantine(cidx);
                Err(HipecError::Quarantined {
                    container: self.containers[cidx].key,
                })
            }
            Err(fault) => Err(self.kill(cidx, &fault.to_string())),
        }
    }

    /// Terminates a container: reclaims every frame it holds and reverts its
    /// region to default management.
    pub(crate) fn kill(&mut self, cidx: usize, reason: &str) -> HipecError {
        self.containers[cidx].terminated = true;
        self.containers[cidx].exec_started = None;
        let _ = self.reclaim_all_frames(cidx);
        let object = self.containers[cidx].object;
        if let Ok(obj) = self.vm.object_mut(object) {
            obj.container = None;
        }
        self.revert_stranded_frames(cidx);
        self.vm.stats.bump("hipec_kills");
        self.emit(TraceEvent::Terminated {
            container: self.containers[cidx].key,
            graceful: false,
        });
        HipecError::Terminated {
            container: self.containers[cidx].key,
            reason: reason.to_string(),
        }
    }

    /// Advances the security checker until it detects the runaway policy in
    /// `cidx`, then terminates the application. Returns the termination
    /// error (carrying the detection latency in its reason).
    fn detect_runaway(&mut self, cidx: usize) -> HipecError {
        let started = self.containers[cidx]
            .exec_started
            .expect("runaway policies have a start stamp");
        // The checker only acts on executions older than the timeout
        // period; step wakeup by wakeup until it does. A degraded container
        // is quarantined rather than killed, so stop on either outcome.
        let mut guard = 0;
        while !self.containers[cidx].terminated
            && self.containers[cidx].health.state != HealthState::Quarantined
        {
            let next = self.checker.next_wakeup;
            self.vm.clock.advance_to(next);
            self.poll_checker();
            guard += 1;
            if guard > 10_000 {
                // Unreachable by construction; fail closed rather than hang.
                let _ = self.kill(cidx, "runaway (checker fallback)");
                break;
            }
        }
        if self.containers[cidx].health.state == HealthState::Quarantined {
            return HipecError::Quarantined {
                container: self.containers[cidx].key,
            };
        }
        let latency = self.vm.now().since(started);
        HipecError::Terminated {
            container: self.containers[cidx].key,
            reason: format!("policy execution timeout detected after {latency}"),
        }
    }

    /// Runs the security checker if its wakeup time has passed.
    pub fn poll_checker(&mut self) {
        while self.vm.now() >= self.checker.next_wakeup {
            self.checker_wakeup();
        }
    }

    /// Total frames currently allocated to specific applications.
    pub fn specific_total(&self) -> u64 {
        self.gfm.total_specific
    }

    /// Convenience: access and, if the access started device I/O, advance
    /// the clock to its completion (single-job drivers).
    pub fn access_sync(
        &mut self,
        task: TaskId,
        addr: VAddr,
        write: bool,
    ) -> Result<AccessResult, HipecError> {
        let r = self.access(task, addr, write)?;
        if let Some(done) = r.io_until {
            self.vm.clock.advance_to(done);
            self.pump();
        }
        Ok(r)
    }

    /// Completes due device I/O (a [`hipec_vm::Kernel::pump`] that also runs
    /// the debug-build invariant audit), then attributes any abandoned
    /// write-backs: a flush whose retry budget ran out lost its page's
    /// data, and the owning container gets a surfaced
    /// [`PolicyFault::Device`] it can drain via
    /// [`HipecKernel::take_surfaced_faults`].
    pub fn pump(&mut self) {
        // The pump itself advances no virtual time, so the observable
        // latency dimension is its cadence: the span since the last pump.
        // Same-instant re-pumps (common when callers pump defensively
        // inside one access) carry no cadence information, so only spans
        // that advanced virtual time are recorded — this also keeps the
        // hot loop's recording cost proportional to time, not call count.
        #[cfg(feature = "metrics")]
        {
            let now = self.vm.now();
            match self.obs.last_pump {
                Some(last) if now > last => {
                    self.obs.pump_drain.record(now.since(last));
                    self.obs.last_pump = Some(now);
                }
                Some(_) => {}
                None => self.obs.last_pump = Some(now),
            }
        }
        self.vm.pump();
        for dead in self.vm.take_dead_flushes() {
            let owner = self
                .vm
                .object(dead.object)
                .ok()
                .and_then(|o| o.container)
                .map(|key| key as usize)
                .filter(|&i| i < self.containers.len())
                .or_else(|| {
                    // A quarantined container is unlinked from its object
                    // (default management owns the region) but not dead:
                    // data lost to its write-backs still belongs to it and
                    // must be drainable after restore. Terminated
                    // containers stay unattributed.
                    self.containers
                        .iter()
                        .position(|c| c.object == dead.object && !c.terminated)
                });
            if let Some(i) = owner {
                self.containers[i].stats.device_faults += 1;
                // Bounded: a pathological device cannot grow this without
                // the application ever draining it.
                if self.containers[i].pending_faults.len() < 64 {
                    self.containers[i]
                        .pending_faults
                        .push(PolicyFault::Device(dead.fault));
                }
                self.emit(TraceEvent::DeviceFaultSurfaced {
                    container: self.containers[i].key,
                    frame: dead.frame,
                });
                // Abandoned write-backs are health strikes: enough of them
                // quarantines the container into default management.
                self.note_strike(i);
            }
        }
        self.sync_trace();
        self.debug_check();
    }

    /// Drains the device faults surfaced to container `key` (data lost to
    /// abandoned write-backs) since the last call.
    pub fn take_surfaced_faults(&mut self, key: ContainerKey) -> Vec<PolicyFault> {
        self.containers
            .get_mut(key.0 as usize)
            .map(|c| std::mem::take(&mut c.pending_faults))
            .unwrap_or_default()
    }

    /// Reclaims up to `want` frames from specific applications (normal
    /// FAFR reclamation first, then forced). Returns the number reclaimed.
    ///
    /// Public wrapper over the global frame manager's reclamation path for
    /// drivers and tests; the kernel itself triggers it from admission and
    /// balance checks.
    pub fn reclaim_frames(&mut self, want: u64) -> u64 {
        let got = self.reclaim_specific(want);
        self.debug_check();
        got
    }

    /// A container view by key.
    pub fn container(&self, key: ContainerKey) -> Result<&Container, HipecError> {
        self.containers
            .get(key.0 as usize)
            .ok_or(HipecError::NoSuchContainer(key.0))
    }

    /// `vm_deallocate_hipec`: tears down a HiPEC region (paper §4.3.1,
    /// deallocation trigger 1: "when their VM region is deallocated").
    ///
    /// Every frame the container holds — queued, resident or parked in an
    /// operand slot — returns to the global pool (dirty contents are
    /// discarded with the region), the container is retired gracefully
    /// (it does not count as a kill) and the address range is unmapped.
    pub fn vm_deallocate_hipec(
        &mut self,
        task: TaskId,
        addr: VAddr,
        key: ContainerKey,
    ) -> Result<u64, HipecError> {
        let cidx = key.0 as usize;
        if cidx >= self.containers.len() {
            return Err(HipecError::NoSuchContainer(key.0));
        }
        // Contents are being destroyed: clear modify bits so the sweep
        // frees instead of flushing.
        let queues = self.containers[cidx].queues.clone();
        for q in queues {
            let members: Vec<_> = self.vm.frames.iter_queue(q).collect();
            for f in members {
                self.vm.frames.frame_mut(f)?.mod_bit = false;
            }
        }
        let parked: Vec<_> = self.containers[cidx]
            .operands
            .iter()
            .filter_map(|slot| match slot {
                crate::operand::OperandSlot::Page(Some(f)) => Some(*f),
                _ => None,
            })
            .collect();
        for f in parked {
            self.vm.frames.frame_mut(f)?.mod_bit = false;
        }
        let reclaimed = self.reclaim_all_frames(cidx);
        self.containers[cidx].terminated = true;
        self.containers[cidx].exec_started = None;
        let object = self.containers[cidx].object;
        self.vm.object_mut(object)?.container = None;
        self.revert_stranded_frames(cidx);
        let freed = self.vm.vm_deallocate(task, addr)?;
        self.vm.stats.bump("hipec_deallocations");
        self.emit(TraceEvent::Terminated {
            container: key.0,
            graceful: true,
        });
        self.debug_check();
        Ok(reclaimed + freed)
    }

    /// Runs one event of `key`'s policy outside the fault path.
    ///
    /// Measurement hook: benchmarks and tests use it to drive the
    /// interpreter's fetch/decode/dispatch loop in isolation. The event
    /// executes with a fresh fuel budget; faults are returned, not killed.
    pub fn run_event_raw(
        &mut self,
        key: ContainerKey,
        event: u8,
    ) -> Result<ExecValue, PolicyFault> {
        if self
            .containers
            .get(key.0 as usize)
            .is_some_and(|c| c.health.quarantined())
        {
            return Err(PolicyFault::Quarantined);
        }
        let mut fuel = self.limits.fuel;
        let result = self.run_event(key.0 as usize, event, 0, &mut fuel);
        self.sync_trace();
        self.debug_check();
        result
    }

    /// The executor backend events currently dispatch to.
    pub fn backend(&self) -> ExecBackend {
        self.backend
    }

    /// Selects the executor backend. Takes effect on the next event; both
    /// backends are bit-identical in virtual time, traces and faults, so
    /// switching mid-run never changes simulation results — only how much
    /// host CPU the dispatch burns.
    pub fn set_backend(&mut self, backend: ExecBackend) {
        self.backend = backend;
    }

    /// Charges the cost of one null syscall (used by comparison harnesses).
    pub fn charge_syscall(&mut self) {
        self.vm.charge(self.vm.cost.null_syscall);
    }

    /// Charges an arbitrary CPU cost (workload compute time).
    pub fn charge(&mut self, d: SimDuration) {
        self.vm.charge(d);
    }
}

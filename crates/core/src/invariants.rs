//! Kernel-state invariant checking.
//!
//! [`HipecKernel::check_invariants`] audits the conservation laws the whole
//! design rests on: every physical frame is in exactly one place, the pmap /
//! object-residency / frame-ownership triangles agree, free frames are fully
//! anonymous, and the global frame manager's books match the containers'.
//! Debug and test builds run the audit after every kernel entry point
//! ([`HipecKernel::debug_check`]); release builds compile it out of the hot
//! path but keep [`HipecKernel::check_invariants`] callable for tests and
//! tooling.
//!
//! The audit is read-only and O(frames + mappings + resident pages). On
//! paper-sized machines (16 384 frames) running it after literally every
//! access would dominate debug-build test time, so `debug_check` samples:
//! small tables (≤ [`FULL_CHECK_FRAMES`]) are audited on every call, larger
//! ones every [`SAMPLE_INTERVAL`]-th call.

use std::collections::HashMap;

use hipec_vm::{FrameId, QueueId};

use crate::kernel::HipecKernel;
use crate::operand::OperandSlot;

/// An independently computed partition of every physical frame into
/// exactly one bucket, by direct inspection of the frame table — no
/// manager or container book is consulted. [`HipecKernel::check_invariants`]
/// reconciles the books against it, and tests reconcile counter snapshots
/// against it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FramePartition {
    /// Wired (kernel) frames.
    pub wired: u64,
    /// Frames on the global free queue.
    pub global_free: u64,
    /// Frames on the global active/inactive queues (default pool).
    pub default_pool: u64,
    /// Resident default-pool pages off every queue (transient).
    pub default_unqueued: u64,
    /// Busy frames: write-backs in flight or awaiting a torn-write retry.
    /// These belong to the global pool — `flush_exchange` and `force_take`
    /// take them off the owning container's books when the flush starts.
    pub in_flight: u64,
    /// Frames attributed to each container (terminated ones included), in
    /// container-list order: on one of its queues, resident in its object
    /// off-queue, or parked in one of its page operand slots.
    pub per_container: Vec<(u32, u64)>,
    /// Frames in no bucket at all (always 0 unless a frame leaked).
    pub unaccounted: u64,
}

impl FramePartition {
    /// Frames attributed to container `key`, if it exists.
    pub fn container(&self, key: u32) -> Option<u64> {
        self.per_container
            .iter()
            .find(|(k, _)| *k == key)
            .map(|&(_, n)| n)
    }

    /// Total frames attributed to containers (the partition's independent
    /// recomputation of `gfm.total_specific`).
    pub fn total_specific(&self) -> u64 {
        self.per_container.iter().map(|&(_, n)| n).sum()
    }

    /// Sum of every bucket — always the frame-table size.
    pub fn total(&self) -> u64 {
        self.wired
            + self.global_free
            + self.default_pool
            + self.default_unqueued
            + self.in_flight
            + self.total_specific()
            + self.unaccounted
    }
}

/// Frame tables at or below this size are audited on every `debug_check`.
#[cfg(debug_assertions)]
const FULL_CHECK_FRAMES: usize = 2048;

/// Audit frequency (in `debug_check` calls) for larger frame tables.
#[cfg(debug_assertions)]
const SAMPLE_INTERVAL: u64 = 64;

impl HipecKernel {
    /// Computes the [`FramePartition`] by classifying every frame from the
    /// frame table alone. Classification priority: wired, then queue
    /// membership, then busy, then object ownership, then operand-slot
    /// parking — so a frame named by several structures (a page slot may
    /// legally alias a queued frame) is counted exactly once.
    pub fn frame_partition(&self) -> FramePartition {
        let frames = &self.vm.frames;

        // Queue → container index (terminated containers keep their queues;
        // a frame stuck on one — e.g. a dirty page whose flush submission
        // the device refused mid-kill — is still theirs).
        let mut queue_owner: HashMap<QueueId, usize> = HashMap::new();
        for (i, c) in self.containers.iter().enumerate() {
            for &q in &c.queues {
                queue_owner.insert(q, i);
            }
        }
        // Frame → parking container index (first slot wins).
        let mut parked: HashMap<FrameId, usize> = HashMap::new();
        for (i, c) in self.containers.iter().enumerate() {
            for slot in &c.operands {
                if let OperandSlot::Page(Some(f)) = slot {
                    parked.entry(*f).or_insert(i);
                }
            }
        }
        // Object → container index.
        let key_to_idx: HashMap<u32, usize> = self
            .containers
            .iter()
            .enumerate()
            .map(|(i, c)| (c.key, i))
            .collect();
        let object_owner: HashMap<_, usize> = self
            .vm
            .objects_iter()
            .filter_map(|o| {
                o.container
                    .and_then(|k| key_to_idx.get(&k).copied())
                    .map(|i| (o.id, i))
            })
            .collect();

        let mut p = FramePartition {
            wired: 0,
            global_free: 0,
            default_pool: 0,
            default_unqueued: 0,
            in_flight: 0,
            per_container: self.containers.iter().map(|c| (c.key, 0)).collect(),
            unaccounted: 0,
        };
        for i in 0..frames.len() as u32 {
            let f = FrameId(i);
            let frame = frames.frame(f).expect("frame index in range");
            let queue = frames.queue_of(f).expect("frame index in range");
            if frame.wired {
                p.wired += 1;
            } else if queue == Some(self.vm.free_q) {
                p.global_free += 1;
            } else if queue == Some(self.vm.active_q) || queue == Some(self.vm.inactive_q) {
                p.default_pool += 1;
            } else if let Some(&cidx) = queue.and_then(|q| queue_owner.get(&q)) {
                p.per_container[cidx].1 += 1;
            } else if frame.busy {
                p.in_flight += 1;
            } else if let Some(&cidx) = frame.owner.and_then(|(o, _)| object_owner.get(&o)) {
                p.per_container[cidx].1 += 1;
            } else if frame.owner.is_some() {
                p.default_unqueued += 1;
            } else if let Some(&cidx) = parked.get(&f) {
                p.per_container[cidx].1 += 1;
            } else {
                p.unaccounted += 1;
            }
        }
        p
    }

    /// Audits every kernel invariant; returns the first violation found —
    /// with the last events leading up to it appended when tracing is
    /// compiled in.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.check_invariants_inner().map_err(|violation| {
            let tail = self.trace_tail(16);
            if tail.is_empty() {
                violation
            } else {
                format!("{violation}\n  last events:\n{tail}")
            }
        })
    }

    /// Audits every kernel invariant; returns the first violation found.
    ///
    /// The invariants:
    ///
    /// 1. **Conservation** — every frame is exactly one of: wired, busy
    ///    (in-flight flush), on one queue, owned-and-unqueued (a resident
    ///    page taken off its queue), or parked in a live container's page
    ///    operand slot. Anything else is a leak.
    /// 2. **Busy frames** are unqueued, unmapped, retain their owner (the
    ///    flush completion path derives the backing block from it), and are
    ///    tracked by exactly the in-flight list or the torn-write retry
    ///    queue — and vice versa.
    /// 3. **Free frames** (global free queue) are fully anonymous: no
    ///    owner, no mappings, clean, not wired, not busy.
    /// 4. **Translation agreement** — frame `mappings` and task pmaps are
    ///    mirror images; object residency and frame ownership are mirror
    ///    images (modulo busy frames, which are evicted but owner-retaining).
    /// 5. **Default-pool purity** — frames on the global active/inactive
    ///    queues belong to objects under default management, never to a
    ///    container (policy-managed pages live on container queues only).
    /// 6. **GFM books** — `total_specific` equals the sum of all container
    ///    `allocated` counts, and no live container's page slot references
    ///    a frame that is on the global free queue (a stale handle to a
    ///    released frame).
    /// 7. **Partition conservation** — every container's `allocated` count
    ///    equals the number of frames the independently computed
    ///    [`FramePartition`] attributes to it, and no frame is in no bucket.
    /// 8. **Health linkage** — a live, non-quarantined container's object
    ///    links back to it; a terminated or quarantined container's region
    ///    runs under default management, so its object (if it still exists)
    ///    carries no container link.
    fn check_invariants_inner(&self) -> Result<(), String> {
        let frames = &self.vm.frames;
        let nframes = frames.len() as u32;

        // Busy-frame tracking: in-flight flushes plus torn-write retries.
        let mut tracked: HashMap<FrameId, &'static str> = HashMap::new();
        for f in self.vm.inflight_frames() {
            if tracked.insert(f, "in-flight list").is_some() {
                return Err(format!("{f} appears twice in the in-flight list"));
            }
        }
        for f in self.vm.retry_frames() {
            if let Some(prev) = tracked.insert(f, "retry queue") {
                return Err(format!("{f} tracked by both {prev} and the retry queue"));
            }
        }

        // Frames parked in live containers' page operand slots.
        let mut parked: HashMap<FrameId, u32> = HashMap::new();
        for c in &self.containers {
            if c.terminated {
                continue;
            }
            for slot in &c.operands {
                if let OperandSlot::Page(Some(f)) = slot {
                    parked.entry(*f).or_insert(c.key);
                }
            }
        }

        let objects: HashMap<_, _> = self.vm.objects_iter().map(|o| (o.id, o)).collect();
        let tasks: HashMap<_, _> = self.vm.tasks_iter().map(|t| (t.id, t)).collect();

        for i in 0..nframes {
            let f = FrameId(i);
            let frame = frames.frame(f).map_err(|e| e.to_string())?;
            let queue = frames.queue_of(f).map_err(|e| e.to_string())?;

            if frame.wired {
                if queue.is_some() {
                    return Err(format!("wired {f} is on a queue"));
                }
            } else if frame.busy {
                if queue.is_some() {
                    return Err(format!("busy {f} is on a queue"));
                }
                if !frame.mappings.is_empty() {
                    return Err(format!("busy {f} still has pmap translations"));
                }
                if frame.owner.is_none() {
                    return Err(format!(
                        "busy {f} lost its owner (flush completion cannot locate its block)"
                    ));
                }
                if !tracked.contains_key(&f) {
                    return Err(format!(
                        "busy {f} is tracked by neither the in-flight list nor the retry queue"
                    ));
                }
            } else if queue.is_none() && frame.owner.is_none() && !parked.contains_key(&f) {
                return Err(format!(
                    "{f} is unqueued, unowned, unparked, not wired, not busy: leaked"
                ));
            }

            if !frame.busy {
                if let Some(via) = tracked.get(&f) {
                    return Err(format!("non-busy {f} is tracked by the {via}"));
                }
            }

            if queue == Some(self.vm.free_q) {
                if frame.owner.is_some() {
                    return Err(format!("free {f} still has an owner"));
                }
                if !frame.mappings.is_empty() {
                    return Err(format!("free {f} still has pmap translations"));
                }
                if frame.mod_bit {
                    return Err(format!("free {f} is dirty (data loss)"));
                }
            }

            if queue == Some(self.vm.active_q) || queue == Some(self.vm.inactive_q) {
                let Some((object, _)) = frame.owner else {
                    return Err(format!("{f} is on a global page queue but owns no page"));
                };
                let container = objects.get(&object).and_then(|o| o.container);
                if let Some(key) = container {
                    return Err(format!(
                        "{f} of container {key}'s object is on a global page queue"
                    ));
                }
            }

            // Frame → pmap direction.
            for &(task, vpage) in &frame.mappings {
                let hit = tasks.get(&task).and_then(|t| t.pmap.get(&vpage)).copied();
                if hit != Some(f) {
                    return Err(format!(
                        "{f} claims a mapping by task {} vpage {vpage} the pmap does not have",
                        task.0
                    ));
                }
            }

            // Frame → object direction (busy frames are evicted but keep
            // their owner for the completion path).
            if let Some((object, offset)) = frame.owner {
                if !frame.busy {
                    let resident = objects.get(&object).and_then(|o| o.lookup(offset));
                    if resident != Some(f) {
                        return Err(format!(
                            "{f} claims page {} of object {} but the object disagrees",
                            offset.0, object.0
                        ));
                    }
                }
            }
        }

        // pmap → frame direction.
        for t in self.vm.tasks_iter() {
            for (&vpage, &f) in &t.pmap {
                let frame = frames.frame(f).map_err(|e| e.to_string())?;
                if !frame.mappings.contains(&(t.id, vpage)) {
                    return Err(format!(
                        "task {} maps vpage {vpage} to {f} but the frame does not list it",
                        t.id.0
                    ));
                }
            }
        }

        // object → frame direction.
        for o in self.vm.objects_iter() {
            for (&offset, &f) in &o.resident {
                let frame = frames.frame(f).map_err(|e| e.to_string())?;
                if frame.owner != Some((o.id, hipec_vm::PageOffset(offset))) {
                    return Err(format!(
                        "object {} holds page {offset} in {f} but the frame disagrees",
                        o.id.0
                    ));
                }
            }
        }

        // GFM books vs the containers'.
        let allocated: u64 = self.containers.iter().map(|c| c.allocated).sum();
        if self.gfm.total_specific != allocated {
            return Err(format!(
                "gfm.total_specific = {} but containers hold {} frames",
                self.gfm.total_specific, allocated
            ));
        }

        // Stale handles: a page slot naming a globally-freed frame.
        for (&f, &key) in &parked {
            if frames.queue_of(f).map_err(|e| e.to_string())? == Some(self.vm.free_q) {
                return Err(format!(
                    "container {key} holds a page slot for {f}, which is on the global free queue"
                ));
            }
        }

        // Partition conservation: each container's books against the
        // frame table's own story, container by container.
        let partition = self.frame_partition();
        for (c, &(key, held)) in self.containers.iter().zip(&partition.per_container) {
            if held != c.allocated {
                return Err(format!(
                    "container {key} books {} frames but the frame partition attributes {held}",
                    c.allocated
                ));
            }
        }
        if partition.unaccounted != 0 {
            return Err(format!(
                "{} frames fit no partition bucket",
                partition.unaccounted
            ));
        }

        // Health ↔ object linkage.
        for c in &self.containers {
            let Some(object) = objects.get(&c.object) else {
                // The region was deallocated with the container.
                continue;
            };
            let fallback = c.terminated || c.health.quarantined();
            if fallback {
                if let Some(key) = object.container {
                    return Err(format!(
                        "container {} is under default-management fallback but its \
                         object still links to container {key}",
                        c.key
                    ));
                }
            } else if object.container != Some(c.key) {
                return Err(format!(
                    "live container {} lost its object link (object says {:?})",
                    c.key, object.container
                ));
            }
        }

        Ok(())
    }

    /// Runs the invariant audit and panics on violation — debug and test
    /// builds only; a no-op in release builds.
    ///
    /// Sampled on large frame tables (see module docs); the audit of the
    /// final state is what matters, and every call site is revisited
    /// constantly by the workloads.
    pub fn debug_check(&self) {
        #[cfg(debug_assertions)]
        {
            let tick = self.check_tick.get().wrapping_add(1);
            self.check_tick.set(tick);
            if self.vm.frames.len() > FULL_CHECK_FRAMES && !tick.is_multiple_of(SAMPLE_INTERVAL) {
                return;
            }
            if let Err(violation) = self.check_invariants() {
                panic!("kernel invariant violated: {violation}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use hipec_vm::{KernelParams, VAddr, PAGE_SIZE};

    use crate::kernel::HipecKernel;
    use crate::operand::OperandDecl;
    use crate::program::PolicyProgram;

    fn small_kernel() -> HipecKernel {
        let mut p = KernelParams::paper_64mb();
        p.total_frames = 64;
        p.wired_frames = 4;
        p.free_target = 8;
        p.free_min = 4;
        p.inactive_target = 12;
        HipecKernel::new(p)
    }

    /// A minimal FIFO policy: take a free frame (requesting or reclaiming
    /// as needed), track residency on one queue, return the frame. The
    /// `ReclaimFrame` event gives back exactly what the GFM asks for.
    fn fifo_program() -> PolicyProgram {
        use crate::command::build;
        use crate::command::{ArithOp, CompOp, JumpMode, QueueEnd};
        use crate::operand::KernelVar;
        let mut p = PolicyProgram::new();
        let free = p.declare(OperandDecl::FreeQueue);
        let q = p.declare(OperandDecl::Queue { recency: false });
        let page = p.declare(OperandDecl::Page);
        let one = p.declare(OperandDecl::Int(1));
        let zero = p.declare(OperandDecl::Int(0));
        let cnt = p.declare(OperandDecl::Int(0));
        let target = p.declare(OperandDecl::Kernel(KernelVar::ReclaimTarget));
        p.add_event(
            "PageFault",
            vec![
                build::emptyq(free),                             // 0
                build::jump(JumpMode::IfFalse, 6),               // 1: have a free frame
                build::request(one, crate::command::NO_OPERAND), // 2
                build::jump(JumpMode::IfTrue, 6),                // 3: granted
                build::fifo(q, crate::command::NO_OPERAND),      // 4: reclaim a victim
                build::jump(JumpMode::Always, 0),                // 5
                build::dequeue(page, free, QueueEnd::Head),      // 6
                build::enqueue(page, q, QueueEnd::Tail),         // 7
                build::ret(page),                                // 8
            ],
        );
        p.add_event(
            "ReclaimFrame",
            vec![
                build::arith(cnt, target, ArithOp::Mov),    // 0: cnt = asked
                build::emptyq(free),                        // 1
                build::jump(JumpMode::IfTrue, 9),           // 2: nothing spare
                build::comp(cnt, zero, CompOp::Gt),         // 3
                build::jump(JumpMode::IfFalse, 9),          // 4: quota met
                build::dequeue(page, free, QueueEnd::Head), // 5
                build::release(page),                       // 6
                build::arith(cnt, cnt, ArithOp::Dec),       // 7
                build::jump(JumpMode::Always, 1),           // 8
                build::ret(crate::command::NO_OPERAND),     // 9
            ],
        );
        p
    }

    #[test]
    fn fresh_kernel_satisfies_invariants() {
        let k = small_kernel();
        k.check_invariants().expect("boot state is consistent");
    }

    #[test]
    fn invariants_hold_across_default_pool_churn() {
        let mut k = small_kernel();
        let t = k.vm.create_task();
        let (addr, _) = k.vm.vm_allocate(t, 100 * PAGE_SIZE).expect("allocate");
        for p in 0..100 {
            k.access_sync(t, VAddr(addr.0 + p * PAGE_SIZE), p % 3 == 0)
                .expect("access");
            k.check_invariants().expect("consistent after every access");
        }
    }

    #[test]
    fn invariants_hold_across_policy_churn() {
        let mut k = small_kernel();
        let t = k.vm.create_task();
        // 20 resident pages stays under the partition burst (30 frames on
        // this 64-frame machine), so the policy self-recycles via `Fifo`
        // rather than fighting the balancer for every grant.
        let (base, _o, _key) = k
            .vm_allocate_hipec(t, 20 * PAGE_SIZE, fifo_program(), 8)
            .expect("install");
        for round in 0..3 {
            for p in 0..20 {
                k.access_sync(t, VAddr(base.0 + p * PAGE_SIZE), round == 1)
                    .expect("access");
                k.check_invariants().expect("consistent after every access");
            }
        }
    }

    #[test]
    fn audit_detects_a_leaked_frame() {
        let mut k = small_kernel();
        // Pull a frame out of the pool and drop it on the floor.
        let _leaked = k.vm.take_free_frames(1).expect("available");
        let err = k.check_invariants().expect_err("leak must be caught");
        assert!(err.contains("leaked"), "unexpected report: {err}");
    }

    #[test]
    fn audit_detects_cooked_books() {
        let mut k = small_kernel();
        let t = k.vm.create_task();
        let mut program = PolicyProgram::new();
        program.declare(OperandDecl::FreeQueue);
        program.declare(OperandDecl::Page);
        program.add_event(
            "PageFault",
            vec![crate::command::build::ret(crate::command::NO_OPERAND)],
        );
        program.add_event(
            "ReclaimFrame",
            vec![crate::command::build::ret(crate::command::NO_OPERAND)],
        );
        let (_, _, key) = k
            .vm_allocate_hipec(t, 16 * PAGE_SIZE, program, 4)
            .expect("install");
        k.check_invariants().expect("consistent after install");
        k.containers[key.0 as usize].allocated += 1;
        let err = k.check_invariants().expect_err("imbalance must be caught");
        assert!(err.contains("total_specific"), "unexpected report: {err}");
    }
}

//! Policy programs: event segments, operand declarations, wire format.
//!
//! A policy program is what a specific application installs: operand
//! declarations plus one command segment per event. Events `0`
//! ([`EVENT_PAGE_FAULT`]) and `1` ([`EVENT_RECLAIM_FRAME`]) are
//! kernel-defined and mandatory (paper §4.2); further events are reached
//! via `Activate`.
//!
//! The wire format mirrors the paper's command buffer: a stream of 32-bit
//! words starting with a magic number, wired read-only in user space. The
//! [`PolicyProgram::to_words`]/[`PolicyProgram::from_words`] pair
//! round-trips it.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::command::RawCmd;
use crate::operand::{KernelVar, OperandDecl};

/// The kernel-defined page-fault event.
pub const EVENT_PAGE_FAULT: u8 = 0;
/// The kernel-defined frame-reclaim event.
pub const EVENT_RECLAIM_FRAME: u8 = 1;

/// The magic number heading every command buffer ("HiPE").
pub const HIPEC_MAGIC: u32 = 0x4869_5045;
/// Wire-format version.
pub const WIRE_VERSION: u32 = 1;

/// A complete application policy.
#[derive(Debug, Clone)]
pub struct PolicyProgram {
    /// Operand-array declarations (slot *i* is entry *i*).
    pub decls: Vec<OperandDecl>,
    /// Command segments, indexed by event number.
    pub events: Vec<Arc<Vec<RawCmd>>>,
    /// Event names for diagnostics (parallel to `events`).
    pub event_names: Vec<String>,
}

// Hand-written (de)serialization: the `Arc` wrapper around each event
// segment is an in-memory sharing detail, so the serialized form flattens
// events to plain `Vec<Vec<u32>>` command words.
impl Serialize for PolicyProgram {
    fn to_value(&self) -> serde::Value {
        let plain: Vec<Vec<u32>> = self
            .events
            .iter()
            .map(|e| e.iter().map(|c| c.0).collect())
            .collect();
        let mut m = serde::Map::new();
        m.insert("decls".to_string(), self.decls.to_value());
        m.insert("events".to_string(), plain.to_value());
        m.insert("event_names".to_string(), self.event_names.to_value());
        serde::Value::Object(m)
    }
}

impl Deserialize for PolicyProgram {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let m = v
            .as_object()
            .ok_or_else(|| serde::DeError::custom("expected object for PolicyProgram"))?;
        let field = |name: &str| {
            m.get(name)
                .ok_or_else(|| serde::DeError::custom(format!("missing field `{name}`")))
        };
        let plain = Vec::<Vec<u32>>::from_value(field("events")?)?;
        Ok(PolicyProgram {
            decls: Deserialize::from_value(field("decls")?)?,
            events: plain
                .into_iter()
                .map(|e| Arc::new(e.into_iter().map(RawCmd).collect()))
                .collect(),
            event_names: Deserialize::from_value(field("event_names")?)?,
        })
    }
}

/// Errors from decoding a wire-format command buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer does not start with [`HIPEC_MAGIC`].
    BadMagic(u32),
    /// Unsupported wire version.
    BadVersion(u32),
    /// The buffer ended mid-structure.
    Truncated,
    /// An operand declaration tag is unknown.
    BadDeclTag(u32),
    /// A kernel-variable code is unknown.
    BadKernelVar(u32),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad magic 0x{m:08x}"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::Truncated => write!(f, "truncated command buffer"),
            WireError::BadDeclTag(t) => write!(f, "unknown operand declaration tag {t}"),
            WireError::BadKernelVar(v) => write!(f, "unknown kernel variable code {v}"),
        }
    }
}

impl std::error::Error for WireError {}

const KERNEL_VARS: [KernelVar; 7] = [
    KernelVar::FreeCount,
    KernelVar::ActiveCount,
    KernelVar::InactiveCount,
    KernelVar::AllocatedCount,
    KernelVar::MinFrames,
    KernelVar::GlobalFreeCount,
    KernelVar::ReclaimTarget,
];

fn kernel_var_code(v: KernelVar) -> u32 {
    KERNEL_VARS
        .iter()
        .position(|k| *k == v)
        .expect("all kernel vars listed") as u32
}

impl PolicyProgram {
    /// Creates an empty program (no events, no declarations).
    pub fn new() -> Self {
        PolicyProgram {
            decls: Vec::new(),
            events: Vec::new(),
            event_names: Vec::new(),
        }
    }

    /// Adds an operand declaration, returning its slot index.
    pub fn declare(&mut self, decl: OperandDecl) -> u8 {
        let idx = self.decls.len();
        assert!(idx < 255, "operand array holds at most 255 slots");
        self.decls.push(decl);
        idx as u8
    }

    /// Adds an event segment, returning its event number.
    pub fn add_event(&mut self, name: impl Into<String>, cmds: Vec<RawCmd>) -> u8 {
        let id = self.events.len();
        assert!(id < 256, "at most 256 events");
        self.events.push(Arc::new(cmds));
        self.event_names.push(name.into());
        id as u8
    }

    /// The command segment of `event`, if defined.
    pub fn event(&self, event: u8) -> Option<&Arc<Vec<RawCmd>>> {
        self.events.get(event as usize)
    }

    /// Total commands across all events.
    pub fn total_commands(&self) -> usize {
        self.events.iter().map(|e| e.len()).sum()
    }

    /// Serializes the program to the 32-bit-word command-buffer format.
    pub fn to_words(&self) -> Vec<u32> {
        let mut w = vec![HIPEC_MAGIC, WIRE_VERSION, self.decls.len() as u32];
        for d in &self.decls {
            match *d {
                OperandDecl::Int(v) => {
                    w.push(0);
                    w.push((v as u64 >> 32) as u32);
                    w.push(v as u64 as u32);
                }
                OperandDecl::Bool(b) => {
                    w.push(1);
                    w.push(b as u32);
                    w.push(0);
                }
                OperandDecl::Page => {
                    w.push(2);
                    w.push(0);
                    w.push(0);
                }
                OperandDecl::FreeQueue => {
                    w.push(3);
                    w.push(0);
                    w.push(0);
                }
                OperandDecl::Queue { recency } => {
                    w.push(4);
                    w.push(recency as u32);
                    w.push(0);
                }
                OperandDecl::Kernel(v) => {
                    w.push(5);
                    w.push(kernel_var_code(v));
                    w.push(0);
                }
            }
        }
        w.push(self.events.len() as u32);
        for e in &self.events {
            w.push(e.len() as u32);
            w.extend(e.iter().map(|c| c.0));
        }
        w
    }

    /// Decodes a command buffer produced by [`PolicyProgram::to_words`].
    ///
    /// Event names are not part of the wire format; decoded programs get
    /// `event<N>` placeholders.
    pub fn from_words(words: &[u32]) -> Result<PolicyProgram, WireError> {
        let mut it = words.iter().copied();
        let mut next = || it.next().ok_or(WireError::Truncated);
        let magic = next()?;
        if magic != HIPEC_MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = next()?;
        if version != WIRE_VERSION {
            return Err(WireError::BadVersion(version));
        }
        let ndecls = next()?;
        let mut decls = Vec::with_capacity(ndecls as usize);
        for _ in 0..ndecls {
            let tag = next()?;
            let p1 = next()?;
            let p2 = next()?;
            decls.push(match tag {
                0 => OperandDecl::Int((((p1 as u64) << 32) | p2 as u64) as i64),
                1 => OperandDecl::Bool(p1 != 0),
                2 => OperandDecl::Page,
                3 => OperandDecl::FreeQueue,
                4 => OperandDecl::Queue { recency: p1 != 0 },
                5 => OperandDecl::Kernel(
                    KERNEL_VARS
                        .get(p1 as usize)
                        .copied()
                        .ok_or(WireError::BadKernelVar(p1))?,
                ),
                t => return Err(WireError::BadDeclTag(t)),
            });
        }
        let nevents = next()?;
        let mut events = Vec::with_capacity(nevents as usize);
        let mut event_names = Vec::with_capacity(nevents as usize);
        for i in 0..nevents {
            let len = next()?;
            let mut cmds = Vec::with_capacity(len as usize);
            for _ in 0..len {
                cmds.push(RawCmd(next()?));
            }
            events.push(Arc::new(cmds));
            event_names.push(format!("event{i}"));
        }
        Ok(PolicyProgram {
            decls,
            events,
            event_names,
        })
    }
}

impl Default for PolicyProgram {
    fn default() -> Self {
        PolicyProgram::new()
    }
}

// `RawCmd` serde: serialize as the raw u32.
impl Serialize for RawCmd {
    fn to_value(&self) -> serde::Value {
        self.0.to_value()
    }
}

impl Deserialize for RawCmd {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        u32::from_value(v).map(RawCmd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{build, JumpMode, QueueEnd, NO_OPERAND};

    fn sample() -> PolicyProgram {
        let mut p = PolicyProgram::new();
        let free_q = p.declare(OperandDecl::FreeQueue);
        let page = p.declare(OperandDecl::Page);
        let lo = p.declare(OperandDecl::Int(-7));
        let hi = p.declare(OperandDecl::Int(i64::MAX - 3));
        let _flag = p.declare(OperandDecl::Bool(true));
        let _act = p.declare(OperandDecl::Queue { recency: true });
        let _fc = p.declare(OperandDecl::Kernel(KernelVar::FreeCount));
        let _ = (lo, hi);
        p.add_event(
            "PageFault",
            vec![
                build::dequeue(page, free_q, QueueEnd::Head),
                build::ret(page),
            ],
        );
        p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
        p.add_event(
            "helper",
            vec![build::jump(JumpMode::Always, 1), build::ret(NO_OPERAND)],
        );
        p
    }

    #[test]
    fn declare_and_lookup() {
        let p = sample();
        assert_eq!(p.decls.len(), 7);
        assert_eq!(p.events.len(), 3);
        assert_eq!(p.event(EVENT_PAGE_FAULT).expect("present").len(), 2);
        assert!(p.event(99).is_none());
        assert_eq!(p.total_commands(), 5);
    }

    #[test]
    fn wire_round_trip() {
        let p = sample();
        let words = p.to_words();
        assert_eq!(words[0], HIPEC_MAGIC);
        let q = PolicyProgram::from_words(&words).expect("decode");
        assert_eq!(q.decls, p.decls);
        assert_eq!(q.events.len(), p.events.len());
        for (a, b) in q.events.iter().zip(p.events.iter()) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn wire_rejects_corruption() {
        let p = sample();
        let mut words = p.to_words();
        // Bad magic.
        let saved = words[0];
        words[0] = 0xDEAD_BEEF;
        assert_eq!(
            PolicyProgram::from_words(&words).expect_err("bad magic"),
            WireError::BadMagic(0xDEAD_BEEF)
        );
        words[0] = saved;
        // Bad version.
        words[1] = 99;
        assert_eq!(
            PolicyProgram::from_words(&words).expect_err("bad version"),
            WireError::BadVersion(99)
        );
        words[1] = WIRE_VERSION;
        // Truncation at every prefix must error, not panic.
        for cut in 0..words.len() {
            assert!(PolicyProgram::from_words(&words[..cut]).is_err());
        }
        // Bad declaration tag.
        words[3] = 42;
        assert_eq!(
            PolicyProgram::from_words(&words).expect_err("bad tag"),
            WireError::BadDeclTag(42)
        );
    }

    #[test]
    fn json_round_trip() {
        let p = sample();
        let json = serde_json::to_string(&p).expect("serialize");
        let q: PolicyProgram = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(q.decls, p.decls);
        assert_eq!(q.event_names, p.event_names);
        assert_eq!(
            q.event(0).expect("event").as_slice(),
            p.event(0).expect("event").as_slice()
        );
    }

    #[test]
    fn wire_errors_display() {
        assert!(WireError::Truncated.to_string().contains("truncated"));
        assert!(WireError::BadKernelVar(9).to_string().contains("9"));
    }
}

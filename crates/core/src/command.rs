//! The HiPEC command set and its 32-bit binary encoding.
//!
//! A HiPEC command is one 32-bit word: an 8-bit operator code and up to
//! three 8-bit operands (paper §4.2, Figure 3). Operand bytes index the
//! container's 256-entry operand array; the value `0xFF` ([`NO_OPERAND`])
//! means "no operand". `Jump` interprets its last two bytes as a 16-bit
//! command-counter target, byte-compatible with the paper's 8-bit targets.
//!
//! Control flow uses a single condition flag: *test* commands (`Comp`,
//! `Logic`, `EmptyQ`, `InQ`, `Ref`, `Mod`, and the commands that report
//! success) set it, every other command clears it, and `Jump` mode 0
//! branches when the flag is **false** — which makes the paper's listings
//! (else-jumps after tests, unconditional jumps after actions) decode
//! unambiguously. Modes 1 (always) and 2 (jump-if-true) are a
//! backwards-compatible superset used by the translator.

use core::fmt;

/// Operand byte meaning "no operand".
pub const NO_OPERAND: u8 = 0xFF;

/// The operator codes of the HiPEC command set (paper Table 1, plus the
/// `Migrate` extension from the paper's future-work list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum OpCode {
    /// End of execution; the return value is in operand 1.
    Return = 0x00,
    /// Integer arithmetic: `op1 = op1 ⊕ op2` (⊕ selected by the flag).
    Arith = 0x01,
    /// Integer comparison; sets the condition flag.
    Comp = 0x02,
    /// Boolean operations on `Bool` slots and the condition flag.
    Logic = 0x03,
    /// Tests whether queue `op1` is empty; sets the condition flag.
    EmptyQ = 0x04,
    /// Tests whether page `op2` is on queue `op1`; sets the condition flag.
    InQ = 0x05,
    /// Branch: operand 1 is the mode, operands 2‖3 the 16-bit target.
    Jump = 0x06,
    /// `op1 (page) = dequeue(op2 (queue))`; flag picks head/tail.
    DeQueue = 0x07,
    /// Enqueue page `op1` onto queue `op2`; flag picks head/tail.
    EnQueue = 0x08,
    /// Request `op1` (int) frames from the global frame manager; grant count
    /// is written to `op2` (int) if present. Sets the condition flag on a
    /// full grant.
    Request = 0x09,
    /// Release page `op1` back to the global frame manager.
    Release = 0x0A,
    /// Flush page `op1`: hand the dirty page to the global frame manager
    /// and receive a clean frame in exchange (written back to `op1`).
    Flush = 0x0B,
    /// Set or clear a page bit: `op1` page, flag1 selects ref/mod, flag2
    /// selects set/clear.
    Set = 0x0C,
    /// Tests the reference bit of page `op1`; sets the condition flag.
    Ref = 0x0D,
    /// Tests the modify bit of page `op1`; sets the condition flag.
    Mod = 0x0E,
    /// `op1 (page) = frame backing virtual address op2 (int)`.
    Find = 0x0F,
    /// Invoke another policy event; operand 1 is the literal event number.
    Activate = 0x10,
    /// One-shot FIFO replacement on queue `op1`; reclaimed page also lands
    /// in `op2` (page) if present. Sets the condition flag on success.
    Fifo = 0x11,
    /// One-shot LRU replacement (head of a recency-ordered queue).
    Lru = 0x12,
    /// One-shot MRU replacement (tail of a recency-ordered queue).
    Mru = 0x13,
    /// Extension: migrate one free frame from this container to the
    /// container whose key is in `op1` (int).
    Migrate = 0x14,
}

impl OpCode {
    /// All defined opcodes, in numeric order.
    pub const ALL: [OpCode; 21] = [
        OpCode::Return,
        OpCode::Arith,
        OpCode::Comp,
        OpCode::Logic,
        OpCode::EmptyQ,
        OpCode::InQ,
        OpCode::Jump,
        OpCode::DeQueue,
        OpCode::EnQueue,
        OpCode::Request,
        OpCode::Release,
        OpCode::Flush,
        OpCode::Set,
        OpCode::Ref,
        OpCode::Mod,
        OpCode::Find,
        OpCode::Activate,
        OpCode::Fifo,
        OpCode::Lru,
        OpCode::Mru,
        OpCode::Migrate,
    ];

    /// Decodes an opcode byte.
    pub fn from_u8(b: u8) -> Option<OpCode> {
        OpCode::ALL.get(b as usize).copied()
    }

    /// True for commands that *set* the condition flag (everything else
    /// clears it, making a following mode-0 `Jump` unconditional).
    pub fn is_test(self) -> bool {
        matches!(
            self,
            OpCode::Comp
                | OpCode::Logic
                | OpCode::EmptyQ
                | OpCode::InQ
                | OpCode::Ref
                | OpCode::Mod
                | OpCode::Request
                | OpCode::Fifo
                | OpCode::Lru
                | OpCode::Mru
        )
    }

    /// The command's mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpCode::Return => "return",
            OpCode::Arith => "arith",
            OpCode::Comp => "comp",
            OpCode::Logic => "logic",
            OpCode::EmptyQ => "emptyq",
            OpCode::InQ => "inq",
            OpCode::Jump => "jump",
            OpCode::DeQueue => "dequeue",
            OpCode::EnQueue => "enqueue",
            OpCode::Request => "request",
            OpCode::Release => "release",
            OpCode::Flush => "flush",
            OpCode::Set => "set",
            OpCode::Ref => "ref",
            OpCode::Mod => "mod",
            OpCode::Find => "find",
            OpCode::Activate => "activate",
            OpCode::Fifo => "fifo",
            OpCode::Lru => "lru",
            OpCode::Mru => "mru",
            OpCode::Migrate => "migrate",
        }
    }
}

/// Arithmetic operations selected by the `Arith` flag byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ArithOp {
    /// `op1 += op2`
    Add = 0,
    /// `op1 -= op2`
    Sub = 1,
    /// `op1 *= op2`
    Mul = 2,
    /// `op1 /= op2`
    Div = 3,
    /// `op1 %= op2`
    Mod = 4,
    /// `op1 = op2`
    Mov = 5,
    /// `op1 += 1`
    Inc = 6,
    /// `op1 -= 1`
    Dec = 7,
}

impl ArithOp {
    /// Decodes a flag byte.
    pub fn from_u8(b: u8) -> Option<ArithOp> {
        [
            ArithOp::Add,
            ArithOp::Sub,
            ArithOp::Mul,
            ArithOp::Div,
            ArithOp::Mod,
            ArithOp::Mov,
            ArithOp::Inc,
            ArithOp::Dec,
        ]
        .get(b as usize)
        .copied()
    }
}

/// Comparison operations selected by the `Comp` flag byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum CompOp {
    /// `op1 == op2`
    Eq = 0,
    /// `op1 > op2`
    Gt = 1,
    /// `op1 < op2`
    Lt = 2,
    /// `op1 >= op2`
    Ge = 3,
    /// `op1 <= op2`
    Le = 4,
    /// `op1 != op2`
    Ne = 5,
}

impl CompOp {
    /// Decodes a flag byte.
    pub fn from_u8(b: u8) -> Option<CompOp> {
        [
            CompOp::Eq,
            CompOp::Gt,
            CompOp::Lt,
            CompOp::Ge,
            CompOp::Le,
            CompOp::Ne,
        ]
        .get(b as usize)
        .copied()
    }

    /// Applies the comparison.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CompOp::Eq => a == b,
            CompOp::Gt => a > b,
            CompOp::Lt => a < b,
            CompOp::Ge => a >= b,
            CompOp::Le => a <= b,
            CompOp::Ne => a != b,
        }
    }
}

/// Boolean operations selected by the `Logic` flag byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum LogicOp {
    /// flag = op1 && op2
    And = 0,
    /// flag = op1 || op2
    Or = 1,
    /// flag = op1 ^ op2
    Xor = 2,
    /// flag = !op1
    Not = 3,
    /// op1 (bool slot) = flag
    StoreCond = 4,
    /// flag = op1 (bool slot)
    LoadCond = 5,
}

impl LogicOp {
    /// Decodes a flag byte.
    pub fn from_u8(b: u8) -> Option<LogicOp> {
        [
            LogicOp::And,
            LogicOp::Or,
            LogicOp::Xor,
            LogicOp::Not,
            LogicOp::StoreCond,
            LogicOp::LoadCond,
        ]
        .get(b as usize)
        .copied()
    }
}

/// `Jump` modes (operand 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum JumpMode {
    /// Branch when the condition flag is false (the paper's else-jump).
    IfFalse = 0,
    /// Branch unconditionally.
    Always = 1,
    /// Branch when the condition flag is true.
    IfTrue = 2,
}

impl JumpMode {
    /// Decodes a mode byte.
    pub fn from_u8(b: u8) -> Option<JumpMode> {
        [JumpMode::IfFalse, JumpMode::Always, JumpMode::IfTrue]
            .get(b as usize)
            .copied()
    }
}

/// Queue ends selected by `DeQueue`/`EnQueue` flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum QueueEnd {
    /// Head (front) of the queue.
    Head = 0,
    /// Tail (back) of the queue.
    Tail = 1,
}

impl QueueEnd {
    /// Decodes a flag byte.
    pub fn from_u8(b: u8) -> Option<QueueEnd> {
        [QueueEnd::Head, QueueEnd::Tail].get(b as usize).copied()
    }
}

/// The page bit selected by `Set`'s first flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PageBit {
    /// The reference bit.
    Reference = 1,
    /// The modify bit.
    Modify = 2,
}

impl PageBit {
    /// Decodes a flag byte.
    pub fn from_u8(b: u8) -> Option<PageBit> {
        match b {
            1 => Some(PageBit::Reference),
            2 => Some(PageBit::Modify),
            _ => None,
        }
    }
}

/// One encoded HiPEC command word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RawCmd(pub u32);

impl RawCmd {
    /// Assembles a command from its four bytes.
    pub const fn new(op: u8, a: u8, b: u8, c: u8) -> RawCmd {
        RawCmd(((op as u32) << 24) | ((a as u32) << 16) | ((b as u32) << 8) | c as u32)
    }

    /// The opcode byte.
    pub const fn op_byte(self) -> u8 {
        (self.0 >> 24) as u8
    }

    /// Operand byte 1.
    pub const fn a(self) -> u8 {
        (self.0 >> 16) as u8
    }

    /// Operand byte 2.
    pub const fn b(self) -> u8 {
        (self.0 >> 8) as u8
    }

    /// Operand byte 3 (often a flag).
    pub const fn c(self) -> u8 {
        self.0 as u8
    }

    /// The decoded opcode, if valid.
    pub fn opcode(self) -> Option<OpCode> {
        OpCode::from_u8(self.op_byte())
    }

    /// The 16-bit jump target encoded in bytes 2‖3.
    pub const fn jump_target(self) -> u16 {
        (self.0 & 0xFFFF) as u16
    }
}

impl fmt::Display for RawCmd {
    /// Disassembles the command into `mnemonic a, b, c` form.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.opcode() {
            Some(op) => {
                write!(f, "{}", op.mnemonic())?;
                if op == OpCode::Jump {
                    return write!(f, " mode={} -> {}", self.a(), self.jump_target());
                }
                for (i, v) in [self.a(), self.b(), self.c()].into_iter().enumerate() {
                    if v != NO_OPERAND {
                        write!(f, "{} {v}", if i == 0 { "" } else { "," })?;
                    }
                }
                Ok(())
            }
            None => write!(f, "invalid(0x{:08x})", self.0),
        }
    }
}

/// Convenience constructors matching Table 1's shapes.
pub mod build {
    use super::*;

    /// `Return value_slot` (pass [`NO_OPERAND`] for no value).
    pub const fn ret(slot: u8) -> RawCmd {
        RawCmd::new(OpCode::Return as u8, slot, NO_OPERAND, NO_OPERAND)
    }

    /// `Arith dst, src, op`.
    pub const fn arith(dst: u8, src: u8, op: ArithOp) -> RawCmd {
        RawCmd::new(OpCode::Arith as u8, dst, src, op as u8)
    }

    /// `Comp a, b, op`.
    pub const fn comp(a: u8, b: u8, op: CompOp) -> RawCmd {
        RawCmd::new(OpCode::Comp as u8, a, b, op as u8)
    }

    /// `Logic a, b, op`.
    pub const fn logic(a: u8, b: u8, op: LogicOp) -> RawCmd {
        RawCmd::new(OpCode::Logic as u8, a, b, op as u8)
    }

    /// `EmptyQ queue`.
    pub const fn emptyq(queue: u8) -> RawCmd {
        RawCmd::new(OpCode::EmptyQ as u8, queue, NO_OPERAND, NO_OPERAND)
    }

    /// `InQ queue, page`.
    pub const fn inq(queue: u8, page: u8) -> RawCmd {
        RawCmd::new(OpCode::InQ as u8, queue, page, NO_OPERAND)
    }

    /// `Jump mode, target`.
    pub const fn jump(mode: JumpMode, target: u16) -> RawCmd {
        RawCmd::new(
            OpCode::Jump as u8,
            mode as u8,
            (target >> 8) as u8,
            target as u8,
        )
    }

    /// `DeQueue page_dst, queue, end`.
    pub const fn dequeue(page_dst: u8, queue: u8, end: QueueEnd) -> RawCmd {
        RawCmd::new(OpCode::DeQueue as u8, page_dst, queue, end as u8)
    }

    /// `EnQueue page, queue, end`.
    pub const fn enqueue(page: u8, queue: u8, end: QueueEnd) -> RawCmd {
        RawCmd::new(OpCode::EnQueue as u8, page, queue, end as u8)
    }

    /// `Request count_slot, granted_slot`.
    pub const fn request(count: u8, granted: u8) -> RawCmd {
        RawCmd::new(OpCode::Request as u8, count, granted, NO_OPERAND)
    }

    /// `Release page`.
    pub const fn release(page: u8) -> RawCmd {
        RawCmd::new(OpCode::Release as u8, page, NO_OPERAND, NO_OPERAND)
    }

    /// `Flush page`.
    pub const fn flush(page: u8) -> RawCmd {
        RawCmd::new(OpCode::Flush as u8, page, NO_OPERAND, NO_OPERAND)
    }

    /// `Set page, bit, value`.
    pub const fn set(page: u8, bit: PageBit, value: bool) -> RawCmd {
        RawCmd::new(OpCode::Set as u8, page, bit as u8, value as u8)
    }

    /// `Ref page`.
    pub const fn is_ref(page: u8) -> RawCmd {
        RawCmd::new(OpCode::Ref as u8, page, NO_OPERAND, NO_OPERAND)
    }

    /// `Mod page`.
    pub const fn is_mod(page: u8) -> RawCmd {
        RawCmd::new(OpCode::Mod as u8, page, NO_OPERAND, NO_OPERAND)
    }

    /// `Find page_dst, vaddr_slot`.
    pub const fn find(page_dst: u8, vaddr: u8) -> RawCmd {
        RawCmd::new(OpCode::Find as u8, page_dst, vaddr, NO_OPERAND)
    }

    /// `Activate event`.
    pub const fn activate(event: u8) -> RawCmd {
        RawCmd::new(OpCode::Activate as u8, event, NO_OPERAND, NO_OPERAND)
    }

    /// `FIFO queue, page_dst`.
    pub const fn fifo(queue: u8, page_dst: u8) -> RawCmd {
        RawCmd::new(OpCode::Fifo as u8, queue, page_dst, NO_OPERAND)
    }

    /// `LRU queue, page_dst`.
    pub const fn lru(queue: u8, page_dst: u8) -> RawCmd {
        RawCmd::new(OpCode::Lru as u8, queue, page_dst, NO_OPERAND)
    }

    /// `MRU queue, page_dst`.
    pub const fn mru(queue: u8, page_dst: u8) -> RawCmd {
        RawCmd::new(OpCode::Mru as u8, queue, page_dst, NO_OPERAND)
    }

    /// `Migrate target_container_slot`.
    pub const fn migrate(target: u8) -> RawCmd {
        RawCmd::new(OpCode::Migrate as u8, target, NO_OPERAND, NO_OPERAND)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_packing_round_trips() {
        let c = RawCmd::new(0x07, 0x0B, 0x01, 0x01);
        assert_eq!(c.op_byte(), 0x07);
        assert_eq!(c.a(), 0x0B);
        assert_eq!(c.b(), 0x01);
        assert_eq!(c.c(), 0x01);
        assert_eq!(c.opcode(), Some(OpCode::DeQueue));
    }

    #[test]
    fn opcode_byte_values_match_table1() {
        // The paper's Table 1 binary column.
        assert_eq!(OpCode::Return as u8, 0x00);
        assert_eq!(OpCode::Comp as u8, 0x02);
        assert_eq!(OpCode::Jump as u8, 0x06);
        assert_eq!(OpCode::DeQueue as u8, 0x07);
        assert_eq!(OpCode::EnQueue as u8, 0x08);
        assert_eq!(OpCode::Flush as u8, 0x0B);
        assert_eq!(OpCode::Set as u8, 0x0C);
        assert_eq!(OpCode::Ref as u8, 0x0D);
        assert_eq!(OpCode::Mod as u8, 0x0E);
        assert_eq!(OpCode::Activate as u8, 0x10);
        assert_eq!(OpCode::Mru as u8, 0x13);
    }

    #[test]
    fn all_opcodes_decode() {
        for (i, op) in OpCode::ALL.into_iter().enumerate() {
            assert_eq!(OpCode::from_u8(i as u8), Some(op));
            assert_eq!(op as usize, i);
        }
        assert_eq!(OpCode::from_u8(0x15), None);
        assert_eq!(OpCode::from_u8(0xFF), None);
    }

    #[test]
    fn jump_target_is_16_bit() {
        let j = build::jump(JumpMode::IfFalse, 0x1234);
        assert_eq!(j.jump_target(), 0x1234);
        assert_eq!(j.a(), 0);
        // Byte-compatible with the paper's 8-bit targets: high byte zero.
        let paper = RawCmd::new(0x06, 0x00, 0x00, 0x05);
        assert_eq!(paper.jump_target(), 5);
        assert_eq!(paper.opcode(), Some(OpCode::Jump));
    }

    #[test]
    fn test_commands_are_classified() {
        assert!(OpCode::Comp.is_test());
        assert!(OpCode::Ref.is_test());
        assert!(OpCode::Lru.is_test());
        assert!(!OpCode::DeQueue.is_test());
        assert!(!OpCode::Jump.is_test());
        assert!(!OpCode::Return.is_test());
    }

    #[test]
    fn comp_eval() {
        assert!(CompOp::Gt.eval(3, 2));
        assert!(!CompOp::Gt.eval(2, 2));
        assert!(CompOp::Le.eval(2, 2));
        assert!(CompOp::Ne.eval(1, 2));
        assert!(CompOp::Eq.eval(-5, -5));
        assert!(CompOp::Lt.eval(-6, -5));
        assert!(CompOp::Ge.eval(0, -1));
    }

    #[test]
    fn flag_decoders_reject_out_of_range() {
        assert_eq!(ArithOp::from_u8(8), None);
        assert_eq!(CompOp::from_u8(6), None);
        assert_eq!(LogicOp::from_u8(6), None);
        assert_eq!(JumpMode::from_u8(3), None);
        assert_eq!(QueueEnd::from_u8(2), None);
        assert_eq!(PageBit::from_u8(0), None);
        assert_eq!(PageBit::from_u8(3), None);
    }

    #[test]
    fn disassembly_is_readable() {
        assert_eq!(
            build::dequeue(2, 1, QueueEnd::Head).to_string(),
            "dequeue 2, 1, 0"
        );
        assert_eq!(
            build::jump(JumpMode::Always, 7).to_string(),
            "jump mode=1 -> 7"
        );
        assert_eq!(build::ret(NO_OPERAND).to_string(), "return");
        assert!(RawCmd::new(0xEE, 0, 0, 0).to_string().contains("invalid"));
    }
}

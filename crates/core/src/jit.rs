//! Native policy compilation: pre-lowered step chains for the executor.
//!
//! The interpreter in [`crate::executor`] re-decodes every 32-bit command on
//! every execution — opcode match, flag decode, operand-byte extraction —
//! which is pure host-CPU overhead on the fault path. This module lowers a
//! validated command stream *once*, at `vm_*_hipec` install time, into a
//! chain of monomorphized step functions ([`Step`]): opcode and flag
//! variants become distinct `fn` items selected at lowering (match-free
//! threaded dispatch), so executing a command is one indirect call with all
//! decoding already done.
//!
//! Two further host-cost reductions, both invisible in virtual time:
//!
//! * Steps return a register-sized [`StepRes`] verdict; `Return` values and
//!   fault payloads travel through the per-event [`Ctx`] scratch instead of
//!   a by-value `Result` too large for a return register.
//! * Over an uninterrupted run of *pure* steps (ops that never charge the
//!   clock beyond `cmd_fetch_decode`, never emit a trace record and never
//!   recurse), the decode charges and command counts accumulate in locals
//!   and are flushed before anything that could observe them — a non-pure
//!   step, a fault, or the end of the event. Nothing a pure step executes
//!   reads the clock or the counters, so the flushed state is bit-identical
//!   to charging per command.
//!
//! # The accounting contract
//!
//! The compiled form is an *implementation* of the same abstract machine,
//! not a different one. Per installed source command it charges exactly
//! what the interpreter charges — `cmd_fetch_decode` plus the operation's
//! native costs — bumps and attributes the same [`crate::OpProfile`]
//! entries, burns one fuel unit, and raises the same [`PolicyFault`]s from
//! the same machine states. Traces, `KernelStats` and fuel exhaustion are
//! bit-identical between backends (enforced by the differential sweep in
//! `tests/jit.rs`). The interpreter stays as the reference implementation
//! behind the same `run_event` entry point.
//!
//! Lowering is *total*: an undecodable opcode or flag byte lowers to a
//! fault step that reproduces the interpreter's exact fault (including the
//! operand reads the interpreter performs before it decodes a trailing
//! flag byte), so no program needs an interpreter fallback.

use std::sync::Arc;

use crate::command::{
    ArithOp, CompOp, JumpMode, LogicOp, OpCode, PageBit, QueueEnd, RawCmd, NO_OPERAND,
};
use crate::error::PolicyFault;
use crate::executor::ExecValue;
use crate::kernel::HipecKernel;
use crate::operand::OperandSlot;
use crate::program::PolicyProgram;

/// What a step body tells the adapter to do next (fault-free cases).
/// Taken jumps don't pass through here: `jump_step` reports
/// [`StepRes::Jump`] directly.
enum StepOut {
    /// Fall through to the next command; the payload is the op's
    /// condition-flag result (only honored when the op is a test).
    Next(bool),
    /// `Return` executed: end the event with this value.
    Return(ExecValue),
}

/// The register-sized verdict a step hands back to the driver. `Return`
/// values and fault payloads go through [`Ctx`]; everything hot fits in
/// one byte.
#[derive(Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum StepRes {
    /// Fall through, condition result false.
    Fall,
    /// Fall through, condition result true.
    FallSet,
    /// Taken jump to the step's target.
    Jump,
    /// `Return` executed; the value is in `Ctx::ret`.
    Ret,
    /// The step faulted; the fault is in `Ctx::fault`.
    Fault,
}

/// Per-event scratch shared between the driver and the step functions:
/// the cold-path payload channels plus the `Activate` recursion inputs.
struct Ctx<'f> {
    fuel: &'f mut u32,
    depth: u8,
    fault: Option<PolicyFault>,
    ret: ExecValue,
}

/// Folds a step body's `Result` into the compact verdict, routing the
/// cold payloads into the scratch.
#[inline(always)]
fn finish(ctx: &mut Ctx, r: Result<StepOut, PolicyFault>) -> StepRes {
    match r {
        Ok(StepOut::Next(false)) => StepRes::Fall,
        Ok(StepOut::Next(true)) => StepRes::FallSet,
        Ok(StepOut::Return(v)) => {
            ctx.ret = v;
            StepRes::Ret
        }
        Err(f) => {
            ctx.fault = Some(f);
            StepRes::Fault
        }
    }
}

/// One lowered command: a monomorphized executor plus its pre-decoded
/// operand bytes.
type StepFn = fn(&mut HipecKernel, usize, &Step, bool, &mut Ctx) -> StepRes;

/// A lowered command. Everything the interpreter decodes per execution is
/// resolved here once: the opcode match and flag decode are baked into
/// `exec`, the operand bytes are plain fields.
#[derive(Debug, Clone, Copy)]
struct Step {
    exec: StepFn,
    /// The decoded opcode, for profile bump/attribution. Unused (and
    /// arbitrary) on undecodable-opcode fault steps, which never bump.
    op: OpCode,
    /// Whether the driver bumps `op_profile` at decode (false only for an
    /// undecodable opcode, which the interpreter faults on before bumping).
    bump: bool,
    /// Cached `op.is_test()`: whether `FallSet` may set the condition.
    is_test: bool,
    /// True when the op never charges the clock beyond `cmd_fetch_decode`,
    /// never emits a trace record and never recurses: its attribution is
    /// exactly the decode cost and nothing it executes can observe the
    /// clock or counters, so the driver defers its accounting.
    pure: bool,
    a: u8,
    b: u8,
    /// Pre-extracted 16-bit jump target.
    target: u16,
    /// The segment length, for the taken-jump range check.
    len: usize,
    /// The source command counter, baked into fault payloads.
    cc: usize,
    /// The source word, baked into decode-fault payloads.
    cmd: RawCmd,
}

/// A policy lowered to native step chains, one per event.
///
/// Built by [`compile_policy`] and installed on the container next to the
/// source program; [`HipecKernel::run_event`] dispatches to it when the
/// kernel backend is [`crate::ExecBackend::Native`].
#[derive(Debug)]
pub struct CompiledPolicy {
    events: Vec<Vec<Step>>,
}

impl CompiledPolicy {
    /// Number of lowered events.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Total lowered steps across all events (equals the installed
    /// program's command count: lowering is one step per source command).
    pub fn step_count(&self) -> usize {
        self.events.iter().map(Vec::len).sum()
    }
}

/// Lowers every event of `program` into native step chains. Total: invalid
/// opcode or flag bytes lower to fault steps, so this never fails and the
/// result never needs an interpreter fallback.
pub fn compile_policy(program: &PolicyProgram) -> Arc<CompiledPolicy> {
    Arc::new(CompiledPolicy {
        events: program
            .events
            .iter()
            .map(|seg| {
                let len = seg.len();
                seg.iter()
                    .enumerate()
                    .map(|(cc, &cmd)| lower_cmd(cmd, cc, len))
                    .collect()
            })
            .collect(),
    })
}

/// Lowers one command, selecting the monomorphized step function for its
/// opcode and flag variant.
fn lower_cmd(cmd: RawCmd, cc: usize, len: usize) -> Step {
    let mut step = Step {
        exec: fault_bad_opcode,
        op: OpCode::Return, // placeholder; never bumped or attributed
        bump: false,
        is_test: false,
        pure: true,
        a: cmd.a(),
        b: cmd.b(),
        target: cmd.jump_target(),
        len,
        cc,
        cmd,
    };
    let Some(op) = cmd.opcode() else {
        return step;
    };
    step.op = op;
    step.bump = true;
    step.is_test = op.is_test();
    // Flag decodes the interpreter performs up front fail here as plain
    // `fault_bad_flag` steps; ops that read operands *before* decoding a
    // flag byte get a fault step that replays those reads first.
    step.exec = match op {
        OpCode::Return => {
            if cmd.a() == NO_OPERAND {
                ret_none
            } else {
                ret_slot
            }
        }
        OpCode::Arith => match ArithOp::from_u8(cmd.c()) {
            Some(ArithOp::Add) => arith_step::<{ ArithOp::Add as u8 }>,
            Some(ArithOp::Sub) => arith_step::<{ ArithOp::Sub as u8 }>,
            Some(ArithOp::Mul) => arith_step::<{ ArithOp::Mul as u8 }>,
            Some(ArithOp::Div) => arith_step::<{ ArithOp::Div as u8 }>,
            Some(ArithOp::Mod) => arith_step::<{ ArithOp::Mod as u8 }>,
            Some(ArithOp::Mov) => arith_step::<{ ArithOp::Mov as u8 }>,
            Some(ArithOp::Inc) => arith_step::<{ ArithOp::Inc as u8 }>,
            Some(ArithOp::Dec) => arith_step::<{ ArithOp::Dec as u8 }>,
            None => fault_bad_flag,
        },
        OpCode::Comp => match CompOp::from_u8(cmd.c()) {
            Some(CompOp::Eq) => comp_step::<{ CompOp::Eq as u8 }>,
            Some(CompOp::Gt) => comp_step::<{ CompOp::Gt as u8 }>,
            Some(CompOp::Lt) => comp_step::<{ CompOp::Lt as u8 }>,
            Some(CompOp::Ge) => comp_step::<{ CompOp::Ge as u8 }>,
            Some(CompOp::Le) => comp_step::<{ CompOp::Le as u8 }>,
            Some(CompOp::Ne) => comp_step::<{ CompOp::Ne as u8 }>,
            None => fault_bad_flag,
        },
        OpCode::Logic => match LogicOp::from_u8(cmd.c()) {
            Some(LogicOp::And) => logic_step::<{ LogicOp::And as u8 }>,
            Some(LogicOp::Or) => logic_step::<{ LogicOp::Or as u8 }>,
            Some(LogicOp::Xor) => logic_step::<{ LogicOp::Xor as u8 }>,
            Some(LogicOp::Not) => logic_step::<{ LogicOp::Not as u8 }>,
            Some(LogicOp::StoreCond) => logic_step::<{ LogicOp::StoreCond as u8 }>,
            Some(LogicOp::LoadCond) => logic_step::<{ LogicOp::LoadCond as u8 }>,
            None => fault_bad_flag,
        },
        OpCode::EmptyQ => emptyq_step,
        OpCode::InQ => inq_step,
        OpCode::Jump => match JumpMode::from_u8(cmd.a()) {
            Some(JumpMode::IfFalse) => jump_step::<{ JumpMode::IfFalse as u8 }>,
            Some(JumpMode::Always) => jump_step::<{ JumpMode::Always as u8 }>,
            Some(JumpMode::IfTrue) => jump_step::<{ JumpMode::IfTrue as u8 }>,
            None => fault_bad_flag,
        },
        OpCode::DeQueue => match QueueEnd::from_u8(cmd.c()) {
            Some(QueueEnd::Head) => dequeue_step::<true>,
            Some(QueueEnd::Tail) => dequeue_step::<false>,
            // The interpreter reads the queue operand before decoding the
            // end flag; replay that read so its faults win.
            None => fault_bad_flag_after_queue_read,
        },
        OpCode::EnQueue => match QueueEnd::from_u8(cmd.c()) {
            Some(QueueEnd::Head) => enqueue_step::<true>,
            Some(QueueEnd::Tail) => enqueue_step::<false>,
            None => fault_bad_flag_after_page_queue_read,
        },
        OpCode::Request => request_step,
        OpCode::Release => release_step,
        OpCode::Flush => flush_step,
        OpCode::Set => match (PageBit::from_u8(cmd.b()), cmd.c()) {
            (Some(PageBit::Reference), 0) => set_step::<false, false>,
            (Some(PageBit::Reference), 1) => set_step::<false, true>,
            (Some(PageBit::Modify), 0) => set_step::<true, false>,
            (Some(PageBit::Modify), 1) => set_step::<true, true>,
            // Page operand read precedes both flag decodes.
            _ => fault_bad_flag_after_page_read,
        },
        OpCode::Ref => ref_step,
        OpCode::Mod => mod_step,
        OpCode::Find => find_step,
        OpCode::Activate => activate_step,
        OpCode::Fifo | OpCode::Lru => reclaim_step::<true>,
        OpCode::Mru => reclaim_step::<false>,
        OpCode::Migrate => migrate_step,
    };
    step.pure = matches!(
        op,
        OpCode::Return
            | OpCode::Arith
            | OpCode::Comp
            | OpCode::Logic
            | OpCode::EmptyQ
            | OpCode::InQ
            | OpCode::Jump
    );
    step
}

impl HipecKernel {
    /// Drives one event of `cidx`'s compiled policy: the native twin of the
    /// interpreter loop in `executor.rs`, with identical charge, fault,
    /// fuel, profile and condition-flag behavior per source command.
    pub(crate) fn run_event_native(
        &mut self,
        cidx: usize,
        event: u8,
        depth: u8,
        fuel: &mut u32,
        compiled: &CompiledPolicy,
    ) -> Result<ExecValue, PolicyFault> {
        let steps = compiled
            .events
            .get(event as usize)
            .ok_or(PolicyFault::UnknownEvent(event))?;
        self.containers[cidx].stats.events += 1;
        // The cost model is immutable while an event runs; hoisting the
        // decode charge keeps the per-step loop free of repeated loads.
        let decode = self.vm.cost.cmd_fetch_decode;
        let mut ctx = Ctx {
            fuel,
            depth,
            fault: None,
            ret: ExecValue::None,
        };
        let mut cc: usize = 0;
        let mut cond = false;
        // Decode charges and command counts deferred over the current run
        // of pure steps. Flushed before any point that could observe the
        // clock or the counters: a non-pure step, a fault, fuel
        // exhaustion, or the end of the event.
        let mut pending: u32 = 0;
        // Settles the deferred charges/counts; the one mid-loop caller
        // (the non-pure branch) resets `pending` itself, every other
        // caller returns immediately after.
        macro_rules! settle_pending {
            () => {
                if pending != 0 {
                    self.vm.charge(decode * pending as u64);
                    self.containers[cidx].stats.commands += pending as u64;
                }
            };
        }
        loop {
            let Some(step) = steps.get(cc) else {
                settle_pending!();
                return Err(PolicyFault::MissingReturn);
            };
            if *ctx.fuel == 0 {
                settle_pending!();
                self.containers[cidx].runaway = true;
                return Err(PolicyFault::OutOfFuel);
            }
            *ctx.fuel -= 1;
            if step.pure {
                // A pure step cannot observe the clock, the counters or
                // the profile, so its decode charge and command count sit
                // in `pending` and its profile entry is settled after the
                // call — bit-identical to the interpreter's per-command
                // order once flushed.
                pending += 1;
                let res = (step.exec)(self, cidx, step, cond, &mut ctx);
                match res {
                    StepRes::Fall | StepRes::FallSet => {
                        self.containers[cidx].op_profile.bump(step.op);
                        self.profile_op(cidx, step.op, decode);
                        cond = step.is_test && res == StepRes::FallSet;
                        cc += 1;
                    }
                    StepRes::Jump => {
                        // Taken jumps attribute the decode cost, flag
                        // cleared — same as the interpreter.
                        self.containers[cidx].op_profile.bump(step.op);
                        self.profile_op(cidx, step.op, decode);
                        cond = false;
                        cc = step.target as usize;
                    }
                    StepRes::Ret => {
                        self.containers[cidx].op_profile.bump(step.op);
                        self.profile_op(cidx, step.op, decode);
                        settle_pending!();
                        return Ok(ctx.ret);
                    }
                    StepRes::Fault => {
                        // Charged and counted (it is part of `pending`),
                        // bumped, never attributed.
                        if step.bump {
                            self.containers[cidx].op_profile.bump(step.op);
                        }
                        settle_pending!();
                        return Err(ctx.fault.take().expect("fault step sets a fault"));
                    }
                }
            } else {
                settle_pending!();
                pending = 0;
                let t0 = self.vm.now();
                self.vm.charge(decode);
                {
                    let c = &mut self.containers[cidx];
                    c.stats.commands += 1;
                    if step.bump {
                        c.op_profile.bump(step.op);
                    }
                }
                match (step.exec)(self, cidx, step, cond, &mut ctx) {
                    res @ (StepRes::Fall | StepRes::FallSet) => {
                        let spent = self.vm.now().since(t0);
                        self.profile_op(cidx, step.op, spent);
                        cond = step.is_test && res == StepRes::FallSet;
                        cc += 1;
                    }
                    StepRes::Jump => {
                        self.profile_op(cidx, step.op, decode);
                        cond = false;
                        cc = step.target as usize;
                    }
                    StepRes::Ret => {
                        self.profile_op(cidx, step.op, decode);
                        return Ok(ctx.ret);
                    }
                    StepRes::Fault => {
                        return Err(ctx.fault.take().expect("fault step sets a fault"));
                    }
                }
            }
        }
    }
}

// --- Decode-fault steps -------------------------------------------------------
//
// A faulting step reports `Fault` before the driver attributes, matching
// the interpreter's counted-but-not-attributed treatment of faulting
// commands.

fn fault_bad_opcode(
    _k: &mut HipecKernel,
    _cidx: usize,
    s: &Step,
    _cond: bool,
    ctx: &mut Ctx,
) -> StepRes {
    ctx.fault = Some(PolicyFault::BadOpcode {
        cmd: s.cmd,
        cc: s.cc,
    });
    StepRes::Fault
}

fn fault_bad_flag(
    _k: &mut HipecKernel,
    _cidx: usize,
    s: &Step,
    _cond: bool,
    ctx: &mut Ctx,
) -> StepRes {
    ctx.fault = Some(PolicyFault::BadFlag {
        cmd: s.cmd,
        cc: s.cc,
    });
    StepRes::Fault
}

fn fault_bad_flag_after_queue_read(
    k: &mut HipecKernel,
    cidx: usize,
    s: &Step,
    _cond: bool,
    ctx: &mut Ctx,
) -> StepRes {
    finish(
        ctx,
        (|| -> Result<StepOut, PolicyFault> {
            k.read_queue(cidx, s.b, s.cc)?;
            Err(PolicyFault::BadFlag {
                cmd: s.cmd,
                cc: s.cc,
            })
        })(),
    )
}

fn fault_bad_flag_after_page_queue_read(
    k: &mut HipecKernel,
    cidx: usize,
    s: &Step,
    _cond: bool,
    ctx: &mut Ctx,
) -> StepRes {
    finish(
        ctx,
        (|| -> Result<StepOut, PolicyFault> {
            k.read_page(cidx, s.a, s.cc)?;
            k.read_queue(cidx, s.b, s.cc)?;
            Err(PolicyFault::BadFlag {
                cmd: s.cmd,
                cc: s.cc,
            })
        })(),
    )
}

fn fault_bad_flag_after_page_read(
    k: &mut HipecKernel,
    cidx: usize,
    s: &Step,
    _cond: bool,
    ctx: &mut Ctx,
) -> StepRes {
    finish(
        ctx,
        (|| -> Result<StepOut, PolicyFault> {
            k.read_page(cidx, s.a, s.cc)?;
            Err(PolicyFault::BadFlag {
                cmd: s.cmd,
                cc: s.cc,
            })
        })(),
    )
}

// --- Monomorphized operation steps --------------------------------------------
//
// Each body mirrors the matching interpreter arm exactly: same operand-read
// order, same fault order, same charges at the same points. Flag variants
// arrive as const generics, so `from_u8(...).expect(...)` folds to the one
// selected arm at monomorphization — no runtime decode.

fn ret_none(_k: &mut HipecKernel, _cidx: usize, _s: &Step, _cond: bool, ctx: &mut Ctx) -> StepRes {
    ctx.ret = ExecValue::None;
    StepRes::Ret
}

fn ret_slot(k: &mut HipecKernel, cidx: usize, s: &Step, _cond: bool, ctx: &mut Ctx) -> StepRes {
    finish(
        ctx,
        (|| -> Result<StepOut, PolicyFault> {
            let value = match *k.slot(cidx, s.a, s.cc)? {
                OperandSlot::Int(v) => ExecValue::Int(v),
                OperandSlot::Bool(b) => ExecValue::Bool(b),
                OperandSlot::Page(Some(f)) => ExecValue::Page(f),
                OperandSlot::Page(None) => {
                    return Err(PolicyFault::EmptyPageSlot {
                        index: s.a,
                        cc: s.cc,
                    })
                }
                OperandSlot::Kernel(v) => ExecValue::Int(k.containers[cidx].kernel_var(v, &k.vm)),
                OperandSlot::Queue(_) => {
                    return Err(PolicyFault::TypeMismatch {
                        expected: "returnable value",
                        found: "queue",
                        cc: s.cc,
                    })
                }
            };
            Ok(StepOut::Return(value))
        })(),
    )
}

fn arith_step<const AOP: u8>(
    k: &mut HipecKernel,
    cidx: usize,
    s: &Step,
    _cond: bool,
    ctx: &mut Ctx,
) -> StepRes {
    finish(
        ctx,
        (|| -> Result<StepOut, PolicyFault> {
            let aop = ArithOp::from_u8(AOP).expect("lowered variant");
            let a = k.read_int(cidx, s.a, s.cc)?;
            let b = match aop {
                ArithOp::Inc | ArithOp::Dec => 1,
                _ => k.read_int(cidx, s.b, s.cc)?,
            };
            let v = match aop {
                ArithOp::Add | ArithOp::Inc => a.wrapping_add(b),
                ArithOp::Sub | ArithOp::Dec => a.wrapping_sub(b),
                ArithOp::Mul => a.wrapping_mul(b),
                ArithOp::Div => {
                    if b == 0 {
                        return Err(PolicyFault::DivideByZero { cc: s.cc });
                    }
                    a.wrapping_div(b)
                }
                ArithOp::Mod => {
                    if b == 0 {
                        return Err(PolicyFault::DivideByZero { cc: s.cc });
                    }
                    a.wrapping_rem(b)
                }
                ArithOp::Mov => b,
            };
            k.write_int(cidx, s.a, v, s.cc)?;
            Ok(StepOut::Next(false))
        })(),
    )
}

fn comp_step<const COP: u8>(
    k: &mut HipecKernel,
    cidx: usize,
    s: &Step,
    _cond: bool,
    ctx: &mut Ctx,
) -> StepRes {
    finish(
        ctx,
        (|| -> Result<StepOut, PolicyFault> {
            let cop = CompOp::from_u8(COP).expect("lowered variant");
            let a = k.read_int(cidx, s.a, s.cc)?;
            let b = k.read_int(cidx, s.b, s.cc)?;
            Ok(StepOut::Next(cop.eval(a, b)))
        })(),
    )
}

fn logic_step<const LOP: u8>(
    k: &mut HipecKernel,
    cidx: usize,
    s: &Step,
    cond: bool,
    ctx: &mut Ctx,
) -> StepRes {
    finish(
        ctx,
        (|| -> Result<StepOut, PolicyFault> {
            let lop = LogicOp::from_u8(LOP).expect("lowered variant");
            let new_cond = match lop {
                // `&&`/`||` short-circuit exactly like the interpreter: a
                // bad second operand only faults when it is actually read.
                LogicOp::And => k.read_bool(cidx, s.a, s.cc)? && k.read_bool(cidx, s.b, s.cc)?,
                LogicOp::Or => k.read_bool(cidx, s.a, s.cc)? || k.read_bool(cidx, s.b, s.cc)?,
                LogicOp::Xor => k.read_bool(cidx, s.a, s.cc)? ^ k.read_bool(cidx, s.b, s.cc)?,
                LogicOp::Not => !k.read_bool(cidx, s.a, s.cc)?,
                LogicOp::StoreCond => {
                    k.write_bool(cidx, s.a, cond, s.cc)?;
                    cond
                }
                LogicOp::LoadCond => k.read_bool(cidx, s.a, s.cc)?,
            };
            Ok(StepOut::Next(new_cond))
        })(),
    )
}

fn emptyq_step(k: &mut HipecKernel, cidx: usize, s: &Step, _cond: bool, ctx: &mut Ctx) -> StepRes {
    finish(
        ctx,
        (|| -> Result<StepOut, PolicyFault> {
            let q = k.read_queue(cidx, s.a, s.cc)?;
            Ok(StepOut::Next(k.vm.frames.queue_is_empty(q)?))
        })(),
    )
}

fn inq_step(k: &mut HipecKernel, cidx: usize, s: &Step, _cond: bool, ctx: &mut Ctx) -> StepRes {
    finish(
        ctx,
        (|| -> Result<StepOut, PolicyFault> {
            let q = k.read_queue(cidx, s.a, s.cc)?;
            let page = k.read_page(cidx, s.b, s.cc)?;
            Ok(StepOut::Next(k.vm.frames.queue_of(page)? == Some(q)))
        })(),
    )
}

fn jump_step<const MODE: u8>(
    _k: &mut HipecKernel,
    _cidx: usize,
    s: &Step,
    cond: bool,
    ctx: &mut Ctx,
) -> StepRes {
    let take = match JumpMode::from_u8(MODE).expect("lowered variant") {
        JumpMode::IfFalse => !cond,
        JumpMode::Always => true,
        JumpMode::IfTrue => cond,
    };
    if take {
        if (s.target as usize) >= s.len {
            ctx.fault = Some(PolicyFault::JumpOutOfRange {
                target: s.target,
                len: s.len,
            });
            return StepRes::Fault;
        }
        StepRes::Jump
    } else {
        StepRes::Fall
    }
}

fn dequeue_step<const HEAD: bool>(
    k: &mut HipecKernel,
    cidx: usize,
    s: &Step,
    _cond: bool,
    ctx: &mut Ctx,
) -> StepRes {
    finish(
        ctx,
        (|| -> Result<StepOut, PolicyFault> {
            let q = k.read_queue(cidx, s.b, s.cc)?;
            let page = if HEAD {
                k.vm.frames.dequeue_head(q)?
            } else {
                k.vm.frames.dequeue_tail(q)?
            };
            k.vm.charge(k.vm.cost.queue_op);
            k.write_page(cidx, s.a, page, s.cc)?;
            Ok(StepOut::Next(false))
        })(),
    )
}

fn enqueue_step<const HEAD: bool>(
    k: &mut HipecKernel,
    cidx: usize,
    s: &Step,
    _cond: bool,
    ctx: &mut Ctx,
) -> StepRes {
    finish(
        ctx,
        (|| -> Result<StepOut, PolicyFault> {
            let page = k.read_page(cidx, s.a, s.cc)?;
            let q = k.read_queue(cidx, s.b, s.cc)?;
            // Pushing onto the container's free queue is the eviction
            // point: the page must be clean and gets unmapped.
            if q == k.containers[cidx].free_q {
                let frame = k.vm.frames.frame(page)?;
                if frame.mod_bit {
                    return Err(PolicyFault::DirtyFree);
                }
                if frame.owner.is_some() {
                    k.vm.evict_frame(page)?;
                }
            }
            if k.vm.frames.queue_of(page)?.is_some() {
                k.vm.frames.remove(page)?;
                k.vm.charge(k.vm.cost.queue_op);
            }
            if HEAD {
                k.vm.frames.enqueue_head(q, page)?;
            } else {
                k.vm.frames.enqueue_tail(q, page)?;
            }
            k.vm.charge(k.vm.cost.queue_op);
            Ok(StepOut::Next(false))
        })(),
    )
}

fn request_step(k: &mut HipecKernel, cidx: usize, s: &Step, _cond: bool, ctx: &mut Ctx) -> StepRes {
    finish(
        ctx,
        (|| -> Result<StepOut, PolicyFault> {
            let n = k.read_int(cidx, s.a, s.cc)?;
            let granted = k.gfm_request(cidx, n.max(0) as u64)?;
            if s.b != NO_OPERAND {
                k.write_int(cidx, s.b, granted as i64, s.cc)?;
            }
            Ok(StepOut::Next(granted == n.max(0) as u64 && n > 0))
        })(),
    )
}

fn release_step(k: &mut HipecKernel, cidx: usize, s: &Step, _cond: bool, ctx: &mut Ctx) -> StepRes {
    finish(
        ctx,
        (|| -> Result<StepOut, PolicyFault> {
            let page = k.read_page(cidx, s.a, s.cc)?;
            k.gfm_release(cidx, page)?;
            k.write_page(cidx, s.a, None, s.cc)?;
            Ok(StepOut::Next(false))
        })(),
    )
}

fn flush_step(k: &mut HipecKernel, cidx: usize, s: &Step, _cond: bool, ctx: &mut Ctx) -> StepRes {
    finish(
        ctx,
        (|| -> Result<StepOut, PolicyFault> {
            let page = k.read_page(cidx, s.a, s.cc)?;
            let replacement = k.flush_exchange(cidx, page)?;
            k.write_page(cidx, s.a, Some(replacement), s.cc)?;
            Ok(StepOut::Next(false))
        })(),
    )
}

fn set_step<const MODIFY: bool, const VALUE: bool>(
    k: &mut HipecKernel,
    cidx: usize,
    s: &Step,
    _cond: bool,
    ctx: &mut Ctx,
) -> StepRes {
    finish(
        ctx,
        (|| -> Result<StepOut, PolicyFault> {
            let page = k.read_page(cidx, s.a, s.cc)?;
            k.vm.charge(k.vm.cost.bit_op);
            let frame = k.vm.frames.frame_mut(page)?;
            if MODIFY {
                if !VALUE && frame.mod_bit {
                    // Clearing the modify bit of a dirty page would lose
                    // data; policies must Flush.
                    return Err(PolicyFault::UnsafeModClear);
                }
                frame.mod_bit = VALUE;
            } else {
                frame.ref_bit = VALUE;
            }
            Ok(StepOut::Next(false))
        })(),
    )
}

fn ref_step(k: &mut HipecKernel, cidx: usize, s: &Step, _cond: bool, ctx: &mut Ctx) -> StepRes {
    finish(
        ctx,
        (|| -> Result<StepOut, PolicyFault> {
            let page = k.read_page(cidx, s.a, s.cc)?;
            k.vm.charge(k.vm.cost.bit_op);
            Ok(StepOut::Next(k.vm.frames.frame(page)?.ref_bit))
        })(),
    )
}

fn mod_step(k: &mut HipecKernel, cidx: usize, s: &Step, _cond: bool, ctx: &mut Ctx) -> StepRes {
    finish(
        ctx,
        (|| -> Result<StepOut, PolicyFault> {
            let page = k.read_page(cidx, s.a, s.cc)?;
            k.vm.charge(k.vm.cost.bit_op);
            Ok(StepOut::Next(k.vm.frames.frame(page)?.mod_bit))
        })(),
    )
}

fn find_step(k: &mut HipecKernel, cidx: usize, s: &Step, _cond: bool, ctx: &mut Ctx) -> StepRes {
    finish(
        ctx,
        (|| -> Result<StepOut, PolicyFault> {
            let vaddr = k.read_int(cidx, s.b, s.cc)?;
            let task = k.containers[cidx].task;
            let vpage = (vaddr.max(0) as u64) / hipec_vm::PAGE_SIZE;
            let frame = k.vm.task(task).map_err(PolicyFault::Vm)?.translate(vpage);
            k.vm.charge(k.vm.cost.mem_touch);
            k.write_page(cidx, s.a, frame, s.cc)?;
            Ok(StepOut::Next(false))
        })(),
    )
}

fn activate_step(
    k: &mut HipecKernel,
    cidx: usize,
    s: &Step,
    _cond: bool,
    ctx: &mut Ctx,
) -> StepRes {
    if ctx.depth >= k.limits.max_depth {
        ctx.fault = Some(PolicyFault::DepthExceeded);
        return StepRes::Fault;
    }
    // Procedure-call semantics: the nested event's return value is
    // discarded. Recursing through `run_event` keeps the nested trace
    // record and backend dispatch identical to the interpreter's.
    match k.run_event(cidx, s.a, ctx.depth + 1, ctx.fuel) {
        Ok(_) => StepRes::Fall,
        Err(f) => {
            ctx.fault = Some(f);
            StepRes::Fault
        }
    }
}

fn reclaim_step<const HEAD: bool>(
    k: &mut HipecKernel,
    cidx: usize,
    s: &Step,
    _cond: bool,
    ctx: &mut Ctx,
) -> StepRes {
    finish(
        ctx,
        (|| -> Result<StepOut, PolicyFault> {
            let q = k.read_queue(cidx, s.a, s.cc)?;
            // FIFO and LRU reclaim the head (oldest-enqueued /
            // least-recently-used of a recency queue); MRU the tail.
            let victim = if HEAD {
                k.vm.frames.dequeue_head(q)?
            } else {
                k.vm.frames.dequeue_tail(q)?
            };
            k.vm.charge(k.vm.cost.queue_op);
            match victim {
                Some(v) => {
                    let freed = k.reclaim_one(cidx, v)?;
                    if s.b != NO_OPERAND {
                        k.write_page(cidx, s.b, Some(freed), s.cc)?;
                    }
                    Ok(StepOut::Next(true))
                }
                None => Ok(StepOut::Next(false)),
            }
        })(),
    )
}

fn migrate_step(k: &mut HipecKernel, cidx: usize, s: &Step, _cond: bool, ctx: &mut Ctx) -> StepRes {
    finish(
        ctx,
        (|| -> Result<StepOut, PolicyFault> {
            let target = k.read_int(cidx, s.a, s.cc)?;
            k.migrate_frame(cidx, target)?;
            Ok(StepOut::Next(false))
        })(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::build;
    use crate::operand::OperandDecl;

    fn two_event_program(cmds: Vec<RawCmd>) -> PolicyProgram {
        let mut p = PolicyProgram::new();
        p.declare(OperandDecl::FreeQueue);
        p.add_event("PageFault", cmds);
        p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
        p
    }

    #[test]
    fn lowering_is_one_step_per_command() {
        let p = two_event_program(vec![
            build::jump(JumpMode::Always, 1),
            build::ret(NO_OPERAND),
        ]);
        let c = compile_policy(&p);
        assert_eq!(c.event_count(), 2);
        assert_eq!(c.step_count(), 3);
    }

    #[test]
    fn lowering_is_total_on_garbage() {
        // Undecodable opcode and flag bytes lower to fault steps instead of
        // failing the lowering itself.
        let p = two_event_program(vec![
            RawCmd::new(0xEE, 0, 0, 0),                 // bad opcode
            RawCmd::new(OpCode::Arith as u8, 0, 0, 99), // bad arith flag
            build::ret(NO_OPERAND),
        ]);
        let c = compile_policy(&p);
        assert_eq!(c.step_count(), 4);
        let steps = &c.events[0];
        assert!(!steps[0].bump, "bad opcode is never profiled");
        assert!(steps[1].bump, "bad flag is bumped before it faults");
        assert_eq!(steps[1].op, OpCode::Arith);
    }

    #[test]
    fn pure_flags_cover_only_chargeless_ops() {
        let p = two_event_program(vec![
            build::comp(1, 1, CompOp::Eq),
            build::is_ref(2),
            build::ret(NO_OPERAND),
        ]);
        let c = compile_policy(&p);
        let steps = &c.events[0];
        assert!(steps[0].pure, "Comp never charges beyond decode");
        assert!(!steps[1].pure, "Ref charges bit_op");
        assert!(steps[2].pure, "Return never charges beyond decode");
    }
}

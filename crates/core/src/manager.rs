//! The global frame manager (paper §4.3.1).
//!
//! The Mach pageout daemon, extended to serve specific applications. Four
//! tasks:
//!
//! * **Balance** — the `partition_burst` watermark (50 % of post-boot free
//!   frames) caps the total allocation to specific applications; exceeding
//!   it triggers reclamation from containers holding more than `minFrame`.
//! * **Allocation** — `minFrame` admission at `vm_*_hipec` time and the
//!   `Request` command at run time (full grant or rejection).
//! * **Deallocation** — normal reclamation runs the victim container's
//!   `ReclaimFrame` event (FAFR order: first allocated, first reclaimed);
//!   forced reclamation takes frames directly from container queues.
//! * **I/O handling** — `Flush` exchanges a dirty page for a clean frame;
//!   the device write happens asynchronously so the executor never waits
//!   for the disk.

use hipec_vm::FrameId;

use crate::error::{HipecError, PolicyFault};
use crate::kernel::HipecKernel;
use crate::program::EVENT_RECLAIM_FRAME;
use crate::trace::TraceEvent;

/// Global-frame-manager state and statistics.
#[derive(Debug, Clone)]
pub struct GlobalFrameManager {
    /// Maximum total frames allocatable to specific applications.
    pub partition_burst: u64,
    /// Frames currently allocated to specific applications.
    pub total_specific: u64,
    /// `Request` grants.
    pub grants: u64,
    /// `Request` rejections.
    pub rejections: u64,
    /// Frames reclaimed through `ReclaimFrame` events.
    pub normal_reclaims: u64,
    /// Frames reclaimed by force.
    pub forced_reclaims: u64,
    /// Orphaned frames the kernel recovered from overwritten page slots.
    pub orphans_recovered: u64,
}

impl GlobalFrameManager {
    /// Creates the manager with the given partition watermark.
    pub fn new(partition_burst: u64) -> Self {
        GlobalFrameManager {
            partition_burst,
            total_specific: 0,
            grants: 0,
            rejections: 0,
            normal_reclaims: 0,
            forced_reclaims: 0,
            orphans_recovered: 0,
        }
    }
}

impl HipecKernel {
    /// `minFrame` admission: obtains `n` frames for a new container,
    /// reclaiming from existing containers if the free pool cannot cover
    /// the request. Fails with [`HipecError::MinFramesUnavailable`].
    pub(crate) fn admit_frames(&mut self, n: u64) -> Result<Vec<FrameId>, HipecError> {
        match self.vm.take_free_frames(n) {
            Ok(frames) => Ok(frames),
            Err(_) => {
                // Reclaim from existing specific applications, then retry.
                let shortfall = n.saturating_sub(self.vm.free_count());
                self.reclaim_specific(shortfall);
                self.vm
                    .take_free_frames(n)
                    .map_err(|_| HipecError::MinFramesUnavailable {
                        requested: n,
                        available: self.vm.free_count(),
                    })
            }
        }
    }

    /// The `Request` command: full grant or rejection (paper §4.3.1).
    ///
    /// A request is granted only if the global free pool can supply it
    /// without dipping below the pageout daemon's `free_target`. Granted
    /// frames land on the container's free queue. If the grant pushes the
    /// specific total past `partition_burst`, balance reclamation runs.
    pub(crate) fn gfm_request(&mut self, cidx: usize, n: u64) -> Result<u64, PolicyFault> {
        self.vm.charge(self.vm.cost.request_grant);
        if n == 0 {
            return Ok(0);
        }
        let spare = self.vm.free_count().saturating_sub(self.vm.free_target());
        if n > spare {
            // Rejected: the executor checks the return code and lets the
            // policy handle the shortage — it is never hung waiting.
            self.gfm.rejections += 1;
            self.emit(TraceEvent::Request {
                container: self.containers[cidx].key,
                asked: n,
                granted: 0,
            });
            return Ok(0);
        }
        let frames = self.vm.take_free_frames(n)?;
        let free_q = self.containers[cidx].free_q;
        for f in frames {
            self.vm.frames.enqueue_tail(free_q, f)?;
        }
        self.containers[cidx].allocated += n;
        self.containers[cidx].stats.requested += n;
        self.gfm.total_specific += n;
        self.gfm.grants += 1;
        self.emit(TraceEvent::Request {
            container: self.containers[cidx].key,
            asked: n,
            granted: n,
        });
        self.balance();
        Ok(n)
    }

    /// The `Release` command: returns one page to the global pool.
    ///
    /// `return_frame` detaches the page from whatever queue it sits on, so
    /// a policy releasing straight off one of its queues cannot leave a
    /// stale link behind; [`HipecKernel::scrub_slots`] clears any operand
    /// slot still aliasing the released frame.
    pub(crate) fn gfm_release(&mut self, cidx: usize, page: FrameId) -> Result<(), PolicyFault> {
        self.vm.charge(self.vm.cost.request_grant);
        {
            let frame = self.vm.frames.frame(page)?;
            if frame.mod_bit {
                return Err(PolicyFault::DirtyFree);
            }
        }
        if self.vm.frames.frame(page)?.owner.is_some() {
            self.vm.evict_frame(page)?;
        }
        self.vm.return_frame(page)?;
        self.scrub_slots(cidx, page);
        self.containers[cidx].allocated = self.containers[cidx].allocated.saturating_sub(1);
        self.containers[cidx].stats.released += 1;
        self.gfm.total_specific = self.gfm.total_specific.saturating_sub(1);
        self.emit(TraceEvent::Release {
            container: self.containers[cidx].key,
            frame: page,
        });
        Ok(())
    }

    /// Clears every page operand slot of container `i` that names `frame`.
    ///
    /// Called whenever a frame leaves the container for the global pool
    /// (release, forced reclaim, flush hand-off). Slots are the policy's
    /// only way to name frames, so scrubbing here guarantees no stale
    /// handle to a frame the container no longer owns survives.
    pub(crate) fn scrub_slots(&mut self, i: usize, frame: FrameId) {
        for slot in self.containers[i].operands.iter_mut() {
            if *slot == crate::operand::OperandSlot::Page(Some(frame)) {
                *slot = crate::operand::OperandSlot::Page(None);
            }
        }
    }

    /// Recovers a frame whose last reachable handle — container `cidx`'s
    /// page slot `idx` — is about to be overwritten.
    ///
    /// A frame that sits on no queue, backs no page, and is neither busy
    /// nor wired is reachable only through operand slots. If no other live
    /// slot names it (`Find` can alias), overwriting this one would strand
    /// the frame: still charged to the container's `allocated` count but
    /// invisible to release, reclamation sweeps, and the pageout daemon.
    /// The kernel takes the frame back into the global pool instead.
    pub(crate) fn reclaim_orphaned_frame(&mut self, cidx: usize, idx: u8, frame: FrameId) {
        match self.vm.frames.frame(frame) {
            Ok(f) if !f.busy && !f.wired && f.owner.is_none() => {}
            _ => return,
        }
        if !matches!(self.vm.frames.queue_of(frame), Ok(None)) {
            return;
        }
        for (i, c) in self.containers.iter().enumerate() {
            if c.terminated {
                continue;
            }
            for (j, slot) in c.operands.iter().enumerate() {
                if (i, j) == (cidx, idx as usize) {
                    continue;
                }
                if *slot == crate::operand::OperandSlot::Page(Some(frame)) {
                    return;
                }
            }
        }
        // Unowned, unmapped: any mod bit is residue with no backing block
        // to flush to, so clear it rather than trip the dirty-free guard.
        if let Ok(f) = self.vm.frames.frame_mut(frame) {
            f.mod_bit = false;
            f.ref_bit = false;
        }
        if self.vm.return_frame(frame).is_ok() {
            self.containers[cidx].allocated = self.containers[cidx].allocated.saturating_sub(1);
            self.gfm.total_specific = self.gfm.total_specific.saturating_sub(1);
            self.gfm.orphans_recovered += 1;
            self.emit(TraceEvent::OrphanRecovered {
                container: self.containers[cidx].key,
                frame,
            });
        }
    }

    /// The `Flush` command: hands a dirty page to the manager's flush
    /// machinery and returns a clean frame in exchange, so the executor
    /// never waits for the device (paper §4.3.1, I/O handling).
    ///
    /// Clean pages are exchanged for themselves (no device write).
    pub(crate) fn flush_exchange(
        &mut self,
        cidx: usize,
        page: FrameId,
    ) -> Result<FrameId, PolicyFault> {
        if !self.vm.frames.frame(page)?.mod_bit {
            return Ok(page);
        }
        if self.vm.frames.queue_of(page)?.is_some() {
            self.vm.frames.remove(page)?;
        }
        // The dirty frame migrates to the global pool (it reappears on the
        // global free queue when its write completes)…
        self.vm.start_flush(page)?;
        // …so no slot may keep naming it (the executor writes the
        // replacement into the invoking slot after the exchange; aliases
        // must not survive either).
        self.scrub_slots(cidx, page);
        self.containers[cidx].allocated -= 1;
        self.gfm.total_specific -= 1;
        // …and the container receives a clean frame now. `take_free_frames`
        // waits on in-flight flushes if the pool is momentarily empty, so
        // this cannot deadlock.
        let replacement = self
            .vm
            .take_free_frames(1)?
            .pop()
            .expect("take_free_frames(1) yields one frame");
        self.containers[cidx].allocated += 1;
        self.containers[cidx].stats.flushes += 1;
        self.gfm.total_specific += 1;
        self.vm.charge(self.vm.cost.request_grant);
        self.emit(TraceEvent::FlushExchange {
            container: self.containers[cidx].key,
            dirty: page,
            replacement,
        });
        Ok(replacement)
    }

    /// The `Migrate` extension: moves one free frame from `cidx`'s free
    /// queue to the container with key `target` (paper §6, future work).
    pub(crate) fn migrate_frame(&mut self, cidx: usize, target: i64) -> Result<(), PolicyFault> {
        let tidx = usize::try_from(target).map_err(|_| PolicyFault::BadMigrateTarget(target))?;
        if tidx >= self.containers.len()
            || self.containers[tidx].terminated
            || self.containers[tidx].health.quarantined()
            || tidx == cidx
        {
            return Err(PolicyFault::BadMigrateTarget(target));
        }
        let src_free = self.containers[cidx].free_q;
        let frame = self
            .vm
            .frames
            .dequeue_head(src_free)?
            .ok_or(PolicyFault::EmptyPageSlot {
                index: 0,
                cc: usize::MAX,
            })?;
        let dst_free = self.containers[tidx].free_q;
        self.vm.frames.enqueue_tail(dst_free, frame)?;
        self.vm.charge(self.vm.cost.queue_op * 2);
        self.containers[cidx].allocated -= 1;
        self.containers[tidx].allocated += 1;
        // The frame now belongs to the target container: no source operand
        // slot may keep naming it, or the source policy could DeQueue /
        // EnQueue a frame it no longer owns (cross-container corruption).
        self.scrub_slots(cidx, frame);
        self.emit(TraceEvent::Migrate {
            from: self.containers[cidx].key,
            to: self.containers[tidx].key,
            frame,
        });
        Ok(())
    }

    /// Balance: if specific applications collectively exceed
    /// `partition_burst`, reclaim the excess from containers holding more
    /// than their `minFrame` (paper §4.3.1, balance + deallocation).
    pub fn balance(&mut self) {
        if self.gfm.total_specific > self.gfm.partition_burst {
            let excess = self.gfm.total_specific - self.gfm.partition_burst;
            self.reclaim_specific(excess);
        }
    }

    /// Reclaims up to `want` frames from specific applications: normal
    /// (FAFR `ReclaimFrame` events) first, then forced. Returns the number
    /// actually reclaimed.
    pub(crate) fn reclaim_specific(&mut self, want: u64) -> u64 {
        if want == 0 {
            return 0;
        }
        let mut got = self.normal_reclaim(want);
        if got < want {
            got += self.forced_reclaim(want - got);
        }
        got
    }

    /// FAFR order: container indices sorted by creation sequence, skipping
    /// terminated and quarantined containers (the latter cannot run
    /// `ReclaimFrame` events, and their only remaining frames are ones a
    /// faulty device refused to flush) and those at or below `minFrame`.
    fn fafr_candidates(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.containers.len())
            .filter(|&i| {
                !self.containers[i].terminated
                    && !self.containers[i].health.quarantined()
                    && self.containers[i].surplus() > 0
            })
            .collect();
        idx.sort_by_key(|&i| self.containers[i].created_seq);
        idx
    }

    /// Normal reclamation: run `ReclaimFrame` events, letting applications
    /// decide which pages are least important.
    fn normal_reclaim(&mut self, want: u64) -> u64 {
        let mut got = 0u64;
        for i in self.fafr_candidates() {
            if got >= want {
                break;
            }
            let ask = (want - got).min(self.containers[i].surplus());
            if ask == 0 {
                continue;
            }
            let before = self.containers[i].allocated;
            self.containers[i].reclaim_target = ask;
            self.containers[i].exec_started = Some(self.vm.now());
            self.vm.charge(self.vm.cost.executor_invoke);
            let mut fuel = self.limits.fuel;
            let outcome = self.run_event(i, EVENT_RECLAIM_FRAME, 0, &mut fuel);
            self.containers[i].reclaim_target = 0;
            self.containers[i].exec_started = None;
            match outcome {
                Ok(_) => {
                    let released = before.saturating_sub(self.containers[i].allocated);
                    got += released;
                    self.gfm.normal_reclaims += released;
                    self.emit(TraceEvent::NormalReclaim {
                        container: self.containers[i].key,
                        asked: ask,
                        recovered: released,
                    });
                }
                Err(PolicyFault::Device(_)) => {
                    // Environmental: the device refused a flush the policy
                    // triggered. Credit whatever was released before the
                    // failure and leave the application running — but count
                    // the strike toward its health state.
                    let released = before.saturating_sub(self.containers[i].allocated);
                    got += released;
                    self.gfm.normal_reclaims += released;
                    self.emit(TraceEvent::NormalReclaim {
                        container: self.containers[i].key,
                        asked: ask,
                        recovered: released,
                    });
                    self.note_strike(i);
                }
                Err(fault) => {
                    // A faulting ReclaimFrame policy terminates the app.
                    // Credit only what the kill's sweep actually recovered:
                    // dirty frames whose flush submission the device refuses
                    // stay on the terminated container's books, so `before`
                    // would overcount and let the caller skip reclamation it
                    // still needs.
                    let reason = fault.to_string();
                    let _ = self.kill(i, &reason);
                    let recovered = before.saturating_sub(self.containers[i].allocated);
                    got += recovered;
                    self.gfm.normal_reclaims += recovered;
                    self.emit(TraceEvent::NormalReclaim {
                        container: self.containers[i].key,
                        asked: ask,
                        recovered,
                    });
                }
            }
        }
        got
    }

    /// Forced reclamation: take frames directly off container queues, free
    /// queue first, flushing dirty pages (they are "linked to a VM object
    /// and flushed to disk later").
    fn forced_reclaim(&mut self, want: u64) -> u64 {
        let mut got = 0u64;
        for i in self.fafr_candidates() {
            if got >= want {
                break;
            }
            let take = (want - got).min(self.containers[i].surplus());
            got += self.force_take(i, take);
        }
        got
    }

    /// Takes up to `take` frames from container `i`. Returns the number
    /// taken.
    pub(crate) fn force_take(&mut self, i: usize, take: u64) -> u64 {
        let mut taken = 0u64;
        let queues = self.containers[i].queues.clone();
        'outer: for q in queues {
            while taken < take {
                let Ok(Some(f)) = self.vm.frames.dequeue_head(q) else {
                    break;
                };
                let dirty = self
                    .vm
                    .frames
                    .frame(f)
                    .map(|fr| fr.mod_bit)
                    .unwrap_or(false);
                let ok = if dirty {
                    self.vm.start_flush(f).is_ok()
                } else {
                    self.vm.evict_frame(f).is_ok() && self.vm.return_frame(f).is_ok()
                };
                if ok {
                    self.scrub_slots(i, f);
                    taken += 1;
                    self.emit(TraceEvent::ForcedSeize {
                        container: self.containers[i].key,
                        frame: f,
                    });
                } else {
                    break 'outer;
                }
            }
            if taken >= take {
                break;
            }
        }
        // Frames parked in Page operand slots sit on no queue; sweep them
        // too so a terminated or deallocated container cannot leak.
        if taken < take {
            for slot in 0..self.containers[i].operands.len() {
                if taken >= take {
                    break;
                }
                let crate::operand::OperandSlot::Page(Some(f)) = self.containers[i].operands[slot]
                else {
                    continue;
                };
                let parked = self.vm.frames.queue_of(f).ok().is_some_and(|q| q.is_none());
                if !parked {
                    continue;
                }
                let dirty = self
                    .vm
                    .frames
                    .frame(f)
                    .map(|fr| fr.mod_bit)
                    .unwrap_or(false);
                let ok = if dirty {
                    self.vm.start_flush(f).is_ok()
                } else {
                    self.vm.evict_frame(f).is_ok() && self.vm.return_frame(f).is_ok()
                };
                if ok {
                    // Clears this slot and any alias of the same frame.
                    self.scrub_slots(i, f);
                    taken += 1;
                    self.emit(TraceEvent::ForcedSeize {
                        container: self.containers[i].key,
                        frame: f,
                    });
                }
            }
        }
        self.containers[i].allocated -= taken.min(self.containers[i].allocated);
        self.containers[i].stats.released += taken;
        self.gfm.total_specific -= taken.min(self.gfm.total_specific);
        self.gfm.forced_reclaims += taken;
        if taken > 0 {
            self.emit(TraceEvent::ForcedReclaim {
                container: self.containers[i].key,
                taken,
            });
        }
        taken
    }

    /// Reclaims *all* of a container's frames (termination path).
    pub(crate) fn reclaim_all_frames(&mut self, i: usize) -> u64 {
        let all = self.containers[i].allocated;
        // Temporarily treat everything as surplus.
        let saved_min = self.containers[i].min_frames;
        self.containers[i].min_frames = 0;
        let taken = self.force_take(i, all);
        self.containers[i].min_frames = saved_min;
        taken
    }

    /// Hands a dead container's stranded resident pages to the default pool.
    ///
    /// `force_take` sweeps queues and operand slots, but a frame a policy
    /// returned for a fault without enqueueing anywhere is owned and mapped
    /// yet reachable through neither — it would stay charged to the
    /// terminated container forever. The region has just reverted to
    /// default management, so these pages now belong on the global active
    /// queue with the specific books decremented accordingly. Call after
    /// clearing the object's container link.
    pub(crate) fn revert_stranded_frames(&mut self, i: usize) {
        let object = self.containers[i].object;
        let mut resident: Vec<FrameId> = match self.vm.object(object) {
            Ok(o) => o.resident.values().copied().collect(),
            Err(_) => return,
        };
        // The residency map is a HashMap; sort so stranded frames re-enter
        // the global active queue in a replay-stable order.
        resident.sort_unstable();
        for f in resident {
            let stray = matches!(self.vm.frames.queue_of(f), Ok(None))
                && self
                    .vm
                    .frames
                    .frame(f)
                    .map(|fr| !fr.busy && !fr.wired)
                    .unwrap_or(false);
            if !stray {
                continue;
            }
            if self.vm.frames.enqueue_tail(self.vm.active_q, f).is_ok() {
                self.scrub_slots(i, f);
                self.containers[i].allocated = self.containers[i].allocated.saturating_sub(1);
                self.gfm.total_specific = self.gfm.total_specific.saturating_sub(1);
                self.emit(TraceEvent::ForcedSeize {
                    container: self.containers[i].key,
                    frame: f,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use hipec_vm::{KernelParams, PAGE_SIZE};

    use crate::command::{build, NO_OPERAND};
    use crate::kernel::{ContainerKey, HipecKernel};
    use crate::operand::{OperandDecl, OperandSlot};
    use crate::program::PolicyProgram;

    fn small_kernel() -> HipecKernel {
        let mut p = KernelParams::paper_64mb();
        p.total_frames = 64;
        p.wired_frames = 4;
        p.free_target = 8;
        p.free_min = 4;
        p.inactive_target = 12;
        HipecKernel::new(p)
    }

    /// A do-nothing policy with one queue and two page slots.
    fn idle_program() -> PolicyProgram {
        let mut p = PolicyProgram::new();
        p.declare(OperandDecl::FreeQueue);
        p.declare(OperandDecl::Queue { recency: false });
        p.declare(OperandDecl::Page);
        p.declare(OperandDecl::Page);
        p.add_event("PageFault", vec![build::ret(NO_OPERAND)]);
        p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
        p
    }

    fn install(k: &mut HipecKernel, min: u64) -> ContainerKey {
        let t = k.vm.create_task();
        let (_, _, key) = k
            .vm_allocate_hipec(t, 32 * PAGE_SIZE, idle_program(), min)
            .expect("install");
        key
    }

    #[test]
    fn request_release_round_trip_keeps_books() {
        let mut k = small_kernel();
        let key = install(&mut k, 4);
        let i = key.0 as usize;
        assert_eq!(k.gfm.total_specific, 4);
        let granted = k.gfm_request(i, 6).expect("grant");
        assert_eq!(granted, 6);
        assert_eq!(k.containers[i].allocated, 10);
        assert_eq!(k.gfm.total_specific, 10);
        k.check_invariants().expect("consistent after grant");
        // Release everything back, one frame at a time.
        while let Some(f) =
            k.vm.frames
                .queue_head(k.containers[i].free_q)
                .expect("queue")
        {
            k.gfm_release(i, f).expect("release");
            k.check_invariants().expect("consistent after release");
        }
        assert_eq!(k.containers[i].allocated, 0);
        assert_eq!(k.gfm.total_specific, 0);
    }

    #[test]
    fn release_of_an_enqueued_frame_detaches_it_first() {
        let mut k = small_kernel();
        let key = install(&mut k, 2);
        let i = key.0 as usize;
        let free_q = k.containers[i].free_q;
        // The frame sits on the container's free queue when released — the
        // global pool must end up with it and the queue link must be gone.
        let f =
            k.vm.frames
                .queue_head(free_q)
                .expect("queue")
                .expect("frame");
        let global_before = k.vm.free_count();
        k.gfm_release(i, f).expect("release while enqueued");
        assert_eq!(k.vm.frames.queue_of(f).expect("valid"), Some(k.vm.free_q));
        assert_eq!(k.vm.free_count(), global_before + 1);
        assert_eq!(k.vm.frames.queue_len(free_q).expect("len"), 1);
        assert_eq!(k.containers[i].allocated, 1);
        assert_eq!(k.gfm.total_specific, 1);
        k.check_invariants()
            .expect("consistent after enqueued release");
    }

    #[test]
    fn release_scrubs_aliasing_page_slots() {
        let mut k = small_kernel();
        let key = install(&mut k, 2);
        let i = key.0 as usize;
        let free_q = k.containers[i].free_q;
        let f =
            k.vm.frames
                .queue_head(free_q)
                .expect("queue")
                .expect("frame");
        // Two slots alias the same frame (a policy can do this via DeQueue /
        // EnQueue round trips or Find).
        k.containers[i].operands[2] = OperandSlot::Page(Some(f));
        k.containers[i].operands[3] = OperandSlot::Page(Some(f));
        k.gfm_release(i, f).expect("release");
        assert_eq!(k.containers[i].operands[2], OperandSlot::Page(None));
        assert_eq!(k.containers[i].operands[3], OperandSlot::Page(None));
        k.check_invariants().expect("no stale slot survives");
    }

    #[test]
    fn overwriting_the_last_handle_recovers_the_orphan() {
        let mut k = small_kernel();
        let key = install(&mut k, 4);
        let i = key.0 as usize;
        let free_q = k.containers[i].free_q;
        // Park a frame in slot 2 — its only handle — then overwrite the
        // slot the way a careless DeQueue destination reuse would.
        let parked =
            k.vm.frames
                .dequeue_head(free_q)
                .expect("queue")
                .expect("frame");
        k.write_page(i, 2, Some(parked), 0).expect("park");
        let other =
            k.vm.frames
                .queue_head(free_q)
                .expect("queue")
                .expect("frame");
        k.write_page(i, 2, Some(other), 1).expect("overwrite");
        assert_eq!(k.gfm.orphans_recovered, 1);
        assert_eq!(
            k.containers[i].allocated, 3,
            "orphan is taken off the books"
        );
        assert_eq!(k.gfm.total_specific, 3);
        k.check_invariants().expect("no leaked frame");
    }

    #[test]
    fn overwriting_an_aliased_handle_recovers_nothing() {
        let mut k = small_kernel();
        let key = install(&mut k, 4);
        let i = key.0 as usize;
        let free_q = k.containers[i].free_q;
        let parked =
            k.vm.frames
                .dequeue_head(free_q)
                .expect("queue")
                .expect("frame");
        // Slots 2 and 3 alias the frame (Find can do this); clearing one
        // still leaves the frame reachable, so nothing is reclaimed.
        k.write_page(i, 2, Some(parked), 0).expect("park");
        k.write_page(i, 3, Some(parked), 1).expect("alias");
        k.write_page(i, 2, None, 2).expect("clear one alias");
        assert_eq!(k.gfm.orphans_recovered, 0);
        assert_eq!(k.containers[i].allocated, 4);
        assert_eq!(k.containers[i].operands[3], OperandSlot::Page(Some(parked)));
        k.check_invariants()
            .expect("aliased frame is still accounted");
    }

    #[test]
    fn forced_reclaim_scrubs_slots_and_keeps_books() {
        let mut k = small_kernel();
        let key = install(&mut k, 8);
        let i = key.0 as usize;
        // Park one of the container's frames in an operand slot, off-queue
        // (as a policy holding a frame between events would).
        let free_q = k.containers[i].free_q;
        let parked =
            k.vm.frames
                .dequeue_head(free_q)
                .expect("queue")
                .expect("frame");
        k.containers[i].operands[2] = OperandSlot::Page(Some(parked));
        k.check_invariants().expect("parked frames are legal");
        let taken = k.force_take(i, 8);
        assert_eq!(taken, 8, "queue frames and the parked frame are seized");
        assert_eq!(k.containers[i].operands[2], OperandSlot::Page(None));
        assert_eq!(k.containers[i].allocated, 0);
        assert_eq!(k.gfm.total_specific, 0);
        k.check_invariants()
            .expect("consistent after forced reclaim");
    }

    #[test]
    fn admission_reclaims_from_existing_containers() {
        let mut k = small_kernel();
        let first = install(&mut k, 8);
        // Ask for more than the free pool can cover; admission must pull
        // the first container's surplus (everything above minFrame... which
        // is zero here, so it squeezes nothing) and still fail cleanly, or
        // succeed if the pool suffices — either way the books must balance.
        let before_total = k.gfm.total_specific;
        let second = {
            let t = k.vm.create_task();
            k.vm_allocate_hipec(t, 32 * PAGE_SIZE, idle_program(), 40)
        };
        match second {
            Ok(_) => assert!(k.gfm.total_specific >= before_total),
            Err(crate::error::HipecError::MinFramesUnavailable { .. }) => {}
            Err(e) => panic!("unexpected admission failure: {e}"),
        }
        k.check_invariants().expect("books balance after admission");
        let _ = first;
    }

    #[test]
    fn request_rejection_leaves_books_untouched() {
        let mut k = small_kernel();
        let key = install(&mut k, 2);
        let i = key.0 as usize;
        let before = (k.gfm.total_specific, k.containers[i].allocated);
        // Far more than the spare pool: full rejection, no partial grant.
        let granted = k.gfm_request(i, 10_000).expect("rejection is not an error");
        assert_eq!(granted, 0);
        assert_eq!(k.gfm.rejections, 1);
        assert_eq!((k.gfm.total_specific, k.containers[i].allocated), before);
        k.check_invariants().expect("consistent after rejection");
    }
}

//! The global frame manager (paper §4.3.1).
//!
//! The Mach pageout daemon, extended to serve specific applications. Four
//! tasks:
//!
//! * **Balance** — the `partition_burst` watermark (50 % of post-boot free
//!   frames) caps the total allocation to specific applications; exceeding
//!   it triggers reclamation from containers holding more than `minFrame`.
//! * **Allocation** — `minFrame` admission at `vm_*_hipec` time and the
//!   `Request` command at run time (full grant or rejection).
//! * **Deallocation** — normal reclamation runs the victim container's
//!   `ReclaimFrame` event (FAFR order: first allocated, first reclaimed);
//!   forced reclamation takes frames directly from container queues.
//! * **I/O handling** — `Flush` exchanges a dirty page for a clean frame;
//!   the device write happens asynchronously so the executor never waits
//!   for the disk.

use hipec_vm::FrameId;

use crate::error::{HipecError, PolicyFault};
use crate::kernel::HipecKernel;
use crate::program::EVENT_RECLAIM_FRAME;

/// Global-frame-manager state and statistics.
#[derive(Debug, Clone)]
pub struct GlobalFrameManager {
    /// Maximum total frames allocatable to specific applications.
    pub partition_burst: u64,
    /// Frames currently allocated to specific applications.
    pub total_specific: u64,
    /// `Request` grants.
    pub grants: u64,
    /// `Request` rejections.
    pub rejections: u64,
    /// Frames reclaimed through `ReclaimFrame` events.
    pub normal_reclaims: u64,
    /// Frames reclaimed by force.
    pub forced_reclaims: u64,
}

impl GlobalFrameManager {
    /// Creates the manager with the given partition watermark.
    pub fn new(partition_burst: u64) -> Self {
        GlobalFrameManager {
            partition_burst,
            total_specific: 0,
            grants: 0,
            rejections: 0,
            normal_reclaims: 0,
            forced_reclaims: 0,
        }
    }
}

impl HipecKernel {
    /// `minFrame` admission: obtains `n` frames for a new container,
    /// reclaiming from existing containers if the free pool cannot cover
    /// the request. Fails with [`HipecError::MinFramesUnavailable`].
    pub(crate) fn admit_frames(&mut self, n: u64) -> Result<Vec<FrameId>, HipecError> {
        match self.vm.take_free_frames(n) {
            Ok(frames) => Ok(frames),
            Err(_) => {
                // Reclaim from existing specific applications, then retry.
                let shortfall = n.saturating_sub(self.vm.free_count());
                self.reclaim_specific(shortfall);
                self.vm
                    .take_free_frames(n)
                    .map_err(|_| HipecError::MinFramesUnavailable {
                        requested: n,
                        available: self.vm.free_count(),
                    })
            }
        }
    }

    /// The `Request` command: full grant or rejection (paper §4.3.1).
    ///
    /// A request is granted only if the global free pool can supply it
    /// without dipping below the pageout daemon's `free_target`. Granted
    /// frames land on the container's free queue. If the grant pushes the
    /// specific total past `partition_burst`, balance reclamation runs.
    pub(crate) fn gfm_request(&mut self, cidx: usize, n: u64) -> Result<u64, PolicyFault> {
        self.vm.charge(self.vm.cost.request_grant);
        if n == 0 {
            return Ok(0);
        }
        let spare = self.vm.free_count().saturating_sub(self.vm.free_target());
        if n > spare {
            // Rejected: the executor checks the return code and lets the
            // policy handle the shortage — it is never hung waiting.
            self.gfm.rejections += 1;
            return Ok(0);
        }
        let frames = self.vm.take_free_frames(n)?;
        let free_q = self.containers[cidx].free_q;
        for f in frames {
            self.vm.frames.enqueue_tail(free_q, f)?;
        }
        self.containers[cidx].allocated += n;
        self.containers[cidx].stats.requested += n;
        self.gfm.total_specific += n;
        self.gfm.grants += 1;
        self.balance();
        Ok(n)
    }

    /// The `Release` command: returns one page to the global pool.
    pub(crate) fn gfm_release(&mut self, cidx: usize, page: FrameId) -> Result<(), PolicyFault> {
        self.vm.charge(self.vm.cost.request_grant);
        {
            let frame = self.vm.frames.frame(page)?;
            if frame.mod_bit {
                return Err(PolicyFault::DirtyFree);
            }
        }
        if self.vm.frames.frame(page)?.owner.is_some() {
            self.vm.evict_frame(page)?;
        }
        self.vm.return_frame(page)?;
        self.containers[cidx].allocated = self.containers[cidx].allocated.saturating_sub(1);
        self.containers[cidx].stats.released += 1;
        self.gfm.total_specific = self.gfm.total_specific.saturating_sub(1);
        Ok(())
    }

    /// The `Flush` command: hands a dirty page to the manager's flush
    /// machinery and returns a clean frame in exchange, so the executor
    /// never waits for the device (paper §4.3.1, I/O handling).
    ///
    /// Clean pages are exchanged for themselves (no device write).
    pub(crate) fn flush_exchange(
        &mut self,
        cidx: usize,
        page: FrameId,
    ) -> Result<FrameId, PolicyFault> {
        if !self.vm.frames.frame(page)?.mod_bit {
            return Ok(page);
        }
        if self.vm.frames.queue_of(page)?.is_some() {
            self.vm.frames.remove(page)?;
        }
        // The dirty frame migrates to the global pool (it reappears on the
        // global free queue when its write completes)…
        self.vm.start_flush(page)?;
        self.containers[cidx].allocated -= 1;
        self.gfm.total_specific -= 1;
        // …and the container receives a clean frame now. `take_free_frames`
        // waits on in-flight flushes if the pool is momentarily empty, so
        // this cannot deadlock.
        let replacement = self
            .vm
            .take_free_frames(1)?
            .pop()
            .expect("take_free_frames(1) yields one frame");
        self.containers[cidx].allocated += 1;
        self.containers[cidx].stats.flushes += 1;
        self.gfm.total_specific += 1;
        self.vm.charge(self.vm.cost.request_grant);
        Ok(replacement)
    }

    /// The `Migrate` extension: moves one free frame from `cidx`'s free
    /// queue to the container with key `target` (paper §6, future work).
    pub(crate) fn migrate_frame(&mut self, cidx: usize, target: i64) -> Result<(), PolicyFault> {
        let tidx = usize::try_from(target).map_err(|_| PolicyFault::BadMigrateTarget(target))?;
        if tidx >= self.containers.len() || self.containers[tidx].terminated || tidx == cidx {
            return Err(PolicyFault::BadMigrateTarget(target));
        }
        let src_free = self.containers[cidx].free_q;
        let frame = self
            .vm
            .frames
            .dequeue_head(src_free)?
            .ok_or(PolicyFault::EmptyPageSlot {
                index: 0,
                cc: usize::MAX,
            })?;
        let dst_free = self.containers[tidx].free_q;
        self.vm.frames.enqueue_tail(dst_free, frame)?;
        self.vm.charge(self.vm.cost.queue_op * 2);
        self.containers[cidx].allocated -= 1;
        self.containers[tidx].allocated += 1;
        Ok(())
    }

    /// Balance: if specific applications collectively exceed
    /// `partition_burst`, reclaim the excess from containers holding more
    /// than their `minFrame` (paper §4.3.1, balance + deallocation).
    pub fn balance(&mut self) {
        if self.gfm.total_specific > self.gfm.partition_burst {
            let excess = self.gfm.total_specific - self.gfm.partition_burst;
            self.reclaim_specific(excess);
        }
    }

    /// Reclaims up to `want` frames from specific applications: normal
    /// (FAFR `ReclaimFrame` events) first, then forced. Returns the number
    /// actually reclaimed.
    pub(crate) fn reclaim_specific(&mut self, want: u64) -> u64 {
        if want == 0 {
            return 0;
        }
        let mut got = self.normal_reclaim(want);
        if got < want {
            got += self.forced_reclaim(want - got);
        }
        got
    }

    /// FAFR order: container indices sorted by creation sequence, skipping
    /// terminated containers and those at or below `minFrame`.
    fn fafr_candidates(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.containers.len())
            .filter(|&i| !self.containers[i].terminated && self.containers[i].surplus() > 0)
            .collect();
        idx.sort_by_key(|&i| self.containers[i].created_seq);
        idx
    }

    /// Normal reclamation: run `ReclaimFrame` events, letting applications
    /// decide which pages are least important.
    fn normal_reclaim(&mut self, want: u64) -> u64 {
        let mut got = 0u64;
        for i in self.fafr_candidates() {
            if got >= want {
                break;
            }
            let ask = (want - got).min(self.containers[i].surplus());
            if ask == 0 {
                continue;
            }
            let before = self.containers[i].allocated;
            self.containers[i].reclaim_target = ask;
            self.containers[i].exec_started = Some(self.vm.now());
            self.vm.charge(self.vm.cost.executor_invoke);
            let mut fuel = self.limits.fuel;
            let outcome = self.run_event(i, EVENT_RECLAIM_FRAME, 0, &mut fuel);
            self.containers[i].reclaim_target = 0;
            self.containers[i].exec_started = None;
            match outcome {
                Ok(_) => {
                    let released = before.saturating_sub(self.containers[i].allocated);
                    got += released;
                    self.gfm.normal_reclaims += released;
                }
                Err(fault) => {
                    // A faulting ReclaimFrame policy terminates the app;
                    // its frames all come back.
                    let reason = fault.to_string();
                    let _ = self.kill(i, &reason);
                    got += before;
                }
            }
        }
        got
    }

    /// Forced reclamation: take frames directly off container queues, free
    /// queue first, flushing dirty pages (they are "linked to a VM object
    /// and flushed to disk later").
    fn forced_reclaim(&mut self, want: u64) -> u64 {
        let mut got = 0u64;
        for i in self.fafr_candidates() {
            if got >= want {
                break;
            }
            let take = (want - got).min(self.containers[i].surplus());
            got += self.force_take(i, take);
        }
        got
    }

    /// Takes up to `take` frames from container `i`. Returns the number
    /// taken.
    pub(crate) fn force_take(&mut self, i: usize, take: u64) -> u64 {
        let mut taken = 0u64;
        let queues = self.containers[i].queues.clone();
        'outer: for q in queues {
            while taken < take {
                let Ok(Some(f)) = self.vm.frames.dequeue_head(q) else {
                    break;
                };
                let dirty = self.vm.frames.frame(f).map(|fr| fr.mod_bit).unwrap_or(false);
                let ok = if dirty {
                    self.vm.start_flush(f).is_ok()
                } else {
                    self.vm.evict_frame(f).is_ok() && self.vm.return_frame(f).is_ok()
                };
                if ok {
                    taken += 1;
                } else {
                    break 'outer;
                }
            }
            if taken >= take {
                break;
            }
        }
        // Frames parked in Page operand slots sit on no queue; sweep them
        // too so a terminated or deallocated container cannot leak.
        if taken < take {
            for slot in 0..self.containers[i].operands.len() {
                if taken >= take {
                    break;
                }
                let crate::operand::OperandSlot::Page(Some(f)) = self.containers[i].operands[slot]
                else {
                    continue;
                };
                let parked = self
                    .vm
                    .frames
                    .queue_of(f)
                    .ok()
                    .is_some_and(|q| q.is_none());
                if !parked {
                    continue;
                }
                let dirty = self.vm.frames.frame(f).map(|fr| fr.mod_bit).unwrap_or(false);
                let ok = if dirty {
                    self.vm.start_flush(f).is_ok()
                } else {
                    self.vm.evict_frame(f).is_ok() && self.vm.return_frame(f).is_ok()
                };
                if ok {
                    self.containers[i].operands[slot] = crate::operand::OperandSlot::Page(None);
                    taken += 1;
                }
            }
        }
        self.containers[i].allocated -= taken.min(self.containers[i].allocated);
        self.containers[i].stats.released += taken;
        self.gfm.total_specific -= taken.min(self.gfm.total_specific);
        self.gfm.forced_reclaims += taken;
        taken
    }

    /// Reclaims *all* of a container's frames (termination path).
    pub(crate) fn reclaim_all_frames(&mut self, i: usize) -> u64 {
        let all = self.containers[i].allocated;
        // Temporarily treat everything as surplus.
        let saved_min = self.containers[i].min_frames;
        self.containers[i].min_frames = 0;
        let taken = self.force_take(i, all);
        self.containers[i].min_frames = saved_min;
        taken
    }
}

//! The container: HiPEC's per-region kernel object.
//!
//! One container is mounted under a VM object when `vm_map_hipec` or
//! `vm_allocate_hipec` is invoked (paper §4.1). It records the installed
//! program, the 256-entry operand array, the private frame queues allocated
//! by the global frame manager, and the execution timestamp the security
//! checker inspects.

use hipec_sim::{LatencyHistogram, SimDuration, SimTime};
use hipec_vm::{Kernel, ObjectId, QueueId, TaskId};

use crate::command::OpCode;
use crate::operand::{KernelVar, OperandDecl, OperandSlot};
use crate::program::PolicyProgram;

/// Per-container statistics the experiments read back.
#[derive(Debug, Clone, Copy, Default)]
pub struct ContainerStats {
    /// Policy-resolved page faults.
    pub faults: u64,
    /// Commands interpreted.
    pub commands: u64,
    /// Event invocations (including `Activate`).
    pub events: u64,
    /// Frames obtained via `Request`.
    pub requested: u64,
    /// Frames given back via `Release` or reclamation.
    pub released: u64,
    /// `Flush` exchanges performed.
    pub flushes: u64,
    /// Device faults surfaced to this container (abandoned write-backs
    /// whose data was lost after the retry budget ran out).
    pub device_faults: u64,
}

/// Per-opcode execution profile: how many times each HiPEC command ran and
/// how much virtual time its interpretation cost (fetch/decode plus the
/// command's own charges, I/O wait included).
///
/// Counts cover every decoded command; time is attributed when a command
/// finishes, so a command that ends its event in a policy fault is counted
/// but its partial cost is not attributed. `Activate` is attributed its
/// whole nested event (whose commands are also attributed individually), so
/// summed attribution can exceed wall-clock time under nesting. Reading the
/// profile never charges the clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpProfile {
    counts: [u64; OpCode::ALL.len()],
    time_ns: [u64; OpCode::ALL.len()],
}

impl OpProfile {
    /// Bumps the execution count of `op` (recorded at decode).
    pub fn bump(&mut self, op: OpCode) {
        self.counts[op as usize] += 1;
    }

    /// Attributes `spent` virtual time to `op` (recorded at completion).
    pub fn attribute(&mut self, op: OpCode, spent: SimDuration) {
        self.time_ns[op as usize] = self.time_ns[op as usize].saturating_add(spent.as_ns());
    }

    /// Times `op` was decoded.
    pub fn count(&self, op: OpCode) -> u64 {
        self.counts[op as usize]
    }

    /// Virtual time attributed to completed runs of `op`.
    pub fn time(&self, op: OpCode) -> SimDuration {
        SimDuration::from_ns(self.time_ns[op as usize])
    }

    /// Total commands decoded across all opcodes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// True if no command was ever decoded.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Every opcode with activity, as `(opcode, count, time)`.
    pub fn nonzero(&self) -> impl Iterator<Item = (OpCode, u64, SimDuration)> + '_ {
        OpCode::ALL.iter().filter_map(move |&op| {
            let (c, t) = (self.count(op), self.time(op));
            (c != 0 || !t.is_zero()).then_some((op, c, t))
        })
    }

    /// Element-wise difference against an earlier snapshot (saturating).
    pub fn diff(&self, earlier: &OpProfile) -> OpProfile {
        let mut out = OpProfile::default();
        for i in 0..OpCode::ALL.len() {
            out.counts[i] = self.counts[i].saturating_sub(earlier.counts[i]);
            out.time_ns[i] = self.time_ns[i].saturating_sub(earlier.time_ns[i]);
        }
        out
    }
}

/// A HiPEC container.
#[derive(Debug, Clone)]
pub struct Container {
    /// This container's key (index in the HiPEC kernel's container list).
    pub key: u32,
    /// The VM object under which the container is mounted.
    pub object: ObjectId,
    /// The owning task.
    pub task: TaskId,
    /// The installed (validated) policy program.
    pub program: PolicyProgram,
    /// The operand array.
    pub operands: Vec<OperandSlot>,
    /// The container's private free queue.
    pub free_q: QueueId,
    /// Every queue the container owns (free queue included), for
    /// reclamation sweeps.
    pub queues: Vec<QueueId>,
    /// The administratively configured minimum allocation (`minFrame`).
    pub min_frames: u64,
    /// Frames currently allocated to this container.
    pub allocated: u64,
    /// Set while the executor is running this container's policy; the
    /// security checker compares it against the timeout period.
    pub exec_started: Option<SimTime>,
    /// Set when a policy exhausts its fuel: the executor is considered
    /// stuck until the checker terminates the application.
    pub runaway: bool,
    /// Set when the application has been terminated.
    pub terminated: bool,
    /// Creation sequence for FAFR (first-allocated, first-reclaimed).
    pub created_seq: u64,
    /// The weighted share class this container's tenant installs under
    /// (admission control; see [`crate::admission`]). Legacy entry points
    /// install as [`crate::admission::ShareClass::Standard`].
    pub share: crate::admission::ShareClass,
    /// Frames the global frame manager currently wants back (visible to the
    /// policy as [`KernelVar::ReclaimTarget`] during `ReclaimFrame`).
    pub reclaim_target: u64,
    /// Statistics.
    pub stats: ContainerStats,
    /// Per-opcode command counts and virtual-time attribution.
    pub op_profile: OpProfile,
    /// Fault-service latency distribution: `access` entry to frame-ready,
    /// per policy-resolved fault. Storage is unconditional; recording is
    /// behind the `metrics` feature.
    pub lat_fault: LatencyHistogram,
    /// `run_event` duration distribution (one sample per top-level policy
    /// event, nested `Activate` events included in their parent's span).
    pub lat_event: LatencyHistogram,
    /// Device faults surfaced asynchronously (abandoned write-backs), not
    /// yet drained by `HipecKernel::take_surfaced_faults`.
    pub pending_faults: Vec<crate::error::PolicyFault>,
    /// Health state machine driving quarantine and fallback.
    pub health: crate::health::ContainerHealth,
    /// `minFrame` frames still owed from a ramped restore: admitted in
    /// tranches on clean checker intervals instead of one post-restore
    /// burst (see `HealthPolicy::restore_tranche`).
    pub restore_pending: u64,
    /// The program lowered to native step chains at install time (see
    /// [`crate::jit`]); shared so event dispatch never clones the chains.
    #[cfg(feature = "jit")]
    pub compiled: Option<std::sync::Arc<crate::jit::CompiledPolicy>>,
}

impl Container {
    /// Builds a container for `program`, creating its declared queues in the
    /// kernel's frame table and initializing the operand array.
    pub fn new(
        key: u32,
        object: ObjectId,
        task: TaskId,
        program: PolicyProgram,
        min_frames: u64,
        created_seq: u64,
        kernel: &mut Kernel,
    ) -> Self {
        let free_q = kernel.frames.new_queue(false);
        let mut queues = vec![free_q];
        let operands = program
            .decls
            .iter()
            .map(|d| match *d {
                OperandDecl::Int(v) => OperandSlot::Int(v),
                OperandDecl::Bool(b) => OperandSlot::Bool(b),
                OperandDecl::Page => OperandSlot::Page(None),
                OperandDecl::FreeQueue => OperandSlot::Queue(free_q),
                OperandDecl::Queue { recency } => {
                    let q = kernel.frames.new_queue(recency);
                    queues.push(q);
                    OperandSlot::Queue(q)
                }
                OperandDecl::Kernel(v) => OperandSlot::Kernel(v),
            })
            .collect();
        // Lower the program to native step chains while it is installed —
        // the one-time cost the JIT design trades for match-free dispatch
        // on every subsequent event.
        #[cfg(feature = "jit")]
        let compiled = Some(crate::jit::compile_policy(&program));
        Container {
            key,
            object,
            task,
            program,
            operands,
            free_q,
            queues,
            min_frames,
            allocated: 0,
            exec_started: None,
            runaway: false,
            terminated: false,
            created_seq,
            share: crate::admission::ShareClass::default(),
            reclaim_target: 0,
            stats: ContainerStats::default(),
            op_profile: OpProfile::default(),
            lat_fault: LatencyHistogram::EMPTY,
            lat_event: LatencyHistogram::EMPTY,
            pending_faults: Vec::new(),
            health: crate::health::ContainerHealth::default(),
            restore_pending: 0,
            #[cfg(feature = "jit")]
            compiled,
        }
    }

    /// Resolves a kernel variable for this container.
    pub fn kernel_var(&self, var: KernelVar, kernel: &Kernel) -> i64 {
        match var {
            KernelVar::FreeCount => kernel.frames.queue_len(self.free_q).unwrap_or(0) as i64,
            KernelVar::ActiveCount => self.nth_queue_len(1, kernel),
            KernelVar::InactiveCount => self.nth_queue_len(2, kernel),
            KernelVar::AllocatedCount => self.allocated as i64,
            KernelVar::MinFrames => self.min_frames as i64,
            KernelVar::GlobalFreeCount => kernel.free_count() as i64,
            KernelVar::ReclaimTarget => self.reclaim_target as i64,
        }
    }

    /// Length of the container's `n`-th queue (0 = free queue), or 0.
    fn nth_queue_len(&self, n: usize, kernel: &Kernel) -> i64 {
        self.queues
            .get(n)
            .and_then(|q| kernel.frames.queue_len(*q).ok())
            .unwrap_or(0) as i64
    }

    /// Frames the container holds beyond its guaranteed minimum.
    pub fn surplus(&self) -> u64 {
        self.allocated.saturating_sub(self.min_frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipec_vm::KernelParams;

    fn kernel() -> Kernel {
        let mut p = KernelParams::paper_64mb();
        p.total_frames = 64;
        p.wired_frames = 4;
        Kernel::new(p)
    }

    fn program() -> PolicyProgram {
        let mut p = PolicyProgram::new();
        p.declare(OperandDecl::FreeQueue);
        p.declare(OperandDecl::Queue { recency: true }); // active
        p.declare(OperandDecl::Queue { recency: false }); // inactive
        p.declare(OperandDecl::Int(5));
        p.declare(OperandDecl::Bool(false));
        p.declare(OperandDecl::Page);
        p.declare(OperandDecl::Kernel(KernelVar::FreeCount));
        p
    }

    #[test]
    fn operand_array_initialization() {
        let mut k = kernel();
        let obj = k
            .create_object(16, hipec_vm::Backing::Anonymous)
            .expect("object");
        let task = k.create_task();
        let c = Container::new(0, obj, task, program(), 8, 0, &mut k);
        assert_eq!(c.operands.len(), 7);
        assert_eq!(c.operands[0], OperandSlot::Queue(c.free_q));
        assert!(matches!(c.operands[1], OperandSlot::Queue(_)));
        assert_eq!(c.operands[3], OperandSlot::Int(5));
        assert_eq!(c.operands[4], OperandSlot::Bool(false));
        assert_eq!(c.operands[5], OperandSlot::Page(None));
        assert_eq!(c.queues.len(), 3, "free + two declared queues");
    }

    #[test]
    fn kernel_vars_resolve() {
        let mut k = kernel();
        let obj = k
            .create_object(16, hipec_vm::Backing::Anonymous)
            .expect("object");
        let task = k.create_task();
        let mut c = Container::new(0, obj, task, program(), 8, 0, &mut k);
        assert_eq!(c.kernel_var(KernelVar::FreeCount, &k), 0);
        assert_eq!(c.kernel_var(KernelVar::MinFrames, &k), 8);
        assert_eq!(c.kernel_var(KernelVar::AllocatedCount, &k), 0);
        assert_eq!(c.kernel_var(KernelVar::GlobalFreeCount, &k), 60);
        // Put two frames on the container free queue.
        let frames = k.take_free_frames(2).expect("frames");
        for f in frames {
            k.frames.enqueue_tail(c.free_q, f).expect("enqueue");
        }
        c.allocated = 2;
        assert_eq!(c.kernel_var(KernelVar::FreeCount, &k), 2);
        assert_eq!(c.kernel_var(KernelVar::AllocatedCount, &k), 2);
        assert_eq!(c.kernel_var(KernelVar::GlobalFreeCount, &k), 58);
    }

    #[test]
    fn surplus_accounting() {
        let mut k = kernel();
        let obj = k
            .create_object(16, hipec_vm::Backing::Anonymous)
            .expect("object");
        let task = k.create_task();
        let mut c = Container::new(0, obj, task, program(), 8, 0, &mut k);
        c.allocated = 6;
        assert_eq!(c.surplus(), 0);
        c.allocated = 11;
        assert_eq!(c.surplus(), 3);
    }
}

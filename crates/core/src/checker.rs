//! The in-kernel security checker (paper §4.3.3).
//!
//! Two duties:
//!
//! 1. **Static validation** ([`validate_program`]): commands with an invalid
//!    format — undefined opcodes, out-of-range operand indices, wrong
//!    operand types, bad flags, wild jumps — are rejected before the
//!    container is mounted.
//! 2. **Timeout detection** ([`SecurityChecker`]): a kernel thread wakes
//!    periodically, compares each container's execution timestamp against
//!    the *TimeOut* period and terminates overrunning applications. The
//!    sleep interval adapts: halved when a timeout is detected, doubled
//!    otherwise, clamped to [250 ms, 8 s] — the paper's WakeUp equation.

use hipec_sim::{SimDuration, SimTime};

use crate::command::{ArithOp, CompOp, JumpMode, LogicOp, OpCode, PageBit, QueueEnd, NO_OPERAND};
use crate::kernel::HipecKernel;
use crate::operand::OperandDecl;
use crate::program::PolicyProgram;

/// The adaptive-wakeup timeout checker.
#[derive(Debug, Clone)]
pub struct SecurityChecker {
    /// Current sleep interval (the paper's *WakeUp*).
    pub interval: SimDuration,
    /// Next wakeup instant.
    pub next_wakeup: SimTime,
    /// The *TimeOut* period (set by a privileged user in the paper).
    pub timeout: SimDuration,
    /// Lower clamp of the interval (250 ms).
    pub min_interval: SimDuration,
    /// Upper clamp of the interval (8 s).
    pub max_interval: SimDuration,
    /// When false, the interval never adapts (for the ablation experiment).
    pub adaptive: bool,
    /// Wakeups performed.
    pub wakeups: u64,
    /// Applications terminated for timeout.
    pub kills: u64,
}

impl SecurityChecker {
    /// Creates a checker with the paper's clamps, a 1 s initial interval
    /// and a 100 ms timeout period.
    pub fn new() -> Self {
        let interval = SimDuration::from_secs(1);
        SecurityChecker {
            interval,
            next_wakeup: SimTime::ZERO + interval,
            timeout: SimDuration::from_ms(100),
            min_interval: SimDuration::from_ms(250),
            max_interval: SimDuration::from_secs(8),
            adaptive: true,
            wakeups: 0,
            kills: 0,
        }
    }

    /// Applies the paper's WakeUp adaptation after one wakeup.
    ///
    /// The adapted interval is clamped into `[min_interval, max_interval]`
    /// from *both* sides: `halved_with_floor` / `doubled_with_ceil` each
    /// bound only the direction they move in, so an interval that starts
    /// out of band (a privileged reconfiguration, a test) would otherwise
    /// stay out of band — doubling from below 125 ms lands under the
    /// 250 ms floor, halving from above 16 s stays over the 8 s ceiling.
    pub fn adapt(&mut self, timeout_detected: bool) {
        if !self.adaptive {
            return;
        }
        let adapted = if timeout_detected {
            self.interval.halved_with_floor(self.min_interval)
        } else {
            self.interval.doubled_with_ceil(self.max_interval)
        };
        self.interval = adapted.clamp(self.min_interval, self.max_interval);
    }
}

impl Default for SecurityChecker {
    fn default() -> Self {
        SecurityChecker::new()
    }
}

impl HipecKernel {
    /// One checker wakeup: scan containers for timed-out executions, kill
    /// offenders, adapt the interval, schedule the next wakeup.
    pub(crate) fn checker_wakeup(&mut self) {
        let n = self.containers.len() as u64;
        self.vm.charge(
            self.vm.cost.checker_wakeup + self.vm.cost.checker_per_container.saturating_mul(n),
        );
        self.checker.wakeups += 1;
        let now = self.vm.now();
        let timeout = self.checker.timeout;
        let mut detected = false;
        for i in 0..self.containers.len() {
            let c = &self.containers[i];
            if c.terminated {
                continue;
            }
            if let Some(start) = c.exec_started {
                if now.since(start) > timeout {
                    if self.containers[i].health.state == crate::health::HealthState::Healthy {
                        let _ = self.kill(i, "policy execution timeout");
                        self.checker.kills += 1;
                    } else {
                        // A container already degraded by environmental
                        // faults gets quarantined into default management
                        // instead of killed: the timeout is likelier the
                        // device's fault than the policy's.
                        self.quarantine(i);
                    }
                    detected = true;
                    self.emit(crate::trace::TraceEvent::CheckerTimeout {
                        container: self.containers[i].key,
                    });
                }
            }
        }
        // The wakeup tick is also the probation clock of the health state
        // machine (strike decay, quarantine probation, restore attempts)
        // and the arrival window of per-tenant admission control.
        self.health_tick();
        self.admission.roll_window();
        self.emit(crate::trace::TraceEvent::CheckerWake { detected });
        self.checker.adapt(detected);
        // The adapted interval is the scheduling decision this wakeup made;
        // its distribution shows how often the checker actually runs.
        #[cfg(feature = "metrics")]
        self.obs.checker_interval.record(self.checker.interval);
        // Each wakeup (including ones replayed after a long idle stretch)
        // reschedules from its own firing time, so the checker's CPU cost
        // is charged for every tick that would have occurred.
        self.checker.next_wakeup += self.checker.interval;
    }
}

/// Statically validates a policy program (syntax, operand types, control
/// flow). Returns the full list of problems on failure.
pub fn validate_program(program: &PolicyProgram) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    if program.decls.len() > 255 {
        errors.push(format!(
            "operand array has {} entries; at most 255 allowed",
            program.decls.len()
        ));
    }
    if program.events.len() < 2 {
        errors
            .push("programs must define the PageFault (0) and ReclaimFrame (1) events".to_string());
    }

    let decl = |idx: u8, what: &str, ev: usize, cc: usize| -> Result<OperandDecl, String> {
        program.decls.get(idx as usize).copied().ok_or(format!(
            "event {ev} cc {cc}: {what} operand index {idx} out of range"
        ))
    };

    for (ev, seg) in program.events.iter().enumerate() {
        if seg.is_empty() {
            errors.push(format!("event {ev} is empty"));
            continue;
        }
        for (cc, cmd) in seg.iter().enumerate() {
            let Some(op) = cmd.opcode() else {
                errors.push(format!(
                    "event {ev} cc {cc}: undefined opcode 0x{:02x}",
                    cmd.op_byte()
                ));
                continue;
            };
            let need = |idx: u8, what: &str, check: fn(OperandDecl) -> bool| -> Option<String> {
                match decl(idx, what, ev, cc) {
                    Ok(d) if check(d) => None,
                    Ok(_) => Some(format!("event {ev} cc {cc}: operand {idx} is not a {what}")),
                    Err(e) => Some(e),
                }
            };
            match op {
                OpCode::Return => {
                    if cmd.a() != NO_OPERAND {
                        errors.extend(need(cmd.a(), "returnable value", |d| !d.is_queue()));
                    }
                }
                OpCode::Arith => match ArithOp::from_u8(cmd.c()) {
                    None => errors.push(format!("event {ev} cc {cc}: bad arith flag")),
                    Some(aop) => {
                        errors.extend(need(cmd.a(), "writable int", |d| {
                            d.is_int() && d.writable()
                        }));
                        if !matches!(aop, ArithOp::Inc | ArithOp::Dec) {
                            errors.extend(need(cmd.b(), "int", OperandDecl::is_int));
                        }
                    }
                },
                OpCode::Comp => {
                    if CompOp::from_u8(cmd.c()).is_none() {
                        errors.push(format!("event {ev} cc {cc}: bad comparison flag"));
                    }
                    errors.extend(need(cmd.a(), "int", OperandDecl::is_int));
                    errors.extend(need(cmd.b(), "int", OperandDecl::is_int));
                }
                OpCode::Logic => match LogicOp::from_u8(cmd.c()) {
                    None => errors.push(format!("event {ev} cc {cc}: bad logic flag")),
                    Some(LogicOp::And | LogicOp::Or | LogicOp::Xor) => {
                        errors.extend(need(cmd.a(), "bool", OperandDecl::is_bool));
                        errors.extend(need(cmd.b(), "bool", OperandDecl::is_bool));
                    }
                    Some(_) => errors.extend(need(cmd.a(), "bool", OperandDecl::is_bool)),
                },
                OpCode::EmptyQ => errors.extend(need(cmd.a(), "queue", OperandDecl::is_queue)),
                OpCode::InQ => {
                    errors.extend(need(cmd.a(), "queue", OperandDecl::is_queue));
                    errors.extend(need(cmd.b(), "page", OperandDecl::is_page));
                }
                OpCode::Jump => {
                    if JumpMode::from_u8(cmd.a()).is_none() {
                        errors.push(format!("event {ev} cc {cc}: bad jump mode"));
                    }
                    if cmd.jump_target() as usize >= seg.len() {
                        errors.push(format!(
                            "event {ev} cc {cc}: jump target {} outside segment of {}",
                            cmd.jump_target(),
                            seg.len()
                        ));
                    }
                }
                OpCode::DeQueue => {
                    errors.extend(need(cmd.a(), "page", OperandDecl::is_page));
                    errors.extend(need(cmd.b(), "queue", OperandDecl::is_queue));
                    if QueueEnd::from_u8(cmd.c()).is_none() {
                        errors.push(format!("event {ev} cc {cc}: bad queue-end flag"));
                    }
                }
                OpCode::EnQueue => {
                    errors.extend(need(cmd.a(), "page", OperandDecl::is_page));
                    errors.extend(need(cmd.b(), "queue", OperandDecl::is_queue));
                    if QueueEnd::from_u8(cmd.c()).is_none() {
                        errors.push(format!("event {ev} cc {cc}: bad queue-end flag"));
                    }
                }
                OpCode::Request => {
                    errors.extend(need(cmd.a(), "int", OperandDecl::is_int));
                    if cmd.b() != NO_OPERAND {
                        errors.extend(need(cmd.b(), "writable int", |d| {
                            d.is_int() && d.writable()
                        }));
                    }
                }
                OpCode::Release | OpCode::Flush | OpCode::Ref | OpCode::Mod => {
                    errors.extend(need(cmd.a(), "page", OperandDecl::is_page))
                }
                OpCode::Set => {
                    errors.extend(need(cmd.a(), "page", OperandDecl::is_page));
                    if PageBit::from_u8(cmd.b()).is_none() {
                        errors.push(format!("event {ev} cc {cc}: bad page-bit selector"));
                    }
                    if cmd.c() > 1 {
                        errors.push(format!("event {ev} cc {cc}: bad set/clear flag"));
                    }
                }
                OpCode::Find => {
                    errors.extend(need(cmd.a(), "page", OperandDecl::is_page));
                    errors.extend(need(cmd.b(), "int", OperandDecl::is_int));
                }
                OpCode::Activate => {
                    if (cmd.a() as usize) >= program.events.len() {
                        errors.push(format!(
                            "event {ev} cc {cc}: activate of undefined event {}",
                            cmd.a()
                        ));
                    }
                }
                OpCode::Fifo => {
                    errors.extend(need(cmd.a(), "queue", OperandDecl::is_queue));
                    if cmd.b() != NO_OPERAND {
                        errors.extend(need(cmd.b(), "page", OperandDecl::is_page));
                    }
                }
                OpCode::Lru | OpCode::Mru => {
                    // LRU/MRU rely on kernel-maintained recency ordering.
                    match decl(cmd.a(), "queue", ev, cc) {
                        Ok(OperandDecl::Queue { recency: true }) => {}
                        Ok(OperandDecl::Queue { recency: false }) | Ok(OperandDecl::FreeQueue) => {
                            errors.push(format!(
                                "event {ev} cc {cc}: {} requires a recency-ordered queue",
                                op.mnemonic()
                            ))
                        }
                        Ok(_) => errors.push(format!(
                            "event {ev} cc {cc}: operand {} is not a queue",
                            cmd.a()
                        )),
                        Err(e) => errors.push(e),
                    }
                    if cmd.b() != NO_OPERAND {
                        errors.extend(need(cmd.b(), "page", OperandDecl::is_page));
                    }
                }
                OpCode::Migrate => errors.extend(need(cmd.a(), "int", OperandDecl::is_int)),
            }
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{build, RawCmd};
    use crate::operand::KernelVar;

    fn minimal_valid() -> PolicyProgram {
        let mut p = PolicyProgram::new();
        let free_q = p.declare(OperandDecl::FreeQueue);
        let page = p.declare(OperandDecl::Page);
        p.add_event(
            "PageFault",
            vec![
                build::dequeue(page, free_q, QueueEnd::Head),
                build::ret(page),
            ],
        );
        p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
        p
    }

    #[test]
    fn valid_program_passes() {
        assert!(validate_program(&minimal_valid()).is_ok());
    }

    #[test]
    fn missing_mandatory_events_fail() {
        let mut p = PolicyProgram::new();
        let q = p.declare(OperandDecl::FreeQueue);
        let page = p.declare(OperandDecl::Page);
        p.add_event(
            "PageFault",
            vec![build::dequeue(page, q, QueueEnd::Head), build::ret(page)],
        );
        let errs = validate_program(&p).expect_err("must fail");
        assert!(errs.iter().any(|e| e.contains("ReclaimFrame")));
    }

    #[test]
    fn undefined_opcode_is_reported() {
        let mut p = minimal_valid();
        p.add_event(
            "bad",
            vec![RawCmd::new(0xEE, 0, 0, 0), build::ret(NO_OPERAND)],
        );
        let errs = validate_program(&p).expect_err("must fail");
        assert!(errs.iter().any(|e| e.contains("undefined opcode")));
    }

    #[test]
    fn operand_type_confusion_is_reported() {
        let mut p = PolicyProgram::new();
        let q = p.declare(OperandDecl::FreeQueue);
        let page = p.declare(OperandDecl::Page);
        // Comp of a queue against a page: two type errors.
        p.add_event(
            "PageFault",
            vec![build::comp(q, page, CompOp::Gt), build::ret(page)],
        );
        p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
        let errs = validate_program(&p).expect_err("must fail");
        assert!(errs.len() >= 2);
        assert!(errs
            .iter()
            .all(|e| e.contains("not a int") || e.contains("int")));
    }

    #[test]
    fn wild_jump_is_reported() {
        let mut p = minimal_valid();
        p.add_event(
            "wild",
            vec![build::jump(JumpMode::Always, 400), build::ret(NO_OPERAND)],
        );
        let errs = validate_program(&p).expect_err("must fail");
        assert!(errs.iter().any(|e| e.contains("jump target 400")));
    }

    #[test]
    fn writes_to_kernel_vars_are_rejected() {
        let mut p = minimal_valid();
        let kv = p.declare(OperandDecl::Kernel(KernelVar::FreeCount));
        let one = p.declare(OperandDecl::Int(1));
        p.add_event(
            "bad",
            vec![build::arith(kv, one, ArithOp::Add), build::ret(NO_OPERAND)],
        );
        let errs = validate_program(&p).expect_err("must fail");
        assert!(errs.iter().any(|e| e.contains("writable int")));
    }

    #[test]
    fn lru_on_non_recency_queue_is_rejected() {
        let mut p = minimal_valid();
        let plain = p.declare(OperandDecl::Queue { recency: false });
        p.add_event(
            "bad",
            vec![build::lru(plain, NO_OPERAND), build::ret(NO_OPERAND)],
        );
        let errs = validate_program(&p).expect_err("must fail");
        assert!(errs.iter().any(|e| e.contains("recency-ordered")));
    }

    #[test]
    fn activate_of_missing_event_is_rejected() {
        let mut p = minimal_valid();
        p.add_event("bad", vec![build::activate(99), build::ret(NO_OPERAND)]);
        let errs = validate_program(&p).expect_err("must fail");
        assert!(errs.iter().any(|e| e.contains("undefined event 99")));
    }

    #[test]
    fn empty_event_is_rejected() {
        let mut p = minimal_valid();
        p.add_event("empty", vec![]);
        let errs = validate_program(&p).expect_err("must fail");
        assert!(errs.iter().any(|e| e.contains("empty")));
    }

    #[test]
    fn adaptation_follows_the_wakeup_equation() {
        let mut c = SecurityChecker::new();
        c.interval = SimDuration::from_secs(1);
        c.adapt(true);
        assert_eq!(c.interval, SimDuration::from_ms(500));
        c.adapt(true);
        assert_eq!(c.interval, SimDuration::from_ms(250));
        c.adapt(true);
        assert_eq!(c.interval, SimDuration::from_ms(250), "clamped at 250 ms");
        for _ in 0..10 {
            c.adapt(false);
        }
        assert_eq!(c.interval, SimDuration::from_secs(8), "clamped at 8 s");
        // Non-adaptive mode holds the interval.
        c.adaptive = false;
        c.adapt(true);
        assert_eq!(c.interval, SimDuration::from_secs(8));
    }
}

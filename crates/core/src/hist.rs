//! The latency-histogram engine, re-exported at the HiPEC layer.
//!
//! The engine itself lives in `hipec-sim` ([`hipec_sim::hist`]) because the
//! VM substrate's device table records into it and the dependency direction
//! runs core → vm → sim; this module is the HiPEC-facing facade the
//! attribution layer ([`crate::obs`]) and external consumers import from.
//! See the engine module for the bucket layout and the determinism
//! argument, and DESIGN.md §13 for how the kernel uses it.

pub use hipec_sim::hist::{
    LatencyHistogram, BUCKETS, GROUPS, SATURATION_NS, SUB_BITS, SUB_BUCKETS,
};

use hipec_sim::SimDuration;

/// The percentile set every latency surface reports, as
/// `(p50, p90, p99, p999)` — one place so `KernelStats` rows, bench
/// `--json` and `stats_export` can never drift apart.
pub fn quantile_set(h: &LatencyHistogram) -> (SimDuration, SimDuration, SimDuration, SimDuration) {
    (
        h.quantile(0.50),
        h.quantile(0.90),
        h.quantile(0.99),
        h.quantile(0.999),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_set_is_monotone() {
        let mut h = LatencyHistogram::new();
        for ns in [10u64, 100, 1_000, 10_000, 100_000] {
            h.record(SimDuration::from_ns(ns));
        }
        let (p50, p90, p99, p999) = quantile_set(&h);
        assert!(p50 <= p90 && p90 <= p99 && p99 <= p999);
        assert!(p999 <= h.max());
    }
}

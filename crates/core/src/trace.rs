//! Kernel-wide deterministic event tracing.
//!
//! The HiPEC kernel keeps one bounded [`EventRing`] of [`TraceEvent`]s
//! covering both layers: its own events (policy execution, frame-manager
//! commands, checker activity) and, via the [`TraceEvent::Vm`] wrapper,
//! everything the VM substrate records (fault resolution, pageout scans,
//! the flush/retry lifecycle). Immediately before each HiPEC-layer event is
//! pushed — and at the end of every kernel entry point — the VM ring is
//! drained into the master ring, so the merged trace preserves causal
//! order across layers.
//!
//! **Determinism contract.** Events are stamped with the virtual clock and
//! a monotonic sequence number; recording charges no virtual time and
//! allocates nothing in steady state. Two runs of the same seeded workload
//! therefore produce bit-for-bit identical traces, and turning tracing off
//! (at run time or compile time, via the `trace` feature) cannot change
//! any simulation outcome.

use std::fmt;

use hipec_sim::SimDuration;
use hipec_vm::{FrameId, VmEvent};

pub use hipec_vm::trace::{EventRing, TraceRecord, DEFAULT_TRACE_CAPACITY};

/// One event in the merged kernel trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// An event recorded by the VM substrate.
    Vm(VmEvent),
    /// Per-tenant admission control rejected a policy install (see
    /// [`crate::admission`]).
    AdmissionRejected {
        /// Share-class index of the rejected install (position in
        /// [`crate::admission::ShareClass::ALL`]).
        class: u8,
        /// The `minFrame` reservation the install asked for.
        asked: u64,
        /// True for the bursty-arrival throttle, false for the weighted
        /// share cap.
        throttled: bool,
    },
    /// A policy was installed (`vm_allocate_hipec` / `vm_map_hipec`).
    Install {
        /// The new container's key.
        container: u32,
        /// Its guaranteed `minFrame` allocation.
        min_frames: u64,
    },
    /// One policy event ran to completion (nested `Activate` runs are
    /// recorded separately, innermost first).
    PolicyEvent {
        /// The executing container.
        container: u32,
        /// The event index (0 = PageFault, 1 = ReclaimFrame, …).
        event: u8,
        /// Commands interpreted by this invocation (nested runs included).
        commands: u32,
        /// False if the run ended in a policy fault.
        ok: bool,
    },
    /// A policy resolved a page fault with a frame.
    PolicyFaultResolved {
        /// The resolving container.
        container: u32,
        /// The frame the policy returned.
        frame: FrameId,
        /// Virtual time from fault entry to resolution (I/O wait included).
        latency: SimDuration,
    },
    /// A container was terminated (kill or graceful deallocate).
    Terminated {
        /// The terminated container.
        container: u32,
        /// True for graceful `vm_deallocate_hipec`, false for kills.
        graceful: bool,
    },
    /// A `Request` command was serviced.
    Request {
        /// The requesting container.
        container: u32,
        /// Frames asked for.
        asked: u64,
        /// Frames granted (0 = rejected).
        granted: u64,
    },
    /// A `Release` command returned a frame to the global pool.
    Release {
        /// The releasing container.
        container: u32,
        /// The released frame.
        frame: FrameId,
    },
    /// A `Flush` exchanged a dirty page for a clean frame.
    FlushExchange {
        /// The flushing container.
        container: u32,
        /// The dirty page handed to the flush machinery.
        dirty: FrameId,
        /// The clean frame handed back.
        replacement: FrameId,
    },
    /// A `Migrate` moved a free frame between containers.
    Migrate {
        /// Source container.
        from: u32,
        /// Destination container.
        to: u32,
        /// The migrated frame.
        frame: FrameId,
    },
    /// A normal (`ReclaimFrame`-event) reclamation pass on one container.
    NormalReclaim {
        /// The container asked to give frames back.
        container: u32,
        /// Frames the manager wanted.
        asked: u64,
        /// Frames actually recovered (kill path included).
        recovered: u64,
    },
    /// Forced reclamation seized frames from one container.
    ForcedReclaim {
        /// The container frames were taken from.
        container: u32,
        /// Frames seized.
        taken: u64,
    },
    /// One frame taken by forced reclamation (or a stranded-frame sweep).
    /// Emitted per frame so offline residency audits can retire exactly the
    /// pages that left, instead of conservatively clearing the container's
    /// whole entry set on the count-only [`TraceEvent::ForcedReclaim`].
    ForcedSeize {
        /// The container the frame was taken from.
        container: u32,
        /// The seized frame.
        frame: FrameId,
    },
    /// An orphaned frame (last slot handle overwritten) was recovered.
    OrphanRecovered {
        /// The container that held the orphan.
        container: u32,
        /// The recovered frame.
        frame: FrameId,
    },
    /// The security checker woke up.
    CheckerWake {
        /// True if this wakeup detected (and killed) a timed-out policy.
        detected: bool,
    },
    /// The checker terminated a container for exceeding the timeout.
    CheckerTimeout {
        /// The killed container.
        container: u32,
    },
    /// An abandoned flush's data loss was attributed to its container as a
    /// surfaced `PolicyFault::Device`.
    DeviceFaultSurfaced {
        /// The owning container.
        container: u32,
        /// The frame whose write-back was abandoned.
        frame: FrameId,
    },
    /// Environmental fault strikes degraded a container's health.
    HealthDegraded {
        /// The degraded container.
        container: u32,
        /// Strikes outstanding at the transition.
        strikes: u64,
    },
    /// A container was quarantined: policy suspended, frames returned, its
    /// region reverted to default management (`minFrame` is preserved).
    Quarantined {
        /// The quarantined container.
        container: u32,
        /// Frames the quarantine sweep returned to the global pool.
        reclaimed: u64,
    },
    /// Probation completed: the container's policy was re-mounted and the
    /// first tranche of its `minFrame` reservation re-admitted.
    FallbackRestored {
        /// The restored container.
        container: u32,
        /// Frames re-granted to the container's free queue.
        readmitted: u64,
    },
    /// A clean interval admitted another tranche of a ramping restore's
    /// outstanding `minFrame` reservation.
    RestoreRamp {
        /// The ramping container.
        container: u32,
        /// Frames admitted by this tranche.
        admitted: u64,
        /// Frames still owed after it.
        outstanding: u64,
    },
}

impl From<VmEvent> for TraceEvent {
    fn from(e: VmEvent) -> Self {
        TraceEvent::Vm(e)
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceEvent::Vm(e) => write!(f, "vm: {e:?}"),
            TraceEvent::AdmissionRejected {
                class,
                asked,
                throttled,
            } => write!(
                f,
                "admission-rejected class={class} asked={asked} ({})",
                if throttled { "throttled" } else { "share cap" }
            ),
            TraceEvent::Install {
                container,
                min_frames,
            } => write!(f, "install c{container} min_frames={min_frames}"),
            TraceEvent::PolicyEvent {
                container,
                event,
                commands,
                ok,
            } => write!(
                f,
                "policy-event c{container} ev{event} commands={commands} {}",
                if ok { "ok" } else { "fault" }
            ),
            TraceEvent::PolicyFaultResolved {
                container,
                frame,
                latency,
            } => {
                write!(
                    f,
                    "policy-fault-resolved c{container} frame={} latency={latency}",
                    frame.0
                )
            }
            TraceEvent::Terminated {
                container,
                graceful,
            } => write!(
                f,
                "terminated c{container} ({})",
                if graceful { "dealloc" } else { "kill" }
            ),
            TraceEvent::Request {
                container,
                asked,
                granted,
            } => write!(f, "request c{container} asked={asked} granted={granted}"),
            TraceEvent::Release { container, frame } => {
                write!(f, "release c{container} frame={}", frame.0)
            }
            TraceEvent::FlushExchange {
                container,
                dirty,
                replacement,
            } => write!(
                f,
                "flush-exchange c{container} dirty={} replacement={}",
                dirty.0, replacement.0
            ),
            TraceEvent::Migrate { from, to, frame } => {
                write!(f, "migrate c{from}->c{to} frame={}", frame.0)
            }
            TraceEvent::NormalReclaim {
                container,
                asked,
                recovered,
            } => write!(
                f,
                "normal-reclaim c{container} asked={asked} recovered={recovered}"
            ),
            TraceEvent::ForcedReclaim { container, taken } => {
                write!(f, "forced-reclaim c{container} taken={taken}")
            }
            TraceEvent::ForcedSeize { container, frame } => {
                write!(f, "forced-seize c{container} frame={}", frame.0)
            }
            TraceEvent::OrphanRecovered { container, frame } => {
                write!(f, "orphan-recovered c{container} frame={}", frame.0)
            }
            TraceEvent::CheckerWake { detected } => {
                write!(
                    f,
                    "checker-wake{}",
                    if detected { " (timeout detected)" } else { "" }
                )
            }
            TraceEvent::CheckerTimeout { container } => {
                write!(f, "checker-timeout c{container}")
            }
            TraceEvent::DeviceFaultSurfaced { container, frame } => {
                write!(f, "device-fault-surfaced c{container} frame={}", frame.0)
            }
            TraceEvent::HealthDegraded { container, strikes } => {
                write!(f, "health-degraded c{container} strikes={strikes}")
            }
            TraceEvent::Quarantined {
                container,
                reclaimed,
            } => write!(f, "quarantined c{container} reclaimed={reclaimed}"),
            TraceEvent::FallbackRestored {
                container,
                readmitted,
            } => write!(f, "fallback-restored c{container} readmitted={readmitted}"),
            TraceEvent::RestoreRamp {
                container,
                admitted,
                outstanding,
            } => write!(
                f,
                "restore-ramp c{container} admitted={admitted} outstanding={outstanding}"
            ),
        }
    }
}

/// Renders the newest `n` records of a ring, one per line, oldest first —
/// the "last events leading up to a violation" block of invariant reports.
pub fn render_tail(ring: &EventRing<TraceEvent>, n: usize) -> String {
    let held = ring.len();
    let skip = held.saturating_sub(n);
    let mut out = String::new();
    for rec in ring.iter().skip(skip) {
        out.push_str(&format!("    [{:>6}] {} {}\n", rec.seq, rec.at, rec.event));
    }
    out
}

/// A consumer of merged trace records, fed as each record is pushed onto
/// the master ring (i.e. at every merge point). A kernel with a sink
/// attached therefore loses no history to ring overwrites, no matter how
/// long the run: the bounded ring remains only a tail buffer for failure
/// reports.
///
/// Sinks observe the simulation; they must never feed back into it. The
/// kernel guarantees the records a sink sees are identical across two runs
/// of the same seeded workload (the determinism contract above), so a
/// [`JsonlSink`] writing to a file yields bit-for-bit reproducible traces.
pub trait TraceSink {
    /// Consumes one record. Called in emission (sequence-number) order.
    fn record(&mut self, rec: &TraceRecord<TraceEvent>);

    /// Flushes any buffered output. Called by [`crate::HipecKernel::take_sink`];
    /// default is a no-op.
    fn flush_sink(&mut self) {}
}

/// The stable machine-readable name of an event, as used in the JSONL
/// schema's `"type"` field (`vm.*` for substrate events).
pub fn event_kind(event: &TraceEvent) -> &'static str {
    match event {
        TraceEvent::Vm(e) => match e {
            VmEvent::Fault { .. } => "vm.fault",
            VmEvent::ReadError { .. } => "vm.read_error",
            VmEvent::PageoutScan { .. } => "vm.pageout_scan",
            VmEvent::FlushStart { .. } => "vm.flush_start",
            VmEvent::FlushComplete { .. } => "vm.flush_complete",
            VmEvent::TornRetry { .. } => "vm.torn_retry",
            VmEvent::RetryRejected { .. } => "vm.retry_rejected",
            VmEvent::FlushAbandoned { .. } => "vm.flush_abandoned",
            VmEvent::PumpDeferred { .. } => "vm.pump_deferred",
            VmEvent::BreakerTrip { .. } => "vm.breaker_trip",
            VmEvent::BreakerProbe { .. } => "vm.breaker_probe",
            VmEvent::BreakerClose { .. } => "vm.breaker_close",
            VmEvent::DeviceDraining { .. } => "vm.device_draining",
            VmEvent::DeviceDrained { .. } => "vm.device_drained",
            VmEvent::DeviceDead { .. } => "vm.device_dead",
            VmEvent::ObjectMigrated { .. } => "vm.object_migrated",
        },
        TraceEvent::AdmissionRejected { .. } => "admission_rejected",
        TraceEvent::Install { .. } => "install",
        TraceEvent::PolicyEvent { .. } => "policy_event",
        TraceEvent::PolicyFaultResolved { .. } => "policy_fault_resolved",
        TraceEvent::Terminated { .. } => "terminated",
        TraceEvent::Request { .. } => "request",
        TraceEvent::Release { .. } => "release",
        TraceEvent::FlushExchange { .. } => "flush_exchange",
        TraceEvent::Migrate { .. } => "migrate",
        TraceEvent::NormalReclaim { .. } => "normal_reclaim",
        TraceEvent::ForcedReclaim { .. } => "forced_reclaim",
        TraceEvent::ForcedSeize { .. } => "forced_seize",
        TraceEvent::OrphanRecovered { .. } => "orphan_recovered",
        TraceEvent::CheckerWake { .. } => "checker_wake",
        TraceEvent::CheckerTimeout { .. } => "checker_timeout",
        TraceEvent::DeviceFaultSurfaced { .. } => "device_fault_surfaced",
        TraceEvent::HealthDegraded { .. } => "health_degraded",
        TraceEvent::Quarantined { .. } => "quarantined",
        TraceEvent::FallbackRestored { .. } => "fallback_restored",
        TraceEvent::RestoreRamp { .. } => "restore_ramp",
    }
}

/// Renders one record as a single JSONL object (no trailing newline).
///
/// The schema is stable: every line carries `seq`, `at_ns` and `type`
/// (see [`event_kind`]), followed by the event's fields in declaration
/// order. All values are integers or booleans, so the rendering needs no
/// string escaping and is byte-stable across runs.
pub fn render_jsonl(rec: &TraceRecord<TraceEvent>) -> String {
    use std::fmt::Write as _;

    let mut s = String::with_capacity(96);
    let _ = write!(
        s,
        "{{\"seq\":{},\"at_ns\":{},\"type\":\"{}\"",
        rec.seq,
        rec.at.as_ns(),
        event_kind(&rec.event)
    );
    match rec.event {
        TraceEvent::Vm(e) => match e {
            VmEvent::Fault {
                task,
                vpage,
                kind,
                write,
                latency,
            } => {
                let kind = match kind {
                    hipec_vm::AccessKind::Hit => "hit",
                    hipec_vm::AccessKind::MinorFault => "minor_fault",
                    hipec_vm::AccessKind::ZeroFill => "zero_fill",
                    hipec_vm::AccessKind::PageIn => "page_in",
                };
                let _ = write!(
                    s,
                    ",\"task\":{},\"vpage\":{vpage},\"kind\":\"{kind}\",\"write\":{write},\"latency_ns\":{}",
                    task.0,
                    latency.as_ns()
                );
            }
            VmEvent::ReadError {
                device,
                object,
                offset,
            } => {
                let _ = write!(
                    s,
                    ",\"device\":{},\"object\":{},\"offset\":{offset}",
                    device.0, object.0
                );
            }
            VmEvent::PageoutScan { freed, flushed } => {
                let _ = write!(s, ",\"freed\":{freed},\"flushed\":{flushed}");
            }
            VmEvent::FlushStart {
                device,
                frame,
                torn,
            } => {
                let _ = write!(
                    s,
                    ",\"device\":{},\"frame\":{},\"torn\":{torn}",
                    device.0, frame.0
                );
            }
            VmEvent::FlushComplete { device, frame } => {
                let _ = write!(s, ",\"device\":{},\"frame\":{}", device.0, frame.0);
            }
            VmEvent::TornRetry {
                device,
                frame,
                attempt,
            }
            | VmEvent::RetryRejected {
                device,
                frame,
                attempt,
            } => {
                let _ = write!(
                    s,
                    ",\"device\":{},\"frame\":{},\"attempt\":{attempt}",
                    device.0, frame.0
                );
            }
            VmEvent::FlushAbandoned {
                device,
                frame,
                attempts,
            } => {
                let _ = write!(
                    s,
                    ",\"device\":{},\"frame\":{},\"attempts\":{attempts}",
                    device.0, frame.0
                );
            }
            VmEvent::PumpDeferred { deferred } => {
                let _ = write!(s, ",\"deferred\":{deferred}");
            }
            VmEvent::BreakerTrip { device, ewma_milli }
            | VmEvent::BreakerClose { device, ewma_milli } => {
                let _ = write!(s, ",\"device\":{},\"ewma_milli\":{ewma_milli}", device.0);
            }
            VmEvent::BreakerProbe { device, ok } => {
                let _ = write!(s, ",\"device\":{},\"ok\":{ok}", device.0);
            }
            VmEvent::DeviceDraining {
                device,
                to,
                objects,
                pages,
            } => {
                let _ = write!(
                    s,
                    ",\"device\":{},\"to\":{},\"objects\":{objects},\"pages\":{pages}",
                    device.0, to.0
                );
            }
            VmEvent::DeviceDrained { device } => {
                let _ = write!(s, ",\"device\":{}", device.0);
            }
            VmEvent::DeviceDead { device, ewma_milli } => {
                let _ = write!(s, ",\"device\":{},\"ewma_milli\":{ewma_milli}", device.0);
            }
            VmEvent::ObjectMigrated {
                object,
                from,
                to,
                pages,
                forced,
            } => {
                let _ = write!(
                    s,
                    ",\"object\":{},\"from\":{},\"to\":{},\"pages\":{pages},\"forced\":{forced}",
                    object.0, from.0, to.0
                );
            }
        },
        TraceEvent::AdmissionRejected {
            class,
            asked,
            throttled,
        } => {
            let _ = write!(
                s,
                ",\"class\":{class},\"asked\":{asked},\"throttled\":{throttled}"
            );
        }
        TraceEvent::Install {
            container,
            min_frames,
        } => {
            let _ = write!(s, ",\"container\":{container},\"min_frames\":{min_frames}");
        }
        TraceEvent::PolicyEvent {
            container,
            event,
            commands,
            ok,
        } => {
            let _ = write!(
                s,
                ",\"container\":{container},\"event\":{event},\"commands\":{commands},\"ok\":{ok}"
            );
        }
        TraceEvent::PolicyFaultResolved {
            container,
            frame,
            latency,
        } => {
            let _ = write!(
                s,
                ",\"container\":{container},\"frame\":{},\"latency_ns\":{}",
                frame.0,
                latency.as_ns()
            );
        }
        TraceEvent::Terminated {
            container,
            graceful,
        } => {
            let _ = write!(s, ",\"container\":{container},\"graceful\":{graceful}");
        }
        TraceEvent::Request {
            container,
            asked,
            granted,
        } => {
            let _ = write!(
                s,
                ",\"container\":{container},\"asked\":{asked},\"granted\":{granted}"
            );
        }
        TraceEvent::Release { container, frame } => {
            let _ = write!(s, ",\"container\":{container},\"frame\":{}", frame.0);
        }
        TraceEvent::FlushExchange {
            container,
            dirty,
            replacement,
        } => {
            let _ = write!(
                s,
                ",\"container\":{container},\"dirty\":{},\"replacement\":{}",
                dirty.0, replacement.0
            );
        }
        TraceEvent::Migrate { from, to, frame } => {
            let _ = write!(s, ",\"from\":{from},\"to\":{to},\"frame\":{}", frame.0);
        }
        TraceEvent::NormalReclaim {
            container,
            asked,
            recovered,
        } => {
            let _ = write!(
                s,
                ",\"container\":{container},\"asked\":{asked},\"recovered\":{recovered}"
            );
        }
        TraceEvent::ForcedReclaim { container, taken } => {
            let _ = write!(s, ",\"container\":{container},\"taken\":{taken}");
        }
        TraceEvent::ForcedSeize { container, frame } => {
            let _ = write!(s, ",\"container\":{container},\"frame\":{}", frame.0);
        }
        TraceEvent::OrphanRecovered { container, frame } => {
            let _ = write!(s, ",\"container\":{container},\"frame\":{}", frame.0);
        }
        TraceEvent::CheckerWake { detected } => {
            let _ = write!(s, ",\"detected\":{detected}");
        }
        TraceEvent::CheckerTimeout { container } => {
            let _ = write!(s, ",\"container\":{container}");
        }
        TraceEvent::DeviceFaultSurfaced { container, frame } => {
            let _ = write!(s, ",\"container\":{container},\"frame\":{}", frame.0);
        }
        TraceEvent::HealthDegraded { container, strikes } => {
            let _ = write!(s, ",\"container\":{container},\"strikes\":{strikes}");
        }
        TraceEvent::Quarantined {
            container,
            reclaimed,
        } => {
            let _ = write!(s, ",\"container\":{container},\"reclaimed\":{reclaimed}");
        }
        TraceEvent::FallbackRestored {
            container,
            readmitted,
        } => {
            let _ = write!(s, ",\"container\":{container},\"readmitted\":{readmitted}");
        }
        TraceEvent::RestoreRamp {
            container,
            admitted,
            outstanding,
        } => {
            let _ = write!(
                s,
                ",\"container\":{container},\"admitted\":{admitted},\"outstanding\":{outstanding}"
            );
        }
    }
    s.push('}');
    s
}

/// A sink that renders each record as one JSONL line into a writer.
///
/// Lines follow the schema of [`render_jsonl`]. Writing is buffered by the
/// caller's writer choice; [`TraceSink::flush_sink`] forwards to
/// [`std::io::Write::flush`]. I/O errors are counted rather than panicking
/// (a broken sink must never abort the simulation).
pub struct JsonlSink<W: std::io::Write> {
    out: W,
    written: u64,
    io_errors: u64,
}

impl<W: std::io::Write> JsonlSink<W> {
    /// A sink writing JSONL lines to `out`.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out,
            written: 0,
            io_errors: 0,
        }
    }

    /// Lines successfully written.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Write errors swallowed so far.
    pub fn io_errors(&self) -> u64 {
        self.io_errors
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.out.flush();
        self.out
    }

    /// A view of the underlying writer (e.g. an in-memory buffer).
    pub fn get_ref(&self) -> &W {
        &self.out
    }
}

impl<W: std::io::Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, rec: &TraceRecord<TraceEvent>) {
        let mut line = render_jsonl(rec);
        line.push('\n');
        match self.out.write_all(line.as_bytes()) {
            Ok(()) => self.written += 1,
            Err(_) => self.io_errors += 1,
        }
    }

    fn flush_sink(&mut self) {
        let _ = self.out.flush();
    }
}

/// A sink that keeps every record in memory (unbounded, for tests and
/// offline analysis inside one process).
#[derive(Default)]
pub struct MemorySink {
    records: Vec<TraceRecord<TraceEvent>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// All records received, in emission order.
    pub fn records(&self) -> &[TraceRecord<TraceEvent>] {
        &self.records
    }

    /// Consumes the sink and returns its records.
    pub fn into_records(self) -> Vec<TraceRecord<TraceEvent>> {
        self.records
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, rec: &TraceRecord<TraceEvent>) {
        self.records.push(*rec);
    }
}

/// A sink that only counts records per event type — the cheapest way to
/// watch a long soak without retaining history.
#[derive(Default)]
pub struct CountingSink {
    total: u64,
    by_kind: std::collections::BTreeMap<&'static str, u64>,
}

impl CountingSink {
    /// An empty sink.
    pub fn new() -> Self {
        CountingSink::default()
    }

    /// Total records received.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Records received for one [`event_kind`] name.
    pub fn count(&self, kind: &str) -> u64 {
        self.by_kind.get(kind).copied().unwrap_or(0)
    }

    /// All (kind, count) pairs, sorted by kind.
    pub fn counts(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.by_kind.iter().map(|(&k, &v)| (k, v))
    }
}

impl TraceSink for CountingSink {
    fn record(&mut self, rec: &TraceRecord<TraceEvent>) {
        self.total += 1;
        *self.by_kind.entry(event_kind(&rec.event)).or_insert(0) += 1;
    }
}

/// Shared-handle sinks: callers that need to inspect a sink while the
/// kernel owns it can attach an `Rc<RefCell<S>>` clone.
impl<S: TraceSink> TraceSink for std::rc::Rc<std::cell::RefCell<S>> {
    fn record(&mut self, rec: &TraceRecord<TraceEvent>) {
        self.borrow_mut().record(rec);
    }

    fn flush_sink(&mut self) {
        self.borrow_mut().flush_sink();
    }
}

//! Kernel-wide deterministic event tracing.
//!
//! The HiPEC kernel keeps one bounded [`EventRing`] of [`TraceEvent`]s
//! covering both layers: its own events (policy execution, frame-manager
//! commands, checker activity) and, via the [`TraceEvent::Vm`] wrapper,
//! everything the VM substrate records (fault resolution, pageout scans,
//! the flush/retry lifecycle). Immediately before each HiPEC-layer event is
//! pushed — and at the end of every kernel entry point — the VM ring is
//! drained into the master ring, so the merged trace preserves causal
//! order across layers.
//!
//! **Determinism contract.** Events are stamped with the virtual clock and
//! a monotonic sequence number; recording charges no virtual time and
//! allocates nothing in steady state. Two runs of the same seeded workload
//! therefore produce bit-for-bit identical traces, and turning tracing off
//! (at run time or compile time, via the `trace` feature) cannot change
//! any simulation outcome.

use std::fmt;

use hipec_vm::{FrameId, VmEvent};

pub use hipec_vm::trace::{EventRing, TraceRecord, DEFAULT_TRACE_CAPACITY};

/// One event in the merged kernel trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// An event recorded by the VM substrate.
    Vm(VmEvent),
    /// A policy was installed (`vm_allocate_hipec` / `vm_map_hipec`).
    Install {
        /// The new container's key.
        container: u32,
        /// Its guaranteed `minFrame` allocation.
        min_frames: u64,
    },
    /// One policy event ran to completion (nested `Activate` runs are
    /// recorded separately, innermost first).
    PolicyEvent {
        /// The executing container.
        container: u32,
        /// The event index (0 = PageFault, 1 = ReclaimFrame, …).
        event: u8,
        /// Commands interpreted by this invocation (nested runs included).
        commands: u32,
        /// False if the run ended in a policy fault.
        ok: bool,
    },
    /// A policy resolved a page fault with a frame.
    PolicyFaultResolved {
        /// The resolving container.
        container: u32,
        /// The frame the policy returned.
        frame: FrameId,
    },
    /// A container was terminated (kill or graceful deallocate).
    Terminated {
        /// The terminated container.
        container: u32,
        /// True for graceful `vm_deallocate_hipec`, false for kills.
        graceful: bool,
    },
    /// A `Request` command was serviced.
    Request {
        /// The requesting container.
        container: u32,
        /// Frames asked for.
        asked: u64,
        /// Frames granted (0 = rejected).
        granted: u64,
    },
    /// A `Release` command returned a frame to the global pool.
    Release {
        /// The releasing container.
        container: u32,
        /// The released frame.
        frame: FrameId,
    },
    /// A `Flush` exchanged a dirty page for a clean frame.
    FlushExchange {
        /// The flushing container.
        container: u32,
        /// The dirty page handed to the flush machinery.
        dirty: FrameId,
        /// The clean frame handed back.
        replacement: FrameId,
    },
    /// A `Migrate` moved a free frame between containers.
    Migrate {
        /// Source container.
        from: u32,
        /// Destination container.
        to: u32,
        /// The migrated frame.
        frame: FrameId,
    },
    /// A normal (`ReclaimFrame`-event) reclamation pass on one container.
    NormalReclaim {
        /// The container asked to give frames back.
        container: u32,
        /// Frames the manager wanted.
        asked: u64,
        /// Frames actually recovered (kill path included).
        recovered: u64,
    },
    /// Forced reclamation seized frames from one container.
    ForcedReclaim {
        /// The container frames were taken from.
        container: u32,
        /// Frames seized.
        taken: u64,
    },
    /// An orphaned frame (last slot handle overwritten) was recovered.
    OrphanRecovered {
        /// The container that held the orphan.
        container: u32,
        /// The recovered frame.
        frame: FrameId,
    },
    /// The security checker woke up.
    CheckerWake {
        /// True if this wakeup detected (and killed) a timed-out policy.
        detected: bool,
    },
    /// The checker terminated a container for exceeding the timeout.
    CheckerTimeout {
        /// The killed container.
        container: u32,
    },
    /// An abandoned flush's data loss was attributed to its container as a
    /// surfaced `PolicyFault::Device`.
    DeviceFaultSurfaced {
        /// The owning container.
        container: u32,
        /// The frame whose write-back was abandoned.
        frame: FrameId,
    },
}

impl From<VmEvent> for TraceEvent {
    fn from(e: VmEvent) -> Self {
        TraceEvent::Vm(e)
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceEvent::Vm(e) => write!(f, "vm: {e:?}"),
            TraceEvent::Install {
                container,
                min_frames,
            } => write!(f, "install c{container} min_frames={min_frames}"),
            TraceEvent::PolicyEvent {
                container,
                event,
                commands,
                ok,
            } => write!(
                f,
                "policy-event c{container} ev{event} commands={commands} {}",
                if ok { "ok" } else { "fault" }
            ),
            TraceEvent::PolicyFaultResolved { container, frame } => {
                write!(f, "policy-fault-resolved c{container} frame={}", frame.0)
            }
            TraceEvent::Terminated {
                container,
                graceful,
            } => write!(
                f,
                "terminated c{container} ({})",
                if graceful { "dealloc" } else { "kill" }
            ),
            TraceEvent::Request {
                container,
                asked,
                granted,
            } => write!(f, "request c{container} asked={asked} granted={granted}"),
            TraceEvent::Release { container, frame } => {
                write!(f, "release c{container} frame={}", frame.0)
            }
            TraceEvent::FlushExchange {
                container,
                dirty,
                replacement,
            } => write!(
                f,
                "flush-exchange c{container} dirty={} replacement={}",
                dirty.0, replacement.0
            ),
            TraceEvent::Migrate { from, to, frame } => {
                write!(f, "migrate c{from}->c{to} frame={}", frame.0)
            }
            TraceEvent::NormalReclaim {
                container,
                asked,
                recovered,
            } => write!(
                f,
                "normal-reclaim c{container} asked={asked} recovered={recovered}"
            ),
            TraceEvent::ForcedReclaim { container, taken } => {
                write!(f, "forced-reclaim c{container} taken={taken}")
            }
            TraceEvent::OrphanRecovered { container, frame } => {
                write!(f, "orphan-recovered c{container} frame={}", frame.0)
            }
            TraceEvent::CheckerWake { detected } => {
                write!(
                    f,
                    "checker-wake{}",
                    if detected { " (timeout detected)" } else { "" }
                )
            }
            TraceEvent::CheckerTimeout { container } => {
                write!(f, "checker-timeout c{container}")
            }
            TraceEvent::DeviceFaultSurfaced { container, frame } => {
                write!(f, "device-fault-surfaced c{container} frame={}", frame.0)
            }
        }
    }
}

/// Renders the newest `n` records of a ring, one per line, oldest first —
/// the "last events leading up to a violation" block of invariant reports.
pub fn render_tail(ring: &EventRing<TraceEvent>, n: usize) -> String {
    let held = ring.len();
    let skip = held.saturating_sub(n);
    let mut out = String::new();
    for rec in ring.iter().skip(skip) {
        out.push_str(&format!("    [{:>6}] {} {}\n", rec.seq, rec.at, rec.event));
    }
    out
}

//! Operand slots: the typed variables HiPEC commands operate on.
//!
//! Each container holds an operand array of up to 256 entries (paper §4.2).
//! An entry points at a variable that can be "as simple as an unsigned
//! integer, or as complex as the virtual memory page structure or page
//! queue list". Here that is the [`OperandSlot`] enum; kernel-maintained
//! counters are exposed through read-only [`KernelVar`] slots, which is how
//! the executor gives policies the information PREMO could not (e.g. the
//! number of frames under the application's control) without letting them
//! touch kernel structures directly.

use hipec_vm::{FrameId, QueueId};
use serde::{Deserialize, Serialize};

/// A kernel-maintained, read-only integer visible to policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelVar {
    /// Frames on this container's free queue.
    FreeCount,
    /// Frames on this container's active queue (declared slot 0 of kind
    /// `ActiveQueue`).
    ActiveCount,
    /// Frames on this container's inactive queue.
    InactiveCount,
    /// Total frames currently allocated to this container.
    AllocatedCount,
    /// The container's configured minimum allocation (`minFrame`).
    MinFrames,
    /// Frames on the system-wide free queue.
    GlobalFreeCount,
    /// During a `ReclaimFrame` event: how many frames the global frame
    /// manager wants back (0 outside reclamation).
    ReclaimTarget,
}

/// A declaration of one operand-array entry, carried with the program and
/// validated by the security checker before installation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OperandDecl {
    /// A mutable integer, with its initial value.
    Int(i64),
    /// A mutable boolean, with its initial value.
    Bool(bool),
    /// A page variable (starts holding no page).
    Page,
    /// Binds the container's free queue.
    FreeQueue,
    /// Creates a container page queue. With `recency` set, the kernel keeps
    /// it ordered by last reference (see `hipec-vm`'s auto-recency queues),
    /// which the `LRU`/`MRU` commands require.
    Queue {
        /// Kernel-maintained recency ordering.
        recency: bool,
    },
    /// A read-only kernel counter.
    Kernel(KernelVar),
}

impl OperandDecl {
    /// True if commands may write this slot.
    pub fn writable(self) -> bool {
        matches!(
            self,
            OperandDecl::Int(_) | OperandDecl::Bool(_) | OperandDecl::Page
        )
    }

    /// True if the slot reads as an integer.
    pub fn is_int(self) -> bool {
        matches!(self, OperandDecl::Int(_) | OperandDecl::Kernel(_))
    }

    /// True if the slot holds a queue.
    pub fn is_queue(self) -> bool {
        matches!(self, OperandDecl::FreeQueue | OperandDecl::Queue { .. })
    }

    /// True if the slot holds a page.
    pub fn is_page(self) -> bool {
        matches!(self, OperandDecl::Page)
    }

    /// True if the slot holds a boolean.
    pub fn is_bool(self) -> bool {
        matches!(self, OperandDecl::Bool(_))
    }
}

/// The runtime value of one operand-array entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperandSlot {
    /// A mutable integer.
    Int(i64),
    /// A mutable boolean.
    Bool(bool),
    /// A page variable; `None` until a page is assigned.
    Page(Option<FrameId>),
    /// A page queue (container free queue or a declared queue).
    Queue(QueueId),
    /// A read-only kernel counter, resolved on every read.
    Kernel(KernelVar),
}

impl OperandSlot {
    /// A short name for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            OperandSlot::Int(_) => "int",
            OperandSlot::Bool(_) => "bool",
            OperandSlot::Page(_) => "page",
            OperandSlot::Queue(_) => "queue",
            OperandSlot::Kernel(_) => "kernel-int",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decl_classification() {
        assert!(OperandDecl::Int(3).writable());
        assert!(OperandDecl::Page.writable());
        assert!(!OperandDecl::FreeQueue.writable());
        assert!(!OperandDecl::Kernel(KernelVar::FreeCount).writable());
        assert!(OperandDecl::Int(0).is_int());
        assert!(OperandDecl::Kernel(KernelVar::FreeCount).is_int());
        assert!(!OperandDecl::Page.is_int());
        assert!(OperandDecl::FreeQueue.is_queue());
        assert!(OperandDecl::Queue { recency: true }.is_queue());
        assert!(OperandDecl::Page.is_page());
        assert!(OperandDecl::Bool(true).is_bool());
    }

    #[test]
    fn slot_type_names() {
        assert_eq!(OperandSlot::Int(1).type_name(), "int");
        assert_eq!(OperandSlot::Page(None).type_name(), "page");
        assert_eq!(
            OperandSlot::Kernel(KernelVar::GlobalFreeCount).type_name(),
            "kernel-int"
        );
    }
}

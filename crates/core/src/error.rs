//! Error types of the HiPEC layer.

use core::fmt;

use hipec_vm::VmError;

use crate::command::RawCmd;

/// A fault raised while interpreting a policy.
///
/// Any `PolicyFault` terminates the offending specific application — the
/// behaviour the paper assigns to the security checker for "bad policies
/// from malicious users or due to program mistakes".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyFault {
    /// The opcode byte is not a defined command.
    BadOpcode {
        /// The offending command word.
        cmd: RawCmd,
        /// Command counter where it was fetched.
        cc: usize,
    },
    /// A flag byte is out of range for the opcode.
    BadFlag {
        /// The offending command word.
        cmd: RawCmd,
        /// Command counter.
        cc: usize,
    },
    /// An operand byte indexes past the operand array.
    BadOperandIndex {
        /// The out-of-range index.
        index: u8,
        /// Command counter.
        cc: usize,
    },
    /// An operand slot has the wrong type for the command.
    TypeMismatch {
        /// What the command required.
        expected: &'static str,
        /// What the slot held.
        found: &'static str,
        /// Command counter.
        cc: usize,
    },
    /// A read-only slot (kernel variable or queue binding) was written.
    ReadOnlySlot {
        /// The slot index.
        index: u8,
        /// Command counter.
        cc: usize,
    },
    /// A page operand held no page.
    EmptyPageSlot {
        /// The slot index.
        index: u8,
        /// Command counter.
        cc: usize,
    },
    /// Integer division or modulo by zero.
    DivideByZero {
        /// Command counter.
        cc: usize,
    },
    /// A jump target is outside the event's command segment.
    JumpOutOfRange {
        /// The target command counter.
        target: u16,
        /// The segment length.
        len: usize,
    },
    /// Execution ran off the end of the segment without `Return`.
    MissingReturn,
    /// `Activate` named an undefined event.
    UnknownEvent(u8),
    /// `Activate` nesting exceeded the depth limit.
    DepthExceeded,
    /// The per-invocation fuel budget was exhausted (runaway policy).
    OutOfFuel,
    /// A dirty page was pushed to the free queue without a `Flush`.
    DirtyFree,
    /// A set modify bit was cleared by `Set` (would lose data).
    UnsafeModClear,
    /// `Return` from `PageFault` did not produce a usable page.
    NoPageReturned,
    /// `Migrate` named an unknown or terminated container.
    BadMigrateTarget(i64),
    /// The paging device failed an operation the policy triggered.
    ///
    /// Unlike every other fault, this is *environmental* — the policy did
    /// nothing wrong, so the security checker does not terminate the
    /// application; the executor aborts the event and surfaces the error.
    Device(hipec_disk::DiskFault),
    /// The container is quarantined: HiPEC execution is suspended and its
    /// region runs under default management until probation restores it.
    Quarantined,
    /// The VM substrate rejected an operation.
    Vm(VmError),
}

impl fmt::Display for PolicyFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyFault::BadOpcode { cmd, cc } => {
                write!(f, "cc {cc}: undefined opcode in 0x{:08x}", cmd.0)
            }
            PolicyFault::BadFlag { cmd, cc } => {
                write!(f, "cc {cc}: bad flag byte in 0x{:08x}", cmd.0)
            }
            PolicyFault::BadOperandIndex { index, cc } => {
                write!(f, "cc {cc}: operand index {index} out of range")
            }
            PolicyFault::TypeMismatch {
                expected,
                found,
                cc,
            } => write!(f, "cc {cc}: expected a {expected} operand, found {found}"),
            PolicyFault::ReadOnlySlot { index, cc } => {
                write!(f, "cc {cc}: write to read-only slot {index}")
            }
            PolicyFault::EmptyPageSlot { index, cc } => {
                write!(f, "cc {cc}: page slot {index} holds no page")
            }
            PolicyFault::DivideByZero { cc } => write!(f, "cc {cc}: division by zero"),
            PolicyFault::JumpOutOfRange { target, len } => {
                write!(f, "jump target {target} outside segment of {len} commands")
            }
            PolicyFault::MissingReturn => write!(f, "execution ran past the segment end"),
            PolicyFault::UnknownEvent(e) => write!(f, "activate of undefined event {e}"),
            PolicyFault::DepthExceeded => write!(f, "activate nesting too deep"),
            PolicyFault::OutOfFuel => write!(f, "policy exceeded its execution budget"),
            PolicyFault::DirtyFree => write!(f, "dirty page freed without flush"),
            PolicyFault::UnsafeModClear => write!(f, "modify bit cleared on a dirty page"),
            PolicyFault::NoPageReturned => {
                write!(f, "PageFault event returned without a page")
            }
            PolicyFault::BadMigrateTarget(k) => write!(f, "migrate to unknown container {k}"),
            PolicyFault::Device(e) => write!(f, "paging device: {e}"),
            PolicyFault::Quarantined => {
                write!(f, "container is quarantined (default-management fallback)")
            }
            PolicyFault::Vm(e) => write!(f, "vm: {e}"),
        }
    }
}

impl std::error::Error for PolicyFault {}

impl From<VmError> for PolicyFault {
    fn from(e: VmError) -> Self {
        match e {
            VmError::Device(d) => PolicyFault::Device(d),
            other => PolicyFault::Vm(other),
        }
    }
}

/// Errors surfaced by the HiPEC kernel interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HipecError {
    /// The `minFrame` admission request cannot be satisfied (the paper's
    /// documented error return from `vm_map_hipec`/`vm_allocate_hipec`).
    MinFramesUnavailable {
        /// Frames requested.
        requested: u64,
        /// Frames obtainable.
        available: u64,
    },
    /// Per-tenant admission control turned the install away before the
    /// `minFrame` admission ran (see [`crate::admission`]).
    AdmissionRejected {
        /// Stable name of the rejected share class.
        class: &'static str,
        /// True for the bursty-arrival throttle (retry once the checker
        /// interval rolls the window), false for the weighted share cap.
        throttled: bool,
    },
    /// The program failed static validation; see the contained report.
    InvalidProgram(String),
    /// The specific application was terminated (policy fault or timeout).
    Terminated {
        /// Container key.
        container: u32,
        /// Why it was killed.
        reason: String,
    },
    /// The container key is unknown.
    NoSuchContainer(u32),
    /// The container is quarantined: its policy is suspended and the region
    /// runs under default management until probation restores it.
    Quarantined {
        /// Container key.
        container: u32,
    },
    /// The VM substrate rejected an operation.
    Vm(VmError),
}

impl fmt::Display for HipecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HipecError::MinFramesUnavailable {
                requested,
                available,
            } => write!(
                f,
                "minFrame request of {requested} frames cannot be met ({available} available)"
            ),
            HipecError::AdmissionRejected { class, throttled } => write!(
                f,
                "admission control rejected a {class}-class install ({})",
                if *throttled {
                    "arrival burst throttled; retry next checker interval"
                } else {
                    "weighted share cap exceeded"
                }
            ),
            HipecError::InvalidProgram(r) => write!(f, "invalid policy program: {r}"),
            HipecError::Terminated { container, reason } => {
                write!(
                    f,
                    "specific application (container {container}) terminated: {reason}"
                )
            }
            HipecError::NoSuchContainer(k) => write!(f, "no such container {k}"),
            HipecError::Quarantined { container } => write!(
                f,
                "container {container} is quarantined (default-management fallback)"
            ),
            HipecError::Vm(e) => write!(f, "vm: {e}"),
        }
    }
}

impl std::error::Error for HipecError {}

impl From<VmError> for HipecError {
    fn from(e: VmError) -> Self {
        HipecError::Vm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_display() {
        let f = PolicyFault::TypeMismatch {
            expected: "queue",
            found: "int",
            cc: 7,
        };
        assert!(f.to_string().contains("cc 7"));
        assert!(f.to_string().contains("queue"));
        assert!(PolicyFault::OutOfFuel.to_string().contains("budget"));
    }

    #[test]
    fn errors_display() {
        let e = HipecError::MinFramesUnavailable {
            requested: 100,
            available: 10,
        };
        assert!(e.to_string().contains("100"));
        let e = HipecError::Terminated {
            container: 3,
            reason: "timeout".into(),
        };
        assert!(e.to_string().contains("timeout"));
    }
}

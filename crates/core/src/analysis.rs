//! Extended static analysis of policy programs.
//!
//! The paper's future-work list (§6) asks for a security checker that does
//! "more than the current version in detecting malicious actions or
//! mistakes". This module adds control- and data-flow analysis on top of
//! the syntactic validation in [`crate::checker`]:
//!
//! * **unreachable commands** — dead code after unconditional jumps;
//! * **no reachable `Return`** — the execution *must* run away (the
//!   runtime checker would kill it after the timeout; better to warn now);
//! * **inescapable loops** — a cycle with no exit edge;
//! * **possibly-unassigned page slots** — a command reads a page variable
//!   on a path where nothing ever wrote it (the most common policy bug).
//!
//! All findings are warnings: they do not block installation (a reachable
//! fault still terminates only the offending application), but `hipecc
//! check` surfaces them at build time.

use std::sync::Arc;

use crate::command::{JumpMode, OpCode, RawCmd, NO_OPERAND};
use crate::operand::OperandDecl;
use crate::program::PolicyProgram;

/// Analyzes every event of `program`, returning human-readable warnings.
pub fn analyze_program(program: &PolicyProgram) -> Vec<String> {
    let mut warnings = Vec::new();
    // Page slots any event may write (used to model `Activate` calls).
    let written_anywhere: Vec<u8> = program
        .events
        .iter()
        .flat_map(|seg| seg.iter())
        .filter_map(page_slot_written)
        .collect();
    for (ev, seg) in program.events.iter().enumerate() {
        let name = program
            .event_names
            .get(ev)
            .map(String::as_str)
            .unwrap_or("unnamed");
        analyze_event(ev, name, seg, program, &written_anywhere, &mut warnings);
    }
    warnings
}

/// The page slot a command writes, if any.
fn page_slot_written(cmd: &RawCmd) -> Option<u8> {
    match cmd.opcode()? {
        OpCode::DeQueue | OpCode::Find => Some(cmd.a()),
        OpCode::Flush => Some(cmd.a()), // rebinds to the exchanged frame
        OpCode::Fifo | OpCode::Lru | OpCode::Mru if cmd.b() != NO_OPERAND => Some(cmd.b()),
        _ => None,
    }
}

/// Page slots a command reads.
fn page_slots_read(cmd: &RawCmd, decls: &[OperandDecl]) -> Vec<u8> {
    let is_page =
        |idx: u8| idx != NO_OPERAND && matches!(decls.get(idx as usize), Some(OperandDecl::Page));
    match cmd.opcode() {
        Some(OpCode::EnQueue | OpCode::Release | OpCode::Flush | OpCode::Set)
        | Some(OpCode::Ref | OpCode::Mod) => {
            if is_page(cmd.a()) {
                vec![cmd.a()]
            } else {
                vec![]
            }
        }
        Some(OpCode::InQ) => {
            if is_page(cmd.b()) {
                vec![cmd.b()]
            } else {
                vec![]
            }
        }
        Some(OpCode::Return) => {
            if is_page(cmd.a()) {
                vec![cmd.a()]
            } else {
                vec![]
            }
        }
        _ => vec![],
    }
}

fn successors(cmd: RawCmd, cc: usize, len: usize) -> Vec<usize> {
    match cmd.opcode() {
        Some(OpCode::Return) => vec![],
        Some(OpCode::Jump) => {
            let target = cmd.jump_target() as usize;
            let mut next = Vec::new();
            if target < len {
                next.push(target);
            }
            match JumpMode::from_u8(cmd.a()) {
                Some(JumpMode::Always) => {}
                _ => {
                    if cc + 1 < len {
                        next.push(cc + 1);
                    }
                }
            }
            next
        }
        _ => {
            if cc + 1 < len {
                vec![cc + 1]
            } else {
                vec![]
            }
        }
    }
}

fn analyze_event(
    ev: usize,
    name: &str,
    seg: &Arc<Vec<RawCmd>>,
    program: &PolicyProgram,
    written_anywhere: &[u8],
    warnings: &mut Vec<String>,
) {
    let len = seg.len();
    if len == 0 {
        return; // The validator already rejects empty events.
    }
    let succ: Vec<Vec<usize>> = seg
        .iter()
        .enumerate()
        .map(|(cc, cmd)| successors(*cmd, cc, len))
        .collect();

    // Reachability from the entry.
    let mut reachable = vec![false; len];
    let mut stack = vec![0usize];
    while let Some(cc) = stack.pop() {
        if std::mem::replace(&mut reachable[cc], true) {
            continue;
        }
        stack.extend(succ[cc].iter().copied());
    }
    let dead = reachable.iter().filter(|r| !**r).count();
    if dead > 0 {
        warnings.push(format!(
            "event {ev} ({name}): {dead} unreachable command(s)"
        ));
    }

    // Is any Return reachable?
    let returns_reachable = seg
        .iter()
        .enumerate()
        .any(|(cc, cmd)| reachable[cc] && cmd.opcode() == Some(OpCode::Return));
    if !returns_reachable {
        warnings.push(format!(
            "event {ev} ({name}): no Return is reachable — execution is guaranteed to run away"
        ));
    }

    // Inescapable cycles: an SCC with a cycle and no edge leaving it.
    for scc in tarjan_sccs(&succ) {
        let is_cycle = scc.len() > 1 || succ[scc[0]].contains(&scc[0]);
        if !is_cycle || !reachable[scc[0]] {
            continue;
        }
        let escapes = scc
            .iter()
            .any(|&cc| succ[cc].iter().any(|s| !scc.contains(s)));
        if !escapes {
            warnings.push(format!(
                "event {ev} ({name}): inescapable loop over commands {:?}",
                scc
            ));
        }
    }

    // Definite-assignment of page slots (forward dataflow; meet =
    // intersection). `Activate` conservatively assigns every page slot any
    // event writes.
    let nslots = program.decls.len();
    let full: u128 = if nslots >= 128 {
        u128::MAX
    } else {
        (1u128 << nslots) - 1
    };
    let mut assigned: Vec<u128> = vec![full; len]; // ⊤ until visited
    let mut in_entry = 0u128;
    let _ = &mut in_entry; // entry starts with nothing assigned
    let mut worklist = vec![(0usize, 0u128)];
    let mut visited = vec![false; len];
    while let Some((cc, input)) = worklist.pop() {
        let new_in = if visited[cc] {
            assigned[cc] & input
        } else {
            input
        };
        if visited[cc] && new_in == assigned[cc] {
            continue;
        }
        visited[cc] = true;
        assigned[cc] = new_in;
        let cmd = seg[cc];
        let mut out = new_in;
        if let Some(slot) = page_slot_written(&cmd) {
            if (slot as usize) < nslots {
                out |= 1 << slot;
            }
        }
        if cmd.opcode() == Some(OpCode::Activate) {
            for &slot in written_anywhere {
                if (slot as usize) < nslots {
                    out |= 1 << slot;
                }
            }
        }
        for &s in &succ[cc] {
            worklist.push((s, out));
        }
    }
    for (cc, cmd) in seg.iter().enumerate() {
        if !visited[cc] {
            continue;
        }
        for slot in page_slots_read(cmd, &program.decls) {
            if (slot as usize) < nslots && assigned[cc] & (1 << slot) == 0 {
                warnings.push(format!(
                    "event {ev} ({name}) cc {cc}: page slot {slot} may be read before \
                     any command assigns it"
                ));
            }
        }
    }
}

/// Tarjan's strongly-connected components.
fn tarjan_sccs(succ: &[Vec<usize>]) -> Vec<Vec<usize>> {
    struct State<'a> {
        succ: &'a [Vec<usize>],
        index: Vec<Option<usize>>,
        low: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        next_index: usize,
        sccs: Vec<Vec<usize>>,
    }
    fn strongconnect(v: usize, st: &mut State<'_>) {
        st.index[v] = Some(st.next_index);
        st.low[v] = st.next_index;
        st.next_index += 1;
        st.stack.push(v);
        st.on_stack[v] = true;
        for &w in st.succ[v].to_vec().iter() {
            if st.index[w].is_none() {
                strongconnect(w, st);
                st.low[v] = st.low[v].min(st.low[w]);
            } else if st.on_stack[w] {
                st.low[v] = st.low[v].min(st.index[w].expect("indexed"));
            }
        }
        if Some(st.low[v]) == st.index[v] {
            let mut scc = Vec::new();
            loop {
                let w = st.stack.pop().expect("stack holds the SCC");
                st.on_stack[w] = false;
                scc.push(w);
                if w == v {
                    break;
                }
            }
            scc.sort_unstable();
            st.sccs.push(scc);
        }
    }
    let n = succ.len();
    let mut st = State {
        succ,
        index: vec![None; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next_index: 0,
        sccs: Vec::new(),
    };
    for v in 0..n {
        if st.index[v].is_none() {
            strongconnect(v, &mut st);
        }
    }
    st.sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{build, CompOp, QueueEnd};
    use crate::operand::KernelVar;

    fn base() -> PolicyProgram {
        let mut p = PolicyProgram::new();
        p.declare(OperandDecl::FreeQueue); // 0
        p.declare(OperandDecl::Page); // 1
        p.declare(OperandDecl::Kernel(KernelVar::FreeCount)); // 2
        p.declare(OperandDecl::Int(0)); // 3
        p
    }

    #[test]
    fn clean_program_has_no_warnings() {
        let mut p = base();
        p.add_event(
            "PageFault",
            vec![build::dequeue(1, 0, QueueEnd::Head), build::ret(1)],
        );
        p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
        assert!(analyze_program(&p).is_empty(), "{:?}", analyze_program(&p));
    }

    #[test]
    fn unreachable_code_is_flagged() {
        let mut p = base();
        p.add_event(
            "PageFault",
            vec![
                build::ret(NO_OPERAND),
                build::dequeue(1, 0, QueueEnd::Head), // dead
                build::ret(1),                        // dead
            ],
        );
        p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
        let w = analyze_program(&p);
        assert!(w.iter().any(|m| m.contains("2 unreachable")), "{w:?}");
    }

    #[test]
    fn guaranteed_runaway_is_flagged() {
        let mut p = base();
        p.add_event(
            "PageFault",
            vec![build::jump(JumpMode::Always, 0), build::ret(NO_OPERAND)],
        );
        p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
        let w = analyze_program(&p);
        assert!(
            w.iter().any(|m| m.contains("guaranteed to run away")),
            "{w:?}"
        );
        assert!(w.iter().any(|m| m.contains("inescapable loop")), "{w:?}");
    }

    #[test]
    fn conditional_loops_are_not_flagged_as_inescapable() {
        let mut p = base();
        p.add_event(
            "PageFault",
            vec![
                // while free_count > 0 { dequeue }
                build::comp(2, 3, CompOp::Gt),
                build::jump(JumpMode::IfFalse, 4),
                build::dequeue(1, 0, QueueEnd::Head),
                build::jump(JumpMode::Always, 0),
                build::ret(NO_OPERAND),
            ],
        );
        p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
        let w = analyze_program(&p);
        assert!(
            !w.iter().any(|m| m.contains("inescapable")),
            "conditional loop misflagged: {w:?}"
        );
        assert!(!w.iter().any(|m| m.contains("run away")), "{w:?}");
    }

    #[test]
    fn read_before_assignment_is_flagged() {
        let mut p = base();
        p.add_event(
            "PageFault",
            vec![
                build::enqueue(1, 0, QueueEnd::Tail), // reads slot 1: never assigned
                build::ret(NO_OPERAND),
            ],
        );
        p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
        let w = analyze_program(&p);
        assert!(
            w.iter().any(|m| m.contains("read before")),
            "missing definite-assignment warning: {w:?}"
        );
    }

    #[test]
    fn assignment_on_one_branch_only_is_flagged() {
        let mut p = base();
        p.add_event(
            "PageFault",
            vec![
                build::comp(2, 3, CompOp::Gt),
                build::jump(JumpMode::IfFalse, 3),
                build::dequeue(1, 0, QueueEnd::Head), // assigns on the true path only
                build::ret(1),                        // may read unassigned slot 1
            ],
        );
        p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
        let w = analyze_program(&p);
        assert!(
            w.iter().any(|m| m.contains("cc 3") && m.contains("slot 1")),
            "{w:?}"
        );
    }

    #[test]
    fn activate_counts_as_assignment() {
        let mut p = base();
        p.add_event("PageFault", vec![build::activate(2), build::ret(1)]);
        p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
        p.add_event(
            "helper",
            vec![build::dequeue(1, 0, QueueEnd::Head), build::ret(NO_OPERAND)],
        );
        let w = analyze_program(&p);
        assert!(
            !w.iter().any(|m| m.contains("read before")),
            "activate-assigned slot misflagged: {w:?}"
        );
    }

    #[test]
    fn shipped_policy_sources_analyze_clean() {
        // The paper's Figure 4 policy, via the same builders the tests use.
        let mut p = base();
        let q2 = p.declare(OperandDecl::Queue { recency: false });
        p.add_event(
            "PageFault",
            vec![
                build::dequeue(1, 0, QueueEnd::Head),
                build::enqueue(1, q2, QueueEnd::Tail),
                build::ret(1),
            ],
        );
        p.add_event("ReclaimFrame", vec![build::ret(NO_OPERAND)]);
        assert!(analyze_program(&p).is_empty());
    }
}
